#ifndef BIOPERA_SCHED_POLICY_H_
#define BIOPERA_SCHED_POLICY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "monitor/awareness.h"

namespace biopera::sched {

/// A placement request from the dispatcher: one activity wanting a node.
struct PlacementRequest {
  /// Required resource class ("" = any node).
  std::string resource_class;
  /// Estimated reference-CPU work (used by cost-aware policies).
  Duration estimated_work;
};

/// Scheduling and load-balancing policy: given the server's awareness
/// model, picks a node for an activity, or declines (empty string) so the
/// dispatcher keeps the activity queued until the environment changes.
/// Policies must not place on nodes believed to be down.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual std::string name() const = 0;
  virtual std::string Place(const PlacementRequest& request,
                            const monitor::AwarenessModel& awareness) = 0;
};

/// Picks the candidate with the most estimated free CPUs; declines when
/// nothing has a full free CPU. The default BioOpera policy.
std::unique_ptr<SchedulingPolicy> MakeLeastLoadedPolicy();

/// Cycles over candidates that have capacity for one more of our jobs,
/// ignoring external load reports (baseline showing why awareness helps).
std::unique_ptr<SchedulingPolicy> MakeRoundRobinPolicy();

/// Maximizes speed x free CPUs — prefers fast nodes for heavy work.
std::unique_ptr<SchedulingPolicy> MakeSpeedWeightedPolicy();

/// Uniformly random among candidates with a free CPU. `rng` must outlive
/// the policy.
std::unique_ptr<SchedulingPolicy> MakeRandomPolicy(Rng* rng);

/// Builds a policy by name: "least_loaded", "round_robin",
/// "speed_weighted", "random".
Result<std::unique_ptr<SchedulingPolicy>> MakePolicy(std::string_view name,
                                                     Rng* rng);

}  // namespace biopera::sched

#endif  // BIOPERA_SCHED_POLICY_H_
