#include "sched/policy.h"

#include <algorithm>

namespace biopera::sched {

namespace {

using monitor::AwarenessModel;

class LeastLoadedPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "least_loaded"; }

  std::string Place(const PlacementRequest& request,
                    const AwarenessModel& awareness) override {
    const AwarenessModel::NodeView* best = nullptr;
    double best_free = 0;
    for (const auto* view : awareness.Candidates(request.resource_class)) {
      double free = awareness.EstimatedFreeCpus(*view);
      if (free >= 1.0 && (best == nullptr || free > best_free)) {
        best = view;
        best_free = free;
      }
    }
    return best == nullptr ? "" : best->config.name;
  }
};

class RoundRobinPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "round_robin"; }

  std::string Place(const PlacementRequest& request,
                    const AwarenessModel& awareness) override {
    const auto& candidates = awareness.Candidates(request.resource_class);
    if (candidates.empty()) return "";
    // Ignore external load: only avoid oversubscribing with our own jobs.
    for (size_t k = 0; k < candidates.size(); ++k) {
      const auto* view = candidates[(next_ + k) % candidates.size()];
      if (view->running_jobs < view->config.num_cpus) {
        next_ = (next_ + k + 1) % candidates.size();
        return view->config.name;
      }
    }
    return "";
  }

 private:
  size_t next_ = 0;
};

class SpeedWeightedPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "speed_weighted"; }

  std::string Place(const PlacementRequest& request,
                    const AwarenessModel& awareness) override {
    const AwarenessModel::NodeView* best = nullptr;
    double best_score = 0;
    for (const auto* view : awareness.Candidates(request.resource_class)) {
      double free = awareness.EstimatedFreeCpus(*view);
      if (free < 1.0) continue;
      double score = view->config.speed * free;
      if (best == nullptr || score > best_score) {
        best = view;
        best_score = score;
      }
    }
    return best == nullptr ? "" : best->config.name;
  }
};

class RandomPolicy : public SchedulingPolicy {
 public:
  explicit RandomPolicy(Rng* rng) : rng_(rng) {}
  std::string name() const override { return "random"; }

  std::string Place(const PlacementRequest& request,
                    const AwarenessModel& awareness) override {
    std::vector<const AwarenessModel::NodeView*> eligible;
    for (const auto* view : awareness.Candidates(request.resource_class)) {
      if (awareness.EstimatedFreeCpus(*view) >= 1.0) eligible.push_back(view);
    }
    if (eligible.empty()) return "";
    return eligible[rng_->NextUint64(eligible.size())]->config.name;
  }

 private:
  Rng* rng_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> MakeLeastLoadedPolicy() {
  return std::make_unique<LeastLoadedPolicy>();
}
std::unique_ptr<SchedulingPolicy> MakeRoundRobinPolicy() {
  return std::make_unique<RoundRobinPolicy>();
}
std::unique_ptr<SchedulingPolicy> MakeSpeedWeightedPolicy() {
  return std::make_unique<SpeedWeightedPolicy>();
}
std::unique_ptr<SchedulingPolicy> MakeRandomPolicy(Rng* rng) {
  return std::make_unique<RandomPolicy>(rng);
}

Result<std::unique_ptr<SchedulingPolicy>> MakePolicy(std::string_view name,
                                                     Rng* rng) {
  if (name == "least_loaded") return MakeLeastLoadedPolicy();
  if (name == "round_robin") return MakeRoundRobinPolicy();
  if (name == "speed_weighted") return MakeSpeedWeightedPolicy();
  if (name == "random") {
    if (rng == nullptr) {
      return Status::InvalidArgument("random policy needs an rng");
    }
    return MakeRandomPolicy(rng);
  }
  return Status::InvalidArgument("unknown policy: " + std::string(name));
}

}  // namespace biopera::sched
