#ifndef BIOPERA_STORE_SNAPSHOT_H_
#define BIOPERA_STORE_SNAPSHOT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "store/fs.h"

namespace biopera {

/// Atomically and durably replaces the snapshot file at `path` with
/// `payload`: the payload is written (with magic, version, and CRC
/// framing) to `path + ".tmp"`, fsynced, renamed over `path`, and the
/// containing directory is fsynced — so a crash at any instant leaves
/// either the old or the new snapshot on disk, never a torn one and never
/// a rename that evaporates with the page cache.
Status WriteSnapshot(const std::string& path, std::string_view payload,
                     Fs* fs = nullptr);

/// Reads and verifies a snapshot. NotFound if the file does not exist,
/// Corruption if the framing or checksum is bad.
Result<std::string> ReadSnapshot(const std::string& path, Fs* fs = nullptr);

}  // namespace biopera

#endif  // BIOPERA_STORE_SNAPSHOT_H_
