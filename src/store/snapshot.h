#ifndef BIOPERA_STORE_SNAPSHOT_H_
#define BIOPERA_STORE_SNAPSHOT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"

namespace biopera {

/// Atomically replaces the snapshot file at `path` with `payload`:
/// the payload is written (with magic, version, and CRC framing) to
/// `path + ".tmp"` and then renamed over `path`, so a crash leaves either
/// the old or the new snapshot, never a torn one.
Status WriteSnapshot(const std::string& path, std::string_view payload);

/// Reads and verifies a snapshot. NotFound if the file does not exist,
/// Corruption if the framing or checksum is bad.
Result<std::string> ReadSnapshot(const std::string& path);

}  // namespace biopera

#endif  // BIOPERA_STORE_SNAPSHOT_H_
