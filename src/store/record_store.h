#ifndef BIOPERA_STORE_RECORD_STORE_H_
#define BIOPERA_STORE_RECORD_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "store/fs.h"
#include "store/wal.h"

namespace biopera::obs {
class WallProfile;
}  // namespace biopera::obs

namespace biopera {

/// A batch of mutations applied atomically: either every operation in the
/// batch is visible after a crash, or none is.
class WriteBatch {
 public:
  void Put(std::string_view table, std::string_view key,
           std::string_view value);
  void Delete(std::string_view table, std::string_view key);

  size_t num_ops() const { return num_ops_; }
  bool empty() const { return num_ops_ == 0; }
  void Clear();

  /// Wire form appended to the WAL. Concatenating payloads yields another
  /// valid payload — which is what lets a commit group of many batches
  /// travel as a single WAL record.
  const std::string& payload() const { return payload_; }

  /// Parses a wire-form batch (as read back from the WAL).
  static Result<WriteBatch> FromPayload(std::string_view payload);

  struct Op {
    bool is_put;
    std::string table;
    std::string key;
    std::string value;
  };
  /// Decodes the operations (used for replay and inspection).
  Result<std::vector<Op>> Ops() const;

 private:
  std::string payload_;
  size_t num_ops_ = 0;
};

/// Durable, transactional record store: string keys/values organized into
/// named tables, persisted via write-ahead logging with snapshot
/// checkpoints. This is the substrate under BioOpera's template, instance,
/// configuration, and history spaces: every navigator state transition is
/// committed here before it takes effect, which is what makes month-long
/// processes recoverable (paper §3.2).
///
/// Commit pipeline (docs/STORE.md):
///  - Outside a CommitScope, every Apply() is one WAL append + flush.
///  - Inside a CommitScope, Apply() updates the image immediately
///    (read-your-writes) but coalesces the payloads; the whole group is
///    written as one WAL record at the next flush barrier — Flush(),
///    Checkpoint(), or the outermost scope's end. A group is one record,
///    so it remains crash-atomic.
///  - Checkpoints are incremental: only tables dirtied since the last
///    checkpoint are serialized into a delta segment listed in a
///    manifest; a periodic compaction rewrites everything into one
///    segment. Legacy single-snapshot directories still open.
///
/// All disk I/O flows through an `Fs` (store/fs.h): production uses the
/// real disk, tests interpose a FaultFs to inject torn writes, ENOSPC,
/// and failed renames at named fault points.
class RecordStore {
 public:
  /// Checkpoint cadence, enforced by the store itself after each commit
  /// or commit group (so non-engine commits cannot skew it).
  struct CheckpointPolicy {
    /// Checkpoint once the live WAL (flushed + pending) exceeds this many
    /// bytes. 0 disables the size trigger.
    uint64_t wal_bytes = 4ull << 20;
    /// Legacy cadence: checkpoint after this many commits since the last
    /// checkpoint. 0 disables.
    uint64_t every_commits = 0;
    /// Rewrite all tables into one full segment once the manifest holds
    /// this many segments.
    size_t compact_after_segments = 8;
  };

  /// RAII commit group. Scopes nest; the WAL flush happens when the
  /// outermost scope ends (flush failures are logged and reported to the
  /// flush-failure handler — the image already holds the group, and the
  /// next barrier retries the append). A null store makes the scope a
  /// no-op, so call sites can make grouping conditional.
  class CommitScope {
   public:
    explicit CommitScope(RecordStore* store);
    ~CommitScope();
    CommitScope(const CommitScope&) = delete;
    CommitScope& operator=(const CommitScope&) = delete;

   private:
    RecordStore* store_;
  };

  /// What a Scrub() pass found (and did).
  struct ScrubReport {
    size_t segments_checked = 0;
    /// Corrupt delta segments renamed aside to `<name>.quarantined`.
    std::vector<std::string> quarantined;
    uint64_t wal_records = 0;
    bool wal_torn_tail = false;
    /// True when damage was found and the durable state was rewritten
    /// from the in-memory image (full compaction).
    bool rebuilt = false;
    std::string ToText() const;
  };

  /// Opens (or creates) a store rooted at directory `dir`: loads the
  /// snapshot chain (manifest segments, or the legacy single snapshot),
  /// then replays the WAL. A torn WAL tail from a crash is silently
  /// discarded. `fs` defaults to the real disk and must outlive the
  /// store.
  static Result<std::unique_ptr<RecordStore>> Open(const std::string& dir,
                                                   Fs* fs = nullptr);

  ~RecordStore();
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Atomically applies `batch`: appends to the WAL (or the pending
  /// commit group), then updates the in-memory image. `epoch` carries the
  /// writer's fencing token: 0 means unfenced (direct store users), a
  /// nonzero epoch must match the store's current writer epoch or the
  /// commit is rejected with FailedPrecondition (see AcquireWriterEpoch).
  Status Apply(const WriteBatch& batch, uint64_t epoch = 0);

  /// Convenience single-record writes.
  Status Put(std::string_view table, std::string_view key,
             std::string_view value, uint64_t epoch = 0);
  Status Delete(std::string_view table, std::string_view key,
                uint64_t epoch = 0);

  Result<std::string> Get(std::string_view table, std::string_view key) const;
  bool Contains(std::string_view table, std::string_view key) const;

  /// All (key, value) pairs in `table` whose key starts with `prefix`,
  /// in key order.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view table, std::string_view prefix = "") const;

  size_t TableSize(std::string_view table) const;

  /// Flush barrier: forces the pending commit group (if any) to the WAL
  /// as one record. Must be (and is) called before any externally visible
  /// action — job dispatch, console reply, checkpoint.
  Status Flush();

  /// Writes the tables dirtied since the last checkpoint into a delta
  /// segment (or compacts everything into a full segment), updates the
  /// manifest, and truncates the WAL. A no-op when nothing changed.
  Status Checkpoint();

  /// Store self-check: verifies every manifest segment and the WAL
  /// against their checksums. Corrupt segments are quarantined (renamed
  /// to `<name>.quarantined`), the valid WAL prefix is salvaged, and —
  /// because the in-memory image still holds the full state — the store
  /// is rebuilt on disk with a forced full compaction, so a live store
  /// loses nothing. Flushes the pending group first.
  Result<ScrubReport> Scrub();

  /// Claims write ownership: bumps the persistent writer epoch and
  /// returns the new value. Commits presenting any older nonzero epoch
  /// are rejected from now on — this is what fences a partitioned-but-
  /// alive primary after a backup server takes over.
  uint64_t AcquireWriterEpoch();
  uint64_t fence_epoch() const { return fence_epoch_; }

  /// True iff `st` is the store's stale-writer-epoch rejection.
  static bool IsFenced(const Status& st);

  void SetCheckpointPolicy(const CheckpointPolicy& policy) {
    policy_ = policy;
  }
  const CheckpointPolicy& checkpoint_policy() const { return policy_; }

  /// Size of the live WAL in bytes, including the not-yet-flushed commit
  /// group (0 right after a checkpoint).
  uint64_t WalBytes() const;
  uint64_t CommitCount() const { return commits_; }

  /// Test/failure-injection hook: when set, Apply fails with IOError
  /// without writing, emulating a full or failed disk under the server.
  /// Prefer FaultFs::SetDiskFull, which exercises the real I/O path; this
  /// remains as a thin shim for direct store tests.
  void SetFailWrites(bool fail) { fail_writes_ = fail; }

  /// Called when a commit-group flush (or the auto-checkpoint after it)
  /// fails at a scope boundary, where no caller sees the Status. The
  /// engine hooks this to enter degraded mode. `owner` disambiguates
  /// engines sharing one store (backup takeover): the latest setter wins,
  /// and Clear is a no-op for a stale owner.
  using FlushFailureHandler = std::function<void(const Status&)>;
  void SetFlushFailureHandler(void* owner, FlushFailureHandler handler);
  void ClearFlushFailureHandler(void* owner);

  /// Attaches an observability context: commits, ops, WAL bytes and
  /// flushes feed counters, checkpoints feed a size histogram and a trace
  /// event. nullptr detaches.
  void SetObservability(obs::Observability* obs);

  /// Attaches a wall-clock self-time profile (obs::WallProfile): WAL
  /// appends, group-commit flushes and checkpoints are scoped as `store`
  /// time for the sharded service's barrier-stall profiler. Null-check-
  /// only when unset; never feeds virtual time. nullptr detaches.
  void SetWallProfile(obs::WallProfile* profile) { wall_profile_ = profile; }

  const std::string& dir() const { return dir_; }
  Fs* fs() const { return fs_; }

 private:
  /// Transparent hashing so lookups take a string_view without building a
  /// temporary std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  /// The in-memory image of one table is a hash map: the commit path pays
  /// O(1) per record instead of a pointer-chasing tree walk. Ordered views
  /// (Scan, checkpoint serialization) sort on demand — they are off the
  /// hot path, and sorting keeps their output deterministic.
  using Table = std::unordered_map<std::string, std::string, StringHash,
                                   std::equal_to<>>;

  RecordStore(std::string dir, Fs* fs) : dir_(std::move(dir)), fs_(fs) {}

  /// Single-pass decode-and-apply of a batch payload (no Op
  /// materialization); marks touched tables dirty.
  Status ApplyPayloadToImage(std::string_view payload);
  Status MaybeAutoCheckpoint();
  /// Checkpoint body; `force_full` skips the nothing-changed early-out
  /// and compacts everything (used by Scrub to re-materialize state).
  Status CheckpointImpl(bool force_full);
  /// Reopens the WAL writer if a failed checkpoint left it closed.
  Status EnsureWal();
  /// Serializes either the dirty tables or all of them (compaction).
  std::string SerializeTables(bool dirty_only, size_t* table_count) const;
  /// Merges one snapshot segment: each table in the payload replaces the
  /// in-memory table of the same name wholesale.
  Status LoadImageSegment(std::string_view payload);
  Status LoadManifest(std::string_view payload);
  Status WriteManifest();
  std::string WalPath() const;
  std::string SnapshotPath() const;
  std::string ManifestPath() const;

  std::string dir_;
  Fs* fs_;
  std::map<std::string, Table, std::less<>> tables_;  // node-stable
  // Cross-call cache of the last table ApplyPayloadToImage resolved.
  // Non-null only while that table is in dirty_tables_. Pointer stability
  // comes from tables_ being node-based.
  Table* cached_table_ = nullptr;
  std::string cached_table_name_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t commits_ = 0;
  bool fail_writes_ = false;
  uint64_t fence_epoch_ = 0;

  // Incremental-checkpoint state.
  CheckpointPolicy policy_;
  std::set<std::string, std::less<>> dirty_tables_;
  std::vector<std::string> manifest_;  // segment files, in apply order
  uint64_t next_segment_seq_ = 1;
  uint64_t last_checkpoint_commits_ = 0;

  // Group-commit state.
  int scope_depth_ = 0;
  std::string pending_;  // concatenated payloads of the open group
  uint64_t pending_commits_ = 0;
  uint64_t live_wal_bytes_ = 0;  // flushed bytes in the current WAL file

  void* flush_failure_owner_ = nullptr;
  FlushFailureHandler flush_failure_handler_;

  // Resolved metric handles (null without an Observability context).
  obs::Observability* obs_ = nullptr;
  obs::WallProfile* wall_profile_ = nullptr;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* ops_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* flushes_metric_ = nullptr;
  obs::Counter* coalesced_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Counter* compactions_metric_ = nullptr;
  obs::Counter* remove_failures_metric_ = nullptr;
  obs::Counter* scrub_runs_metric_ = nullptr;
  obs::Counter* scrub_quarantined_metric_ = nullptr;
  obs::Histogram* checkpoint_bytes_metric_ = nullptr;
};

}  // namespace biopera

#endif  // BIOPERA_STORE_RECORD_STORE_H_
