#ifndef BIOPERA_STORE_RECORD_STORE_H_
#define BIOPERA_STORE_RECORD_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/trace.h"
#include "store/wal.h"

namespace biopera {

/// A batch of mutations applied atomically: either every operation in the
/// batch is visible after a crash, or none is.
class WriteBatch {
 public:
  void Put(std::string_view table, std::string_view key,
           std::string_view value);
  void Delete(std::string_view table, std::string_view key);

  size_t num_ops() const { return num_ops_; }
  bool empty() const { return num_ops_ == 0; }
  void Clear();

  /// Wire form appended to the WAL.
  const std::string& payload() const { return payload_; }

  /// Parses a wire-form batch (as read back from the WAL).
  static Result<WriteBatch> FromPayload(std::string_view payload);

  struct Op {
    bool is_put;
    std::string table;
    std::string key;
    std::string value;
  };
  /// Decodes the operations (used for replay and inspection).
  Result<std::vector<Op>> Ops() const;

 private:
  std::string payload_;
  size_t num_ops_ = 0;
};

/// Durable, transactional record store: string keys/values organized into
/// named tables, persisted via write-ahead logging with snapshot
/// checkpoints. This is the substrate under BioOpera's template, instance,
/// configuration, and history spaces: every navigator state transition is
/// committed here before it takes effect, which is what makes month-long
/// processes recoverable (paper §3.2).
class RecordStore {
 public:
  /// Opens (or creates) a store rooted at directory `dir`: loads the most
  /// recent snapshot, then replays the WAL. A torn WAL tail from a crash is
  /// silently discarded.
  static Result<std::unique_ptr<RecordStore>> Open(const std::string& dir);

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  /// Atomically applies `batch`: appends to the WAL, then updates the
  /// in-memory image.
  Status Apply(const WriteBatch& batch);

  /// Convenience single-record writes.
  Status Put(std::string_view table, std::string_view key,
             std::string_view value);
  Status Delete(std::string_view table, std::string_view key);

  Result<std::string> Get(std::string_view table, std::string_view key) const;
  bool Contains(std::string_view table, std::string_view key) const;

  /// All (key, value) pairs in `table` whose key starts with `prefix`,
  /// in key order.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view table, std::string_view prefix = "") const;

  size_t TableSize(std::string_view table) const;

  /// Writes a snapshot of the current image and truncates the WAL.
  Status Checkpoint();

  /// Size of the live WAL in bytes (0 right after a checkpoint).
  uint64_t WalBytes() const;
  uint64_t CommitCount() const { return commits_; }

  /// Test/failure-injection hook: when set, Apply fails with IOError
  /// without writing, emulating a full or failed disk under the server.
  void SetFailWrites(bool fail) { fail_writes_ = fail; }

  /// Attaches an observability context: commits, ops and WAL bytes feed
  /// counters, checkpoints feed a size histogram and a trace event.
  /// nullptr detaches.
  void SetObservability(obs::Observability* obs);

  const std::string& dir() const { return dir_; }

 private:
  explicit RecordStore(std::string dir) : dir_(std::move(dir)) {}

  Status ApplyToImage(const WriteBatch& batch);
  std::string SerializeImage() const;
  Status LoadImage(std::string_view payload);
  std::string WalPath() const;
  std::string SnapshotPath() const;

  std::string dir_;
  std::map<std::string, std::map<std::string, std::string>> tables_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t commits_ = 0;
  bool fail_writes_ = false;

  // Resolved metric handles (null without an Observability context).
  obs::Observability* obs_ = nullptr;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* ops_metric_ = nullptr;
  obs::Counter* wal_bytes_metric_ = nullptr;
  obs::Counter* checkpoints_metric_ = nullptr;
  obs::Histogram* checkpoint_bytes_metric_ = nullptr;
};

}  // namespace biopera

#endif  // BIOPERA_STORE_RECORD_STORE_H_
