#include "store/spaces.h"

#include "common/strings.h"

namespace biopera {

namespace {
constexpr char kTemplateTable[] = "template";
constexpr char kInstanceTable[] = "instance";
constexpr char kConfigTable[] = "config";
constexpr char kHistoryTable[] = "history";
constexpr char kProvenanceTable[] = "provenance";

std::string InstanceKey(std::string_view instance_id, std::string_view key) {
  std::string out(instance_id);
  out.push_back('/');
  out.append(key);
  return out;
}
}  // namespace

Status Spaces::PutTemplate(std::string_view name, std::string_view ocr_text) {
  return store_->Put(kTemplateTable, name, ocr_text, epoch_);
}

Result<std::string> Spaces::GetTemplate(std::string_view name) const {
  return store_->Get(kTemplateTable, name);
}

std::vector<std::string> Spaces::ListTemplates() const {
  std::vector<std::string> out;
  for (auto& [k, v] : store_->Scan(kTemplateTable)) out.push_back(k);
  return out;
}

Status Spaces::PutInstanceRecord(std::string_view instance_id,
                                 std::string_view key,
                                 std::string_view value) {
  return store_->Put(kInstanceTable, InstanceKey(instance_id, key), value,
                     epoch_);
}

void Spaces::BatchPutInstanceRecord(WriteBatch* batch,
                                    std::string_view instance_id,
                                    std::string_view key,
                                    std::string_view value) {
  batch->Put(kInstanceTable, InstanceKey(instance_id, key), value);
}

void Spaces::BatchDeleteInstanceRecord(WriteBatch* batch,
                                       std::string_view instance_id,
                                       std::string_view key) {
  batch->Delete(kInstanceTable, InstanceKey(instance_id, key));
}

Result<std::string> Spaces::GetInstanceRecord(std::string_view instance_id,
                                              std::string_view key) const {
  return store_->Get(kInstanceTable, InstanceKey(instance_id, key));
}

std::vector<std::pair<std::string, std::string>> Spaces::ScanInstance(
    std::string_view instance_id) const {
  std::string prefix(instance_id);
  prefix.push_back('/');
  auto rows = store_->Scan(kInstanceTable, prefix);
  // Strip the "<id>/" prefix from keys for the caller.
  for (auto& [k, v] : rows) k = k.substr(prefix.size());
  return rows;
}

std::vector<std::string> Spaces::ListInstances() const {
  std::vector<std::string> out;
  for (auto& [k, v] : store_->Scan(kInstanceTable)) {
    size_t slash = k.find('/');
    std::string id = k.substr(0, slash);
    if (out.empty() || out.back() != id) out.push_back(id);
  }
  return out;
}

Status Spaces::DeleteInstance(std::string_view instance_id) {
  std::string prefix(instance_id);
  prefix.push_back('/');
  WriteBatch batch;
  for (auto& [k, v] : store_->Scan(kInstanceTable, prefix)) {
    batch.Delete(kInstanceTable, k);
  }
  // Lineage is instance-scoped: archiving the instance retires its
  // provenance rows too (history stays, as before).
  for (auto& [k, v] : store_->Scan(kProvenanceTable, prefix)) {
    batch.Delete(kProvenanceTable, k);
  }
  return store_->Apply(batch, epoch_);
}

void Spaces::BatchPutProvenance(WriteBatch* batch,
                                std::string_view instance_id,
                                std::string_view key, std::string_view value) {
  batch->Put(kProvenanceTable, InstanceKey(instance_id, key), value);
}

Result<std::string> Spaces::GetProvenance(std::string_view instance_id,
                                          std::string_view key) const {
  return store_->Get(kProvenanceTable, InstanceKey(instance_id, key));
}

std::vector<std::pair<std::string, std::string>> Spaces::ScanProvenance(
    std::string_view instance_id) const {
  std::string prefix(instance_id);
  prefix.push_back('/');
  auto rows = store_->Scan(kProvenanceTable, prefix);
  for (auto& [k, v] : rows) k = k.substr(prefix.size());
  return rows;
}

Status Spaces::PutConfig(std::string_view key, std::string_view value) {
  return store_->Put(kConfigTable, key, value, epoch_);
}

Result<std::string> Spaces::GetConfig(std::string_view key) const {
  return store_->Get(kConfigTable, key);
}

std::vector<std::pair<std::string, std::string>> Spaces::ScanConfig() const {
  return store_->Scan(kConfigTable);
}

Status Spaces::AppendHistory(std::string_view instance_id,
                             std::string_view event) {
  if (!history_seq_loaded_) {
    // Resume the sequence after the existing records (recovery path).
    auto rows = store_->Scan(kHistoryTable);
    next_history_seq_ = rows.size();
    history_seq_loaded_ = true;
  }
  std::string key =
      StrFormat("%016llu", static_cast<unsigned long long>(next_history_seq_));
  ++next_history_seq_;
  std::string value(instance_id);
  value.push_back('\t');
  value.append(event);
  return store_->Put(kHistoryTable, key, value, epoch_);
}

std::vector<std::string> Spaces::History(std::string_view instance_id) const {
  std::vector<std::string> out;
  for (auto& [k, v] : store_->Scan(kHistoryTable)) {
    size_t tab = v.find('\t');
    if (tab == std::string::npos) continue;
    if (std::string_view(v).substr(0, tab) == instance_id) {
      out.push_back(v.substr(tab + 1));
    }
  }
  return out;
}

}  // namespace biopera
