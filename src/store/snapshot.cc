#include "store/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"
#include "store/codec.h"

namespace biopera {

namespace {
constexpr uint32_t kSnapshotMagic = 0x42694f70;  // "BiOp"
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

Status WriteSnapshot(const std::string& path, std::string_view payload) {
  std::string framed;
  PutFixed32(&framed, kSnapshotMagic);
  PutFixed32(&framed, kSnapshotVersion);
  PutFixed32(&framed, Crc32c(payload));
  PutFixed64(&framed, payload.size());
  framed.append(payload);

  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("open %s: %s", tmp.c_str(), std::strerror(errno)));
  }
  bool ok = std::fwrite(framed.data(), 1, framed.size(), f) == framed.size();
  ok = (std::fflush(f) == 0) && ok;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("snapshot write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(
        StrFormat("rename %s: %s", path.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> ReadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no snapshot: " + path);
    return Status::IOError(
        StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  std::string_view v = data;
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t len = 0;
  if (!GetFixed32(&v, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot bad magic: " + path);
  }
  if (!GetFixed32(&v, &version) || version != kSnapshotVersion) {
    return Status::Corruption("snapshot bad version: " + path);
  }
  if (!GetFixed32(&v, &crc) || !GetFixed64(&v, &len) || v.size() != len) {
    return Status::Corruption("snapshot truncated: " + path);
  }
  if (Crc32c(v) != crc) {
    return Status::Corruption("snapshot checksum mismatch: " + path);
  }
  return std::string(v);
}

}  // namespace biopera
