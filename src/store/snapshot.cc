#include "store/snapshot.h"

#include <memory>

#include "common/crc32.h"
#include "store/codec.h"

namespace biopera {

namespace {
constexpr uint32_t kSnapshotMagic = 0x42694f70;  // "BiOp"
constexpr uint32_t kSnapshotVersion = 1;
}  // namespace

Status WriteSnapshot(const std::string& path, std::string_view payload,
                     Fs* fs) {
  if (fs == nullptr) fs = Fs::Default();
  std::string framed;
  PutFixed32(&framed, kSnapshotMagic);
  PutFixed32(&framed, kSnapshotVersion);
  PutFixed32(&framed, Crc32c(payload));
  PutFixed64(&framed, payload.size());
  framed.append(payload);

  std::string tmp = path + ".tmp";
  Status st = [&]() -> Status {
    BIOPERA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                             fs->OpenForWrite(tmp));
    BIOPERA_RETURN_IF_ERROR(f->Append(framed));
    BIOPERA_RETURN_IF_ERROR(f->Sync());
    return f->Close();
  }();
  if (!st.ok()) {
    (void)fs->Remove(tmp);  // best effort; an orphan .tmp is harmless
    return st;
  }
  BIOPERA_RETURN_IF_ERROR(fs->Rename(tmp, path));
  return fs->SyncDir(ParentDir(path));
}

Result<std::string> ReadSnapshot(const std::string& path, Fs* fs) {
  if (fs == nullptr) fs = Fs::Default();
  Result<std::string> read = fs->ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().IsNotFound()) {
      return Status::NotFound("no snapshot: " + path);
    }
    return read.status();
  }
  std::string_view v = *read;
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t len = 0;
  if (!GetFixed32(&v, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot bad magic: " + path);
  }
  if (!GetFixed32(&v, &version) || version != kSnapshotVersion) {
    return Status::Corruption("snapshot bad version: " + path);
  }
  if (!GetFixed32(&v, &crc) || !GetFixed64(&v, &len) || v.size() != len) {
    return Status::Corruption("snapshot truncated: " + path);
  }
  if (Crc32c(v) != crc) {
    return Status::Corruption("snapshot checksum mismatch: " + path);
  }
  return std::string(v);
}

}  // namespace biopera
