#ifndef BIOPERA_STORE_WAL_H_
#define BIOPERA_STORE_WAL_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/fs.h"

namespace biopera {

/// Append-only write-ahead log.
///
/// On-disk format: a sequence of records
///   [crc32c(payload) : 4 bytes][payload length : 4 bytes][payload]
/// A torn or corrupt tail (from a crash mid-append) is detected by the
/// reader and treated as the end of the log, never as an error: the
/// recovery contract is "everything before the first bad record is valid".
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if missing. `fs` defaults to
  /// the real disk.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 Fs* fs = nullptr);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record and flushes it to the OS.
  Status Append(std::string_view payload);

  /// Forces everything appended so far onto stable storage.
  Status Sync();

  /// Bytes written since open (including headers).
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t records_written() const { return records_written_; }

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> f) : file_(std::move(f)) {}
  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_written_ = 0;
  uint64_t records_written_ = 0;
};

/// Reads all valid records from a WAL file. A missing file yields an empty
/// record list (a fresh store). Stops silently at the first torn/corrupt
/// record; `truncated_tail` reports whether that happened.
struct WalReadResult {
  std::vector<std::string> records;
  bool truncated_tail = false;
};
Result<WalReadResult> ReadWal(const std::string& path, Fs* fs = nullptr);

/// Streaming variant of ReadWal for the recovery hot path: the file is
/// read into one reusable buffer and each valid record is handed to `fn`
/// as a view into it — no per-record allocation. `fn` returning an error
/// aborts the read with that error. `truncated_tail` (optional) reports
/// whether a torn/corrupt tail was discarded.
Status ReadWalInto(const std::string& path,
                   const std::function<Status(std::string_view)>& fn,
                   bool* truncated_tail = nullptr, Fs* fs = nullptr);

}  // namespace biopera

#endif  // BIOPERA_STORE_WAL_H_
