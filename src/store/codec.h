#ifndef BIOPERA_STORE_CODEC_H_
#define BIOPERA_STORE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace biopera {

/// Little-endian fixed-width and varint primitives used by the WAL, the
/// snapshot format, and record serialization.

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Appends varint length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Each Get* consumes from the front of `*input`; returns false on
/// malformed or truncated input (leaving *input unspecified).
bool GetFixed32(std::string_view* input, uint32_t* v);
bool GetFixed64(std::string_view* input, uint64_t* v);
bool GetVarint64(std::string_view* input, uint64_t* v);
bool GetLengthPrefixed(std::string_view* input, std::string_view* s);

}  // namespace biopera

#endif  // BIOPERA_STORE_CODEC_H_
