#ifndef BIOPERA_STORE_CODEC_H_
#define BIOPERA_STORE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "ocr/value.h"

namespace biopera {

/// Little-endian fixed-width and varint primitives used by the WAL, the
/// snapshot format, and record serialization.

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Appends varint length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Each Get* consumes from the front of `*input`; returns false on
/// malformed or truncated input (leaving *input unspecified).
bool GetFixed32(std::string_view* input, uint32_t* v);
bool GetFixed64(std::string_view* input, uint64_t* v);
bool GetVarint64(std::string_view* input, uint64_t* v);
bool GetLengthPrefixed(std::string_view* input, std::string_view* s);

// ---------------------------------------------------------------------------
// Binary ocr::Value codec
// ---------------------------------------------------------------------------
//
// Tag-prefixed, length-delimited wire form (see docs/STORE.md):
//   0 null | 1 false | 2 true | 3 int (zigzag varint)
//   4 double (IEEE-754 bits, fixed64) | 5 string (lenprefix)
//   6 list (varint count, then elements) | 7 map (varint count, then
//     lenprefix key + element pairs)
// Unlike the text form, doubles round-trip bit-exactly.

/// Appends the binary encoding of `v` to `*dst`.
void EncodeValue(const ocr::Value& v, std::string* dst);

/// Decodes one value from the front of `*input`. Returns false on
/// malformed, truncated, or too deeply nested input — never crashes on
/// hostile bytes (nesting is capped at kMaxValueDepth).
bool DecodeValue(std::string_view* input, ocr::Value* out);

inline constexpr int kMaxValueDepth = 64;

/// Engine persistence records are marker-framed so binary and legacy text
/// records coexist in one store: a record starting with kBinaryValueMarker
/// holds a binary value; anything else is parsed as Value::FromText (whose
/// grammar can never start with a 0x01 byte).
inline constexpr char kBinaryValueMarker = '\x01';

/// Marker byte + binary encoding.
std::string EncodeValueRecord(const ocr::Value& v);

/// Inverse of EncodeValueRecord with the versioned text fallback.
Result<ocr::Value> DecodeValueRecord(std::string_view record);

}  // namespace biopera

#endif  // BIOPERA_STORE_CODEC_H_
