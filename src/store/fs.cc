#include "store/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/strings.h"

namespace biopera {

namespace {

class RealFile : public WritableFile {
 public:
  explicit RealFile(std::FILE* f) : file_(f) {}
  ~RealFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
      return Status::IOError("file append: short write");
    }
    return Status::OK();
  }

  Status Flush() override {
    if (std::fflush(file_) != 0) {
      return Status::IOError(
          StrFormat("file flush: %s", std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Sync() override {
    BIOPERA_RETURN_IF_ERROR(Flush());
    if (::fsync(::fileno(file_)) != 0) {
      return Status::IOError(StrFormat("fsync: %s", std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IOError(
          StrFormat("file close: %s", std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
};

class RealFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override {
    return OpenMode(path, "ab");
  }

  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override {
    return OpenMode(path, "wb");
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IOError(
          StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
    }
    std::string data;
    char chunk[1 << 16];
    size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      data.append(chunk, got);
    }
    bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
      return Status::IOError(StrFormat("read %s failed", path.c_str()));
    }
    return data;
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(StrFormat("rename %s -> %s: %s", from.c_str(),
                                       to.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return Status::IOError(
          StrFormat("remove %s: %s", path.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return Status::IOError(
          StrFormat("mkdir %s: %s", dir.c_str(), ec.message().c_str()));
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::IOError(
          StrFormat("open dir %s: %s", dir.c_str(), std::strerror(errno)));
    }
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::IOError(
          StrFormat("fsync dir %s: %s", dir.c_str(), std::strerror(errno)));
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::IOError(
          StrFormat("stat %s: %s", path.c_str(), ec.message().c_str()));
    }
    return size;
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

 private:
  static Result<std::unique_ptr<WritableFile>> OpenMode(
      const std::string& path, const char* mode) {
    std::FILE* f = std::fopen(path.c_str(), mode);
    if (f == nullptr) {
      return Status::IOError(
          StrFormat("open %s: %s", path.c_str(), std::strerror(errno)));
    }
    return std::unique_ptr<WritableFile>(new RealFile(f));
  }
};

std::string_view BaseName(std::string_view path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

std::string ClassifyPath(const std::string& path) {
  std::string_view name = BaseName(path);
  if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
    name.remove_suffix(4);
  }
  if (name.substr(0, 3) == "wal") return "wal";
  if (name == "MANIFEST") return "manifest";
  if (name.substr(0, 4) == "seg_" || name == "snapshot.dat") return "seg";
  return "file";
}

}  // namespace

Fs* Fs::Default() {
  static RealFs* real = new RealFs();
  return real;
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Wraps a base WritableFile: appends stay in an in-memory buffer until
/// Flush/Sync/Close so an injected crash drops exactly the bytes a real
/// one would. Each op consults the owning FaultFs first.
class FaultFile : public WritableFile {
 public:
  FaultFile(FaultFs* fs, std::string cls, std::unique_ptr<WritableFile> base)
      : fs_(fs), cls_(std::move(cls)), base_(std::move(base)) {}

  ~FaultFile() override {
    // A dead disk never gets the buffered bytes; otherwise behave like a
    // normal close (best effort).
    if (!fs_->dead() && !buf_.empty()) {
      (void)base_->Append(buf_);
    }
    (void)base_->Close();
  }

  Status Append(std::string_view data) override {
    FaultFs::Action act = fs_->Account(cls_ + ".append", data.size());
    if (act.kind == FaultFs::Action::kTorn) {
      buf_.append(data.substr(0, act.keep_bytes));
      (void)PushThrough();
      return act.error;
    }
    if (act.kind == FaultFs::Action::kFail) return act.error;
    buf_.append(data);
    return Status::OK();
  }

  Status Flush() override {
    FaultFs::Action act = fs_->Account(cls_ + ".flush", buf_.size());
    if (act.kind == FaultFs::Action::kTorn) {
      buf_.resize(act.keep_bytes);
      (void)PushThrough();
      return act.error;
    }
    if (act.kind == FaultFs::Action::kFail) return act.error;
    return PushThrough();
  }

  Status Sync() override {
    FaultFs::Action act = fs_->Account(cls_ + ".sync", buf_.size());
    if (act.kind == FaultFs::Action::kTorn) {
      buf_.resize(act.keep_bytes);
      (void)PushThrough();
      return act.error;
    }
    if (act.kind == FaultFs::Action::kFail) return act.error;
    BIOPERA_RETURN_IF_ERROR(PushThrough());
    return base_->Sync();
  }

  Status Close() override {
    if (fs_->dead()) {
      buf_.clear();
      (void)base_->Close();
      return Status::IOError("fault fs: disk dead");
    }
    BIOPERA_RETURN_IF_ERROR(PushThrough());
    return base_->Close();
  }

 private:
  Status PushThrough() {
    if (!buf_.empty()) {
      BIOPERA_RETURN_IF_ERROR(base_->Append(buf_));
      buf_.clear();
    }
    return base_->Flush();
  }

  FaultFs* fs_;
  std::string cls_;
  std::unique_ptr<WritableFile> base_;
  std::string buf_;
};

bool FaultFs::ConsumesSpace(const std::string& point) {
  size_t dot = point.find_last_of('.');
  std::string_view op = std::string_view(point).substr(dot + 1);
  return op == "open" || op == "create" || op == "append" || op == "flush" ||
         op == "sync";
}

FaultFs::Action FaultFs::Account(const std::string& point, size_t len) {
  uint64_t hit = ++hits_[point];
  Action act;
  if (dead_) {
    act.kind = Action::kFail;
    act.error = Status::IOError("fault fs: disk dead (" + point + ")");
    return act;
  }
  if (armed_.has_value() && armed_->point == point &&
      hit == armed_->at_hit) {
    Armed a = *armed_;
    armed_.reset();
    if (a.crash) {
      dead_ = true;
      pending_renames_.clear();  // un-synced dirents die with the machine
      act.error = Status::IOError("fault fs: crash at " + point);
      if (len > 0) {
        act.kind = Action::kTorn;
        act.keep_bytes = len / 2;
      } else {
        act.kind = Action::kFail;
      }
      return act;
    }
    act.kind = Action::kFail;
    act.error = Status::IOError("fault fs: injected error at " + point);
    return act;
  }
  if (disk_full_ && ConsumesSpace(point)) {
    act.kind = Action::kFail;
    act.error = Status::IOError("fault fs: no space left (" + point + ")");
    return act;
  }
  return act;
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenForAppend(
    const std::string& path) {
  std::string cls = ClassifyPath(path);
  Action act = Account(cls + ".open", 0);
  if (act.kind != Action::kProceed) return act.error;
  BIOPERA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->OpenForAppend(path));
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(cls), std::move(base)));
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenForWrite(
    const std::string& path) {
  std::string cls = ClassifyPath(path);
  Action act = Account(cls + ".create", 0);
  if (act.kind != Action::kProceed) return act.error;
  BIOPERA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->OpenForWrite(path));
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(cls), std::move(base)));
}

Result<std::string> FaultFs::ReadFileToString(const std::string& path) {
  return base_->ReadFileToString(path);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  Action act = Account(ClassifyPath(to) + ".rename", 0);
  if (act.kind != Action::kProceed) return act.error;
  if (delay_renames_) {
    pending_renames_.emplace_back(from, to);
    return Status::OK();
  }
  return base_->Rename(from, to);
}

Status FaultFs::Remove(const std::string& path) {
  Action act = Account(ClassifyPath(path) + ".remove", 0);
  if (act.kind != Action::kProceed) return act.error;
  return base_->Remove(path);
}

Status FaultFs::CreateDirs(const std::string& dir) {
  if (dead_) return Status::IOError("fault fs: disk dead (mkdir)");
  return base_->CreateDirs(dir);
}

Status FaultFs::SyncDir(const std::string& dir) {
  Action act = Account("dir.sync", 0);
  if (act.kind != Action::kProceed) return act.error;
  // The dirent updates become durable with the directory sync.
  for (size_t i = 0; i < pending_renames_.size();) {
    const auto& [from, to] = pending_renames_[i];
    if (ParentDir(to) == dir) {
      BIOPERA_RETURN_IF_ERROR(base_->Rename(from, to));
      pending_renames_.erase(pending_renames_.begin() +
                             static_cast<long>(i));
    } else {
      ++i;
    }
  }
  return base_->SyncDir(dir);
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultFs::Exists(const std::string& path) {
  return base_->Exists(path);
}

void FaultFs::ArmCrash(const std::string& point, uint64_t at_hit) {
  armed_ = Armed{point, at_hit == 0 ? 1 : at_hit, /*crash=*/true};
}

void FaultFs::ArmError(const std::string& point, uint64_t at_hit) {
  armed_ = Armed{point, at_hit == 0 ? 1 : at_hit, /*crash=*/false};
}

}  // namespace biopera
