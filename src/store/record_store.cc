#include "store/record_store.h"

#include <cstdio>
#include <filesystem>

#include "common/strings.h"
#include "store/codec.h"
#include "store/snapshot.h"

namespace biopera {

namespace {
constexpr char kOpPut = 1;
constexpr char kOpDelete = 2;
}  // namespace

void WriteBatch::Put(std::string_view table, std::string_view key,
                     std::string_view value) {
  payload_.push_back(kOpPut);
  PutLengthPrefixed(&payload_, table);
  PutLengthPrefixed(&payload_, key);
  PutLengthPrefixed(&payload_, value);
  ++num_ops_;
}

void WriteBatch::Delete(std::string_view table, std::string_view key) {
  payload_.push_back(kOpDelete);
  PutLengthPrefixed(&payload_, table);
  PutLengthPrefixed(&payload_, key);
  ++num_ops_;
}

void WriteBatch::Clear() {
  payload_.clear();
  num_ops_ = 0;
}

Result<WriteBatch> WriteBatch::FromPayload(std::string_view payload) {
  WriteBatch batch;
  batch.payload_.assign(payload);
  // Validate and count.
  BIOPERA_ASSIGN_OR_RETURN(std::vector<Op> ops, batch.Ops());
  batch.num_ops_ = ops.size();
  return batch;
}

Result<std::vector<WriteBatch::Op>> WriteBatch::Ops() const {
  std::vector<Op> ops;
  std::string_view v = payload_;
  while (!v.empty()) {
    char tag = v.front();
    v.remove_prefix(1);
    Op op;
    op.is_put = (tag == kOpPut);
    if (tag != kOpPut && tag != kOpDelete) {
      return Status::Corruption("write batch: bad op tag");
    }
    std::string_view table, key, value;
    if (!GetLengthPrefixed(&v, &table) || !GetLengthPrefixed(&v, &key)) {
      return Status::Corruption("write batch: truncated op");
    }
    if (op.is_put && !GetLengthPrefixed(&v, &value)) {
      return Status::Corruption("write batch: truncated value");
    }
    op.table.assign(table);
    op.key.assign(key);
    op.value.assign(value);
    ops.push_back(std::move(op));
  }
  return ops;
}

Result<std::unique_ptr<RecordStore>> RecordStore::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("create dir " + dir + ": " + ec.message());
  }
  auto store = std::unique_ptr<RecordStore>(new RecordStore(dir));

  // 1. Load the snapshot, if any.
  Result<std::string> snap = ReadSnapshot(store->SnapshotPath());
  if (snap.ok()) {
    BIOPERA_RETURN_IF_ERROR(store->LoadImage(*snap));
  } else if (!snap.status().IsNotFound()) {
    return snap.status();
  }

  // 2. Replay the WAL over the snapshot image.
  BIOPERA_ASSIGN_OR_RETURN(WalReadResult wal, ReadWal(store->WalPath()));
  for (const std::string& rec : wal.records) {
    BIOPERA_ASSIGN_OR_RETURN(WriteBatch batch, WriteBatch::FromPayload(rec));
    BIOPERA_RETURN_IF_ERROR(store->ApplyToImage(batch));
  }

  // 3. Open the WAL for appending.
  BIOPERA_ASSIGN_OR_RETURN(store->wal_, WalWriter::Open(store->WalPath()));
  return store;
}

Status RecordStore::Apply(const WriteBatch& batch) {
  if (fail_writes_) {
    return Status::IOError("record store: injected write failure");
  }
  if (batch.empty()) return Status::OK();
  BIOPERA_RETURN_IF_ERROR(wal_->Append(batch.payload()));
  BIOPERA_RETURN_IF_ERROR(ApplyToImage(batch));
  ++commits_;
  if (obs_ != nullptr) {
    commits_metric_->Increment();
    ops_metric_->Increment(batch.num_ops());
    wal_bytes_metric_->Increment(batch.payload().size());
  }
  return Status::OK();
}

void RecordStore::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    commits_metric_ = ops_metric_ = wal_bytes_metric_ = checkpoints_metric_ =
        nullptr;
    checkpoint_bytes_metric_ = nullptr;
    return;
  }
  commits_metric_ = obs_->metrics.GetCounter("store_commits_total");
  ops_metric_ = obs_->metrics.GetCounter("store_ops_total");
  wal_bytes_metric_ = obs_->metrics.GetCounter("store_wal_bytes_total");
  checkpoints_metric_ = obs_->metrics.GetCounter("store_checkpoints_total");
  // Snapshot sizes span bytes to hundreds of MB: 1 KiB x4 buckets.
  obs::HistogramOptions bytes_buckets;
  bytes_buckets.first_bound = 1024;
  checkpoint_bytes_metric_ = obs_->metrics.GetHistogram(
      "store_checkpoint_bytes", {}, bytes_buckets);
}

Status RecordStore::Put(std::string_view table, std::string_view key,
                        std::string_view value) {
  WriteBatch batch;
  batch.Put(table, key, value);
  return Apply(batch);
}

Status RecordStore::Delete(std::string_view table, std::string_view key) {
  WriteBatch batch;
  batch.Delete(table, key);
  return Apply(batch);
}

Status RecordStore::ApplyToImage(const WriteBatch& batch) {
  BIOPERA_ASSIGN_OR_RETURN(std::vector<WriteBatch::Op> ops, batch.Ops());
  for (auto& op : ops) {
    if (op.is_put) {
      tables_[op.table][op.key] = std::move(op.value);
    } else {
      auto it = tables_.find(op.table);
      if (it != tables_.end()) it->second.erase(op.key);
    }
  }
  return Status::OK();
}

Result<std::string> RecordStore::Get(std::string_view table,
                                     std::string_view key) const {
  auto t = tables_.find(std::string(table));
  if (t == tables_.end()) {
    return Status::NotFound(StrFormat("no table '%.*s'",
                                      static_cast<int>(table.size()),
                                      table.data()));
  }
  auto r = t->second.find(std::string(key));
  if (r == t->second.end()) {
    return Status::NotFound(StrFormat("no key '%.*s'",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  return r->second;
}

bool RecordStore::Contains(std::string_view table,
                           std::string_view key) const {
  auto t = tables_.find(std::string(table));
  return t != tables_.end() && t->second.contains(std::string(key));
}

std::vector<std::pair<std::string, std::string>> RecordStore::Scan(
    std::string_view table, std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto t = tables_.find(std::string(table));
  if (t == tables_.end()) return out;
  auto it = t->second.lower_bound(std::string(prefix));
  for (; it != t->second.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t RecordStore::TableSize(std::string_view table) const {
  auto t = tables_.find(std::string(table));
  return t == tables_.end() ? 0 : t->second.size();
}

std::string RecordStore::SerializeImage() const {
  std::string out;
  PutVarint64(&out, tables_.size());
  for (const auto& [name, records] : tables_) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, records.size());
    for (const auto& [key, value] : records) {
      PutLengthPrefixed(&out, key);
      PutLengthPrefixed(&out, value);
    }
  }
  return out;
}

Status RecordStore::LoadImage(std::string_view payload) {
  tables_.clear();
  std::string_view v = payload;
  uint64_t num_tables;
  if (!GetVarint64(&v, &num_tables)) {
    return Status::Corruption("image: bad table count");
  }
  for (uint64_t i = 0; i < num_tables; ++i) {
    std::string_view name;
    uint64_t n;
    if (!GetLengthPrefixed(&v, &name) || !GetVarint64(&v, &n)) {
      return Status::Corruption("image: bad table header");
    }
    auto& table = tables_[std::string(name)];
    for (uint64_t k = 0; k < n; ++k) {
      std::string_view key, value;
      if (!GetLengthPrefixed(&v, &key) || !GetLengthPrefixed(&v, &value)) {
        return Status::Corruption("image: bad record");
      }
      table.emplace(std::string(key), std::string(value));
    }
  }
  if (!v.empty()) return Status::Corruption("image: trailing bytes");
  return Status::OK();
}

Status RecordStore::Checkpoint() {
  if (fail_writes_) {
    return Status::IOError("record store: injected write failure");
  }
  uint64_t wal_trimmed = WalBytes();
  std::string image = SerializeImage();
  BIOPERA_RETURN_IF_ERROR(WriteSnapshot(SnapshotPath(), image));
  // Truncate the WAL: close, remove, reopen empty. Safe because the
  // snapshot now covers everything the WAL contained.
  wal_.reset();
  std::remove(WalPath().c_str());
  BIOPERA_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath()));
  if (obs_ != nullptr) {
    checkpoints_metric_->Increment();
    checkpoint_bytes_metric_->Observe(static_cast<double>(image.size()));
    obs_->trace.Emit(
        obs::EventType::kCheckpointTaken, "", "", "",
        {{"bytes", StrFormat("%zu", image.size())},
         {"wal_trimmed",
          StrFormat("%llu", static_cast<unsigned long long>(wal_trimmed))},
         {"commits",
          StrFormat("%llu", static_cast<unsigned long long>(commits_))}});
  }
  return Status::OK();
}

uint64_t RecordStore::WalBytes() const {
  std::error_code ec;
  uint64_t size = std::filesystem::file_size(WalPath(), ec);
  return ec ? 0 : size;
}

std::string RecordStore::WalPath() const { return dir_ + "/wal.log"; }
std::string RecordStore::SnapshotPath() const {
  return dir_ + "/snapshot.dat";
}

}  // namespace biopera
