#include "store/record_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/barrier_profile.h"
#include "store/codec.h"
#include "store/snapshot.h"

namespace biopera {

namespace {
constexpr char kOpPut = 1;
constexpr char kOpDelete = 2;
// Per-record WAL framing overhead: crc32 + length (store/wal.cc).
constexpr uint64_t kWalRecordHeaderBytes = 8;
constexpr char kLegacySnapshotFile[] = "snapshot.dat";
// Config-table key holding the current writer epoch (fencing token).
constexpr char kWriterEpochKey[] = "server/writer_epoch";
}  // namespace

void WriteBatch::Put(std::string_view table, std::string_view key,
                     std::string_view value) {
  // Reserve the op's exact upper bound up front (5 bytes covers any
  // varint length prefix) so a single-record batch costs one allocation.
  payload_.reserve(payload_.size() + 1 + 15 + table.size() + key.size() +
                   value.size());
  payload_.push_back(kOpPut);
  PutLengthPrefixed(&payload_, table);
  PutLengthPrefixed(&payload_, key);
  PutLengthPrefixed(&payload_, value);
  ++num_ops_;
}

void WriteBatch::Delete(std::string_view table, std::string_view key) {
  payload_.reserve(payload_.size() + 1 + 10 + table.size() + key.size());
  payload_.push_back(kOpDelete);
  PutLengthPrefixed(&payload_, table);
  PutLengthPrefixed(&payload_, key);
  ++num_ops_;
}

void WriteBatch::Clear() {
  payload_.clear();
  num_ops_ = 0;
}

Result<WriteBatch> WriteBatch::FromPayload(std::string_view payload) {
  // Validate and count without materializing the operations.
  std::string_view v = payload;
  size_t ops = 0;
  while (!v.empty()) {
    char tag = v.front();
    v.remove_prefix(1);
    if (tag != kOpPut && tag != kOpDelete) {
      return Status::Corruption("write batch: bad op tag");
    }
    std::string_view table, key, value;
    if (!GetLengthPrefixed(&v, &table) || !GetLengthPrefixed(&v, &key)) {
      return Status::Corruption("write batch: truncated op");
    }
    if (tag == kOpPut && !GetLengthPrefixed(&v, &value)) {
      return Status::Corruption("write batch: truncated value");
    }
    ++ops;
  }
  WriteBatch batch;
  batch.payload_.assign(payload);
  batch.num_ops_ = ops;
  return batch;
}

Result<std::vector<WriteBatch::Op>> WriteBatch::Ops() const {
  std::vector<Op> ops;
  std::string_view v = payload_;
  while (!v.empty()) {
    char tag = v.front();
    v.remove_prefix(1);
    Op op;
    op.is_put = (tag == kOpPut);
    if (tag != kOpPut && tag != kOpDelete) {
      return Status::Corruption("write batch: bad op tag");
    }
    std::string_view table, key, value;
    if (!GetLengthPrefixed(&v, &table) || !GetLengthPrefixed(&v, &key)) {
      return Status::Corruption("write batch: truncated op");
    }
    if (op.is_put && !GetLengthPrefixed(&v, &value)) {
      return Status::Corruption("write batch: truncated value");
    }
    op.table.assign(table);
    op.key.assign(key);
    op.value.assign(value);
    ops.push_back(std::move(op));
  }
  return ops;
}

RecordStore::CommitScope::CommitScope(RecordStore* store) : store_(store) {
  if (store_ != nullptr) ++store_->scope_depth_;
}

RecordStore::CommitScope::~CommitScope() {
  if (store_ == nullptr) return;
  if (--store_->scope_depth_ > 0) return;
  Status st = store_->Flush();
  if (st.ok()) st = store_->MaybeAutoCheckpoint();
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "commit group flush failed: " << st.ToString();
    // The image still holds the group and pending_ retains its payload;
    // give the engine a chance to stop dispatching and retry later.
    if (store_->flush_failure_handler_) store_->flush_failure_handler_(st);
  }
}

Result<std::unique_ptr<RecordStore>> RecordStore::Open(const std::string& dir,
                                                       Fs* fs) {
  if (fs == nullptr) fs = Fs::Default();
  BIOPERA_RETURN_IF_ERROR(fs->CreateDirs(dir));
  auto store = std::unique_ptr<RecordStore>(new RecordStore(dir, fs));

  // 1. Load the snapshot chain: manifest segments if present, otherwise
  // a legacy single-snapshot directory (which joins the manifest as its
  // base segment at the next checkpoint).
  Result<std::string> manifest = ReadSnapshot(store->ManifestPath(), fs);
  if (manifest.ok()) {
    BIOPERA_RETURN_IF_ERROR(store->LoadManifest(*manifest));
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  } else {
    Result<std::string> snap = ReadSnapshot(store->SnapshotPath(), fs);
    if (snap.ok()) {
      BIOPERA_RETURN_IF_ERROR(store->LoadImageSegment(*snap));
      store->manifest_.push_back(kLegacySnapshotFile);
    } else if (!snap.status().IsNotFound()) {
      return snap.status();
    }
  }

  // 2. Replay the WAL over the snapshot image: one pass, applied in
  // place (replayed tables count as dirty — their records are not yet in
  // any segment).
  BIOPERA_RETURN_IF_ERROR(
      ReadWalInto(
          store->WalPath(),
          [&store](std::string_view payload) {
            return store->ApplyPayloadToImage(payload);
          },
          nullptr, fs));

  // 3. Restore the writer epoch persisted by the last fenced writer.
  Result<std::string> epoch = store->Get("config", kWriterEpochKey);
  if (epoch.ok()) {
    store->fence_epoch_ = std::strtoull(epoch->c_str(), nullptr, 10);
  }

  // 4. Open the WAL for appending.
  store->live_wal_bytes_ = fs->FileSize(store->WalPath()).value_or(0);
  BIOPERA_ASSIGN_OR_RETURN(store->wal_,
                           WalWriter::Open(store->WalPath(), fs));
  return store;
}

RecordStore::~RecordStore() {
  if (pending_.empty() || wal_ == nullptr) return;
  Status st = Flush();
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "final commit group flush failed: "
                        << st.ToString();
  }
}

Status RecordStore::Apply(const WriteBatch& batch, uint64_t epoch) {
  if (epoch != 0 && epoch != fence_epoch_) {
    return Status::FailedPrecondition(
        StrFormat("store fenced: writer epoch %llu is stale (current %llu)",
                  static_cast<unsigned long long>(epoch),
                  static_cast<unsigned long long>(fence_epoch_)));
  }
  if (fail_writes_) {
    return Status::IOError("record store: injected write failure");
  }
  if (batch.empty()) return Status::OK();
  if (scope_depth_ > 0) {
    // Group commit: the image is updated now (read-your-writes) while the
    // payload rides in the pending group, written as one WAL record at
    // the next flush barrier.
    BIOPERA_RETURN_IF_ERROR(ApplyPayloadToImage(batch.payload()));
    pending_ += batch.payload();
    ++pending_commits_;
  } else {
    {
      // Direct (non-grouped) commits hit the WAL here: `store` wall time.
      obs::WallProfile::Scope store_scope(wall_profile_,
                                          obs::WallProfile::kStore);
      BIOPERA_RETURN_IF_ERROR(EnsureWal());
      BIOPERA_RETURN_IF_ERROR(wal_->Append(batch.payload()));
    }
    live_wal_bytes_ += batch.payload().size() + kWalRecordHeaderBytes;
    if (flushes_metric_ != nullptr) flushes_metric_->Increment();
    BIOPERA_RETURN_IF_ERROR(ApplyPayloadToImage(batch.payload()));
  }
  ++commits_;
  if (obs_ != nullptr) {
    commits_metric_->Increment();
    ops_metric_->Increment(batch.num_ops());
    wal_bytes_metric_->Increment(batch.payload().size());
  }
  if (scope_depth_ == 0) return MaybeAutoCheckpoint();
  return Status::OK();
}

Status RecordStore::Flush() {
  if (pending_.empty()) return Status::OK();
  // The group-commit flush is the store's I/O hot path: `store` wall time
  // for the barrier-stall profiler.
  obs::WallProfile::Scope store_scope(wall_profile_,
                                      obs::WallProfile::kStore);
  BIOPERA_RETURN_IF_ERROR(EnsureWal());
  BIOPERA_RETURN_IF_ERROR(wal_->Append(pending_));
  live_wal_bytes_ += pending_.size() + kWalRecordHeaderBytes;
  if (obs_ != nullptr) {
    flushes_metric_->Increment();
    coalesced_metric_->Increment(pending_commits_);
    obs_->spans.EmitInstant(
        obs::SpanKind::kCommitBatch, "commit group", /*parent=*/0, "", "", "",
        {{"commits", StrFormat("%llu", static_cast<unsigned long long>(
                                           pending_commits_))},
         {"bytes", StrFormat("%zu", pending_.size())}},
        "flushed");
  }
  pending_.clear();  // keeps capacity: the buffer is reused
  pending_commits_ = 0;
  return Status::OK();
}

Status RecordStore::MaybeAutoCheckpoint() {
  if (scope_depth_ > 0) return Status::OK();
  bool due = (policy_.every_commits > 0 &&
              commits_ - last_checkpoint_commits_ >= policy_.every_commits) ||
             (policy_.wal_bytes > 0 && WalBytes() >= policy_.wal_bytes);
  return due ? Checkpoint() : Status::OK();
}

void RecordStore::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    commits_metric_ = ops_metric_ = wal_bytes_metric_ = flushes_metric_ =
        coalesced_metric_ = checkpoints_metric_ = compactions_metric_ =
            remove_failures_metric_ = scrub_runs_metric_ =
                scrub_quarantined_metric_ = nullptr;
    checkpoint_bytes_metric_ = nullptr;
    return;
  }
  commits_metric_ = obs_->metrics.GetCounter("store_commits_total");
  ops_metric_ = obs_->metrics.GetCounter("store_ops_total");
  wal_bytes_metric_ = obs_->metrics.GetCounter("store_wal_bytes_total");
  flushes_metric_ = obs_->metrics.GetCounter("store_wal_flushes_total");
  coalesced_metric_ = obs_->metrics.GetCounter("store_group_commits_total");
  checkpoints_metric_ = obs_->metrics.GetCounter("store_checkpoints_total");
  compactions_metric_ =
      obs_->metrics.GetCounter("store_checkpoint_compactions_total");
  remove_failures_metric_ =
      obs_->metrics.GetCounter("store_remove_failures_total");
  scrub_runs_metric_ = obs_->metrics.GetCounter("store_scrub_runs_total");
  scrub_quarantined_metric_ =
      obs_->metrics.GetCounter("store_scrub_quarantined_total");
  // Snapshot sizes span bytes to hundreds of MB: 1 KiB x4 buckets.
  obs::HistogramOptions bytes_buckets;
  bytes_buckets.first_bound = 1024;
  checkpoint_bytes_metric_ = obs_->metrics.GetHistogram(
      "store_checkpoint_bytes", {}, bytes_buckets);
}

Status RecordStore::Put(std::string_view table, std::string_view key,
                        std::string_view value, uint64_t epoch) {
  WriteBatch batch;
  batch.Put(table, key, value);
  return Apply(batch, epoch);
}

Status RecordStore::Delete(std::string_view table, std::string_view key,
                           uint64_t epoch) {
  WriteBatch batch;
  batch.Delete(table, key);
  return Apply(batch, epoch);
}

uint64_t RecordStore::AcquireWriterEpoch() {
  ++fence_epoch_;
  Status st = Put("config", kWriterEpochKey,
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        fence_epoch_)),
                  fence_epoch_);
  if (!st.ok()) {
    // The fence is effective in memory regardless; durability catches up
    // with the next successful commit.
    BIOPERA_LOG(kWarning) << "writer epoch " << fence_epoch_
                          << " not yet durable: " << st.ToString();
  }
  return fence_epoch_;
}

bool RecordStore::IsFenced(const Status& st) {
  return st.IsFailedPrecondition() &&
         st.message().find("store fenced") != std::string::npos;
}

void RecordStore::SetFlushFailureHandler(void* owner,
                                         FlushFailureHandler handler) {
  flush_failure_owner_ = owner;
  flush_failure_handler_ = std::move(handler);
}

void RecordStore::ClearFlushFailureHandler(void* owner) {
  if (flush_failure_owner_ != owner) return;  // a newer writer took over
  flush_failure_owner_ = nullptr;
  flush_failure_handler_ = nullptr;
}

Status RecordStore::ApplyPayloadToImage(std::string_view payload) {
  std::string_view v = payload;
  // Seed from the cross-call cache: consecutive commits (and consecutive
  // WAL records during replay) overwhelmingly touch the same table, so
  // this skips the tables_ lookup and the dirty-set check entirely.
  Table* table = cached_table_;
  std::string_view table_name = cached_table_name_;
  while (!v.empty()) {
    char tag = v.front();
    v.remove_prefix(1);
    const bool is_put = (tag == kOpPut);
    if (!is_put && tag != kOpDelete) {
      return Status::Corruption("write batch: bad op tag");
    }
    std::string_view t, key, value;
    if (!GetLengthPrefixed(&v, &t) || !GetLengthPrefixed(&v, &key)) {
      return Status::Corruption("write batch: truncated op");
    }
    if (is_put && !GetLengthPrefixed(&v, &value)) {
      return Status::Corruption("write batch: truncated value");
    }
    // Engine batches touch one table many times in a row; cache the
    // resolved table across ops. `table` stays null for deletes in a
    // table that does not exist (until a put creates it).
    if (t != table_name || (table == nullptr && is_put)) {
      table_name = t;
      auto it = tables_.find(t);
      if (it == tables_.end() && is_put) {
        it = tables_.try_emplace(std::string(t)).first;
        // Fresh tables get a generous bucket array up front: WAL replay
        // and first population insert thousands of records, and the
        // incremental rehashes (each recomputing every key's hash)
        // otherwise dominate. ~128 KiB per table, and stores hold a
        // handful of tables.
        it->second.reserve(16384);
      }
      table = it == tables_.end() ? nullptr : &it->second;
      if (table != nullptr && !dirty_tables_.contains(t)) {
        dirty_tables_.insert(std::string(t));
      }
    }
    if (table == nullptr) continue;  // delete in a nonexistent table
    if (is_put) {
      auto it = table->find(key);
      if (it != table->end()) {
        it->second.assign(value);
      } else {
        table->emplace(std::string(key), std::string(value));
      }
    } else {
      auto it = table->find(key);
      if (it != table->end()) table->erase(it);
    }
  }
  if (table != nullptr) {
    // Remember the resolved table for the next call. Invariant: a cached
    // table is already in dirty_tables_ (Checkpoint resets the cache when
    // it clears the dirty set).
    cached_table_ = table;
    cached_table_name_.assign(table_name);
  }
  return Status::OK();
}

Result<std::string> RecordStore::Get(std::string_view table,
                                     std::string_view key) const {
  auto t = tables_.find(table);
  if (t == tables_.end()) {
    return Status::NotFound(StrFormat("no table '%.*s'",
                                      static_cast<int>(table.size()),
                                      table.data()));
  }
  auto r = t->second.find(key);
  if (r == t->second.end()) {
    return Status::NotFound(StrFormat("no key '%.*s'",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  return r->second;
}

bool RecordStore::Contains(std::string_view table,
                           std::string_view key) const {
  auto t = tables_.find(table);
  return t != tables_.end() && t->second.contains(key);
}

std::vector<std::pair<std::string, std::string>> RecordStore::Scan(
    std::string_view table, std::string_view prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  auto t = tables_.find(table);
  if (t == tables_.end()) return out;
  for (const auto& [key, value] : t->second) {
    if (StartsWith(key, prefix)) out.emplace_back(key, value);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

size_t RecordStore::TableSize(std::string_view table) const {
  auto t = tables_.find(table);
  return t == tables_.end() ? 0 : t->second.size();
}

std::string RecordStore::SerializeTables(bool dirty_only,
                                         size_t* table_count) const {
  std::string out;
  size_t count = 0;
  for (const auto& [name, records] : tables_) {
    if (dirty_only && !dirty_tables_.contains(name)) continue;
    ++count;
  }
  // A dirty table that became empty is still serialized: on load it
  // replaces the stale table wholesale, so deleted records cannot
  // resurrect from an older segment.
  PutVarint64(&out, count);
  for (const auto& [name, records] : tables_) {
    if (dirty_only && !dirty_tables_.contains(name)) continue;
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, records.size());
    // Hash-map iteration order is arbitrary; sort so that logically equal
    // stores always serialize to identical bytes.
    std::vector<const std::pair<const std::string, std::string>*> sorted;
    sorted.reserve(records.size());
    for (const auto& record : records) sorted.push_back(&record);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* record : sorted) {
      PutLengthPrefixed(&out, record->first);
      PutLengthPrefixed(&out, record->second);
    }
  }
  if (table_count != nullptr) *table_count = count;
  return out;
}

Status RecordStore::LoadImageSegment(std::string_view payload) {
  std::string_view v = payload;
  uint64_t num_tables;
  if (!GetVarint64(&v, &num_tables)) {
    return Status::Corruption("image: bad table count");
  }
  for (uint64_t i = 0; i < num_tables; ++i) {
    std::string_view name;
    uint64_t n;
    if (!GetLengthPrefixed(&v, &name) || !GetVarint64(&v, &n)) {
      return Status::Corruption("image: bad table header");
    }
    // Each segment entry replaces the table wholesale.
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      it = tables_.try_emplace(std::string(name)).first;
    } else {
      it->second.clear();
    }
    Table& table = it->second;
    // CRC-checked self-written file, but clamp the pre-size anyway.
    table.reserve(static_cast<size_t>(std::min<uint64_t>(n, 1u << 20)));
    for (uint64_t k = 0; k < n; ++k) {
      std::string_view key, value;
      if (!GetLengthPrefixed(&v, &key) || !GetLengthPrefixed(&v, &value)) {
        return Status::Corruption("image: bad record");
      }
      table.insert_or_assign(std::string(key), std::string(value));
    }
  }
  if (!v.empty()) return Status::Corruption("image: trailing bytes");
  return Status::OK();
}

Status RecordStore::LoadManifest(std::string_view payload) {
  std::string_view v = payload;
  uint64_t count;
  if (!GetVarint64(&v, &count)) {
    return Status::Corruption("manifest: bad segment count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(&v, &name) || name.empty()) {
      return Status::Corruption("manifest: bad segment name");
    }
    BIOPERA_ASSIGN_OR_RETURN(
        std::string segment, ReadSnapshot(dir_ + "/" + std::string(name), fs_));
    BIOPERA_RETURN_IF_ERROR(LoadImageSegment(segment));
    manifest_.emplace_back(name);
    unsigned long long seq = 0;
    if (std::sscanf(std::string(name).c_str(), "seg_%llu.dat", &seq) == 1) {
      next_segment_seq_ =
          std::max(next_segment_seq_, static_cast<uint64_t>(seq) + 1);
    }
  }
  if (!v.empty()) return Status::Corruption("manifest: trailing bytes");
  return Status::OK();
}

Status RecordStore::WriteManifest() {
  std::string payload;
  PutVarint64(&payload, manifest_.size());
  for (const std::string& name : manifest_) {
    PutLengthPrefixed(&payload, name);
  }
  return WriteSnapshot(ManifestPath(), payload, fs_);
}

Status RecordStore::EnsureWal() {
  if (wal_ != nullptr) return Status::OK();
  // A failed checkpoint can close the WAL and then fail to reopen it;
  // recover here instead of crashing on the next append.
  BIOPERA_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath(), fs_));
  return Status::OK();
}

Status RecordStore::Checkpoint() { return CheckpointImpl(false); }

Status RecordStore::CheckpointImpl(bool force_full) {
  if (fail_writes_) {
    return Status::IOError("record store: injected write failure");
  }
  obs::WallProfile::Scope store_scope(wall_profile_,
                                      obs::WallProfile::kStore);
  BIOPERA_RETURN_IF_ERROR(Flush());
  if (!force_full && dirty_tables_.empty() && live_wal_bytes_ == 0) {
    return Status::OK();  // nothing changed since the last checkpoint
  }
  uint64_t wal_trimmed = live_wal_bytes_;
  const bool compact =
      force_full || manifest_.size() >= policy_.compact_after_segments;
  size_t table_count = 0;
  std::string image = SerializeTables(/*dirty_only=*/!compact, &table_count);
  std::string name = StrFormat(
      "seg_%06llu.dat", static_cast<unsigned long long>(next_segment_seq_));
  BIOPERA_RETURN_IF_ERROR(WriteSnapshot(dir_ + "/" + name, image, fs_));
  ++next_segment_seq_;
  std::vector<std::string> obsolete;
  if (compact) {
    obsolete = std::move(manifest_);
    manifest_.clear();
  }
  manifest_.push_back(name);
  BIOPERA_RETURN_IF_ERROR(WriteManifest());
  if (compact) {
    // The manifest no longer references them; prune best-effort, but
    // count and log what stays behind (an orphan segment wastes disk yet
    // can never corrupt recovery — it is simply not in the manifest).
    for (const std::string& old : obsolete) {
      Status rm = fs_->Remove(dir_ + "/" + old);
      if (!rm.ok()) {
        if (remove_failures_metric_ != nullptr) {
          remove_failures_metric_->Increment();
        }
        BIOPERA_LOG(kWarning)
            << "compaction: pruning " << old << " failed: " << rm.ToString();
      }
    }
  }
  // Truncate the WAL: close, remove, reopen empty. Safe because the
  // snapshot chain now covers everything the WAL contained. A failed
  // remove is surfaced: the stale WAL would replay over the new segments
  // (harmless — replay is idempotent) but it grows without bound.
  wal_.reset();
  Status rm = fs_->Remove(WalPath());
  if (!rm.ok()) {
    if (remove_failures_metric_ != nullptr) {
      remove_failures_metric_->Increment();
    }
    return rm;
  }
  live_wal_bytes_ = 0;
  BIOPERA_ASSIGN_OR_RETURN(wal_, WalWriter::Open(WalPath(), fs_));
  dirty_tables_.clear();
  // The cache's invariant (cached table is dirty) no longer holds.
  cached_table_ = nullptr;
  cached_table_name_.clear();
  last_checkpoint_commits_ = commits_;
  if (obs_ != nullptr) {
    checkpoints_metric_->Increment();
    if (compact) compactions_metric_->Increment();
    checkpoint_bytes_metric_->Observe(static_cast<double>(image.size()));
    obs_->spans.EmitInstant(
        obs::SpanKind::kCheckpoint, compact ? "checkpoint full"
                                            : "checkpoint delta",
        /*parent=*/0, "", "", "",
        {{"bytes", StrFormat("%zu", image.size())},
         {"tables", StrFormat("%zu", table_count)},
         {"wal_trimmed",
          StrFormat("%llu", static_cast<unsigned long long>(wal_trimmed))}},
        "taken");
    obs_->trace.Emit(
        obs::EventType::kCheckpointTaken, "", "", "",
        {{"bytes", StrFormat("%zu", image.size())},
         {"kind", compact ? "full" : "delta"},
         {"tables", StrFormat("%zu", table_count)},
         {"wal_trimmed",
          StrFormat("%llu", static_cast<unsigned long long>(wal_trimmed))},
         {"commits",
          StrFormat("%llu", static_cast<unsigned long long>(commits_))}});
  }
  return Status::OK();
}

std::string RecordStore::ScrubReport::ToText() const {
  std::string out = StrFormat(
      "scrub: %zu segment(s) checked, %zu quarantined; wal records=%llu%s\n",
      segments_checked, quarantined.size(),
      static_cast<unsigned long long>(wal_records),
      wal_torn_tail ? " (torn tail discarded)" : "");
  for (const std::string& name : quarantined) {
    out += "  quarantined: " + name + " -> " + name + ".quarantined\n";
  }
  out += rebuilt ? "  store rebuilt from live image (full compaction)\n"
                 : "  no damage found\n";
  return out;
}

Result<RecordStore::ScrubReport> RecordStore::Scrub() {
  ScrubReport report;
  BIOPERA_RETURN_IF_ERROR(Flush());
  bool torn = false;
  uint64_t records = 0;
  BIOPERA_RETURN_IF_ERROR(ReadWalInto(
      WalPath(),
      [&records](std::string_view) {
        ++records;
        return Status::OK();
      },
      &torn, fs_));
  report.wal_records = records;
  report.wal_torn_tail = torn;
  bool damaged = torn;
  std::vector<std::string> keep;
  for (const std::string& name : manifest_) {
    ++report.segments_checked;
    Result<std::string> seg = ReadSnapshot(dir_ + "/" + name, fs_);
    if (seg.ok()) {
      keep.push_back(name);
      continue;
    }
    damaged = true;
    Status mv = fs_->Rename(dir_ + "/" + name,
                            dir_ + "/" + name + ".quarantined");
    if (!mv.ok()) {
      BIOPERA_LOG(kWarning) << "scrub: quarantine of " << name
                            << " failed: " << mv.ToString();
    }
    BIOPERA_LOG(kWarning) << "scrub: segment " << name << " corrupt ("
                          << seg.status().ToString() << "), quarantined";
    report.quarantined.push_back(name);
  }
  if (damaged) {
    // The in-memory image is the authoritative survivor (the corrupt
    // segment's records were applied when the store opened): rewrite the
    // whole store from it so quarantining loses nothing on a live store.
    manifest_ = std::move(keep);
    BIOPERA_RETURN_IF_ERROR(CheckpointImpl(/*force_full=*/true));
    report.rebuilt = true;
  }
  if (obs_ != nullptr) {
    scrub_runs_metric_->Increment();
    scrub_quarantined_metric_->Increment(report.quarantined.size());
    obs_->trace.Emit(
        obs::EventType::kStoreScrubbed, "", "", "",
        {{"segments", StrFormat("%zu", report.segments_checked)},
         {"quarantined", StrFormat("%zu", report.quarantined.size())},
         {"torn_tail", torn ? "1" : "0"},
         {"rebuilt", report.rebuilt ? "1" : "0"}});
  }
  return report;
}

uint64_t RecordStore::WalBytes() const {
  return live_wal_bytes_ + pending_.size();
}

std::string RecordStore::WalPath() const { return dir_ + "/wal.log"; }
std::string RecordStore::SnapshotPath() const {
  return dir_ + "/" + kLegacySnapshotFile;
}
std::string RecordStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

}  // namespace biopera
