#include "store/wal.h"

#include "common/crc32.h"
#include "store/codec.h"

namespace biopera {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   Fs* fs) {
  if (fs == nullptr) fs = Fs::Default();
  BIOPERA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           fs->OpenForAppend(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) (void)file_->Close();
}

Status WalWriter::Append(std::string_view payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  BIOPERA_RETURN_IF_ERROR(file_->Append(header));
  BIOPERA_RETURN_IF_ERROR(file_->Append(payload));
  BIOPERA_RETURN_IF_ERROR(file_->Flush());
  bytes_written_ += header.size() + payload.size();
  ++records_written_;
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

Status ReadWalInto(const std::string& path,
                   const std::function<Status(std::string_view)>& fn,
                   bool* truncated_tail, Fs* fs) {
  if (fs == nullptr) fs = Fs::Default();
  if (truncated_tail != nullptr) *truncated_tail = false;
  // Slurp the whole log into one buffer and frame it in memory: the WAL is
  // bounded by the checkpoint policy, and replay then costs zero syscalls
  // and zero allocations per record.
  Result<std::string> read = fs->ReadFileToString(path);
  if (!read.ok()) {
    if (read.status().IsNotFound()) return Status::OK();  // fresh store
    return read.status();
  }
  std::string_view v = *read;
  while (!v.empty()) {
    uint32_t crc = 0, len = 0;
    std::string_view record;
    // A short header, short payload, oversized length (a single record
    // over 256 MiB indicates corruption) or CRC mismatch all mean a torn
    // tail: everything before it is valid, the rest is discarded.
    if (!GetFixed32(&v, &crc) || !GetFixed32(&v, &len) ||
        len > (256u << 20) || v.size() < len) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    record = v.substr(0, len);
    v.remove_prefix(len);
    if (Crc32c(record) != crc) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    BIOPERA_RETURN_IF_ERROR(fn(record));
  }
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path, Fs* fs) {
  WalReadResult out;
  BIOPERA_RETURN_IF_ERROR(ReadWalInto(
      path,
      [&out](std::string_view record) {
        out.records.emplace_back(record);
        return Status::OK();
      },
      &out.truncated_tail, fs));
  return out;
}

}  // namespace biopera
