#include "store/wal.h"

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"
#include "store/codec.h"

namespace biopera {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("open wal %s: %s", path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(f));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(std::string_view payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IOError("wal append: short write");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("wal append: flush failed");
  }
  bytes_written_ += header.size() + payload.size();
  ++records_written_;
  return Status::OK();
}

Status ReadWalInto(const std::string& path,
                   const std::function<Status(std::string_view)>& fn,
                   bool* truncated_tail) {
  if (truncated_tail != nullptr) *truncated_tail = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();  // fresh store
    return Status::IOError(
        StrFormat("open wal %s: %s", path.c_str(), std::strerror(errno)));
  }
  // Slurp the whole log into one buffer and frame it in memory: the WAL is
  // bounded by the checkpoint policy, and replay then costs zero syscalls
  // and zero allocations per record.
  std::string buffer;
  char chunk[1 << 16];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.append(chunk, got);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError(StrFormat("read wal %s", path.c_str()));
  }
  std::string_view v = buffer;
  while (!v.empty()) {
    uint32_t crc = 0, len = 0;
    std::string_view record;
    // A short header, short payload, oversized length (a single record
    // over 256 MiB indicates corruption) or CRC mismatch all mean a torn
    // tail: everything before it is valid, the rest is discarded.
    if (!GetFixed32(&v, &crc) || !GetFixed32(&v, &len) ||
        len > (256u << 20) || v.size() < len) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    record = v.substr(0, len);
    v.remove_prefix(len);
    if (Crc32c(record) != crc) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    BIOPERA_RETURN_IF_ERROR(fn(record));
  }
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  BIOPERA_RETURN_IF_ERROR(ReadWalInto(
      path,
      [&out](std::string_view record) {
        out.records.emplace_back(record);
        return Status::OK();
      },
      &out.truncated_tail));
  return out;
}

}  // namespace biopera
