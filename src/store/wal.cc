#include "store/wal.h"

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/strings.h"
#include "store/codec.h"

namespace biopera {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError(
        StrFormat("open wal %s: %s", path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(f));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(std::string_view payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IOError("wal append: short write");
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("wal append: flush failed");
  }
  bytes_written_ += header.size() + payload.size();
  ++records_written_;
  return Status::OK();
}

Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return out;  // fresh store
    return Status::IOError(
        StrFormat("open wal %s: %s", path.c_str(), std::strerror(errno)));
  }
  while (true) {
    unsigned char header[8];
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0) break;  // clean EOF
    if (got < sizeof(header)) {
      out.truncated_tail = true;
      break;
    }
    std::string_view hv(reinterpret_cast<const char*>(header),
                        sizeof(header));
    uint32_t crc = 0, len = 0;
    GetFixed32(&hv, &crc);
    GetFixed32(&hv, &len);
    // Sanity cap: a single record over 256 MiB indicates corruption.
    if (len > (256u << 20)) {
      out.truncated_tail = true;
      break;
    }
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) {
      out.truncated_tail = true;
      break;
    }
    if (Crc32c(payload) != crc) {
      out.truncated_tail = true;
      break;
    }
    out.records.push_back(std::move(payload));
  }
  std::fclose(f);
  return out;
}

}  // namespace biopera
