#ifndef BIOPERA_STORE_SPACES_H_
#define BIOPERA_STORE_SPACES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/record_store.h"

namespace biopera {

/// BioOpera organizes its persistent data into four *spaces* (paper §3.2):
///  - the template space holds process definitions (OCR text),
///  - the instance space holds the state of executing processes,
///  - the configuration space holds the cluster/hardware description,
///  - the history (data) space holds the record of everything that already
///    executed, for monitoring, lineage and accounting queries.
///
/// Spaces are thin typed views over one RecordStore so that a single WAL
/// covers all engine state transitions atomically.
class Spaces {
 public:
  explicit Spaces(RecordStore* store) : store_(store) {}

  // --- Template space -----------------------------------------------------
  Status PutTemplate(std::string_view name, std::string_view ocr_text);
  Result<std::string> GetTemplate(std::string_view name) const;
  std::vector<std::string> ListTemplates() const;

  // --- Instance space -----------------------------------------------------
  /// Instance records are keyed "<instance_id>/<record>"; the engine stores
  /// one record per task plus a header. Batched writes keep a navigator
  /// transition atomic.
  Status PutInstanceRecord(std::string_view instance_id, std::string_view key,
                           std::string_view value);
  void BatchPutInstanceRecord(WriteBatch* batch, std::string_view instance_id,
                              std::string_view key, std::string_view value);
  void BatchDeleteInstanceRecord(WriteBatch* batch,
                                 std::string_view instance_id,
                                 std::string_view key);
  Result<std::string> GetInstanceRecord(std::string_view instance_id,
                                        std::string_view key) const;
  std::vector<std::pair<std::string, std::string>> ScanInstance(
      std::string_view instance_id) const;
  std::vector<std::string> ListInstances() const;
  Status DeleteInstance(std::string_view instance_id);

  // --- Provenance space ---------------------------------------------------
  /// Lineage records, keyed "<instance_id>/<record>" like the instance
  /// space. The engine writes them in the same commit batches as the
  /// task records they describe, so lineage is crash-atomic with the
  /// state transition it explains and is recovered with the instance.
  void BatchPutProvenance(WriteBatch* batch, std::string_view instance_id,
                          std::string_view key, std::string_view value);
  Result<std::string> GetProvenance(std::string_view instance_id,
                                    std::string_view key) const;
  /// All of an instance's lineage records in key order, "<id>/" prefix
  /// stripped.
  std::vector<std::pair<std::string, std::string>> ScanProvenance(
      std::string_view instance_id) const;

  // --- Configuration space ------------------------------------------------
  Status PutConfig(std::string_view key, std::string_view value);
  Result<std::string> GetConfig(std::string_view key) const;
  std::vector<std::pair<std::string, std::string>> ScanConfig() const;

  // --- History space ------------------------------------------------------
  /// Appends an event record; events get a monotonically increasing
  /// sequence number and are scanned back in order.
  Status AppendHistory(std::string_view instance_id, std::string_view event);
  std::vector<std::string> History(std::string_view instance_id) const;

  Status Apply(const WriteBatch& batch) {
    return store_->Apply(batch, epoch_);
  }
  RecordStore* store() { return store_; }

  /// Writer epoch stamped onto every commit issued through this view.
  /// 0 (the default) means unfenced; the engine sets the epoch it acquired
  /// at startup so a stale engine's commits are rejected after takeover.
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

 private:
  RecordStore* store_;
  uint64_t epoch_ = 0;
  uint64_t next_history_seq_ = 0;
  bool history_seq_loaded_ = false;
};

}  // namespace biopera

#endif  // BIOPERA_STORE_SPACES_H_
