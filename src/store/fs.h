#ifndef BIOPERA_STORE_FS_H_
#define BIOPERA_STORE_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace biopera {

/// A writable file handle. Append buffers data towards the OS, Flush
/// pushes buffered bytes into the OS page cache (surviving a process
/// crash), Sync forces them to stable storage (surviving a power loss).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem seam every durable-store I/O goes through. The store,
/// WAL, and snapshot writer never touch <cstdio> directly; they take an
/// `Fs*` so tests can interpose a FaultFs and inject torn writes, ENOSPC,
/// sync failures, and failed renames at precise points.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for appending, creating it if missing.
  virtual Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) = 0;
  /// Opens `path` truncated (fresh file).
  virtual Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) = 0;
  /// Reads the whole file. NotFound if it does not exist.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Remove(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;
  /// fsyncs the directory itself so renames/creates/removes inside it are
  /// durable (the half of tmp+rename atomicity that fopen never gave us).
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;

  /// The process-wide real-disk filesystem.
  static Fs* Default();
};

/// Returns the parent directory of `path` ("." if none).
std::string ParentDir(const std::string& path);

/// Fault-injecting decorator around another Fs. Every mutating operation
/// is a named, counted fault point `<class>.<op>` where <class> is derived
/// from the file's basename (ignoring a ".tmp" suffix):
///
///   wal       wal.log                       (the write-ahead log)
///   seg       seg_*.dat, snapshot.dat       (checkpoint segments)
///   manifest  MANIFEST                      (the segment manifest)
///   dir       directory syncs               (only op: dir.sync)
///   file      anything else
///
/// and <op> is one of open (append-open), create (truncating open),
/// append, flush, sync, rename, remove.
///
/// FaultFile buffers appends in memory and pushes them to the base file on
/// Flush/Sync/Close, so an armed crash genuinely loses unflushed bytes —
/// like a real process death would — instead of having them leak to disk
/// through a stdio buffer.
class FaultFs : public Fs {
 public:
  explicit FaultFs(Fs* base) : base_(base) {}

  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenForWrite(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Simulates a process/machine crash at the `at_hit`-th hit of `point`
  /// (1-based): a data-carrying op (append/flush) writes only half its
  /// bytes through and flushes them — a torn write — then the disk goes
  /// dead: every subsequent mutating op fails. Reads keep working so the
  /// in-process image stays observable.
  void ArmCrash(const std::string& point, uint64_t at_hit);

  /// Injects a single transient IOError at the `at_hit`-th hit of `point`
  /// (1-based). The op does not reach the base fs; later ops are fine.
  void ArmError(const std::string& point, uint64_t at_hit);

  void Disarm() { armed_.reset(); }

  /// ENOSPC mode: space-consuming ops (open/create/append/flush/sync)
  /// fail; renames, removes, and reads still work — like a full disk.
  void SetDiskFull(bool full) { disk_full_ = full; }
  bool disk_full() const { return disk_full_; }

  /// When set, Rename() only records the intent; the rename reaches the
  /// base fs at the next SyncDir of its directory (modelling a dirent
  /// update that was never fsynced). A crash before that drops it.
  void SetDelayRenames(bool delay) { delay_renames_ = delay; }
  size_t PendingRenames() const { return pending_renames_.size(); }

  bool dead() const { return dead_; }
  void Revive() { dead_ = false; }

  /// Hit counts per fault point, armed or not — a plain recording pass
  /// enumerates every fault point a workload exercises.
  const std::map<std::string, uint64_t>& Hits() const { return hits_; }
  void ResetHits() { hits_.clear(); }

 private:
  friend class FaultFile;
  struct Armed {
    std::string point;
    uint64_t at_hit = 0;
    bool crash = false;
  };
  struct Action {
    enum Kind { kProceed, kFail, kTorn } kind = kProceed;
    Status error;
    size_t keep_bytes = 0;  // for kTorn: bytes to write before dying
  };

  /// Counts one hit of `point` (an op moving `len` bytes) and decides its
  /// fate. Called by FaultFs ops and by FaultFile for per-file ops.
  Action Account(const std::string& point, size_t len);
  static bool ConsumesSpace(const std::string& point);

  Fs* base_;
  std::map<std::string, uint64_t> hits_;
  std::optional<Armed> armed_;
  bool disk_full_ = false;
  bool delay_renames_ = false;
  bool dead_ = false;
  std::vector<std::pair<std::string, std::string>> pending_renames_;
};

}  // namespace biopera

#endif  // BIOPERA_STORE_FS_H_
