#include "store/codec.h"

namespace biopera {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetFixed32(input, &lo) || !GetFixed32(input, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* s) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *s = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

}  // namespace biopera
