#include "store/codec.h"

#include <cstring>

namespace biopera {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetFixed32(input, &lo) || !GetFixed32(input, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* s) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *s = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

namespace {

enum ValueTag : char {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagList = 6,
  kTagMap = 7,
};

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

bool DecodeValueImpl(std::string_view* input, ocr::Value* out, int depth) {
  if (depth > kMaxValueDepth) return false;
  if (input->empty()) return false;
  char tag = input->front();
  input->remove_prefix(1);
  switch (tag) {
    case kTagNull:
      *out = ocr::Value();
      return true;
    case kTagFalse:
      *out = ocr::Value(false);
      return true;
    case kTagTrue:
      *out = ocr::Value(true);
      return true;
    case kTagInt: {
      uint64_t raw;
      if (!GetVarint64(input, &raw)) return false;
      *out = ocr::Value(ZigZagDecode(raw));
      return true;
    }
    case kTagDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return false;
      double d;
      static_assert(sizeof(d) == sizeof(bits));
      std::memcpy(&d, &bits, sizeof(d));
      *out = ocr::Value(d);
      return true;
    }
    case kTagString: {
      std::string_view s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *out = ocr::Value(std::string(s));
      return true;
    }
    case kTagList: {
      uint64_t count;
      if (!GetVarint64(input, &count)) return false;
      // No reserve(count): a hostile count must not allocate up front;
      // decoding simply fails when the input runs out.
      ocr::Value::List list;
      for (uint64_t i = 0; i < count; ++i) {
        ocr::Value elem;
        if (!DecodeValueImpl(input, &elem, depth + 1)) return false;
        list.push_back(std::move(elem));
      }
      *out = ocr::Value(std::move(list));
      return true;
    }
    case kTagMap: {
      uint64_t count;
      if (!GetVarint64(input, &count)) return false;
      ocr::Value::Map map;
      for (uint64_t i = 0; i < count; ++i) {
        std::string_view key;
        if (!GetLengthPrefixed(input, &key)) return false;
        ocr::Value elem;
        if (!DecodeValueImpl(input, &elem, depth + 1)) return false;
        map[std::string(key)] = std::move(elem);
      }
      *out = ocr::Value(std::move(map));
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

void EncodeValue(const ocr::Value& v, std::string* dst) {
  if (v.is_null()) {
    dst->push_back(kTagNull);
  } else if (v.is_bool()) {
    dst->push_back(v.AsBool() ? kTagTrue : kTagFalse);
  } else if (v.is_int()) {
    dst->push_back(kTagInt);
    PutVarint64(dst, ZigZagEncode(v.AsInt()));
  } else if (v.is_double()) {
    dst->push_back(kTagDouble);
    double d = v.AsDouble();
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    PutFixed64(dst, bits);
  } else if (v.is_string()) {
    dst->push_back(kTagString);
    PutLengthPrefixed(dst, v.AsString());
  } else if (v.is_list()) {
    dst->push_back(kTagList);
    PutVarint64(dst, v.AsList().size());
    for (const ocr::Value& elem : v.AsList()) EncodeValue(elem, dst);
  } else {
    dst->push_back(kTagMap);
    PutVarint64(dst, v.AsMap().size());
    for (const auto& [key, elem] : v.AsMap()) {
      PutLengthPrefixed(dst, key);
      EncodeValue(elem, dst);
    }
  }
}

bool DecodeValue(std::string_view* input, ocr::Value* out) {
  return DecodeValueImpl(input, out, 0);
}

std::string EncodeValueRecord(const ocr::Value& v) {
  std::string out;
  out.push_back(kBinaryValueMarker);
  EncodeValue(v, &out);
  return out;
}

Result<ocr::Value> DecodeValueRecord(std::string_view record) {
  if (!record.empty() && record.front() == kBinaryValueMarker) {
    record.remove_prefix(1);
    ocr::Value v;
    if (!DecodeValue(&record, &v) || !record.empty()) {
      return Status::Corruption("malformed binary value record");
    }
    return v;
  }
  // Legacy stores hold text records; the text grammar never begins with
  // a 0x01 byte, so the marker is unambiguous.
  return ocr::Value::FromText(record);
}

}  // namespace biopera
