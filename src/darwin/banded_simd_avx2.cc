// AVX2 variant of the banded Smith-Waterman row pass. Like
// align_simd_avx2.cc this is compiled with -mavx2 in its own translation
// unit; callers reach it through runtime dispatch in banded_simd.cc.

#include "darwin/banded_simd.h"

#if BIOPERA_HAVE_AVX2

#include <immintrin.h>

namespace biopera::darwin::internal {

void Avx2BandedRowPass(const int16_t* h_prev, const int16_t* e_prev,
                       const int16_t* prof, int16_t open, int16_t extend,
                       size_t lo, size_t hi, int16_t* h_cur, int16_t* e_cur) {
  const __m256i v_zero = _mm256_setzero_si256();
  const __m256i v_open = _mm256_set1_epi16(open);
  const __m256i v_ext = _mm256_set1_epi16(extend);
  // The last chunk reads and writes up to 15 cells past `hi`; the driver
  // allocates the slack and zeroes every cell a later row reads, so the
  // tail junk is never observed.
  for (size_t j = lo; j <= hi; j += 16) {
    __m256i v_h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h_prev + j));
    __m256i v_e = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(e_prev + j));
    __m256i v_e2 = _mm256_max_epi16(_mm256_subs_epi16(v_h, v_open),
                                    _mm256_subs_epi16(v_e, v_ext));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(e_cur + j), v_e2);
    __m256i v_diag = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(h_prev + j - 1));
    __m256i v_match = _mm256_adds_epi16(
        v_diag,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prof + j)));
    __m256i v_t = _mm256_max_epi16(_mm256_max_epi16(v_match, v_e2), v_zero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h_cur + j), v_t);
  }
}

}  // namespace biopera::darwin::internal

#endif  // BIOPERA_HAVE_AVX2
