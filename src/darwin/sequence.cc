#include "darwin/sequence.h"

#include "common/strings.h"

namespace biopera::darwin {

const std::array<double, kAlphabetSize>& BackgroundFrequencies() {
  // Dayhoff-style composition, normalized to sum to 1.
  static const std::array<double, kAlphabetSize> kFreqs = [] {
    std::array<double, kAlphabetSize> f = {
        0.087, 0.041, 0.040, 0.047, 0.033, 0.038, 0.050, 0.089, 0.034, 0.037,
        0.085, 0.081, 0.015, 0.040, 0.051, 0.070, 0.058, 0.010, 0.030, 0.065};
    double sum = 0;
    for (double v : f) sum += v;
    for (double& v : f) v /= sum;
    return f;
  }();
  return kFreqs;
}

int ResidueIndex(char c) {
  switch (c) {
    case 'A': return 0;
    case 'R': return 1;
    case 'N': return 2;
    case 'D': return 3;
    case 'C': return 4;
    case 'Q': return 5;
    case 'E': return 6;
    case 'G': return 7;
    case 'H': return 8;
    case 'I': return 9;
    case 'L': return 10;
    case 'K': return 11;
    case 'M': return 12;
    case 'F': return 13;
    case 'P': return 14;
    case 'S': return 15;
    case 'T': return 16;
    case 'W': return 17;
    case 'Y': return 18;
    case 'V': return 19;
    default: return -1;
  }
}

Result<Sequence> Sequence::FromString(std::string name,
                                      std::string_view text) {
  std::vector<uint8_t> residues;
  residues.reserve(text.size());
  for (char c : text) {
    int idx = ResidueIndex(c);
    if (idx < 0) {
      return Status::InvalidArgument(
          StrFormat("sequence %s: invalid residue '%c'", name.c_str(), c));
    }
    residues.push_back(static_cast<uint8_t>(idx));
  }
  return Sequence(std::move(name), std::move(residues));
}

std::string Sequence::ToString() const {
  std::string out;
  out.reserve(residues_.size());
  for (uint8_t r : residues_) out.push_back(kAminoAcids[r]);
  return out;
}

uint64_t Dataset::TotalResidues() const {
  uint64_t total = 0;
  for (const auto& s : sequences_) total += s.length();
  return total;
}

}  // namespace biopera::darwin
