#include "darwin/generator.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"

namespace biopera::darwin {

namespace {

Sequence RandomSequence(const std::string& name, size_t length, Rng* rng) {
  const auto& f = BackgroundFrequencies();
  std::vector<double> weights(f.begin(), f.end());
  std::vector<uint8_t> residues(length);
  for (auto& r : residues) {
    r = static_cast<uint8_t>(rng->Discrete(weights));
  }
  return Sequence(name, std::move(residues));
}

size_t SampleLength(const GeneratorOptions& options, Rng* rng) {
  double len = rng->Gamma(options.length_shape,
                          options.mean_length / options.length_shape);
  return std::max(options.min_length, static_cast<size_t>(len));
}

}  // namespace

Sequence MutateSequence(const Sequence& root, int pam,
                        const PamFamily& family, Rng* rng) {
  const MutationMatrix& m = family.Mutation(pam);
  std::vector<uint8_t> residues(root.length());
  std::vector<double> row(kAlphabetSize);
  for (size_t i = 0; i < root.length(); ++i) {
    const auto& probs = m.p[root[i]];
    row.assign(probs.begin(), probs.end());
    residues[i] = static_cast<uint8_t>(rng->Discrete(row));
  }
  return Sequence(root.name() + "~", std::move(residues));
}

bool SyntheticDataset::SameFamily(size_t i, size_t j) const {
  if (i == j) return false;
  if (family_of[i] != family_of[j]) return false;
  return NumRelatives(i) > 0;
}

size_t SyntheticDataset::NumRelatives(size_t i) const {
  size_t count = 0;
  for (size_t k = 0; k < family_of.size(); ++k) {
    if (k != i && family_of[k] == family_of[i]) ++count;
  }
  return count;
}

SyntheticDataset GenerateDataset(const GeneratorOptions& options, Rng* rng,
                                 const PamFamily& family) {
  SyntheticDataset out;
  uint32_t next_family = 0;
  size_t produced = 0;
  size_t seq_counter = 0;

  auto add = [&](Sequence seq, uint32_t fam) {
    out.dataset.Add(std::move(seq));
    out.family_of.push_back(fam);
    ++produced;
  };

  // Family members first, then singletons to fill up.
  const size_t family_target = static_cast<size_t>(
      options.family_fraction * static_cast<double>(options.num_sequences));
  while (produced < family_target) {
    uint32_t fam = next_family++;
    size_t root_len = SampleLength(options, rng);
    Sequence root =
        RandomSequence(StrFormat("SYN%05zu", seq_counter++), root_len, rng);
    // Geometric family size >= 2.
    size_t members = 2;
    while (rng->Bernoulli(1.0 - 1.0 / (options.mean_family_size - 1)) &&
           members < 40) {
      ++members;
    }
    add(root, fam);
    for (size_t k = 1; k < members && produced < options.num_sequences; ++k) {
      int pam = static_cast<int>(
          rng->Uniform(options.min_member_pam, options.max_member_pam));
      Sequence member = MutateSequence(out.dataset[out.dataset.size() - k],
                                       pam, family, rng);
      // Possibly keep only a fragment (shared-domain case).
      if (rng->Bernoulli(options.fragment_probability) &&
          member.length() > 2 * options.min_length) {
        size_t frag_len = static_cast<size_t>(rng->Uniform(
            static_cast<double>(options.min_length),
            static_cast<double>(member.length())));
        size_t start = static_cast<size_t>(
            rng->Uniform(0, static_cast<double>(member.length() - frag_len)));
        std::vector<uint8_t> frag(
            member.residues().begin() + static_cast<long>(start),
            member.residues().begin() + static_cast<long>(start + frag_len));
        member = Sequence(member.name(), std::move(frag));
      }
      Sequence named(StrFormat("SYN%05zu", seq_counter++),
                     std::vector<uint8_t>(member.residues()));
      add(std::move(named), fam);
      if (produced >= family_target) break;
    }
  }
  while (produced < options.num_sequences) {
    uint32_t fam = next_family++;
    add(RandomSequence(StrFormat("SYN%05zu", seq_counter++),
                       SampleLength(options, rng), rng),
        fam);
  }
  out.num_families = next_family;
  return out;
}

DatasetMeta GenerateDatasetMeta(const GeneratorOptions& options, Rng* rng) {
  DatasetMeta out;
  uint32_t next_family = 0;
  const size_t family_target = static_cast<size_t>(
      options.family_fraction * static_cast<double>(options.num_sequences));

  auto add = [&](uint32_t length, uint32_t fam) {
    out.lengths.push_back(length);
    out.family_of.push_back(fam);
  };

  while (out.lengths.size() < family_target) {
    uint32_t fam = next_family++;
    uint32_t root_len = static_cast<uint32_t>(SampleLength(options, rng));
    size_t members = 2;
    while (rng->Bernoulli(1.0 - 1.0 / (options.mean_family_size - 1)) &&
           members < 40) {
      ++members;
    }
    add(root_len, fam);
    for (size_t k = 1;
         k < members && out.lengths.size() < options.num_sequences; ++k) {
      uint32_t len = root_len;
      if (rng->Bernoulli(options.fragment_probability) &&
          len > 2 * options.min_length) {
        len = static_cast<uint32_t>(rng->Uniform(
            static_cast<double>(options.min_length),
            static_cast<double>(len)));
      }
      add(len, fam);
      if (out.lengths.size() >= family_target) break;
    }
  }
  while (out.lengths.size() < options.num_sequences) {
    add(static_cast<uint32_t>(SampleLength(options, rng)), next_family++);
  }
  return out;
}

}  // namespace biopera::darwin
