#ifndef BIOPERA_DARWIN_ALIGN_SIMD_H_
#define BIOPERA_DARWIN_ALIGN_SIMD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "darwin/align.h"
#include "darwin/pam.h"
#include "darwin/sequence.h"

/// Striped-SIMD Smith-Waterman (Farrar 2007) over saturating int16 scores
/// quantized from the double ScoringMatrix (scale kSwScoreScale). All
/// quantized kernels — the scalar reference, SSE2 and AVX2 — compute
/// bit-identical integer scores: below saturation no clamp ever fires, so
/// every variant evaluates the same exact integer recurrence; a computed
/// best of +32767 means the true quantized optimum is >= 32767, which
/// triggers promotion to the exact double-precision kernel in align.h.
/// See docs/KERNELS.md for the striping layout and the proofs.

namespace biopera::darwin {

/// Which Smith-Waterman kernel implementation scores a pair.
enum class SwKernel {
  kAuto = 0,  // best supported, honoring BIOPERA_SW_KERNEL
  kScalar,    // quantized int32 Gotoh with emulated saturation (reference)
  kSse2,      // Farrar striped, 8 x int16 lanes
  kAvx2,      // Farrar striped, 16 x int16 lanes
};

std::string_view SwKernelName(SwKernel kernel);

/// True if this build and this CPU can run `kernel`.
bool SwKernelSupported(SwKernel kernel);

/// Resolves kAuto to the fastest supported kernel. The environment
/// variable BIOPERA_SW_KERNEL=scalar|sse2|avx2 overrides the automatic
/// choice (read once per process; unsupported or unknown values are
/// ignored). A non-auto `requested` value is returned as-is when
/// supported, else downgraded to the best supported kernel.
SwKernel ResolveSwKernel(SwKernel requested = SwKernel::kAuto);

/// A quantized local-alignment score in int16 units.
struct SwScore {
  int32_t quantized = 0;   // kSwScoreScale units per log-odds unit
  bool saturated = false;  // hit +32767: re-score with the exact kernel

  /// De-quantized score in log-odds units (exact: scale is a power of 2).
  double Value() const {
    return static_cast<double>(quantized) / kSwScoreScale;
  }
};

/// Scores one query against many targets with a prebuilt striped query
/// profile — the cache-friendly shape for all-vs-all batches. Reuses
/// per-scorer scratch rows, so a PairScorer is NOT thread-safe; build one
/// per thread (the profile is O(20 * query length) to construct).
class PairScorer {
 public:
  PairScorer(const Sequence& query, const QuantizedMatrix& matrix,
             const GapPenalty& gaps = GapPenalty(),
             SwKernel kernel = SwKernel::kAuto);

  /// Quantized Smith-Waterman score of query vs `target`. A saturated
  /// result must be re-scored with the exact double kernel (the batch
  /// helpers below do this automatically).
  SwScore Score(const Sequence& target);

  SwKernel kernel() const { return kernel_; }
  size_t query_length() const { return length_; }
  uint64_t cells() const { return cells_; }  // DP cells scored so far

 private:
  SwScore ScoreScalar(const Sequence& target);

  const QuantizedMatrix* matrix_;
  SwKernel kernel_;
  size_t length_ = 0;
  size_t seg_len_ = 0;  // stripe segment length (vectors per residue row)
  size_t lanes_ = 1;    // int16 lanes per vector
  int16_t open_ = 0, extend_ = 0;  // quantized penalties (>= 0)
  uint64_t cells_ = 0;
  std::vector<uint8_t> query_;      // residue copy for the scalar path
  std::vector<int16_t> profile_;    // striped: [residue][segment][lane]
  std::vector<int16_t> h_, h2_, e_; // scratch rows, seg_len_ * lanes_ each
};

/// Counters from a batched scoring call, for bench output and the cost
/// model's measured-throughput calibration.
struct ScorePairsStats {
  uint64_t pairs = 0;
  uint64_t cells = 0;       // DP cells evaluated by the quantized kernel
  uint64_t promotions = 0;  // pairs re-scored by the exact double kernel
};

/// Scores `query` against every target, returning de-quantized scores in
/// log-odds units (saturated pairs are promoted to the exact double
/// kernel, so every returned value is finite and meaningful). Null target
/// pointers yield a 0 score.
std::vector<double> ScorePairs(const Sequence& query,
                               const std::vector<const Sequence*>& targets,
                               const ScoringMatrix& matrix,
                               const QuantizedMatrix& qmatrix,
                               const GapPenalty& gaps = GapPenalty(),
                               SwKernel kernel = SwKernel::kAuto,
                               ScorePairsStats* stats = nullptr);

/// Single-pair convenience over the same machinery: quantized kernel with
/// automatic promotion to the exact scalar path on saturation.
double SimdSmithWatermanScore(const Sequence& a, const Sequence& b,
                              const ScoringMatrix& matrix,
                              const QuantizedMatrix& qmatrix,
                              const GapPenalty& gaps = GapPenalty(),
                              SwKernel kernel = SwKernel::kAuto);

/// Upper bound on |exact double score - de-quantized score| for a pair of
/// these lengths: each aligned column charges at most the matrix's worst
/// rounding error, and each gap op at most half a quantum when the
/// penalties do not quantize exactly (the defaults do). Callers that need
/// exact-threshold decisions re-score pairs within this band using the
/// double kernel (see src/workloads/allvsall.cc).
double QuantizationErrorBound(size_t len_a, size_t len_b,
                              const QuantizedMatrix& matrix,
                              const GapPenalty& gaps);

namespace internal {
/// AVX2 kernel entry point, compiled in align_simd_avx2.cc with -mavx2.
/// Buffers hold seg_len * 16 int16 each; profile is striped for 16 lanes.
SwScore Avx2ScoreStriped(const int16_t* profile, size_t seg_len,
                         const uint8_t* target, size_t target_len,
                         int16_t gap_open, int16_t gap_extend, int16_t* h,
                         int16_t* h2, int16_t* e);
}  // namespace internal

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_ALIGN_SIMD_H_
