#include "darwin/banded_simd.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace biopera::darwin {

namespace {

int16_t QuantizePenalty(double penalty) {
  long rounded = std::lround(penalty * kSwScoreScale);
  if (rounded < 0) rounded = 0;
  if (rounded > INT16_MAX) rounded = INT16_MAX;
  return static_cast<int16_t>(rounded);
}

inline int16_t Subs16(int16_t a, int16_t b) {
  int32_t v = static_cast<int32_t>(a) - b;
  if (v > INT16_MAX) return INT16_MAX;
  if (v < INT16_MIN) return INT16_MIN;
  return static_cast<int16_t>(v);
}

inline int16_t Adds16(int16_t a, int16_t b) {
  int32_t v = static_cast<int32_t>(a) + b;
  if (v > INT16_MAX) return INT16_MAX;
  if (v < INT16_MIN) return INT16_MIN;
  return static_cast<int16_t>(v);
}

/// Scalar pass 1, the reference for the AVX2 variant: identical
/// saturating-int16 operations cell by cell, so the kernels agree
/// bit-for-bit (including when and where saturation clamps).
void ScalarBandedRowPass(const int16_t* h_prev, const int16_t* e_prev,
                         const int16_t* prof, int16_t open, int16_t extend,
                         size_t lo, size_t hi, int16_t* h_cur,
                         int16_t* e_cur) {
  for (size_t j = lo; j <= hi; ++j) {
    int16_t e = std::max(Subs16(h_prev[j], open), Subs16(e_prev[j], extend));
    e_cur[j] = e;
    int16_t match = Adds16(h_prev[j - 1], prof[j]);
    h_cur[j] = std::max({static_cast<int16_t>(0), match, e});
  }
}

}  // namespace

SwScore BandedSimdScore(const Sequence& a, const Sequence& b,
                        const QuantizedMatrix& qmatrix, size_t band,
                        const GapPenalty& gaps, SwKernel kernel) {
  const size_t n = a.length();
  const size_t m = b.length();
  if (n == 0 || m == 0) return {};
  kernel = ResolveSwKernel(kernel);
  // Only the scalar and AVX2 variants exist for the banded row shape;
  // kSse2 (a striped-layout kernel) falls back to scalar here.
  const bool use_avx2 = kernel == SwKernel::kAvx2;

  const int16_t open = QuantizePenalty(gaps.open);
  const int16_t extend = QuantizePenalty(gaps.extend);

  // Target profile: prof[r][j] = score(r, b[j-1]) for j in 1..m, so each
  // row's pass 1 reads one contiguous slice (no per-cell gather).
  std::vector<int16_t> profile(static_cast<size_t>(kAlphabetSize) * (m + 2),
                               0);
  for (int r = 0; r < kAlphabetSize; ++r) {
    int16_t* prof = profile.data() + static_cast<size_t>(r) * (m + 2);
    for (size_t j = 1; j <= m; ++j) prof[j] = qmatrix.score[r][b[j - 1]];
  }

  // Full-width rows (+16 slack so unaligned vector tails never read past
  // the allocation). Cells outside a row's window hold 0, the value the
  // scalar double kernel assumes for out-of-band reads.
  const size_t width = m + 2 + 16;
  std::vector<int16_t> h_prev(width, 0), h_cur(width, 0);
  std::vector<int16_t> e_prev(width, 0), e_cur(width, 0);

  int16_t best = 0;
  size_t prev_lo = 1, prev_hi = 0;  // empty before the first row
  for (size_t i = 1; i <= n; ++i) {
    const size_t center = (i * m) / n;
    const size_t lo = center > band ? std::max<size_t>(1, center - band) : 1;
    const size_t hi = std::min(m, center + band);
    // The window only ever moves right; zero the cells this row reads
    // that the previous row did not write (stale values from row i-2).
    const size_t read_lo = lo == 0 ? 0 : lo - 1;
    for (size_t j = read_lo; j < std::min(prev_lo, hi + 1); ++j) {
      h_prev[j] = 0;
      e_prev[j] = 0;
    }
    for (size_t j = std::max(prev_hi + 1, read_lo); j <= hi; ++j) {
      h_prev[j] = 0;
      e_prev[j] = 0;
    }

    const int16_t* prof =
        profile.data() + static_cast<size_t>(a[i - 1]) * (m + 2);
#if BIOPERA_HAVE_AVX2
    if (use_avx2) {
      internal::Avx2BandedRowPass(h_prev.data(), e_prev.data(), prof, open,
                                  extend, lo, hi, h_cur.data(),
                                  e_cur.data());
    } else {
      ScalarBandedRowPass(h_prev.data(), e_prev.data(), prof, open, extend,
                          lo, hi, h_cur.data(), e_cur.data());
    }
#else
    (void)use_avx2;
    ScalarBandedRowPass(h_prev.data(), e_prev.data(), prof, open, extend, lo,
                        hi, h_cur.data(), e_cur.data());
#endif

    // Pass 2: fold the horizontal-gap chain F left to right. f_j sees the
    // final h_{j-1} (after its own F fold), so this is the sequential
    // part; same saturating arithmetic as pass 1.
    int16_t f = 0, h_left = 0;
    for (size_t j = lo; j <= hi; ++j) {
      f = std::max(Subs16(h_left, open), Subs16(f, extend));
      int16_t cell = std::max(h_cur[j], f);
      h_cur[j] = cell;
      h_left = cell;
      best = std::max(best, cell);
    }

    std::swap(h_prev, h_cur);
    std::swap(e_prev, e_cur);
    prev_lo = lo;
    prev_hi = hi;
  }
  return {best, best == INT16_MAX};
}

double BandedSimdSmithWatermanScore(const Sequence& a, const Sequence& b,
                                    const ScoringMatrix& matrix,
                                    const QuantizedMatrix& qmatrix,
                                    size_t band, const GapPenalty& gaps,
                                    SwKernel kernel) {
  SwScore s = BandedSimdScore(a, b, qmatrix, band, gaps, kernel);
  if (s.saturated) {
    return BandedSmithWatermanScore(a, b, matrix, band, gaps);
  }
  return s.Value();
}

}  // namespace biopera::darwin
