#ifndef BIOPERA_DARWIN_SEQUENCE_H_
#define BIOPERA_DARWIN_SEQUENCE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace biopera::darwin {

/// Number of amino-acid symbols.
inline constexpr int kAlphabetSize = 20;

/// One-letter amino-acid codes in canonical order.
inline constexpr char kAminoAcids[kAlphabetSize + 1] = "ARNDCQEGHILKMFPSTWYV";

/// Background (Dayhoff-style) amino-acid frequencies, same order as
/// kAminoAcids; they sum to 1.
const std::array<double, kAlphabetSize>& BackgroundFrequencies();

/// Maps a one-letter code to its index, or -1 if not an amino acid.
int ResidueIndex(char c);

/// A protein sequence stored as residue indices (0..19).
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::string name, std::vector<uint8_t> residues)
      : name_(std::move(name)), residues_(std::move(residues)) {}

  /// Parses a one-letter-code string; fails on unknown characters.
  static Result<Sequence> FromString(std::string name, std::string_view text);

  const std::string& name() const { return name_; }
  size_t length() const { return residues_.size(); }
  uint8_t operator[](size_t i) const { return residues_[i]; }
  const std::vector<uint8_t>& residues() const { return residues_; }

  /// Renders back to one-letter codes.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<uint8_t> residues_;
};

/// An in-memory sequence database (the stand-in for a Swiss-Prot release).
class Dataset {
 public:
  Dataset() = default;

  void Add(Sequence seq) { sequences_.push_back(std::move(seq)); }
  size_t size() const { return sequences_.size(); }
  const Sequence& operator[](size_t i) const { return sequences_[i]; }
  const std::vector<Sequence>& sequences() const { return sequences_; }

  /// Total residues across all entries.
  uint64_t TotalResidues() const;

 private:
  std::vector<Sequence> sequences_;
};

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_SEQUENCE_H_
