#ifndef BIOPERA_DARWIN_PAM_H_
#define BIOPERA_DARWIN_PAM_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "darwin/sequence.h"

namespace biopera::darwin {

/// A 20x20 substitution scoring matrix in Dayhoff log-odds units
/// (10 * log10(P(i->j at this distance) / f_j)).
struct ScoringMatrix {
  double pam = 0;  // evolutionary distance this matrix was built for
  std::array<std::array<double, kAlphabetSize>, kAlphabetSize> score{};

  double operator()(int a, int b) const { return score[a][b]; }
};

/// Fixed-point quantization scale for the integer SIMD kernels: one
/// Dayhoff log-odds unit maps to kSwScoreScale int16 units. A power of
/// two so de-quantizing (quantized / kSwScoreScale) is exact in double.
inline constexpr int kSwScoreScale = 8;

/// A ScoringMatrix quantized to saturating int16 units for the striped
/// SIMD kernels (see src/darwin/align_simd.h and docs/KERNELS.md).
/// Entry (i, j) = round(score[i][j] * kSwScoreScale), clamped to the
/// int16 range.
struct QuantizedMatrix {
  double pam = 0;
  std::array<std::array<int16_t, kAlphabetSize>, kAlphabetSize> score{};
  int16_t max_score = 0;  // largest entry; bounds per-cell growth
  // Largest |rounded - exact| over all entries, in log-odds units; feeds
  // the per-pair quantization error bound (align_simd.h).
  double max_entry_error = 0;

  int16_t operator()(int a, int b) const { return score[a][b]; }
};

/// Quantizes a double scoring matrix to int16 units (scale kSwScoreScale).
QuantizedMatrix QuantizeScoring(const ScoringMatrix& matrix);

/// A 20x20 row-stochastic residue mutation matrix: entry (i, j) is the
/// probability that residue i is observed as j after the matrix's
/// evolutionary distance.
struct MutationMatrix {
  std::array<std::array<double, kAlphabetSize>, kAlphabetSize> p{};
};

/// The PAM matrix family used in place of Darwin's GCB matrices.
///
/// The paper's Darwin system scores alignments with the Gonnet-Cohen-Benner
/// matrices; those are derived from proprietary alignment data, so we build
/// a Dayhoff-style family from first principles instead: a reversible
/// Markov mutation process whose exchangeabilities decay with a
/// physicochemical distance (hydropathy, volume, charge) between residues,
/// calibrated so that one PAM unit mutates 1% of positions. Scores are the
/// standard 10*log10 odds against the background frequencies. The family
/// has the properties the experiments rely on: identity-dominant at low
/// PAM, converging to background at high PAM, and a smooth unimodal
/// score-vs-PAM landscape for distance refinement.
class PamFamily {
 public:
  PamFamily();

  /// Mutation matrix at integer PAM distance n >= 1 (cached).
  /// Thread-safe: activity kernels score concurrently on the executor
  /// pool (src/exec/) and share the process-wide family.
  const MutationMatrix& Mutation(int n) const;

  /// Scoring matrix at integer PAM distance n >= 1 (cached, thread-safe).
  const ScoringMatrix& Scoring(int n) const;

  /// Scoring matrix quantized for the SIMD kernels at integer PAM
  /// distance n >= 1 (cached, thread-safe). Cached per matrix so batched
  /// scoring never re-quantizes; the striped query profile itself is
  /// rebuilt per (query, matrix) — it is O(20 * len) to build.
  const QuantizedMatrix& QuantizedScoring(int n) const;

  /// Expected fraction of mutated positions after n PAM units.
  double ExpectedDifference(int n) const;

  /// Largest PAM distance supported (matrices converge to background well
  /// before this).
  static constexpr int kMaxPam = 1000;

 private:
  // Assumes cache_mu_ is held; Mutation recurses through cached powers.
  const MutationMatrix& MutationLocked(int n) const;

  MutationMatrix pam1_;
  mutable std::mutex cache_mu_;
  mutable std::map<int, std::unique_ptr<MutationMatrix>> mutation_cache_;
  mutable std::map<int, std::unique_ptr<ScoringMatrix>> scoring_cache_;
  mutable std::map<int, std::unique_ptr<QuantizedMatrix>> quantized_cache_;
};

/// Returns the process-wide shared family (construction is cheap; powers
/// are cached lazily).
const PamFamily& SharedPamFamily();

/// Identity of the matrix family for provenance records: which
/// substitution-model construction (and revision of it) scored a run's
/// alignments. Two runs whose lineage shows different family versions
/// are not comparable match-for-match even at the same PAM distance.
std::string_view PamFamilyVersion();

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_PAM_H_
