#ifndef BIOPERA_DARWIN_PAM_H_
#define BIOPERA_DARWIN_PAM_H_

#include <array>
#include <map>
#include <memory>

#include "darwin/sequence.h"

namespace biopera::darwin {

/// A 20x20 substitution scoring matrix in Dayhoff log-odds units
/// (10 * log10(P(i->j at this distance) / f_j)).
struct ScoringMatrix {
  double pam = 0;  // evolutionary distance this matrix was built for
  std::array<std::array<double, kAlphabetSize>, kAlphabetSize> score{};

  double operator()(int a, int b) const { return score[a][b]; }
};

/// A 20x20 row-stochastic residue mutation matrix: entry (i, j) is the
/// probability that residue i is observed as j after the matrix's
/// evolutionary distance.
struct MutationMatrix {
  std::array<std::array<double, kAlphabetSize>, kAlphabetSize> p{};
};

/// The PAM matrix family used in place of Darwin's GCB matrices.
///
/// The paper's Darwin system scores alignments with the Gonnet-Cohen-Benner
/// matrices; those are derived from proprietary alignment data, so we build
/// a Dayhoff-style family from first principles instead: a reversible
/// Markov mutation process whose exchangeabilities decay with a
/// physicochemical distance (hydropathy, volume, charge) between residues,
/// calibrated so that one PAM unit mutates 1% of positions. Scores are the
/// standard 10*log10 odds against the background frequencies. The family
/// has the properties the experiments rely on: identity-dominant at low
/// PAM, converging to background at high PAM, and a smooth unimodal
/// score-vs-PAM landscape for distance refinement.
class PamFamily {
 public:
  PamFamily();

  /// Mutation matrix at integer PAM distance n >= 1 (cached).
  const MutationMatrix& Mutation(int n) const;

  /// Scoring matrix at integer PAM distance n >= 1 (cached).
  const ScoringMatrix& Scoring(int n) const;

  /// Expected fraction of mutated positions after n PAM units.
  double ExpectedDifference(int n) const;

  /// Largest PAM distance supported (matrices converge to background well
  /// before this).
  static constexpr int kMaxPam = 1000;

 private:
  MutationMatrix pam1_;
  mutable std::map<int, std::unique_ptr<MutationMatrix>> mutation_cache_;
  mutable std::map<int, std::unique_ptr<ScoringMatrix>> scoring_cache_;
};

/// Returns the process-wide shared family (construction is cheap; powers
/// are cached lazily).
const PamFamily& SharedPamFamily();

/// Identity of the matrix family for provenance records: which
/// substitution-model construction (and revision of it) scored a run's
/// alignments. Two runs whose lineage shows different family versions
/// are not comparable match-for-match even at the same PAM distance.
std::string_view PamFamilyVersion();

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_PAM_H_
