#ifndef BIOPERA_DARWIN_BANDED_SIMD_H_
#define BIOPERA_DARWIN_BANDED_SIMD_H_

#include <cstdint>

#include "darwin/align_simd.h"
#include "darwin/banded.h"

/// SIMD-banded Smith-Waterman: the quantized int16 counterpart of
/// BandedSmithWatermanScore for the all-vs-all screen's diagonal case.
///
/// Each row's band window is processed in two passes. Pass 1 is the
/// vectorizable part — the vertical-gap state E, the diagonal match term
/// and the zero clamp have no intra-row dependency, so they run 16 cells
/// per AVX2 vector against a prebuilt target profile. Pass 2 folds in the
/// horizontal-gap state F, whose left-to-right chain (f_j depends on the
/// *final* h_{j-1}) is inherently sequential; it runs scalar in the same
/// saturating int16 arithmetic. Both the scalar and the AVX2 variant of
/// pass 1 evaluate the identical saturating-int16 recurrence, so the two
/// kernels are bit-identical cell by cell — the same argument as the
/// striped kernels in align_simd.h (docs/KERNELS.md). A saturated best
/// (+32767) promotes to the exact double banded kernel.

namespace biopera::darwin {

/// Quantized banded score of `a` vs `b` over a band of half width `band`
/// around the length-proportional diagonal (same geometry as
/// BandedSmithWatermanScore). `kernel` resolves as ResolveSwKernel with
/// kSse2 mapped to the scalar variant (only AVX2 is implemented for the
/// banded shape). A saturated result must be re-scored with the exact
/// double kernel.
SwScore BandedSimdScore(const Sequence& a, const Sequence& b,
                        const QuantizedMatrix& qmatrix, size_t band,
                        const GapPenalty& gaps = GapPenalty(),
                        SwKernel kernel = SwKernel::kAuto);

/// De-quantized convenience: quantized banded kernel with automatic
/// promotion to the exact double banded kernel on saturation. The result
/// is within QuantizationErrorBound of BandedSmithWatermanScore for the
/// same band.
double BandedSimdSmithWatermanScore(const Sequence& a, const Sequence& b,
                                    const ScoringMatrix& matrix,
                                    const QuantizedMatrix& qmatrix,
                                    size_t band,
                                    const GapPenalty& gaps = GapPenalty(),
                                    SwKernel kernel = SwKernel::kAuto);

namespace internal {
/// AVX2 pass 1 of one banded row over window [lo, hi] (1-based): writes
/// e_cur[j] = max(h_prev[j] - open, e_prev[j] - extend) and the pre-F
/// h_cur[j] = max(0, h_prev[j-1] + prof[j], e_cur[j]). `prof` is the
/// per-row slice of the target profile (prof[j] = score(a_i, b[j-1])).
/// Compiled in banded_simd_avx2.cc with -mavx2.
void Avx2BandedRowPass(const int16_t* h_prev, const int16_t* e_prev,
                       const int16_t* prof, int16_t open, int16_t extend,
                       size_t lo, size_t hi, int16_t* h_cur, int16_t* e_cur);
}  // namespace internal

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_BANDED_SIMD_H_
