#include "darwin/match.h"

#include <algorithm>

#include "common/strings.h"

namespace biopera::darwin {

std::string Match::ToLine() const {
  return StrFormat("%u %u %.4f %.2f", entry_a, entry_b, score, pam_distance);
}

Result<Match> Match::FromLine(std::string_view line) {
  auto fields = StrSplit(std::string(line), ' ');
  if (fields.size() != 4) {
    return Status::InvalidArgument("match line: expected 4 fields");
  }
  long long a, b;
  double score, pam;
  if (!ParseInt64(fields[0], &a) || !ParseInt64(fields[1], &b) ||
      !ParseDouble(fields[2], &score) || !ParseDouble(fields[3], &pam)) {
    return Status::InvalidArgument("match line: parse error");
  }
  Match m;
  m.entry_a = static_cast<uint32_t>(a);
  m.entry_b = static_cast<uint32_t>(b);
  m.score = score;
  m.pam_distance = pam;
  return m;
}

void SortByEntry(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& x, const Match& y) {
              if (x.entry_a != y.entry_a) return x.entry_a < y.entry_a;
              return x.entry_b < y.entry_b;
            });
}

void SortByPamDistance(std::vector<Match>* matches) {
  std::sort(matches->begin(), matches->end(),
            [](const Match& x, const Match& y) {
              if (x.pam_distance != y.pam_distance) {
                return x.pam_distance < y.pam_distance;
              }
              if (x.entry_a != y.entry_a) return x.entry_a < y.entry_a;
              return x.entry_b < y.entry_b;
            });
}

std::string MatchesToText(const std::vector<Match>& matches) {
  std::string out;
  for (const Match& m : matches) {
    out += m.ToLine();
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<Match>> MatchesFromText(std::string_view text) {
  std::vector<Match> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(start, nl - start);
    if (!StripWhitespace(line).empty()) {
      BIOPERA_ASSIGN_OR_RETURN(Match m, Match::FromLine(line));
      out.push_back(m);
    }
    start = nl + 1;
  }
  return out;
}

}  // namespace biopera::darwin
