#include "darwin/align_simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace biopera::darwin {

namespace {

// Profile value for query positions past the end of the last stripe.
// int16 minimum: adds_epi16(h, kPadScore) is <= -1 for any h >= 0, so a
// padded slot's H is pinned at 0 and padded positions (which are the tail
// of the striped position order) never leak score into real positions.
constexpr int16_t kPadScore = INT16_MIN;

int16_t QuantizePenalty(double penalty) {
  long rounded = std::lround(penalty * kSwScoreScale);
  if (rounded < 0) rounded = 0;
  if (rounded > INT16_MAX) rounded = INT16_MAX;
  return static_cast<int16_t>(rounded);
}

SwKernel EnvKernelOverride() {
  static const SwKernel cached = [] {
    const char* env = std::getenv("BIOPERA_SW_KERNEL");
    if (env == nullptr) return SwKernel::kAuto;
    std::string_view v(env);
    if (v == "scalar") return SwKernel::kScalar;
    if (v == "sse2") return SwKernel::kSse2;
    if (v == "avx2") return SwKernel::kAvx2;
    return SwKernel::kAuto;
  }();
  return cached;
}

#if defined(__SSE2__)

// Farrar striped kernel, 8 x int16 lanes. `profile` is laid out
// [residue][segment][lane]; h/h2/e are seg_len * 8 scratch rows.
SwScore Sse2ScoreStriped(const int16_t* profile, size_t seg_len,
                         const uint8_t* target, size_t target_len,
                         int16_t gap_open, int16_t gap_extend, int16_t* h,
                         int16_t* h2, int16_t* e) {
  constexpr size_t kLanes = 8;
  const __m128i v_zero = _mm_setzero_si128();
  const __m128i v_open = _mm_set1_epi16(gap_open);
  const __m128i v_ext = _mm_set1_epi16(gap_extend);
  __m128i v_best = v_zero;
  std::memset(h, 0, seg_len * kLanes * sizeof(int16_t));
  std::memset(e, 0, seg_len * kLanes * sizeof(int16_t));
  int16_t* h_load = h;
  int16_t* h_store = h2;
  for (size_t i = 0; i < target_len; ++i) {
    const int16_t* prof =
        profile + static_cast<size_t>(target[i]) * seg_len * kLanes;
    __m128i v_f = v_zero;
    // Diagonal input for stripe slot 0: the previous row's last stripe
    // vector shifted up one lane (lane 0 becomes the H(i-1, -1) = 0
    // boundary; lane k+1 receives query position (k+1)*seg_len - 1).
    __m128i v_h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
        h_load + (seg_len - 1) * kLanes));
    v_h = _mm_slli_si128(v_h, 2);
    for (size_t j = 0; j < seg_len; ++j) {
      __m128i v_e = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(e + j * kLanes));
      v_h = _mm_adds_epi16(
          v_h, _mm_loadu_si128(
                   reinterpret_cast<const __m128i*>(prof + j * kLanes)));
      v_h = _mm_max_epi16(v_h, v_e);
      v_h = _mm_max_epi16(v_h, v_f);
      v_h = _mm_max_epi16(v_h, v_zero);
      v_best = _mm_max_epi16(v_best, v_h);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(h_store + j * kLanes),
                       v_h);
      __m128i v_h_gap = _mm_subs_epi16(v_h, v_open);
      v_e = _mm_subs_epi16(v_e, v_ext);
      v_e = _mm_max_epi16(v_e, v_h_gap);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(e + j * kLanes), v_e);
      v_f = _mm_subs_epi16(v_f, v_ext);
      v_f = _mm_max_epi16(v_f, v_h_gap);
      // Diagonal input for the next slot: previous row, same slot.
      v_h = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(h_load + j * kLanes));
    }
    // Lazy F: propagate query-gap runs across stripe boundaries until no
    // lane can improve on re-opening a gap from the stored H.
    for (size_t k = 0; k < kLanes; ++k) {
      v_f = _mm_slli_si128(v_f, 2);
      for (size_t j = 0; j < seg_len; ++j) {
        __m128i v_h2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(h_store + j * kLanes));
        v_h2 = _mm_max_epi16(v_h2, v_f);
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(h_store + j * kLanes), v_h2);
        __m128i v_h_gap = _mm_subs_epi16(v_h2, v_open);
        v_f = _mm_subs_epi16(v_f, v_ext);
        if (_mm_movemask_epi8(_mm_cmpgt_epi16(v_f, v_h_gap)) == 0) {
          goto row_done;
        }
      }
    }
  row_done:
    std::swap(h_load, h_store);
  }
  __m128i t = _mm_max_epi16(v_best, _mm_srli_si128(v_best, 8));
  t = _mm_max_epi16(t, _mm_srli_si128(t, 4));
  t = _mm_max_epi16(t, _mm_srli_si128(t, 2));
  int32_t best = static_cast<int16_t>(_mm_extract_epi16(t, 0));
  return {best, best == INT16_MAX};
}

#endif  // __SSE2__

}  // namespace

std::string_view SwKernelName(SwKernel kernel) {
  switch (kernel) {
    case SwKernel::kAuto:
      return "auto";
    case SwKernel::kScalar:
      return "scalar";
    case SwKernel::kSse2:
      return "sse2";
    case SwKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SwKernelSupported(SwKernel kernel) {
  switch (kernel) {
    case SwKernel::kAuto:
    case SwKernel::kScalar:
      return true;
    case SwKernel::kSse2:
#if defined(__SSE2__)
      return true;
#else
      return false;
#endif
    case SwKernel::kAvx2:
#if BIOPERA_HAVE_AVX2
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

SwKernel ResolveSwKernel(SwKernel requested) {
  if (requested == SwKernel::kAuto) {
    SwKernel env = EnvKernelOverride();
    if (env != SwKernel::kAuto && SwKernelSupported(env)) return env;
    if (SwKernelSupported(SwKernel::kAvx2)) return SwKernel::kAvx2;
    if (SwKernelSupported(SwKernel::kSse2)) return SwKernel::kSse2;
    return SwKernel::kScalar;
  }
  if (SwKernelSupported(requested)) return requested;
  if (requested == SwKernel::kAvx2 && SwKernelSupported(SwKernel::kSse2)) {
    return SwKernel::kSse2;
  }
  return SwKernel::kScalar;
}

PairScorer::PairScorer(const Sequence& query, const QuantizedMatrix& matrix,
                       const GapPenalty& gaps, SwKernel kernel)
    : matrix_(&matrix),
      kernel_(ResolveSwKernel(kernel)),
      length_(query.length()),
      open_(QuantizePenalty(gaps.open)),
      extend_(QuantizePenalty(gaps.extend)) {
  query_ = query.residues();
  if (kernel_ == SwKernel::kScalar || length_ == 0) return;
  lanes_ = kernel_ == SwKernel::kAvx2 ? 16 : 8;
  seg_len_ = (length_ + lanes_ - 1) / lanes_;
  profile_.assign(kAlphabetSize * seg_len_ * lanes_, kPadScore);
  for (int r = 0; r < kAlphabetSize; ++r) {
    for (size_t p = 0; p < length_; ++p) {
      size_t lane = p / seg_len_;
      size_t slot = p % seg_len_;
      profile_[(static_cast<size_t>(r) * seg_len_ + slot) * lanes_ + lane] =
          matrix.score[query_[p]][r];
    }
  }
  h_.resize(seg_len_ * lanes_);
  h2_.resize(seg_len_ * lanes_);
  e_.resize(seg_len_ * lanes_);
}

SwScore PairScorer::Score(const Sequence& target) {
  if (length_ == 0 || target.length() == 0) return {};
  cells_ += static_cast<uint64_t>(length_) * target.length();
  switch (kernel_) {
#if BIOPERA_HAVE_AVX2
    case SwKernel::kAvx2:
      return internal::Avx2ScoreStriped(
          profile_.data(), seg_len_, target.residues().data(),
          target.length(), open_, extend_, h_.data(), h2_.data(),
          e_.data());
#endif
#if defined(__SSE2__)
    case SwKernel::kSse2:
      return Sse2ScoreStriped(profile_.data(), seg_len_,
                              target.residues().data(), target.length(),
                              open_, extend_, h_.data(), h2_.data(),
                              e_.data());
#endif
    default:
      return ScoreScalar(target);
  }
}

SwScore PairScorer::ScoreScalar(const Sequence& target) {
  const size_t n = length_;
  const size_t m = target.length();
  // Plain int32 Gotoh with every add/subtract clamped to the int16 range:
  // the semantics of the SIMD saturating ops, so saturation behaviour
  // (and therefore the promotion decision) is bit-identical.
  auto sat = [](int32_t v) -> int32_t {
    if (v > INT16_MAX) return INT16_MAX;
    if (v < INT16_MIN) return INT16_MIN;
    return v;
  };
  std::vector<int32_t> h(m + 1, 0), e(m + 1, 0);
  int32_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    const auto& row = matrix_->score[query_[i - 1]];
    int32_t diag = 0, f = 0, h_left = 0;
    for (size_t j = 1; j <= m; ++j) {
      e[j] = std::max(sat(h[j] - open_), sat(e[j] - extend_));
      f = std::max(sat(h_left - open_), sat(f - extend_));
      int32_t match = sat(diag + row[target[j - 1]]);
      int32_t cell = std::max({0, match, e[j], f});
      diag = h[j];
      h[j] = cell;
      h_left = cell;
      best = std::max(best, cell);
    }
  }
  return {best, best == INT16_MAX};
}

std::vector<double> ScorePairs(const Sequence& query,
                               const std::vector<const Sequence*>& targets,
                               const ScoringMatrix& matrix,
                               const QuantizedMatrix& qmatrix,
                               const GapPenalty& gaps, SwKernel kernel,
                               ScorePairsStats* stats) {
  std::vector<double> out(targets.size(), 0.0);
  PairScorer scorer(query, qmatrix, gaps, kernel);
  uint64_t promotions = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const Sequence* target = targets[i];
    if (target == nullptr) continue;
    SwScore s = scorer.Score(*target);
    if (s.saturated) {
      out[i] = SmithWatermanScore(query, *target, matrix, gaps);
      ++promotions;
    } else {
      out[i] = s.Value();
    }
  }
  if (stats != nullptr) {
    stats->pairs += targets.size();
    stats->cells += scorer.cells();
    stats->promotions += promotions;
  }
  return out;
}

double SimdSmithWatermanScore(const Sequence& a, const Sequence& b,
                              const ScoringMatrix& matrix,
                              const QuantizedMatrix& qmatrix,
                              const GapPenalty& gaps, SwKernel kernel) {
  PairScorer scorer(a, qmatrix, gaps, kernel);
  SwScore s = scorer.Score(b);
  if (s.saturated) return SmithWatermanScore(a, b, matrix, gaps);
  return s.Value();
}

double QuantizationErrorBound(size_t len_a, size_t len_b,
                              const QuantizedMatrix& matrix,
                              const GapPenalty& gaps) {
  // Any alignment path has at most min(len_a, len_b) substitution
  // columns, each charged the matrix's worst per-entry rounding error,
  // and at most len_a + len_b gap ops, each charged the penalty rounding
  // error (zero for penalties that are exact multiples of the quantum,
  // like the defaults).
  double sub_columns = static_cast<double>(std::min(len_a, len_b));
  double bound = sub_columns * matrix.max_entry_error;
  double open_err =
      std::abs(static_cast<double>(QuantizePenalty(gaps.open)) /
                   kSwScoreScale -
               gaps.open);
  double ext_err =
      std::abs(static_cast<double>(QuantizePenalty(gaps.extend)) /
                   kSwScoreScale -
               gaps.extend);
  double gap_err = std::max(open_err, ext_err);
  if (gap_err > 0) {
    bound += static_cast<double>(len_a + len_b) * gap_err;
  }
  return bound;
}

}  // namespace biopera::darwin
