#ifndef BIOPERA_DARWIN_GENERATOR_H_
#define BIOPERA_DARWIN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "darwin/pam.h"
#include "darwin/sequence.h"

namespace biopera::darwin {

/// Parameters of the synthetic Swiss-Prot stand-in.
///
/// Sequences are organized into evolutionary families: each family has a
/// random root sequence and members derived from it by applying the PAM
/// mutation process at a sampled distance. Members of the same family
/// therefore align with high scores (true matches), while cross-family
/// pairs align near the random background. Lengths follow a gamma
/// distribution resembling Swiss-Prot's (mean ~360 residues).
struct GeneratorOptions {
  size_t num_sequences = 532;
  double mean_length = 360;
  double length_shape = 2.6;   // gamma shape; heavier tail for small shape
  size_t min_length = 40;
  double family_fraction = 0.6;      // fraction of entries in families
  double mean_family_size = 6;       // geometric family sizes
  double min_member_pam = 20;        // PAM distance of members from root
  double max_member_pam = 250;
  /// Members may be truncated fragments of the root (domain sharing).
  double fragment_probability = 0.25;
};

/// A generated dataset plus its ground-truth family structure (used by the
/// synthetic activity mode and by tests that need expected match sets).
struct SyntheticDataset {
  Dataset dataset;
  /// family_of[i] == family id for entry i; singletons get unique ids.
  std::vector<uint32_t> family_of;
  /// Number of families (including singleton families).
  uint32_t num_families = 0;

  /// True if entries i and j belong to the same (non-singleton) family.
  bool SameFamily(size_t i, size_t j) const;
  /// Number of same-family partners of entry i.
  size_t NumRelatives(size_t i) const;
};

/// Generates a reproducible synthetic dataset.
SyntheticDataset GenerateDataset(const GeneratorOptions& options, Rng* rng,
                                 const PamFamily& family = SharedPamFamily());

/// Dataset *metadata* only: entry lengths and family structure, without
/// materializing residues. Statistically matches GenerateDataset and is
/// what the cluster-scale simulated experiments need (a Swiss-Prot-38-
/// sized dataset has ~80,000 entries; the simulator never aligns them for
/// real, it only needs their lengths and ground-truth relatives).
struct DatasetMeta {
  std::vector<uint32_t> lengths;
  std::vector<uint32_t> family_of;
};
DatasetMeta GenerateDatasetMeta(const GeneratorOptions& options, Rng* rng);

/// Mutates `root` by the PAM process at distance `pam` (helper exposed for
/// tests: expected residue-difference fraction follows
/// PamFamily::ExpectedDifference).
Sequence MutateSequence(const Sequence& root, int pam,
                        const PamFamily& family, Rng* rng);

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_GENERATOR_H_
