#include "darwin/significance.h"

#include <cassert>
#include <cmath>

namespace biopera::darwin {

namespace {

Sequence RandomSequence(size_t len, Rng* rng) {
  const auto& f = BackgroundFrequencies();
  std::vector<double> weights(f.begin(), f.end());
  std::vector<uint8_t> residues(len);
  for (auto& r : residues) {
    r = static_cast<uint8_t>(rng->Discrete(weights));
  }
  return Sequence("rand", std::move(residues));
}

constexpr double kEulerGamma = 0.57721566490153286;

}  // namespace

GumbelParams CalibrateGumbel(const ScoringMatrix& matrix, size_t len,
                             int samples, Rng* rng, const GapPenalty& gaps) {
  assert(samples > 2);
  double sum = 0, sum_sq = 0;
  for (int s = 0; s < samples; ++s) {
    Sequence a = RandomSequence(len, rng);
    Sequence b = RandomSequence(len, rng);
    double score = SmithWatermanScore(a, b, matrix, gaps);
    sum += score;
    sum_sq += score * score;
  }
  double mean = sum / samples;
  double var = sum_sq / samples - mean * mean;
  GumbelParams params;
  // Method of moments for the Gumbel distribution.
  params.lambda = M_PI / std::sqrt(6.0 * std::max(var, 1e-9));
  double mu = mean - kEulerGamma / params.lambda;
  double mn = static_cast<double>(len) * static_cast<double>(len);
  // mu = ln(K m n) / lambda  =>  K = exp(lambda mu) / (m n).
  params.k = std::exp(params.lambda * mu) / mn;
  params.calibration_m = static_cast<double>(len);
  params.calibration_n = static_cast<double>(len);
  return params;
}

double PairExpect(const GumbelParams& params, double score, double m,
                  double n) {
  return params.k * m * n * std::exp(-params.lambda * score);
}

double ThresholdForExpectedHits(const GumbelParams& params, double m,
                                double n, double num_pairs,
                                double expected_random_hits) {
  assert(expected_random_hits > 0 && num_pairs > 0);
  // Solve num_pairs * K m n e^{-lambda x} = expected_random_hits.
  return std::log(params.k * m * n * num_pairs / expected_random_hits) /
         params.lambda;
}

}  // namespace biopera::darwin
