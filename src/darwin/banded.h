#ifndef BIOPERA_DARWIN_BANDED_H_
#define BIOPERA_DARWIN_BANDED_H_

#include "darwin/align.h"

namespace biopera::darwin {

/// Banded Smith-Waterman: restricts the DP to a diagonal band of half
/// width `band`, the classic optimization interpreted systems like Darwin
/// use for the fast first pass ("a fast but inaccurate algorithm", §4).
/// For pairs whose alignment stays near the main diagonal (close homologs
/// of similar length) it returns the exact local score at a fraction of
/// the cost; for arbitrary pairs it is a lower bound.
double BandedSmithWatermanScore(const Sequence& a, const Sequence& b,
                                const ScoringMatrix& matrix, size_t band,
                                const GapPenalty& gaps = GapPenalty());

/// Picks a band half-width for a fixed-PAM screening pass: wide enough to
/// absorb the expected indel drift of two homologs at distance `pam`,
/// narrow enough to keep the speedup (roughly 2*band/min_len of the full
/// cost).
size_t SuggestBand(size_t len_a, size_t len_b, int pam);

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_BANDED_H_
