#include "darwin/pam.h"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace biopera::darwin {

namespace {

// Kyte-Doolittle hydropathy, side-chain volume (A^3) and formal charge,
// in kAminoAcids order (ARNDCQEGHILKMFPSTWYV).
constexpr double kHydropathy[kAlphabetSize] = {
    1.8, -4.5, -3.5, -3.5, 2.5, -3.5, -3.5, -0.4, -3.2, 4.5,
    3.8, -3.9, 1.9,  2.8,  -1.6, -0.8, -0.7, -0.9, -1.3, 4.2};
constexpr double kVolume[kAlphabetSize] = {
    88,  173, 114, 111, 108, 143, 138, 60,  153, 166,
    166, 168, 162, 189, 112, 89,  116, 227, 193, 140};
constexpr double kCharge[kAlphabetSize] = {
    0, 1, 0, -1, 0, 0, -1, 0, 0.5, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0};

using Matrix = std::array<std::array<double, kAlphabetSize>, kAlphabetSize>;

Matrix Multiply(const Matrix& a, const Matrix& b) {
  Matrix out{};
  for (int i = 0; i < kAlphabetSize; ++i) {
    for (int k = 0; k < kAlphabetSize; ++k) {
      double aik = a[i][k];
      if (aik == 0) continue;
      for (int j = 0; j < kAlphabetSize; ++j) {
        out[i][j] += aik * b[k][j];
      }
    }
  }
  return out;
}

}  // namespace

PamFamily::PamFamily() {
  const auto& f = BackgroundFrequencies();
  // Physicochemical distance -> exchangeability.
  Matrix rate{};
  for (int i = 0; i < kAlphabetSize; ++i) {
    for (int j = 0; j < kAlphabetSize; ++j) {
      if (i == j) continue;
      double dh = std::abs(kHydropathy[i] - kHydropathy[j]) / 9.0;
      double dv = std::abs(kVolume[i] - kVolume[j]) / 167.0;
      double dc = std::abs(kCharge[i] - kCharge[j]);
      double dist = 1.2 * dh + 1.0 * dv + 0.6 * dc;
      double exchangeability = std::exp(-2.5 * dist);
      rate[i][j] = exchangeability * f[j];
    }
  }
  // Scale so that one application mutates 1% of positions in expectation
  // (the definition of 1 PAM).
  double expected_change = 0;
  for (int i = 0; i < kAlphabetSize; ++i) {
    double row = 0;
    for (int j = 0; j < kAlphabetSize; ++j) {
      if (i != j) row += rate[i][j];
    }
    expected_change += f[i] * row;
  }
  double scale = 0.01 / expected_change;
  for (int i = 0; i < kAlphabetSize; ++i) {
    double row = 0;
    for (int j = 0; j < kAlphabetSize; ++j) {
      if (i != j) {
        pam1_.p[i][j] = rate[i][j] * scale;
        row += pam1_.p[i][j];
      }
    }
    assert(row < 1.0);
    pam1_.p[i][i] = 1.0 - row;
  }
}

const MutationMatrix& PamFamily::Mutation(int n) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return MutationLocked(n);
}

const MutationMatrix& PamFamily::MutationLocked(int n) const {
  assert(n >= 1 && n <= kMaxPam);
  auto it = mutation_cache_.find(n);
  if (it != mutation_cache_.end()) return *it->second;
  auto result = std::make_unique<MutationMatrix>();
  if (n == 1) {
    result->p = pam1_.p;
  } else {
    // Binary exponentiation over cached powers.
    const MutationMatrix& half = MutationLocked(n / 2);
    result->p = Multiply(half.p, half.p);
    if (n % 2 == 1) result->p = Multiply(result->p, pam1_.p);
  }
  const MutationMatrix& ref = *result;
  mutation_cache_[n] = std::move(result);
  return ref;
}

const ScoringMatrix& PamFamily::Scoring(int n) const {
  assert(n >= 1 && n <= kMaxPam);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = scoring_cache_.find(n);
  if (it != scoring_cache_.end()) return *it->second;
  const MutationMatrix& m = MutationLocked(n);
  const auto& f = BackgroundFrequencies();
  auto result = std::make_unique<ScoringMatrix>();
  result->pam = n;
  for (int i = 0; i < kAlphabetSize; ++i) {
    for (int j = 0; j < kAlphabetSize; ++j) {
      result->score[i][j] = 10.0 * std::log10(m.p[i][j] / f[j]);
    }
  }
  const ScoringMatrix& ref = *result;
  scoring_cache_[n] = std::move(result);
  return ref;
}

const QuantizedMatrix& PamFamily::QuantizedScoring(int n) const {
  const ScoringMatrix& scoring = Scoring(n);
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = quantized_cache_.find(n);
  if (it != quantized_cache_.end()) return *it->second;
  auto result = std::make_unique<QuantizedMatrix>(QuantizeScoring(scoring));
  const QuantizedMatrix& ref = *result;
  quantized_cache_[n] = std::move(result);
  return ref;
}

QuantizedMatrix QuantizeScoring(const ScoringMatrix& matrix) {
  QuantizedMatrix q;
  q.pam = matrix.pam;
  for (int i = 0; i < kAlphabetSize; ++i) {
    for (int j = 0; j < kAlphabetSize; ++j) {
      double scaled = matrix.score[i][j] * kSwScoreScale;
      long rounded = std::lround(scaled);
      if (rounded > INT16_MAX) rounded = INT16_MAX;
      if (rounded < INT16_MIN) rounded = INT16_MIN;
      q.score[i][j] = static_cast<int16_t>(rounded);
      if (q.score[i][j] > q.max_score) q.max_score = q.score[i][j];
      double err = std::abs(static_cast<double>(q.score[i][j]) /
                                kSwScoreScale -
                            matrix.score[i][j]);
      if (err > q.max_entry_error) q.max_entry_error = err;
    }
  }
  return q;
}

double PamFamily::ExpectedDifference(int n) const {
  const MutationMatrix& m = Mutation(n);
  const auto& f = BackgroundFrequencies();
  double same = 0;
  for (int i = 0; i < kAlphabetSize; ++i) same += f[i] * m.p[i][i];
  return 1.0 - same;
}

const PamFamily& SharedPamFamily() {
  static const PamFamily& family = *new PamFamily();
  return family;
}

std::string_view PamFamilyVersion() {
  // Bump the revision whenever the construction above changes scores:
  // lineage records carry this id, so old exports keep naming the
  // family that actually scored them.
  return "dayhoff-physchem/v1";
}

}  // namespace biopera::darwin
