#include "darwin/align.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "darwin/align_simd.h"

namespace biopera::darwin {

double SmithWatermanScore(const Sequence& a, const Sequence& b,
                          const ScoringMatrix& matrix,
                          const GapPenalty& gaps) {
  const size_t n = a.length();
  const size_t m = b.length();
  if (n == 0 || m == 0) return 0;

  // h[j]: best score of a local alignment ending at (i, j).
  // e[j]: best score ending at (i, j) with a gap in `a` (vertical run).
  std::vector<double> h(m + 1, 0.0), e(m + 1, 0.0);
  double best = 0;
  for (size_t i = 1; i <= n; ++i) {
    double diag = 0;   // h[i-1][j-1]
    double f = 0;      // gap in `b` (horizontal run), row-local
    double h_left = 0; // h[i][j-1]
    const auto& row = matrix.score[a[i - 1]];
    for (size_t j = 1; j <= m; ++j) {
      e[j] = std::max(h[j] - gaps.open, e[j] - gaps.extend);
      f = std::max(h_left - gaps.open, f - gaps.extend);
      double match = diag + row[b[j - 1]];
      double cell = std::max({0.0, match, e[j], f});
      diag = h[j];
      h[j] = cell;
      h_left = cell;
      best = std::max(best, cell);
    }
  }
  return best;
}

Result<AlignmentResult> SmithWatermanAlign(const Sequence& a,
                                           const Sequence& b,
                                           const ScoringMatrix& matrix,
                                           const GapPenalty& gaps) {
  const size_t n = a.length();
  const size_t m = b.length();
  if (n * m > (64ull << 20)) {
    return Status::InvalidArgument(
        "SmithWatermanAlign: sequences too long for traceback; use "
        "SmithWatermanScore");
  }
  AlignmentResult result;
  if (n == 0 || m == 0) return result;

  const size_t w = m + 1;
  std::vector<double> h((n + 1) * w, 0.0);
  std::vector<double> e((n + 1) * w, 0.0);
  std::vector<double> f((n + 1) * w, 0.0);
  double best = 0;
  size_t bi = 0, bj = 0;
  for (size_t i = 1; i <= n; ++i) {
    const auto& row = matrix.score[a[i - 1]];
    for (size_t j = 1; j <= m; ++j) {
      e[i * w + j] = std::max(h[(i - 1) * w + j] - gaps.open,
                              e[(i - 1) * w + j] - gaps.extend);
      f[i * w + j] = std::max(h[i * w + j - 1] - gaps.open,
                              f[i * w + j - 1] - gaps.extend);
      double match = h[(i - 1) * w + j - 1] + row[b[j - 1]];
      double cell = std::max({0.0, match, e[i * w + j], f[i * w + j]});
      h[i * w + j] = cell;
      if (cell > best) {
        best = cell;
        bi = i;
        bj = j;
      }
    }
  }
  result.score = best;
  if (best <= 0) return result;

  // Traceback from the best cell until a zero cell.
  std::string ra, rb;
  size_t i = bi, j = bj;
  result.a_end = bi;
  result.b_end = bj;
  while (i > 0 && j > 0 && h[i * w + j] > 0) {
    double cell = h[i * w + j];
    double match =
        h[(i - 1) * w + j - 1] + matrix.score[a[i - 1]][b[j - 1]];
    if (cell == match) {
      ra.push_back(kAminoAcids[a[i - 1]]);
      rb.push_back(kAminoAcids[b[j - 1]]);
      --i;
      --j;
    } else if (cell == e[i * w + j]) {
      // Gap in b's row dimension: consume from `a`.
      while (i > 0) {
        ra.push_back(kAminoAcids[a[i - 1]]);
        rb.push_back('-');
        double here = e[i * w + j];
        --i;
        if (here == h[i * w + j] - gaps.open) break;
      }
    } else {
      // Gap consuming from `b`.
      while (j > 0) {
        ra.push_back('-');
        rb.push_back(kAminoAcids[b[j - 1]]);
        double here = f[i * w + j];
        --j;
        if (here == h[i * w + j] - gaps.open) break;
      }
    }
  }
  result.a_begin = i;
  result.b_begin = j;
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  result.a_aligned = std::move(ra);
  result.b_aligned = std::move(rb);
  return result;
}

namespace {

// Aligns (a, b) under the matrix at `pam`, memoized per refinement so no
// pair is fully aligned twice at the same distance: the coarse grid and
// the golden-section narrowing share the cache (the narrowing routinely
// lands back on grid points, e.g. when min_pam * 2^k == max_pam). Scoring
// runs through the striped SIMD kernel with exact-scalar promotion.
double EvalPam(const Sequence& a, const Sequence& b, const PamFamily& family,
               const GapPenalty& gaps, int pam, RefinementResult* stats,
               std::map<int, double>* memo) {
  auto it = memo->find(pam);
  if (it != memo->end()) {
    ++stats->cache_hits;
    return it->second;
  }
  ++stats->evaluations;
  double score = SimdSmithWatermanScore(a, b, family.Scoring(pam),
                                        family.QuantizedScoring(pam), gaps);
  memo->emplace(pam, score);
  return score;
}

}  // namespace

RefinementResult RefinePamDistance(const Sequence& a, const Sequence& b,
                                   const PamFamily& family,
                                   const GapPenalty& gaps,
                                   const RefinementOptions& options) {
  RefinementResult result;
  std::map<int, double> memo;
  // Coarse log-spaced scan.
  int best_pam = options.min_pam;
  double best_score = -1;
  std::vector<int> grid;
  for (int p = options.min_pam; p < options.max_pam; p = p * 2) {
    grid.push_back(p);
  }
  grid.push_back(options.max_pam);
  int best_idx = 0;
  for (size_t k = 0; k < grid.size(); ++k) {
    double s = EvalPam(a, b, family, gaps, grid[k], &result, &memo);
    if (s > best_score) {
      best_score = s;
      best_pam = grid[k];
      best_idx = static_cast<int>(k);
    }
  }
  // Golden-section style narrowing between the neighbors of the best
  // coarse point.
  int lo = best_idx > 0 ? grid[best_idx - 1] : options.min_pam;
  int hi = best_idx + 1 < static_cast<int>(grid.size())
               ? grid[best_idx + 1]
               : options.max_pam;
  while (hi - lo > 8) {
    int m1 = lo + (hi - lo) / 3;
    int m2 = hi - (hi - lo) / 3;
    double s1 = EvalPam(a, b, family, gaps, m1, &result, &memo);
    double s2 = EvalPam(a, b, family, gaps, m2, &result, &memo);
    if (s1 > best_score) {
      best_score = s1;
      best_pam = m1;
    }
    if (s2 > best_score) {
      best_score = s2;
      best_pam = m2;
    }
    if (s1 >= s2) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  result.best_pam = best_pam;
  result.best_score = best_score;
  return result;
}

}  // namespace biopera::darwin
