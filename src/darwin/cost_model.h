#ifndef BIOPERA_DARWIN_COST_MODEL_H_
#define BIOPERA_DARWIN_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "darwin/sequence.h"

namespace biopera::darwin {

/// Cost model for Darwin invocations, used when experiments run in
/// simulated time (the full all-vs-all is ~3*10^9 pairwise alignments; the
/// paper needed 37-51 days of cluster time, so benches estimate per-TEU
/// costs instead of aligning for real).
///
/// The constants are expressed for a 1.0-speed reference CPU, calibrated to
/// the era of the paper's experiments (Fig. 4 measures ~2750 CPU-seconds
/// for a 532-entry all-vs-all on one 360 MHz CPU, i.e. ~19 ms per pairwise
/// alignment including the refinement share). Node speed factors scale
/// these costs in the cluster simulator.
struct CostModelOptions {
  /// Seconds per DP cell of a Smith-Waterman pass.
  double sw_cell_seconds = 1.1e-7;
  /// Fraction of pairs that reach the match threshold and get refined.
  double match_rate = 0.04;
  /// Full SW evaluations performed by one PAM refinement.
  double refine_evaluations = 9.0;
  /// Per-invocation Darwin startup/teardown (interpreter boot, dataset
  /// load, result merge handshake) in seconds. Calibrated so that the
  /// 532-TEU point of Fig. 4 roughly doubles the serial CPU time (each TEU
  /// is two Darwin invocations: fixed pass + refinement).
  double darwin_init_seconds = 2.6;
  /// Per-match result I/O in seconds.
  double match_io_seconds = 2e-4;
};

/// Re-bases a cost model on a *measured* alignment throughput (DP
/// cells/second of whichever kernel the host machine resolved — scalar,
/// SSE2 or AVX2; see ResolveSwKernel / BENCH_alignment.json). Only
/// `sw_cell_seconds` changes; the era-calibrated defaults above stay the
/// reference for reproducing the paper's figures, so callers opt into a
/// modern-hardware model explicitly and record the kernel provenance
/// alongside the derived number.
CostModelOptions CalibratedCostOptions(double cells_per_second,
                                       const CostModelOptions& base = {});

class CostModel {
 public:
  explicit CostModel(const CostModelOptions& options = {})
      : options_(options) {}

  const CostModelOptions& options() const { return options_; }

  /// CPU cost of one fixed-PAM pairwise alignment.
  Duration PairCost(size_t len_a, size_t len_b) const;

  /// CPU cost of refining one match (several SW evaluations).
  Duration RefineCost(size_t len_a, size_t len_b) const;

  /// CPU cost of a TEU that aligns each entry in [first, last) of a
  /// dataset with `lengths` against all entries with larger index
  /// (triangular all-vs-all with redundant comparisons ruled out),
  /// including the Darwin init overhead and expected refinement share.
  /// Uses a suffix-sum of lengths, O(1) per query after O(N) setup.
  Duration TeuCost(const std::vector<uint32_t>& lengths, size_t first,
                   size_t last) const;

  /// Precomputes suffix sums for repeated TeuCost queries on one dataset.
  void Prepare(const std::vector<uint32_t>& lengths);

  /// Darwin startup overhead alone.
  Duration InitCost() const {
    return Duration::Seconds(options_.darwin_init_seconds);
  }

  /// Extracts the residue lengths of a dataset.
  static std::vector<uint32_t> Lengths(const Dataset& dataset);

 private:
  CostModelOptions options_;
  std::vector<double> suffix_len_;   // suffix_len_[i] = sum of lengths[i..)
  std::vector<double> suffix_sq_;    // unused lengths kept for clarity
  std::vector<uint32_t> lengths_;
};

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_COST_MODEL_H_
