#include "darwin/banded.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace biopera::darwin {

double BandedSmithWatermanScore(const Sequence& a, const Sequence& b,
                                const ScoringMatrix& matrix, size_t band,
                                const GapPenalty& gaps) {
  const size_t n = a.length();
  const size_t m = b.length();
  if (n == 0 || m == 0) return 0;
  if (band >= std::max(n, m)) {
    return SmithWatermanScore(a, b, matrix, gaps);  // band covers everything
  }

  std::vector<double> h_prev(m + 2, 0.0), h_cur(m + 2, 0.0);
  std::vector<double> e_prev(m + 2, 0.0), e_cur(m + 2, 0.0);
  double best = 0;
  // Previous row's valid window; reads outside it are zero.
  size_t prev_lo = 1, prev_hi = 0;  // empty before the first row
  for (size_t i = 1; i <= n; ++i) {
    const size_t center = (i * m) / n;
    const size_t lo = center > band ? std::max<size_t>(1, center - band) : 1;
    const size_t hi = std::min(m, center + band);
    const auto& row = matrix.score[a[i - 1]];

    auto prev_h = [&](size_t j) {
      return (j >= prev_lo && j <= prev_hi) ? h_prev[j] : 0.0;
    };
    auto prev_e = [&](size_t j) {
      return (j >= prev_lo && j <= prev_hi) ? e_prev[j] : 0.0;
    };

    double f = 0;       // horizontal gap state, row-local
    double h_left = 0;  // h_cur[j-1]; zero at the band's left edge
    for (size_t j = lo; j <= hi; ++j) {
      double e = std::max(prev_h(j) - gaps.open, prev_e(j) - gaps.extend);
      f = std::max(h_left - gaps.open, f - gaps.extend);
      double match = prev_h(j - 1) + row[b[j - 1]];
      double cell = std::max({0.0, match, e, f});
      h_cur[j] = cell;
      e_cur[j] = e;
      h_left = cell;
      best = std::max(best, cell);
    }
    std::swap(h_prev, h_cur);
    std::swap(e_prev, e_cur);
    prev_lo = lo;
    prev_hi = hi;
  }
  return best;
}

size_t SuggestBand(size_t len_a, size_t len_b, int pam) {
  // Indel drift grows with evolutionary distance; the length difference
  // must fit inside the band for the ends to be reachable at all.
  size_t len_gap =
      len_a > len_b ? len_a - len_b : len_b - len_a;
  double min_len = static_cast<double>(std::min(len_a, len_b));
  double drift = 0.1 * min_len * std::min(1.0, pam / 250.0);
  return len_gap + static_cast<size_t>(drift) + 16;
}

}  // namespace biopera::darwin
