#include "darwin/cost_model.h"

#include <cassert>

namespace biopera::darwin {

CostModelOptions CalibratedCostOptions(double cells_per_second,
                                       const CostModelOptions& base) {
  CostModelOptions out = base;
  if (cells_per_second > 0) out.sw_cell_seconds = 1.0 / cells_per_second;
  return out;
}

Duration CostModel::PairCost(size_t len_a, size_t len_b) const {
  double cells = static_cast<double>(len_a) * static_cast<double>(len_b);
  return Duration::Seconds(cells * options_.sw_cell_seconds);
}

Duration CostModel::RefineCost(size_t len_a, size_t len_b) const {
  double cells = static_cast<double>(len_a) * static_cast<double>(len_b);
  return Duration::Seconds(cells * options_.sw_cell_seconds *
                               options_.refine_evaluations +
                           options_.match_io_seconds);
}

void CostModel::Prepare(const std::vector<uint32_t>& lengths) {
  lengths_ = lengths;
  suffix_len_.assign(lengths.size() + 1, 0.0);
  for (size_t i = lengths.size(); i > 0; --i) {
    suffix_len_[i - 1] =
        suffix_len_[i] + static_cast<double>(lengths[i - 1]);
  }
}

Duration CostModel::TeuCost(const std::vector<uint32_t>& lengths,
                            size_t first, size_t last) const {
  assert(first <= last && last <= lengths.size());
  // If Prepare() was called with this dataset, reuse the suffix sums.
  const bool prepared =
      lengths_.size() == lengths.size() && !suffix_len_.empty();
  double cell_total = 0;
  for (size_t i = first; i < last; ++i) {
    double partners;
    if (prepared) {
      partners = suffix_len_[i + 1];
    } else {
      partners = 0;
      for (size_t j = i + 1; j < lengths.size(); ++j) {
        partners += static_cast<double>(lengths[j]);
      }
    }
    cell_total += static_cast<double>(lengths[i]) * partners;
  }
  // Fixed-PAM pass over all pairs + refinement on the matching share.
  double seconds =
      cell_total * options_.sw_cell_seconds *
          (1.0 + options_.match_rate * options_.refine_evaluations) +
      options_.darwin_init_seconds;
  // Match I/O: proportional to expected number of pairs * match rate.
  // Approximate the pair count as cells / (mean_len^2).
  if (last > first && !lengths.empty()) {
    double mean_len =
        (prepared ? suffix_len_[0] : cell_total) /* fallback below */;
    if (prepared) {
      mean_len = suffix_len_[0] / static_cast<double>(lengths.size());
    } else {
      double total = 0;
      for (uint32_t l : lengths) total += l;
      mean_len = total / static_cast<double>(lengths.size());
    }
    double pairs = cell_total / (mean_len * mean_len);
    seconds += pairs * options_.match_rate * options_.match_io_seconds;
  }
  return Duration::Seconds(seconds);
}

std::vector<uint32_t> CostModel::Lengths(const Dataset& dataset) {
  std::vector<uint32_t> out;
  out.reserve(dataset.size());
  for (const auto& s : dataset.sequences()) {
    out.push_back(static_cast<uint32_t>(s.length()));
  }
  return out;
}

}  // namespace biopera::darwin
