#ifndef BIOPERA_DARWIN_MATCH_H_
#define BIOPERA_DARWIN_MATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace biopera::darwin {

/// A sequence pair whose similarity reached the user threshold, with the
/// alignment characteristics the all-vs-all process records (paper §4).
struct Match {
  uint32_t entry_a = 0;      // dataset index of the first sequence
  uint32_t entry_b = 0;      // dataset index of the second (entry_a < entry_b)
  double score = 0;          // similarity score (10*log10-odds units)
  double pam_distance = 0;   // estimated PAM distance (0 before refinement)

  /// Compact single-line text form "a b score pam".
  std::string ToLine() const;
  static Result<Match> FromLine(std::string_view line);

  friend bool operator==(const Match&, const Match&) = default;
};

/// Sorts by (entry_a, entry_b) — the "merge by entry #" order.
void SortByEntry(std::vector<Match>* matches);

/// Sorts by estimated PAM distance, ties by entries — the
/// "merge by PAM distance" order.
void SortByPamDistance(std::vector<Match>* matches);

/// Serializes a match list one-per-line; parses it back.
std::string MatchesToText(const std::vector<Match>& matches);
Result<std::vector<Match>> MatchesFromText(std::string_view text);

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_MATCH_H_
