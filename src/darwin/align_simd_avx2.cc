// AVX2 variant of the striped Smith-Waterman kernel. This translation
// unit is the only one compiled with -mavx2 (see src/darwin/CMakeLists);
// callers reach it through runtime CPU dispatch in align_simd.cc, so a
// binary built with this file still runs on non-AVX2 machines.

#include "darwin/align_simd.h"

#if BIOPERA_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace biopera::darwin::internal {

namespace {

// Shifts every 16-bit element one position up across the full 256-bit
// register (element 0 becomes 0, element 8 receives element 7). AVX2 has
// no whole-register byte shift, so stitch the lane crossing by aligning
// against [0 : low-lane].
inline __m256i ShiftLanesUp(__m256i v) {
  __m256i cross = _mm256_permute2x128_si256(v, v, _MM_SHUFFLE(0, 0, 2, 0));
  return _mm256_alignr_epi8(v, cross, 14);
}

}  // namespace

SwScore Avx2ScoreStriped(const int16_t* profile, size_t seg_len,
                         const uint8_t* target, size_t target_len,
                         int16_t gap_open, int16_t gap_extend, int16_t* h,
                         int16_t* h2, int16_t* e) {
  constexpr size_t kLanes = 16;
  const __m256i v_zero = _mm256_setzero_si256();
  const __m256i v_open = _mm256_set1_epi16(gap_open);
  const __m256i v_ext = _mm256_set1_epi16(gap_extend);
  __m256i v_best = v_zero;
  std::memset(h, 0, seg_len * kLanes * sizeof(int16_t));
  std::memset(e, 0, seg_len * kLanes * sizeof(int16_t));
  int16_t* h_load = h;
  int16_t* h_store = h2;
  for (size_t i = 0; i < target_len; ++i) {
    const int16_t* prof =
        profile + static_cast<size_t>(target[i]) * seg_len * kLanes;
    __m256i v_f = v_zero;
    __m256i v_h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        h_load + (seg_len - 1) * kLanes));
    v_h = ShiftLanesUp(v_h);
    for (size_t j = 0; j < seg_len; ++j) {
      __m256i v_e = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(e + j * kLanes));
      v_h = _mm256_adds_epi16(
          v_h, _mm256_loadu_si256(
                   reinterpret_cast<const __m256i*>(prof + j * kLanes)));
      v_h = _mm256_max_epi16(v_h, v_e);
      v_h = _mm256_max_epi16(v_h, v_f);
      v_h = _mm256_max_epi16(v_h, v_zero);
      v_best = _mm256_max_epi16(v_best, v_h);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(h_store + j * kLanes), v_h);
      __m256i v_h_gap = _mm256_subs_epi16(v_h, v_open);
      v_e = _mm256_subs_epi16(v_e, v_ext);
      v_e = _mm256_max_epi16(v_e, v_h_gap);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(e + j * kLanes), v_e);
      v_f = _mm256_subs_epi16(v_f, v_ext);
      v_f = _mm256_max_epi16(v_f, v_h_gap);
      v_h = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_load + j * kLanes));
    }
    for (size_t k = 0; k < kLanes; ++k) {
      v_f = ShiftLanesUp(v_f);
      for (size_t j = 0; j < seg_len; ++j) {
        __m256i v_h2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(h_store + j * kLanes));
        v_h2 = _mm256_max_epi16(v_h2, v_f);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(h_store + j * kLanes), v_h2);
        __m256i v_h_gap = _mm256_subs_epi16(v_h2, v_open);
        v_f = _mm256_subs_epi16(v_f, v_ext);
        if (_mm256_movemask_epi8(_mm256_cmpgt_epi16(v_f, v_h_gap)) == 0) {
          goto row_done;
        }
      }
    }
  row_done:
    std::swap(h_load, h_store);
  }
  __m128i t = _mm_max_epi16(_mm256_castsi256_si128(v_best),
                            _mm256_extracti128_si256(v_best, 1));
  t = _mm_max_epi16(t, _mm_srli_si128(t, 8));
  t = _mm_max_epi16(t, _mm_srli_si128(t, 4));
  t = _mm_max_epi16(t, _mm_srli_si128(t, 2));
  int32_t best = static_cast<int16_t>(_mm_extract_epi16(t, 0));
  return {best, best == INT16_MAX};
}

}  // namespace biopera::darwin::internal

#endif  // BIOPERA_HAVE_AVX2
