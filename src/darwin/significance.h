#ifndef BIOPERA_DARWIN_SIGNIFICANCE_H_
#define BIOPERA_DARWIN_SIGNIFICANCE_H_

#include "common/rng.h"
#include "darwin/align.h"

namespace biopera::darwin {

/// Karlin-Altschul-style score statistics: local alignment scores of
/// unrelated sequences follow an extreme-value (Gumbel) distribution
/// P(S > x) = 1 - exp(-K m n e^(-lambda x)). The all-vs-all process needs
/// a *score threshold* for what counts as a match (paper §4: "similarity
/// scores [that] reach a user-defined threshold"); this module lets the
/// user state that threshold as an expected number of random hits instead
/// of a raw score.
struct GumbelParams {
  double lambda = 0;
  double k = 0;
  /// Geometric mean sequence lengths used during calibration.
  double calibration_m = 0;
  double calibration_n = 0;
};

/// Estimates lambda and K empirically: aligns `samples` pairs of random
/// background-distributed sequences of length `len` and fits the Gumbel
/// parameters by the method of moments
/// (mean = mu + gamma/lambda, var = pi^2 / (6 lambda^2),
///  mu = ln(K m n) / lambda).
GumbelParams CalibrateGumbel(const ScoringMatrix& matrix, size_t len,
                             int samples, Rng* rng,
                             const GapPenalty& gaps = GapPenalty());

/// Expected number of random alignments scoring >= `score` in one pairwise
/// comparison of lengths (m, n) — the E-value of a single comparison.
double PairExpect(const GumbelParams& params, double score, double m,
                  double n);

/// The score threshold at which a whole all-vs-all over `num_pairs`
/// comparisons of typical lengths (m, n) is expected to produce
/// `expected_random_hits` spurious matches in total.
double ThresholdForExpectedHits(const GumbelParams& params, double m,
                                double n, double num_pairs,
                                double expected_random_hits);

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_SIGNIFICANCE_H_
