#ifndef BIOPERA_DARWIN_ALIGN_H_
#define BIOPERA_DARWIN_ALIGN_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "darwin/pam.h"
#include "darwin/sequence.h"

namespace biopera::darwin {

/// Affine gap penalties (costs are positive; a gap of length L costs
/// open + extend * (L - 1)).
struct GapPenalty {
  double open = 18.0;
  double extend = 1.5;
};

/// Result of a local alignment. Coordinates are half-open ranges into the
/// two sequences; the aligned strings (with '-' for gaps) are only filled
/// by the traceback variant.
struct AlignmentResult {
  double score = 0;
  size_t a_begin = 0, a_end = 0;
  size_t b_begin = 0, b_end = 0;
  std::string a_aligned;
  std::string b_aligned;
};

/// Smith-Waterman local alignment score with affine gaps
/// (Gotoh's algorithm), O(len_a * len_b) time, O(len_b) space.
double SmithWatermanScore(const Sequence& a, const Sequence& b,
                          const ScoringMatrix& matrix,
                          const GapPenalty& gaps = GapPenalty());

/// Full Smith-Waterman with traceback. Allocates O(len_a * len_b) state, so
/// fails with InvalidArgument if the product exceeds ~64M cells.
Result<AlignmentResult> SmithWatermanAlign(
    const Sequence& a, const Sequence& b, const ScoringMatrix& matrix,
    const GapPenalty& gaps = GapPenalty());

/// Result of estimating the evolutionary distance of a pair by maximizing
/// the alignment score over the PAM family ("PAM-param refinement" in the
/// paper's all-vs-all process).
struct RefinementResult {
  int best_pam = 0;
  double best_score = 0;
  int evaluations = 0;  // number of full alignments computed
  int cache_hits = 0;   // distances re-queried but served from the memo
};

struct RefinementOptions {
  int min_pam = 10;
  int max_pam = 720;
};

/// Finds the integer PAM distance in [min_pam, max_pam] whose scoring
/// matrix maximizes the local alignment score of (a, b). Uses a log-spaced
/// coarse scan followed by golden-section refinement; the score-vs-PAM
/// landscape of a homologous pair is unimodal in practice.
RefinementResult RefinePamDistance(const Sequence& a, const Sequence& b,
                                   const PamFamily& family,
                                   const GapPenalty& gaps = GapPenalty(),
                                   const RefinementOptions& options = {});

}  // namespace biopera::darwin

#endif  // BIOPERA_DARWIN_ALIGN_H_
