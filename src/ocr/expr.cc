#include "ocr/expr.h"

#include <cctype>

#include "common/strings.h"

namespace biopera::ocr {

Expr Expr::Literal(Value v) {
  Expr e;
  e.kind_ = Kind::kLiteral;
  e.literal_ = std::move(v);
  return e;
}

Expr Expr::Ref(std::vector<std::string> path) {
  Expr e;
  e.kind_ = Kind::kRef;
  e.ref_ = std::move(path);
  return e;
}

namespace {

Result<Value> NumericBinary(const std::string& op, const Value& a,
                            const Value& b) {
  if (!a.is_number() || !b.is_number()) {
    return Status::InvalidArgument(
        StrFormat("operator %s requires numbers, got %s and %s", op.c_str(),
                  std::string(a.TypeName()).c_str(),
                  std::string(b.TypeName()).c_str()));
  }
  if (a.is_int() && b.is_int()) {
    int64_t x = a.AsInt(), y = b.AsInt();
    if (op == "+") return Value(x + y);
    if (op == "-") return Value(x - y);
    if (op == "*") return Value(x * y);
    if (op == "/") {
      if (y == 0) return Status::InvalidArgument("integer division by zero");
      return Value(x / y);
    }
  }
  double x = a.AsDouble(), y = b.AsDouble();
  if (op == "+") return Value(x + y);
  if (op == "-") return Value(x - y);
  if (op == "*") return Value(x * y);
  if (op == "/") return Value(x / y);
  return Status::Internal("unknown arithmetic operator " + op);
}

Result<Value> CompareBinary(const std::string& op, const Value& a,
                            const Value& b) {
  if (op == "==") return Value(a == b);
  if (op == "!=") return Value(!(a == b));
  // Ordering: numbers or strings.
  if (a.is_number() && b.is_number()) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (op == "<") return Value(x < y);
    if (op == "<=") return Value(x <= y);
    if (op == ">") return Value(x > y);
    if (op == ">=") return Value(x >= y);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.AsString().compare(b.AsString());
    if (op == "<") return Value(c < 0);
    if (op == "<=") return Value(c <= 0);
    if (op == ">") return Value(c > 0);
    if (op == ">=") return Value(c >= 0);
  }
  return Status::InvalidArgument(
      StrFormat("operator %s cannot compare %s with %s", op.c_str(),
                std::string(a.TypeName()).c_str(),
                std::string(b.TypeName()).c_str()));
}

}  // namespace

Result<Value> Expr::Eval(const EvalContext& ctx) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kRef: {
      Result<Value> v = ctx.Lookup(ref_);
      if (!v.ok()) {
        if (v.status().IsNotFound()) return Value::Null();
        return v.status();
      }
      return v;
    }
    case Kind::kDefined: {
      Result<Value> v = ctx.Lookup(children_[0].ref_);
      if (!v.ok()) {
        if (v.status().IsNotFound()) return Value(false);
        return v.status();
      }
      return Value(!v->is_null());
    }
    case Kind::kUnary: {
      BIOPERA_ASSIGN_OR_RETURN(Value v, children_[0].Eval(ctx));
      if (op_ == "!") return Value(!v.Truthy());
      if (op_ == "-") {
        if (v.is_int()) return Value(-v.AsInt());
        if (v.is_double()) return Value(-v.AsDouble());
        return Status::InvalidArgument("unary - requires a number");
      }
      return Status::Internal("unknown unary operator " + op_);
    }
    case Kind::kBinary: {
      if (op_ == "&&") {
        BIOPERA_ASSIGN_OR_RETURN(Value a, children_[0].Eval(ctx));
        if (!a.Truthy()) return Value(false);
        BIOPERA_ASSIGN_OR_RETURN(Value b, children_[1].Eval(ctx));
        return Value(b.Truthy());
      }
      if (op_ == "||") {
        BIOPERA_ASSIGN_OR_RETURN(Value a, children_[0].Eval(ctx));
        if (a.Truthy()) return Value(true);
        BIOPERA_ASSIGN_OR_RETURN(Value b, children_[1].Eval(ctx));
        return Value(b.Truthy());
      }
      BIOPERA_ASSIGN_OR_RETURN(Value a, children_[0].Eval(ctx));
      BIOPERA_ASSIGN_OR_RETURN(Value b, children_[1].Eval(ctx));
      if (op_ == "==" || op_ == "!=" || op_ == "<" || op_ == "<=" ||
          op_ == ">" || op_ == ">=") {
        return CompareBinary(op_, a, b);
      }
      return NumericBinary(op_, a, b);
    }
  }
  return Status::Internal("corrupt expression node");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.ToText();
    case Kind::kRef:
      return StrJoin(ref_, ".");
    case Kind::kDefined:
      return "defined(" + children_[0].ToString() + ")";
    case Kind::kUnary:
      return op_ + children_[0].ToString();
    case Kind::kBinary:
      return "(" + children_[0].ToString() + " " + op_ + " " +
             children_[1].ToString() + ")";
  }
  return "?";
}

void Expr::CollectRefs(std::vector<std::vector<std::string>>* out) const {
  if (kind_ == Kind::kRef) out->push_back(ref_);
  for (const Expr& c : children_) c.CollectRefs(out);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Result<Expr> Parse() {
    BIOPERA_ASSIGN_OR_RETURN(Expr e, ParseOr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return e;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("expr: %s at offset %zu in \"%.*s\"", what.c_str(), pos_,
                  static_cast<int>(text_.size()), text_.data()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeOp(std::string_view op) {
    SkipSpace();
    if (text_.substr(pos_, op.size()) != op) return false;
    // Avoid treating "<=" prefix "<" etc.: the caller tries longer ops
    // first; also avoid consuming "&&" when looking for "&".
    pos_ += op.size();
    return true;
  }

  bool PeekOp(std::string_view op) {
    SkipSpace();
    return text_.substr(pos_, op.size()) == op;
  }

  Result<Expr> MakeBinary(std::string op, Expr lhs, Expr rhs) {
    Expr e;
    e.kind_ = Expr::Kind::kBinary;
    e.op_ = std::move(op);
    e.children_.push_back(std::move(lhs));
    e.children_.push_back(std::move(rhs));
    return e;
  }

  Result<Expr> ParseOr() {
    BIOPERA_ASSIGN_OR_RETURN(Expr lhs, ParseAnd());
    while (PeekOp("||")) {
      ConsumeOp("||");
      BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseAnd());
      BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("||", std::move(lhs),
                                               std::move(rhs)));
    }
    return lhs;
  }

  Result<Expr> ParseAnd() {
    BIOPERA_ASSIGN_OR_RETURN(Expr lhs, ParseCompare());
    while (PeekOp("&&")) {
      ConsumeOp("&&");
      BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseCompare());
      BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("&&", std::move(lhs),
                                               std::move(rhs)));
    }
    return lhs;
  }

  Result<Expr> ParseCompare() {
    BIOPERA_ASSIGN_OR_RETURN(Expr lhs, ParseAdditive());
    for (std::string_view op : {"==", "!=", "<=", ">=", "<", ">"}) {
      if (PeekOp(op)) {
        ConsumeOp(op);
        BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseAdditive());
        return MakeBinary(std::string(op), std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<Expr> ParseAdditive() {
    BIOPERA_ASSIGN_OR_RETURN(Expr lhs, ParseMultiplicative());
    while (true) {
      if (PeekOp("+")) {
        ConsumeOp("+");
        BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseMultiplicative());
        BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("+", std::move(lhs),
                                                 std::move(rhs)));
      } else if (PeekOp("-")) {
        ConsumeOp("-");
        BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseMultiplicative());
        BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("-", std::move(lhs),
                                                 std::move(rhs)));
      } else {
        return lhs;
      }
    }
  }

  Result<Expr> ParseMultiplicative() {
    BIOPERA_ASSIGN_OR_RETURN(Expr lhs, ParseUnary());
    while (true) {
      if (PeekOp("*")) {
        ConsumeOp("*");
        BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseUnary());
        BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("*", std::move(lhs),
                                                 std::move(rhs)));
      } else if (PeekOp("/")) {
        ConsumeOp("/");
        BIOPERA_ASSIGN_OR_RETURN(Expr rhs, ParseUnary());
        BIOPERA_ASSIGN_OR_RETURN(lhs, MakeBinary("/", std::move(lhs),
                                                 std::move(rhs)));
      } else {
        return lhs;
      }
    }
  }

  Result<Expr> ParseUnary() {
    if (PeekOp("!") && !PeekOp("!=")) {
      ConsumeOp("!");
      BIOPERA_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      Expr e;
      e.kind_ = Expr::Kind::kUnary;
      e.op_ = "!";
      e.children_.push_back(std::move(inner));
      return e;
    }
    if (PeekOp("-")) {
      ConsumeOp("-");
      BIOPERA_ASSIGN_OR_RETURN(Expr inner, ParseUnary());
      Expr e;
      e.kind_ = Expr::Kind::kUnary;
      e.op_ = "-";
      e.children_.push_back(std::move(inner));
      return e;
    }
    return ParsePrimary();
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    // Identifiers must start with a letter or underscore (numbers are
    // handled as literals by ParsePrimary).
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Expr> ParseRef() {
    std::vector<std::string> path;
    BIOPERA_ASSIGN_OR_RETURN(std::string first, ParseIdent());
    path.push_back(std::move(first));
    while (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(std::string seg, ParseIdent());
      path.push_back(std::move(seg));
    }
    return Expr::Ref(std::move(path));
  }

  Result<Expr> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of expression");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(Expr e, ParseOr());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Error("expected )");
      }
      ++pos_;
      return e;
    }
    if (c == '"') {
      // Reuse the Value text parser for the string literal.
      size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ >= text_.size()) return Error("unterminated string");
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(
          Value v, Value::FromText(text_.substr(start, pos_ - start)));
      return Expr::Literal(std::move(v));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool is_double = false;
      while (pos_ < text_.size()) {
        char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.') {
          is_double = true;
          ++pos_;
        } else {
          break;
        }
      }
      std::string_view num = text_.substr(start, pos_ - start);
      if (is_double) {
        double d;
        if (!ParseDouble(num, &d)) return Error("bad number");
        return Expr::Literal(Value(d));
      }
      long long i;
      if (!ParseInt64(num, &i)) return Error("bad number");
      return Expr::Literal(Value(static_cast<int64_t>(i)));
    }
    // Keyword or reference.
    size_t save = pos_;
    BIOPERA_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
    if (ident == "true") return Expr::Literal(Value(true));
    if (ident == "false") return Expr::Literal(Value(false));
    if (ident == "null") return Expr::Literal(Value::Null());
    if (ident == "defined") {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '(') {
        return Error("defined requires (ref)");
      }
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(Expr ref, ParseRef());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Error("expected ) after defined ref");
      }
      ++pos_;
      Expr e;
      e.kind_ = Expr::Kind::kDefined;
      e.children_.push_back(std::move(ref));
      return e;
    }
    // Plain reference: rewind and parse the dotted path in full.
    pos_ = save;
    return ParseRef();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<Expr> Expr::Parse(std::string_view text) {
  return ExprParser(text).Parse();
}

}  // namespace biopera::ocr
