#ifndef BIOPERA_OCR_OCR_TEXT_H_
#define BIOPERA_OCR_OCR_TEXT_H_

#include <string>

#include "common/result.h"
#include "ocr/model.h"

namespace biopera::ocr {

/// Serializes a process definition to canonical OCR text (the "textual
/// representation" of Figure 2 used as the persistent scripting form).
/// ParseOcr(PrintOcr(def)) reproduces the definition.
///
/// Example:
///
///   PROCESS all_vs_all {
///     DATA queue_file;
///     DATA db_name = "sp38";
///     ACTIVITY user_input {
///       CALL "ui.prompt";
///       OUT out.queue_file -> wb.queue_file;
///       RETRY 3 BACKOFF 30s;
///     }
///     PARALLEL alignment {
///       LIST wb.partition;
///       COLLECT wb.results;
///       SUBPROCESS body {
///         PROCESS "align_partition";
///       }
///     }
///     CONNECTOR user_input -> alignment IF defined(wb.queue_file);
///   }
std::string PrintOcr(const ProcessDef& def);

/// Parses OCR text into a validated process definition. '#' starts a
/// comment that runs to end of line.
Result<ProcessDef> ParseOcr(std::string_view text);

/// Formats a Duration as OCR duration syntax (e.g. "90s", "1500ms").
std::string DurationToOcr(Duration d);
/// Parses OCR duration syntax: <number><unit>, unit in us|ms|s|m|h|d.
Result<Duration> DurationFromOcr(std::string_view text);

}  // namespace biopera::ocr

#endif  // BIOPERA_OCR_OCR_TEXT_H_
