#ifndef BIOPERA_OCR_VALUE_H_
#define BIOPERA_OCR_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace biopera::ocr {

/// Dynamically typed value passed through a process: whiteboard variables,
/// task parameters and return structures are Values. A null Value models an
/// absent/optional parameter (the all-vs-all queue file, for instance).
class Value {
 public:
  using List = std::vector<Value>;
  using Map = std::map<std::string, Value>;

  /// The distinguished null alternative.
  struct NullType {
    friend bool operator==(const NullType&, const NullType&) { return true; }
  };

  Value() : v_(NullType{}) {}
  Value(bool b) : v_(b) {}
  Value(int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(List l) : v_(std::move(l)) {}
  Value(Map m) : v_(std::move(m)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<NullType>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_list() const { return std::holds_alternative<List>(v_); }
  bool is_map() const { return std::holds_alternative<Map>(v_); }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_))
                    : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  const List& AsList() const { return std::get<List>(v_); }
  List& AsList() { return std::get<List>(v_); }
  const Map& AsMap() const { return std::get<Map>(v_); }
  Map& AsMap() { return std::get<Map>(v_); }

  /// "Truthiness" used by activation conditions: null/false/0/""/empty
  /// containers are false.
  bool Truthy() const;

  /// Structural equality (int 1 == double 1.0).
  friend bool operator==(const Value& a, const Value& b);

  /// Compact canonical text form (JSON-like); round-trips via FromText.
  std::string ToText() const;
  static Result<Value> FromText(std::string_view text);

  /// Short type name for error messages ("int", "list", ...).
  std::string_view TypeName() const;

 private:
  std::variant<NullType, bool, int64_t, double, std::string, List, Map> v_;
};

}  // namespace biopera::ocr

#endif  // BIOPERA_OCR_VALUE_H_
