#include "ocr/ocr_text.h"

#include <cctype>

#include "common/strings.h"

namespace biopera::ocr {

std::string DurationToOcr(Duration d) {
  int64_t us = d.micros();
  if (us % (86400LL * 1000000) == 0 && us != 0) {
    return StrFormat("%lldd", static_cast<long long>(us / (86400LL * 1000000)));
  }
  if (us % (3600LL * 1000000) == 0 && us != 0) {
    return StrFormat("%lldh", static_cast<long long>(us / (3600LL * 1000000)));
  }
  if (us % (60LL * 1000000) == 0 && us != 0) {
    return StrFormat("%lldm", static_cast<long long>(us / (60LL * 1000000)));
  }
  if (us % 1000000 == 0) {
    return StrFormat("%llds", static_cast<long long>(us / 1000000));
  }
  if (us % 1000 == 0) {
    return StrFormat("%lldms", static_cast<long long>(us / 1000));
  }
  return StrFormat("%lldus", static_cast<long long>(us));
}

Result<Duration> DurationFromOcr(std::string_view text) {
  text = StripWhitespace(text);
  size_t split = 0;
  while (split < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[split])) ||
          text[split] == '.' || text[split] == '-')) {
    ++split;
  }
  double num;
  if (split == 0 || !ParseDouble(text.substr(0, split), &num)) {
    return Status::InvalidArgument("bad duration: " + std::string(text));
  }
  std::string_view unit = text.substr(split);
  if (unit == "us") return Duration::Micros(static_cast<int64_t>(num));
  if (unit == "ms") return Duration::Millis(static_cast<int64_t>(num));
  if (unit == "s") return Duration::Seconds(num);
  if (unit == "m") return Duration::Minutes(num);
  if (unit == "h") return Duration::Hours(num);
  if (unit == "d") return Duration::Days(num);
  return Status::InvalidArgument("bad duration unit: " + std::string(text));
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

namespace {

void Indent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

void PrintQuoted(std::string* out, std::string_view s) {
  *out += Value(std::string(s)).ToText();
}

void PrintTask(const TaskDef& t, int depth, std::string* out);

void PrintCommon(const TaskDef& t, int depth, std::string* out) {
  for (const Mapping& m : t.inputs) {
    Indent(out, depth);
    *out += "IN " + m.from + " -> " + m.to + ";\n";
  }
  for (const Mapping& m : t.outputs) {
    Indent(out, depth);
    *out += "OUT " + m.from + " -> " + m.to + ";\n";
  }
  FailurePolicy def_policy;
  if (!(t.failure == def_policy)) {
    Indent(out, depth);
    *out += StrFormat("RETRY %d BACKOFF %s;\n", t.failure.max_retries,
                      DurationToOcr(t.failure.retry_backoff).c_str());
    if (!t.failure.alternative_binding.empty()) {
      Indent(out, depth);
      *out += "ALTERNATIVE ";
      PrintQuoted(out, t.failure.alternative_binding);
      *out += ";\n";
    }
    if (t.failure.ignore_failure) {
      Indent(out, depth);
      *out += "IGNORE_FAILURE;\n";
    }
  }
  if (!t.resource_class.empty()) {
    Indent(out, depth);
    *out += "CLASS ";
    PrintQuoted(out, t.resource_class);
    *out += ";\n";
  }
  if (!t.compensation_binding.empty()) {
    Indent(out, depth);
    *out += "COMPENSATE ";
    PrintQuoted(out, t.compensation_binding);
    *out += ";\n";
  }
  if (!t.wait_event.empty()) {
    Indent(out, depth);
    *out += "ON_EVENT ";
    PrintQuoted(out, t.wait_event);
    *out += ";\n";
  }
}

void PrintConnector(const ControlConnector& c, int depth, std::string* out) {
  Indent(out, depth);
  *out += "CONNECTOR " + c.source + " -> " + c.target;
  if (!c.condition.empty()) {
    *out += " IF " + c.condition;
  }
  *out += ";\n";
}

void PrintTask(const TaskDef& t, int depth, std::string* out) {
  Indent(out, depth);
  *out += std::string(TaskKindName(t.kind)) + " " + t.name + " {\n";
  switch (t.kind) {
    case TaskKind::kActivity:
      Indent(out, depth + 1);
      *out += "CALL ";
      PrintQuoted(out, t.binding);
      *out += ";\n";
      break;
    case TaskKind::kSubprocess:
      Indent(out, depth + 1);
      *out += "PROCESS ";
      PrintQuoted(out, t.subprocess_name);
      *out += ";\n";
      break;
    case TaskKind::kParallel:
      Indent(out, depth + 1);
      *out += "LIST " + t.list_input + ";\n";
      if (!t.collect_output.empty()) {
        Indent(out, depth + 1);
        *out += "COLLECT " + t.collect_output + ";\n";
      }
      if (!t.body.empty()) PrintTask(t.body[0], depth + 1, out);
      break;
    case TaskKind::kBlock:
      if (t.atomic) {
        Indent(out, depth + 1);
        *out += "ATOMIC;\n";
      }
      for (const TaskDef& sub : t.subtasks) PrintTask(sub, depth + 1, out);
      for (const ControlConnector& c : t.connectors) {
        PrintConnector(c, depth + 1, out);
      }
      break;
  }
  PrintCommon(t, depth + 1, out);
  Indent(out, depth);
  *out += "}\n";
}

}  // namespace

std::string PrintOcr(const ProcessDef& def) {
  std::string out = "PROCESS " + def.name + " {\n";
  for (const DataObjectDef& d : def.whiteboard) {
    Indent(&out, 1);
    out += "DATA " + d.name;
    if (!d.initial.is_null()) {
      out += " = " + d.initial.ToText();
    }
    out += ";\n";
  }
  for (const TaskDef& t : def.tasks) PrintTask(t, 1, &out);
  for (const ControlConnector& c : def.connectors) {
    PrintConnector(c, 1, &out);
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class OcrParser {
 public:
  explicit OcrParser(std::string_view text) : text_(text) {}

  Result<ProcessDef> Parse() {
    BIOPERA_RETURN_IF_ERROR(ExpectKeyword("PROCESS"));
    ProcessDef def;
    BIOPERA_ASSIGN_OR_RETURN(def.name, ExpectIdent());
    BIOPERA_RETURN_IF_ERROR(ExpectChar('{'));
    while (!AtChar('}')) {
      BIOPERA_ASSIGN_OR_RETURN(std::string kw, PeekIdent());
      if (kw == "DATA") {
        BIOPERA_RETURN_IF_ERROR(ParseData(&def));
      } else if (kw == "CONNECTOR") {
        BIOPERA_ASSIGN_OR_RETURN(ControlConnector c, ParseConnector());
        def.connectors.push_back(std::move(c));
      } else {
        BIOPERA_ASSIGN_OR_RETURN(TaskDef t, ParseTask());
        def.tasks.push_back(std::move(t));
      }
    }
    BIOPERA_RETURN_IF_ERROR(ExpectChar('}'));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing input after process");
    BIOPERA_RETURN_IF_ERROR(ValidateProcess(def));
    return def;
  }

 private:
  Status Error(const std::string& what) {
    // Compute line number for the error message.
    int line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::InvalidArgument(
        StrFormat("ocr parse error (line %d): %s", line, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtChar(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status ExpectChar(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Error(StrFormat("expected '%c'", c));
    }
    ++pos_;
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> PeekIdent() {
    size_t save = pos_;
    Result<std::string> id = ExpectIdent();
    pos_ = save;
    return id;
  }

  Status ExpectKeyword(std::string_view kw) {
    BIOPERA_ASSIGN_OR_RETURN(std::string id, ExpectIdent());
    if (id != kw) {
      return Error(StrFormat("expected %.*s, got %s",
                             static_cast<int>(kw.size()), kw.data(),
                             id.c_str()));
    }
    return Status::OK();
  }

  Status ExpectArrow() {
    SkipSpace();
    if (text_.substr(pos_, 2) != "->") return Error("expected ->");
    pos_ += 2;
    return Status::OK();
  }

  Result<std::string> ExpectQuoted() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected quoted string");
    }
    size_t start = pos_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;
    Result<Value> v = Value::FromText(text_.substr(start, pos_ - start));
    if (!v.ok()) return v.status();
    return v->AsString();
  }

  /// Reads a dotted reference (ident(.ident)*).
  Result<std::string> ExpectRef() {
    BIOPERA_ASSIGN_OR_RETURN(std::string ref, ExpectIdent());
    while (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(std::string seg, ExpectIdent());
      ref += "." + seg;
    }
    return ref;
  }

  /// Captures raw text until the next top-level ';', respecting quotes.
  Result<std::string> CaptureUntilSemicolon() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ';') break;
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\') ++pos_;
          ++pos_;
        }
        if (pos_ >= text_.size()) return Error("unterminated string");
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("expected ';'");
    std::string captured(
        StripWhitespace(text_.substr(start, pos_ - start)));
    ++pos_;  // consume ';'
    return captured;
  }

  Status ParseData(ProcessDef* def) {
    BIOPERA_RETURN_IF_ERROR(ExpectKeyword("DATA"));
    DataObjectDef d;
    BIOPERA_ASSIGN_OR_RETURN(d.name, ExpectIdent());
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      BIOPERA_ASSIGN_OR_RETURN(std::string raw, CaptureUntilSemicolon());
      BIOPERA_ASSIGN_OR_RETURN(d.initial, Value::FromText(raw));
    } else {
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
    }
    def->whiteboard.push_back(std::move(d));
    return Status::OK();
  }

  Result<ControlConnector> ParseConnector() {
    BIOPERA_RETURN_IF_ERROR(ExpectKeyword("CONNECTOR"));
    ControlConnector c;
    BIOPERA_ASSIGN_OR_RETURN(c.source, ExpectIdent());
    BIOPERA_RETURN_IF_ERROR(ExpectArrow());
    BIOPERA_ASSIGN_OR_RETURN(c.target, ExpectIdent());
    SkipSpace();
    // Optional IF <expr>.
    size_t save = pos_;
    Result<std::string> kw = ExpectIdent();
    if (kw.ok() && *kw == "IF") {
      BIOPERA_ASSIGN_OR_RETURN(c.condition, CaptureUntilSemicolon());
    } else {
      pos_ = save;
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
    }
    return c;
  }

  /// Parses task-body statements shared by all task kinds. Returns false
  /// when the statement keyword is not a common one.
  Result<bool> ParseCommonStatement(const std::string& kw, TaskDef* t) {
    if (kw == "IN") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("IN"));
      Mapping m;
      BIOPERA_ASSIGN_OR_RETURN(m.from, ExpectRef());
      BIOPERA_RETURN_IF_ERROR(ExpectArrow());
      BIOPERA_ASSIGN_OR_RETURN(m.to, ExpectRef());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      t->inputs.push_back(std::move(m));
      return true;
    }
    if (kw == "OUT") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("OUT"));
      Mapping m;
      BIOPERA_ASSIGN_OR_RETURN(m.from, ExpectRef());
      BIOPERA_RETURN_IF_ERROR(ExpectArrow());
      BIOPERA_ASSIGN_OR_RETURN(m.to, ExpectRef());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      t->outputs.push_back(std::move(m));
      return true;
    }
    if (kw == "RETRY") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("RETRY"));
      BIOPERA_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
      long long retries;
      if (!ParseInt64(n, &retries)) return Error("bad RETRY count");
      t->failure.max_retries = static_cast<int>(retries);
      SkipSpace();
      size_t save = pos_;
      Result<std::string> next = ExpectIdent();
      if (next.ok() && *next == "BACKOFF") {
        BIOPERA_ASSIGN_OR_RETURN(std::string raw, CaptureUntilSemicolon());
        BIOPERA_ASSIGN_OR_RETURN(t->failure.retry_backoff,
                                 DurationFromOcr(raw));
      } else {
        pos_ = save;
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      }
      return true;
    }
    if (kw == "ALTERNATIVE") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("ALTERNATIVE"));
      BIOPERA_ASSIGN_OR_RETURN(t->failure.alternative_binding,
                               ExpectQuoted());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      return true;
    }
    if (kw == "IGNORE_FAILURE") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("IGNORE_FAILURE"));
      t->failure.ignore_failure = true;
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      return true;
    }
    if (kw == "CLASS") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("CLASS"));
      BIOPERA_ASSIGN_OR_RETURN(t->resource_class, ExpectQuoted());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      return true;
    }
    if (kw == "COMPENSATE") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("COMPENSATE"));
      BIOPERA_ASSIGN_OR_RETURN(t->compensation_binding, ExpectQuoted());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      return true;
    }
    if (kw == "ON_EVENT") {
      BIOPERA_RETURN_IF_ERROR(ExpectKeyword("ON_EVENT"));
      BIOPERA_ASSIGN_OR_RETURN(t->wait_event, ExpectQuoted());
      BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      return true;
    }
    return false;
  }

  Result<TaskDef> ParseTask() {
    BIOPERA_ASSIGN_OR_RETURN(std::string kind, ExpectIdent());
    TaskDef t;
    if (kind == "ACTIVITY") {
      t.kind = TaskKind::kActivity;
    } else if (kind == "BLOCK") {
      t.kind = TaskKind::kBlock;
    } else if (kind == "SUBPROCESS") {
      t.kind = TaskKind::kSubprocess;
    } else if (kind == "PARALLEL") {
      t.kind = TaskKind::kParallel;
    } else {
      return Error("unknown task kind " + kind);
    }
    BIOPERA_ASSIGN_OR_RETURN(t.name, ExpectIdent());
    BIOPERA_RETURN_IF_ERROR(ExpectChar('{'));
    while (!AtChar('}')) {
      BIOPERA_ASSIGN_OR_RETURN(std::string kw, PeekIdent());
      BIOPERA_ASSIGN_OR_RETURN(bool handled, ParseCommonStatement(kw, &t));
      if (handled) continue;
      if (kw == "CALL" && t.kind == TaskKind::kActivity) {
        BIOPERA_RETURN_IF_ERROR(ExpectKeyword("CALL"));
        BIOPERA_ASSIGN_OR_RETURN(t.binding, ExpectQuoted());
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      } else if (kw == "PROCESS" && t.kind == TaskKind::kSubprocess) {
        BIOPERA_RETURN_IF_ERROR(ExpectKeyword("PROCESS"));
        BIOPERA_ASSIGN_OR_RETURN(t.subprocess_name, ExpectQuoted());
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      } else if (kw == "LIST" && t.kind == TaskKind::kParallel) {
        BIOPERA_RETURN_IF_ERROR(ExpectKeyword("LIST"));
        BIOPERA_ASSIGN_OR_RETURN(t.list_input, ExpectRef());
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      } else if (kw == "COLLECT" && t.kind == TaskKind::kParallel) {
        BIOPERA_RETURN_IF_ERROR(ExpectKeyword("COLLECT"));
        BIOPERA_ASSIGN_OR_RETURN(t.collect_output, ExpectRef());
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      } else if (kw == "ATOMIC" && t.kind == TaskKind::kBlock) {
        BIOPERA_RETURN_IF_ERROR(ExpectKeyword("ATOMIC"));
        t.atomic = true;
        BIOPERA_RETURN_IF_ERROR(ExpectChar(';'));
      } else if (kw == "CONNECTOR" && t.kind == TaskKind::kBlock) {
        BIOPERA_ASSIGN_OR_RETURN(ControlConnector c, ParseConnector());
        t.connectors.push_back(std::move(c));
      } else if ((kw == "ACTIVITY" || kw == "BLOCK" || kw == "SUBPROCESS" ||
                  kw == "PARALLEL") &&
                 (t.kind == TaskKind::kBlock ||
                  t.kind == TaskKind::kParallel)) {
        BIOPERA_ASSIGN_OR_RETURN(TaskDef sub, ParseTask());
        if (t.kind == TaskKind::kBlock) {
          t.subtasks.push_back(std::move(sub));
        } else {
          t.body.push_back(std::move(sub));
        }
      } else {
        return Error("unexpected statement '" + kw + "' in " + kind + " " +
                     t.name);
      }
    }
    BIOPERA_RETURN_IF_ERROR(ExpectChar('}'));
    return t;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ProcessDef> ParseOcr(std::string_view text) {
  return OcrParser(text).Parse();
}

}  // namespace biopera::ocr
