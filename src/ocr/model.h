#ifndef BIOPERA_OCR_MODEL_H_
#define BIOPERA_OCR_MODEL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "ocr/expr.h"
#include "ocr/value.h"

namespace biopera::ocr {

/// A data-flow connector: copies the value at `from` into `to` (both
/// dotted references). Input mappings run when a task starts (targets are
/// "in.<param>"); output mappings run in the mapping phase after the task
/// completes (sources are "out.<field>", targets are whiteboard slots or
/// other tasks' input structures).
struct Mapping {
  std::string from;
  std::string to;

  friend bool operator==(const Mapping&, const Mapping&) = default;
};

/// Failure handler attached to a task (OCR's exception handling, §3.1):
/// how many times to retry, with what backoff, whether an alternative
/// external binding should be used for the retries (alternative execution),
/// and whether the process should continue even if the task ultimately
/// fails (spheres-of-atomicity boundary).
struct FailurePolicy {
  int max_retries = 3;
  Duration retry_backoff = Duration::Seconds(30);
  std::string alternative_binding;  // empty: retry the same binding
  bool ignore_failure = false;

  friend bool operator==(const FailurePolicy&, const FailurePolicy&) =
      default;
};

enum class TaskKind { kActivity, kBlock, kSubprocess, kParallel };
std::string_view TaskKindName(TaskKind kind);

/// A control connector: an annotated arc (source, target, activation
/// condition). The condition is evaluated when `source` completes; the
/// empty condition means "true". Standard dead-path semantics: a target
/// runs when every incoming connector has been evaluated and at least one
/// is true; it is skipped (and propagates false) when all are false.
struct ControlConnector {
  std::string source;
  std::string target;
  std::string condition;  // textual expression; empty = unconditional
};

/// One task in a process: an activity (external program invocation), a
/// block (named group of tasks with its own connectors), a subprocess
/// reference (late-bound at start), or a parallel task (the paper's §3.3
/// construct: one body instantiated per element of a runtime list).
struct TaskDef {
  std::string name;
  TaskKind kind = TaskKind::kActivity;

  // -- Activity fields --
  /// External binding: the program the runtime invokes (paper: a Darwin
  /// script). Resolved against the ActivityRegistry at dispatch time.
  std::string binding;
  /// Scheduling hint restricting which node classes may run this activity
  /// (e.g. the paper dedicates the slower ik-sun nodes to refinement).
  std::string resource_class;
  /// Undo action for spheres of atomicity (§3.1): when an enclosing
  /// ATOMIC block fails, completed activities are compensated by invoking
  /// this binding with the activity's outputs as its input parameters.
  std::string compensation_binding;
  /// Event handling (§3.1): when set, the activated task waits until
  /// Engine::RaiseEvent delivers this event to the instance before it is
  /// dispatched (user-triggered activities, §3.4).
  std::string wait_event;
  FailurePolicy failure;

  // -- Common data flow --
  std::vector<Mapping> inputs;   // "...": -> "in.param"
  std::vector<Mapping> outputs;  // "out.field" -> "wb.x"

  // -- Block fields --
  std::vector<TaskDef> subtasks;
  std::vector<ControlConnector> connectors;
  /// Sphere of atomicity (§3.1): if any task inside fails permanently,
  /// completed activities with compensation bindings are undone in
  /// reverse completion order and the whole block re-runs from scratch
  /// (up to its failure policy's retries).
  bool atomic = false;

  // -- Subprocess fields --
  std::string subprocess_name;  // late-bound process template name

  // -- Parallel fields --
  /// Reference yielding the input list; one body instance per element.
  std::string list_input;
  /// Reference (whiteboard slot) receiving the list of body results.
  std::string collect_output;
  /// Exactly one element: the body task (activity or subprocess).
  std::vector<TaskDef> body;
};

/// A whiteboard variable and its initial value.
struct DataObjectDef {
  std::string name;
  Value initial;
};

/// A process definition: the annotated directed graph of §2.
struct ProcessDef {
  std::string name;
  std::vector<DataObjectDef> whiteboard;
  std::vector<TaskDef> tasks;
  std::vector<ControlConnector> connectors;

  /// Finds a top-level task by name; nullptr if absent.
  const TaskDef* FindTask(std::string_view task_name) const;
};

/// Structural validation: unique names, resolvable connector endpoints,
/// acyclic control flow per scope, parseable conditions, well-formed
/// mappings and parallel bodies. Returns the first problem found.
Status ValidateProcess(const ProcessDef& def);

}  // namespace biopera::ocr

#endif  // BIOPERA_OCR_MODEL_H_
