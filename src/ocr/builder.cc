#include "ocr/builder.h"

namespace biopera::ocr {

TaskBuilder TaskBuilder::Activity(std::string name, std::string binding) {
  TaskBuilder b;
  b.def_.name = std::move(name);
  b.def_.kind = TaskKind::kActivity;
  b.def_.binding = std::move(binding);
  return b;
}

TaskBuilder TaskBuilder::Block(std::string name) {
  TaskBuilder b;
  b.def_.name = std::move(name);
  b.def_.kind = TaskKind::kBlock;
  return b;
}

TaskBuilder TaskBuilder::Subprocess(std::string name,
                                    std::string process_name) {
  TaskBuilder b;
  b.def_.name = std::move(name);
  b.def_.kind = TaskKind::kSubprocess;
  b.def_.subprocess_name = std::move(process_name);
  return b;
}

TaskBuilder TaskBuilder::Parallel(std::string name, std::string list_input,
                                  TaskBuilder body) {
  TaskBuilder b;
  b.def_.name = std::move(name);
  b.def_.kind = TaskKind::kParallel;
  b.def_.list_input = std::move(list_input);
  b.def_.body.push_back(std::move(body).Build());
  return b;
}

TaskBuilder& TaskBuilder::Input(std::string from, std::string to) {
  def_.inputs.push_back({std::move(from), std::move(to)});
  return *this;
}

TaskBuilder& TaskBuilder::Output(std::string from, std::string to) {
  def_.outputs.push_back({std::move(from), std::move(to)});
  return *this;
}

TaskBuilder& TaskBuilder::Retry(int max_retries, Duration backoff) {
  def_.failure.max_retries = max_retries;
  def_.failure.retry_backoff = backoff;
  return *this;
}

TaskBuilder& TaskBuilder::Alternative(std::string binding) {
  def_.failure.alternative_binding = std::move(binding);
  return *this;
}

TaskBuilder& TaskBuilder::IgnoreFailure() {
  def_.failure.ignore_failure = true;
  return *this;
}

TaskBuilder& TaskBuilder::Compensate(std::string binding) {
  def_.compensation_binding = std::move(binding);
  return *this;
}

TaskBuilder& TaskBuilder::OnEvent(std::string event) {
  def_.wait_event = std::move(event);
  return *this;
}

TaskBuilder& TaskBuilder::Atomic() {
  def_.atomic = true;
  return *this;
}

TaskBuilder& TaskBuilder::ResourceClass(std::string cls) {
  def_.resource_class = std::move(cls);
  return *this;
}

TaskBuilder& TaskBuilder::Collect(std::string ref) {
  def_.collect_output = std::move(ref);
  return *this;
}

TaskBuilder& TaskBuilder::Sub(TaskBuilder task) {
  def_.subtasks.push_back(std::move(task).Build());
  return *this;
}

TaskBuilder& TaskBuilder::Connect(std::string source, std::string target,
                                  std::string condition) {
  def_.connectors.push_back(
      {std::move(source), std::move(target), std::move(condition)});
  return *this;
}

ProcessBuilder::ProcessBuilder(std::string name) { def_.name = std::move(name); }

ProcessBuilder& ProcessBuilder::Data(std::string name, Value initial) {
  def_.whiteboard.push_back({std::move(name), std::move(initial)});
  return *this;
}

ProcessBuilder& ProcessBuilder::Task(TaskBuilder task) {
  def_.tasks.push_back(std::move(task).Build());
  return *this;
}

ProcessBuilder& ProcessBuilder::Connect(std::string source,
                                        std::string target,
                                        std::string condition) {
  def_.connectors.push_back(
      {std::move(source), std::move(target), std::move(condition)});
  return *this;
}

Result<ProcessDef> ProcessBuilder::Build() {
  BIOPERA_RETURN_IF_ERROR(ValidateProcess(def_));
  return std::move(def_);
}

}  // namespace biopera::ocr
