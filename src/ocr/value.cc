#include "ocr/value.h"

#include <cctype>
#include <cmath>

#include "common/strings.h"

namespace biopera::ocr {

bool Value::Truthy() const {
  if (is_null()) return false;
  if (is_bool()) return AsBool();
  if (is_int()) return AsInt() != 0;
  if (is_double()) return AsDouble() != 0.0;
  if (is_string()) return !AsString().empty();
  if (is_list()) return !AsList().empty();
  if (is_map()) return !AsMap().empty();
  return false;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_number() && b.is_number()) {
    if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
    return a.AsDouble() == b.AsDouble();
  }
  return a.v_ == b.v_;
}

std::string_view Value::TypeName() const {
  if (is_null()) return "null";
  if (is_bool()) return "bool";
  if (is_int()) return "int";
  if (is_double()) return "double";
  if (is_string()) return "string";
  if (is_list()) return "list";
  return "map";
}

namespace {

void EscapeInto(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void ToTextInto(const Value& v, std::string* out) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_bool()) {
    *out += v.AsBool() ? "true" : "false";
  } else if (v.is_int()) {
    *out += StrFormat("%lld", static_cast<long long>(v.AsInt()));
  } else if (v.is_double()) {
    double d = v.AsDouble();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      *out += StrFormat("%.1f", d);
    } else {
      *out += StrFormat("%.17g", d);
    }
  } else if (v.is_string()) {
    EscapeInto(v.AsString(), out);
  } else if (v.is_list()) {
    out->push_back('[');
    bool first = true;
    for (const auto& e : v.AsList()) {
      if (!first) out->push_back(',');
      first = false;
      ToTextInto(e, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.AsMap()) {
      if (!first) out->push_back(',');
      first = false;
      EscapeInto(k, out);
      out->push_back(':');
      ToTextInto(e, out);
    }
    out->push_back('}');
  }
}

class TextParser {
 public:
  explicit TextParser(std::string_view text) : text_(text) {}

  Result<Value> Parse() {
    BIOPERA_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("value text: trailing characters");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(std::string_view w) {
    SkipSpace();
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Status::InvalidArgument("value text: expected string");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: out.push_back(esc);
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("value text: unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("value text: unexpected end");
    }
    char c = text_[pos_];
    if (c == '"') {
      BIOPERA_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value(std::move(s));
    }
    if (c == '[') {
      ++pos_;
      Value::List list;
      SkipSpace();
      if (Consume(']')) return Value(std::move(list));
      while (true) {
        BIOPERA_ASSIGN_OR_RETURN(Value v, ParseValue());
        list.push_back(std::move(v));
        if (Consume(']')) break;
        if (!Consume(',')) {
          return Status::InvalidArgument("value text: expected , or ]");
        }
      }
      return Value(std::move(list));
    }
    if (c == '{') {
      ++pos_;
      Value::Map map;
      SkipSpace();
      if (Consume('}')) return Value(std::move(map));
      while (true) {
        BIOPERA_ASSIGN_OR_RETURN(std::string key, ParseString());
        if (!Consume(':')) {
          return Status::InvalidArgument("value text: expected :");
        }
        BIOPERA_ASSIGN_OR_RETURN(Value v, ParseValue());
        map[std::move(key)] = std::move(v);
        if (Consume('}')) break;
        if (!Consume(',')) {
          return Status::InvalidArgument("value text: expected , or }");
        }
      }
      return Value(std::move(map));
    }
    if (ConsumeWord("null")) return Value::Null();
    if (ConsumeWord("true")) return Value(true);
    if (ConsumeWord("false")) return Value(false);
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char d = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos_;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '-' || d == '+') {
        // '-'/'+' only valid right after an exponent marker; rely on the
        // strtod validation below.
        is_double = is_double || d == '.' || d == 'e' || d == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (is_double) {
      double d;
      if (!ParseDouble(num, &d)) {
        return Status::InvalidArgument("value text: bad number");
      }
      return Value(d);
    }
    long long i;
    if (!ParseInt64(num, &i)) {
      return Status::InvalidArgument("value text: bad number");
    }
    return Value(static_cast<int64_t>(i));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Value::ToText() const {
  std::string out;
  ToTextInto(*this, &out);
  return out;
}

Result<Value> Value::FromText(std::string_view text) {
  return TextParser(text).Parse();
}

}  // namespace biopera::ocr
