#ifndef BIOPERA_OCR_BUILDER_H_
#define BIOPERA_OCR_BUILDER_H_

#include <string>
#include <utility>

#include "ocr/model.h"

namespace biopera::ocr {

/// Fluent construction of TaskDefs. Example:
///
///   auto align = TaskBuilder::Activity("fixed_pam", "darwin.fixed_pam")
///                    .Input("item", "in.partition")
///                    .Output("out.matches", "wb.raw_matches")
///                    .Retry(5, Duration::Minutes(2));
class TaskBuilder {
 public:
  static TaskBuilder Activity(std::string name, std::string binding);
  static TaskBuilder Block(std::string name);
  static TaskBuilder Subprocess(std::string name, std::string process_name);
  /// `list_input` is a data reference producing the input list; `body` is
  /// instantiated once per element (see TaskDef::body).
  static TaskBuilder Parallel(std::string name, std::string list_input,
                              TaskBuilder body);

  TaskBuilder& Input(std::string from, std::string to);
  TaskBuilder& Output(std::string from, std::string to);
  TaskBuilder& Retry(int max_retries, Duration backoff);
  TaskBuilder& Alternative(std::string binding);
  TaskBuilder& IgnoreFailure();
  /// Undo action used when an enclosing ATOMIC block fails (activities).
  TaskBuilder& Compensate(std::string binding);
  /// Gates activation on Engine::RaiseEvent(instance, event).
  TaskBuilder& OnEvent(std::string event);
  /// Marks a block as a sphere of atomicity.
  TaskBuilder& Atomic();
  TaskBuilder& ResourceClass(std::string cls);
  /// For parallel tasks: whiteboard reference collecting body results.
  TaskBuilder& Collect(std::string ref);
  /// For blocks: adds a nested task.
  TaskBuilder& Sub(TaskBuilder task);
  /// For blocks: adds a control connector between nested tasks.
  TaskBuilder& Connect(std::string source, std::string target,
                       std::string condition = "");

  TaskDef Build() && { return std::move(def_); }
  const TaskDef& def() const { return def_; }

 private:
  TaskDef def_;
};

/// Fluent construction of ProcessDefs; Build() validates the result.
class ProcessBuilder {
 public:
  explicit ProcessBuilder(std::string name);

  ProcessBuilder& Data(std::string name, Value initial = Value::Null());
  ProcessBuilder& Task(TaskBuilder task);
  ProcessBuilder& Connect(std::string source, std::string target,
                          std::string condition = "");

  /// Validates and returns the definition.
  Result<ProcessDef> Build();

 private:
  ProcessDef def_;
};

}  // namespace biopera::ocr

#endif  // BIOPERA_OCR_BUILDER_H_
