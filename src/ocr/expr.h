#ifndef BIOPERA_OCR_EXPR_H_
#define BIOPERA_OCR_EXPR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ocr/value.h"

namespace biopera::ocr {

/// Resolves dotted data references during condition evaluation and data
/// mapping. Typical roots: "wb" (process whiteboard), a task name (its
/// output structure, e.g. "user_input.out.queue_file"), "in"/"out" (the
/// current task's own structures), "item"/"index" inside a parallel task.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Returns the value at `path`, or NotFound if the reference does not
  /// resolve. Expression evaluation treats NotFound as a null value
  /// (so conditions can probe optional data with defined(...)).
  virtual Result<Value> Lookup(const std::vector<std::string>& path) const = 0;
};

/// Expression AST for OCR activation conditions, e.g.
///   !defined(wb.queue_file) && wb.num_entries > 0
///
/// Operators (loosest to tightest): || , && , == != < <= > >= ,
/// + - , * / , unary ! - , primary (literal, reference, defined(ref),
/// parentheses). && and || short-circuit on truthiness (see Value::Truthy).
class Expr {
 public:
  enum class Kind { kLiteral, kRef, kUnary, kBinary, kDefined };

  /// Parses an expression; returns InvalidArgument with a position hint on
  /// syntax errors.
  static Result<Expr> Parse(std::string_view text);

  /// Convenience factories (used by the process builder).
  static Expr Literal(Value v);
  static Expr Ref(std::vector<std::string> path);

  Kind kind() const { return kind_; }
  const std::vector<std::string>& ref_path() const { return ref_; }

  /// Evaluates against `ctx`. Type errors (e.g. "a" < 3) yield
  /// InvalidArgument.
  Result<Value> Eval(const EvalContext& ctx) const;

  /// Canonical text form; Parse(ToString()) is structurally identical.
  std::string ToString() const;

  /// All data references mentioned in the expression (for validation).
  void CollectRefs(std::vector<std::vector<std::string>>* out) const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  Value literal_;
  std::vector<std::string> ref_;
  std::string op_;  // "!" or "-" for unary; binary operator text otherwise
  std::vector<Expr> children_;

  friend class ExprParser;
};

}  // namespace biopera::ocr

#endif  // BIOPERA_OCR_EXPR_H_
