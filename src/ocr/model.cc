#include "ocr/model.h"

#include <map>
#include <set>

#include "common/strings.h"

namespace biopera::ocr {

std::string_view TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kActivity:
      return "ACTIVITY";
    case TaskKind::kBlock:
      return "BLOCK";
    case TaskKind::kSubprocess:
      return "SUBPROCESS";
    case TaskKind::kParallel:
      return "PARALLEL";
  }
  return "?";
}

const TaskDef* ProcessDef::FindTask(std::string_view task_name) const {
  for (const TaskDef& t : tasks) {
    if (t.name == task_name) return &t;
  }
  return nullptr;
}

namespace {

Status ValidateMappingRef(const std::string& ref, const std::string& where) {
  if (StripWhitespace(ref).empty()) {
    return Status::InvalidArgument(where + ": empty data reference");
  }
  // Must parse as a bare reference expression.
  Result<Expr> e = Expr::Parse(ref);
  if (!e.ok()) {
    return Status::InvalidArgument(where + ": bad reference '" + ref +
                                   "': " + e.status().message());
  }
  if (e->kind() != Expr::Kind::kRef) {
    return Status::InvalidArgument(where + ": '" + ref +
                                   "' is not a plain data reference");
  }
  return Status::OK();
}

/// Validates one scope (the process top level or a block): name
/// uniqueness, connector endpoints, acyclicity, then recurses into
/// composite tasks.
Status ValidateScope(const std::vector<TaskDef>& tasks,
                     const std::vector<ControlConnector>& connectors,
                     const std::string& scope) {
  std::set<std::string> names;
  for (const TaskDef& t : tasks) {
    if (StripWhitespace(t.name).empty()) {
      return Status::InvalidArgument(scope + ": task with empty name");
    }
    if (!names.insert(t.name).second) {
      return Status::InvalidArgument(scope + ": duplicate task name '" +
                                     t.name + "'");
    }
  }
  for (const ControlConnector& c : connectors) {
    if (!names.contains(c.source)) {
      return Status::InvalidArgument(scope + ": connector source '" +
                                     c.source + "' is not a task here");
    }
    if (!names.contains(c.target)) {
      return Status::InvalidArgument(scope + ": connector target '" +
                                     c.target + "' is not a task here");
    }
    if (c.source == c.target) {
      return Status::InvalidArgument(scope + ": self-loop on '" + c.source +
                                     "'");
    }
    if (!c.condition.empty()) {
      Result<Expr> e = Expr::Parse(c.condition);
      if (!e.ok()) {
        return Status::InvalidArgument(
            scope + ": bad condition on " + c.source + "->" + c.target +
            ": " + e.status().message());
      }
    }
  }
  // Cycle detection (Kahn).
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> adj;
  for (const TaskDef& t : tasks) indegree[t.name] = 0;
  for (const ControlConnector& c : connectors) {
    adj[c.source].push_back(c.target);
    ++indegree[c.target];
  }
  std::vector<std::string> queue;
  for (auto& [name, deg] : indegree) {
    if (deg == 0) queue.push_back(name);
  }
  size_t removed = 0;
  while (!queue.empty()) {
    std::string n = queue.back();
    queue.pop_back();
    ++removed;
    for (const std::string& m : adj[n]) {
      if (--indegree[m] == 0) queue.push_back(m);
    }
  }
  if (removed != tasks.size()) {
    return Status::InvalidArgument(scope + ": control-flow cycle detected");
  }

  // Per-task checks.
  for (const TaskDef& t : tasks) {
    const std::string where = scope + "." + t.name;
    for (const Mapping& m : t.inputs) {
      BIOPERA_RETURN_IF_ERROR(ValidateMappingRef(m.from, where));
      BIOPERA_RETURN_IF_ERROR(ValidateMappingRef(m.to, where));
      if (!StartsWith(m.to, "in.")) {
        return Status::InvalidArgument(
            where + ": input mapping target '" + m.to +
            "' must be in the task's input structure (in.*)");
      }
    }
    for (const Mapping& m : t.outputs) {
      BIOPERA_RETURN_IF_ERROR(ValidateMappingRef(m.from, where));
      BIOPERA_RETURN_IF_ERROR(ValidateMappingRef(m.to, where));
      if (!StartsWith(m.from, "out.")) {
        return Status::InvalidArgument(
            where + ": output mapping source '" + m.from +
            "' must be in the task's output structure (out.*)");
      }
    }
    if (!t.compensation_binding.empty() && t.kind != TaskKind::kActivity) {
      return Status::InvalidArgument(
          where + ": only activities can declare a COMPENSATE binding");
    }
    if (t.atomic && t.kind != TaskKind::kBlock) {
      return Status::InvalidArgument(where +
                                     ": only blocks can be ATOMIC");
    }
    switch (t.kind) {
      case TaskKind::kActivity:
        if (StripWhitespace(t.binding).empty()) {
          return Status::InvalidArgument(where +
                                         ": activity without a binding");
        }
        if (!t.subtasks.empty() || !t.body.empty()) {
          return Status::InvalidArgument(where +
                                         ": activity cannot nest tasks");
        }
        break;
      case TaskKind::kBlock:
        if (t.subtasks.empty()) {
          return Status::InvalidArgument(where + ": empty block");
        }
        BIOPERA_RETURN_IF_ERROR(
            ValidateScope(t.subtasks, t.connectors, where));
        break;
      case TaskKind::kSubprocess:
        if (StripWhitespace(t.subprocess_name).empty()) {
          return Status::InvalidArgument(
              where + ": subprocess without a process name");
        }
        break;
      case TaskKind::kParallel: {
        if (t.body.size() != 1) {
          return Status::InvalidArgument(
              where + ": parallel task needs exactly one body task");
        }
        BIOPERA_RETURN_IF_ERROR(ValidateMappingRef(t.list_input, where));
        if (!t.collect_output.empty()) {
          BIOPERA_RETURN_IF_ERROR(
              ValidateMappingRef(t.collect_output, where));
        }
        const TaskDef& body = t.body[0];
        if (body.kind != TaskKind::kActivity &&
            body.kind != TaskKind::kSubprocess) {
          return Status::InvalidArgument(
              where + ": parallel body must be an activity or subprocess");
        }
        std::vector<TaskDef> one = {body};
        BIOPERA_RETURN_IF_ERROR(ValidateScope(one, {}, where));
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateProcess(const ProcessDef& def) {
  if (StripWhitespace(def.name).empty()) {
    return Status::InvalidArgument("process with empty name");
  }
  std::set<std::string> wb;
  for (const DataObjectDef& d : def.whiteboard) {
    if (StripWhitespace(d.name).empty()) {
      return Status::InvalidArgument(def.name +
                                     ": whiteboard variable with empty name");
    }
    if (!wb.insert(d.name).second) {
      return Status::InvalidArgument(
          def.name + ": duplicate whiteboard variable '" + d.name + "'");
    }
  }
  if (def.tasks.empty()) {
    return Status::InvalidArgument(def.name + ": process has no tasks");
  }
  return ValidateScope(def.tasks, def.connectors, def.name);
}

}  // namespace biopera::ocr
