#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace biopera::exec {

ThreadPool::ThreadPool(size_t threads) {
  size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>* lock) {
  if (queue_.empty()) return false;
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock->unlock();
  task();
  lock->lock();
  if (--in_flight_ == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (RunOneTask(&lock)) continue;
    if (stopping_) return;
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  }
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& task : tasks) queue_.push_back(std::move(task));
  in_flight_ += tasks.size();
  work_cv_.notify_all();
  // The caller is a worker too: drain what we can, then wait for the
  // stragglers other threads are still running.
  while (RunOneTask(&lock)) {
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace biopera::exec
