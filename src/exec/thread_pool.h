#ifndef BIOPERA_EXEC_THREAD_POOL_H_
#define BIOPERA_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace biopera::exec {

/// A batch-oriented pool of real OS threads beneath the virtual-time
/// engine. The engine hands it one batch of activity kernels per pump
/// (see Engine::PreExecuteReady), blocks until every task has finished,
/// and only then applies results in deterministic scan order — so the
/// pool changes wall-clock time, never virtual time.
///
/// RunBatch is synchronous and single-caller by design: there is no
/// cross-batch queueing to reason about, and a crashed/aborted batch
/// cannot leak tasks into the next one. The calling thread drains tasks
/// too, so a pool on a single-core machine degenerates to inline
/// execution plus a bounded constant of synchronization.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1). Use
  /// HardwareThreads() for "one per core".
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding the RunBatch caller).
  size_t size() const { return workers_.size(); }

  /// Runs every task, returning once all have completed. Tasks must not
  /// call RunBatch on the same pool. Tasks run concurrently: anything
  /// they touch must be thread-safe or task-local.
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();
  // Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask(std::unique_lock<std::mutex>* lock);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait: queue non-empty/stop
  std::condition_variable done_cv_;  // caller waits: batch drained
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace biopera::exec

#endif  // BIOPERA_EXEC_THREAD_POOL_H_
