#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace biopera {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, long long* out) {
  s = StripWhitespace(s);
  if (s.empty() || s.size() > 32) return false;
  char buf[40];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty() || s.size() > 64) return false;
  char buf[72];
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace biopera
