#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace biopera {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(Normal(0.0, sigma));
}

double Rng::Gamma(double shape, double scale) {
  assert(shape > 0 && scale > 0);
  if (shape < 1.0) {
    // Johnk/boosting trick: Gamma(a) = Gamma(a+1) * U^(1/a).
    double u = NextDouble();
    if (u <= 0) u = 0x1.0p-53;
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal(0.0, 1.0);
    double v = 1.0 + c * x;
    if (v <= 0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u <= 0) u = 0x1.0p-53;
    if (std::log(u) < 0.5 * x * x + d - d * v + d * std::log(v)) {
      return d * v * scale;
    }
  }
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace biopera
