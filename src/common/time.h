#ifndef BIOPERA_COMMON_TIME_H_
#define BIOPERA_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace biopera {

/// A span of (virtual) time with microsecond resolution.
///
/// All engine and simulator code uses these strong types rather than raw
/// integers or std::chrono so that virtual time (discrete-event simulation)
/// and real time share one vocabulary.
class Duration {
 public:
  constexpr Duration() : micros_(0) {}

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600); }
  static constexpr Duration Days(double d) { return Seconds(d * 86400); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr double ToSeconds() const { return micros_ / 1e6; }
  constexpr double ToMinutes() const { return ToSeconds() / 60; }
  constexpr double ToHours() const { return ToSeconds() / 3600; }
  constexpr double ToDays() const { return ToSeconds() / 86400; }

  constexpr bool IsZero() const { return micros_ == 0; }

  constexpr Duration operator+(Duration o) const {
    return Duration(micros_ + o.micros_);
  }
  constexpr Duration operator-(Duration o) const {
    return Duration(micros_ - o.micros_);
  }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<int64_t>(micros_ * f));
  }
  constexpr Duration operator/(double f) const {
    return Duration(static_cast<int64_t>(micros_ / f));
  }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(micros_) / static_cast<double>(o.micros_);
  }
  Duration& operator+=(Duration o) {
    micros_ += o.micros_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    micros_ -= o.micros_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Formats like "2d 03h 14m", "41m 12s", "3.250s", or "412us".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t us) : micros_(us) {}
  int64_t micros_;
};

/// An instant on the (virtual) timeline; time 0 is the simulation start.
class TimePoint {
 public:
  constexpr TimePoint() : micros_(0) {}
  static constexpr TimePoint FromMicros(int64_t us) { return TimePoint(us); }
  static constexpr TimePoint Zero() { return TimePoint(0); }
  static constexpr TimePoint Max() { return TimePoint(INT64_MAX); }

  constexpr int64_t micros() const { return micros_; }
  constexpr Duration SinceEpoch() const { return Duration::Micros(micros_); }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(micros_ + d.micros());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(micros_ - d.micros());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Micros(micros_ - o.micros_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  /// Formats the elapsed time since epoch, as Duration::ToString.
  std::string ToString() const { return SinceEpoch().ToString(); }

 private:
  explicit constexpr TimePoint(int64_t us) : micros_(us) {}
  int64_t micros_;
};

/// Read-only clock abstraction. The simulator implements this with virtual
/// time; tests may implement it with a hand-driven value.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

}  // namespace biopera

#endif  // BIOPERA_COMMON_TIME_H_
