#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace biopera {

namespace {

int LevelFromEnv() {
  const char* env = std::getenv("BIOPERA_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarning);
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug" || value == "d") return static_cast<int>(LogLevel::kDebug);
  if (value == "info" || value == "i") return static_cast<int>(LogLevel::kInfo);
  if (value == "warning" || value == "warn" || value == "w") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (value == "error" || value == "e") return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarning);
}

std::atomic<int> g_log_level{LevelFromEnv()};
const Clock* g_log_clock = nullptr;
LogCaptureHook g_capture_hook;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogClock(const Clock* clock) { g_log_clock = clock; }

void SetLogCaptureHook(LogCaptureHook hook) {
  g_capture_hook = std::move(hook);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level);
  if (g_log_clock != nullptr) {
    stream_ << " " << g_log_clock->Now().ToString();
  }
  stream_ << " " << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  if (g_capture_hook) g_capture_hook(level_, line);
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace biopera
