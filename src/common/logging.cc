#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace biopera {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace biopera
