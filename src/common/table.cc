#include "common/table.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"

namespace biopera {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      // Right-align numeric-looking cells.
      double d;
      bool numeric = ParseDouble(row[c], &d);
      size_t pad = width[c] - row[c].size();
      if (numeric) line += std::string(pad, ' ');
      line += row[c];
      if (!numeric) line += std::string(pad, ' ');
    }
    return line;
  };
  std::string out = render_row(header_);
  out += "\n";
  size_t rule = 0;
  for (size_t c = 0; c < width.size(); ++c) rule += width[c] + (c ? 2 : 0);
  out += std::string(rule, '-');
  out += "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
    out += "\n";
  }
  return out;
}

std::string AsciiAreaChart(const std::vector<double>& availability,
                           const std::vector<double>& utilization,
                           double y_max, int height) {
  assert(availability.size() == utilization.size());
  assert(height > 0 && y_max > 0);
  const size_t w = availability.size();
  std::string out;
  for (int r = height; r >= 1; --r) {
    double threshold = y_max * (static_cast<double>(r) - 0.5) /
                       static_cast<double>(height);
    std::string line = StrFormat("%5.1f |", y_max * r / height);
    for (size_t x = 0; x < w; ++x) {
      if (utilization[x] >= threshold) {
        line += '#';  // processors actually computing BioOpera jobs
      } else if (availability[x] >= threshold) {
        line += '.';  // processors available but idle / used by others
      } else {
        line += ' ';
      }
    }
    out += line;
    out += "\n";
  }
  out += "      +" + std::string(w, '-') + "\n";
  out += "       # = utilized by engine, . = available\n";
  return out;
}

}  // namespace biopera
