#ifndef BIOPERA_COMMON_STATUS_H_
#define BIOPERA_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace biopera {

/// Canonical error codes used across the library. Modeled after the
/// RocksDB/Abseil convention: functions that can fail return a Status (or a
/// Result<T>, see result.h) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kCorruption,
  kIOError,
  kAborted,
  kCancelled,
  kDeadlineExceeded,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Statuses are copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace biopera

/// Propagates an error Status from the current function.
#define BIOPERA_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::biopera::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

#endif  // BIOPERA_COMMON_STATUS_H_
