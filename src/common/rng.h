#ifndef BIOPERA_COMMON_RNG_H_
#define BIOPERA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace biopera {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All randomness in the library flows through explicitly
/// seeded Rng instances so that experiments and tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Lognormal such that the *median* of the result is `median` and the
  /// underlying normal has standard deviation `sigma`.
  double LogNormal(double median, double sigma);

  /// Gamma(shape k, scale theta) via Marsaglia-Tsang. k > 0, theta > 0.
  double Gamma(double shape, double scale);

  /// Samples an index according to non-negative `weights` (at least one
  /// weight must be positive).
  size_t Discrete(const std::vector<double>& weights);

  /// Forks a child generator whose stream is independent of (but fully
  /// determined by) this one. Useful to give each simulated node its own
  /// stream so adding nodes does not perturb unrelated randomness.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0;
};

}  // namespace biopera

#endif  // BIOPERA_COMMON_RNG_H_
