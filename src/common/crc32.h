#ifndef BIOPERA_COMMON_CRC32_H_
#define BIOPERA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace biopera {

/// CRC-32C (Castagnoli). Used to checksum WAL records and snapshot files.
/// Hardware-accelerated (SSE4.2) where available, slicing-by-8 software
/// tables otherwise; both produce identical checksums.
uint32_t Crc32c(const void* data, size_t n);
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

/// Extends a running CRC with more data.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace biopera

#endif  // BIOPERA_COMMON_CRC32_H_
