#ifndef BIOPERA_COMMON_RESULT_H_
#define BIOPERA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace biopera {

/// Either a value of type T or an error Status. The OK status is never
/// stored without a value; constructing a Result from an OK status is a
/// programming error and is converted to an Internal error.
///
/// Typical use:
///
///   Result<int> ParsePort(std::string_view s);
///   ...
///   BIOPERA_ASSIGN_OR_RETURN(int port, ParsePort(arg));
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, like absl::StatusOr).
  Result(T value) : value_(std::move(value)) {}
  /// Constructs a Result holding an error.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  /// Returns the error (or OK if a value is held).
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace biopera

#define BIOPERA_CONCAT_IMPL_(a, b) a##b
#define BIOPERA_CONCAT_(a, b) BIOPERA_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a type declaration).
#define BIOPERA_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto BIOPERA_CONCAT_(_res_, __LINE__) = (rexpr);                \
  if (!BIOPERA_CONCAT_(_res_, __LINE__).ok())                     \
    return BIOPERA_CONCAT_(_res_, __LINE__).status();             \
  lhs = std::move(BIOPERA_CONCAT_(_res_, __LINE__)).value()

#endif  // BIOPERA_COMMON_RESULT_H_
