#ifndef BIOPERA_COMMON_STRINGS_H_
#define BIOPERA_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace biopera {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a signed 64-bit integer; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, long long* out);
/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

}  // namespace biopera

#endif  // BIOPERA_COMMON_STRINGS_H_
