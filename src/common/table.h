#ifndef BIOPERA_COMMON_TABLE_H_
#define BIOPERA_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace biopera {

/// Builds fixed-width text tables for benchmark output, mirroring the rows
/// the paper's tables/figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule; right-aligns cells that parse as numbers.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders `series` (values per x-step, already resampled) as a compact
/// ASCII area chart of the given height; used by the lifecycle benches to
/// draw the Figure 5 / Figure 6 availability-utilization curves.
std::string AsciiAreaChart(const std::vector<double>& availability,
                           const std::vector<double>& utilization,
                           double y_max, int height);

}  // namespace biopera

#endif  // BIOPERA_COMMON_TABLE_H_
