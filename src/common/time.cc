#include "common/time.h"

#include "common/strings.h"

namespace biopera {

std::string Duration::ToString() const {
  int64_t us = micros_;
  bool neg = us < 0;
  if (neg) us = -us;
  std::string body;
  if (us >= 86400LL * 1000000) {
    int64_t days = us / (86400LL * 1000000);
    int64_t rem = us % (86400LL * 1000000);
    int64_t hours = rem / (3600LL * 1000000);
    int64_t mins = (rem % (3600LL * 1000000)) / (60LL * 1000000);
    body = StrFormat("%lldd %02lldh %02lldm", static_cast<long long>(days),
                     static_cast<long long>(hours),
                     static_cast<long long>(mins));
  } else if (us >= 3600LL * 1000000) {
    int64_t hours = us / (3600LL * 1000000);
    int64_t mins = (us % (3600LL * 1000000)) / (60LL * 1000000);
    int64_t secs = (us % (60LL * 1000000)) / 1000000;
    body = StrFormat("%lldh %02lldm %02llds", static_cast<long long>(hours),
                     static_cast<long long>(mins),
                     static_cast<long long>(secs));
  } else if (us >= 60LL * 1000000) {
    int64_t mins = us / (60LL * 1000000);
    int64_t secs = (us % (60LL * 1000000)) / 1000000;
    body = StrFormat("%lldm %02llds", static_cast<long long>(mins),
                     static_cast<long long>(secs));
  } else if (us >= 1000000) {
    body = StrFormat("%.3fs", us / 1e6);
  } else if (us >= 1000) {
    body = StrFormat("%.3fms", us / 1e3);
  } else {
    body = StrFormat("%lldus", static_cast<long long>(us));
  }
  return neg ? "-" + body : body;
}

}  // namespace biopera
