#ifndef BIOPERA_COMMON_LOGGING_H_
#define BIOPERA_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "common/time.h"

namespace biopera {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kWarning
/// (benches and tests stay quiet unless something is wrong), overridable
/// at process start with the BIOPERA_LOG_LEVEL environment variable
/// ("debug" | "info" | "warning" | "error", case-insensitive).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Registers the clock used to prefix log lines with a timestamp —
/// typically the experiment's Simulator, so lines carry *virtual* time.
/// nullptr (the default) omits the timestamp. The clock must outlive its
/// registration; clear it before destroying the simulator.
void SetLogClock(const Clock* clock);

/// Test hook: when set, every log line (regardless of the stderr level)
/// is also delivered here, so tests can assert on warnings instead of
/// scraping stderr. `message` is the formatted line without the trailing
/// newline. Pass nullptr to clear.
using LogCaptureHook = std::function<void(LogLevel, const std::string&)>;
void SetLogCaptureHook(LogCaptureHook hook);

namespace internal_logging {

/// Stream-style log line; emits on destruction when `level` is enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace biopera

#define BIOPERA_LOG(level)                                             \
  ::biopera::internal_logging::LogMessage(::biopera::LogLevel::level, \
                                          __FILE__, __LINE__)          \
      .stream()

#endif  // BIOPERA_COMMON_LOGGING_H_
