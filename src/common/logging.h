#ifndef BIOPERA_COMMON_LOGGING_H_
#define BIOPERA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace biopera {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kWarning
/// (benches and tests stay quiet unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits on destruction when `level` is enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace biopera

#define BIOPERA_LOG(level)                                             \
  ::biopera::internal_logging::LogMessage(::biopera::LogLevel::level, \
                                          __FILE__, __LINE__)          \
      .stream()

#endif  // BIOPERA_COMMON_LOGGING_H_
