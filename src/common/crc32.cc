#include "common/crc32.h"

#include <array>
#include <cstring>

namespace biopera {

namespace {

// CRC-32C polynomial (reflected): 0x82f63b78.
//
// Slicing-by-8: eight derived tables let the software path consume eight
// bytes per step with independent lookups instead of a one-byte serial
// dependency chain. On x86-64 with SSE4.2 the hardware crc32 instruction
// is used instead. Every variant computes the same CRC-32C values, so WAL
// and snapshot files remain interchangeable across machines.
using SlicingTables = std::array<std::array<uint32_t, 256>, 8>;

SlicingTables MakeTables() {
  SlicingTables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xff] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

const SlicingTables& Tables() {
  static const SlicingTables tables = MakeTables();
  return tables;
}

inline uint32_t Load32(const unsigned char* p) {
  uint32_t x;
  std::memcpy(&x, p, sizeof(x));
  return x;
}

uint32_t ExtendSoft(uint32_t crc, const unsigned char* p, size_t n) {
  const SlicingTables& t = Tables();
  while (n >= 8) {
    crc ^= Load32(p);
    uint32_t hi = Load32(p + 4);
    crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
          t[5][(crc >> 16) & 0xff] ^ t[4][crc >> 24] ^ t[3][hi & 0xff] ^
          t[2][(hi >> 8) & 0xff] ^ t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__)
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc,
                                                    const unsigned char* p,
                                                    size_t n) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t x;
    std::memcpy(&x, p, sizeof(x));
    crc64 = __builtin_ia32_crc32di(crc64, x);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  if (n >= 4) {
    crc = __builtin_ia32_crc32si(crc, Load32(p));
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__x86_64__)
  static const bool has_hw = __builtin_cpu_supports("sse4.2");
  if (has_hw) return ~ExtendHw(crc, p, n);
#endif
  return ~ExtendSoft(crc, p, n);
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace biopera
