#ifndef BIOPERA_COMMON_STATS_H_
#define BIOPERA_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace biopera {

/// Accumulates scalar samples and reports summary statistics. Keeps all
/// samples (experiments here are small enough) so exact percentiles are
/// available.
class SampleStats {
 public:
  void Add(double v);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  /// p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;

  /// "n=.. mean=.. p50=.. p95=.. max=.."
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

/// A (time, value) step series: value holds from each point until the next.
/// Used for processor availability/utilization curves (Figures 5 and 6) and
/// load traces.
class StepSeries {
 public:
  struct Point {
    double t;
    double value;
  };

  /// Records that the series takes `value` from time `t` on. Times must be
  /// non-decreasing; a duplicate time overwrites the previous value.
  void Set(double t, double value);

  /// Value at time t (0 before the first point).
  double At(double t) const;

  /// Time-weighted mean over [t0, t1].
  double TimeAverage(double t0, double t1) const;

  /// Integral of the series over [t0, t1].
  double Integral(double t0, double t1) const;

  /// Maximum value attained in [t0, t1].
  double MaxOver(double t0, double t1) const;

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Resamples onto a uniform grid of `buckets` cells over [t0, t1],
  /// each cell holding the time-average within it.
  std::vector<double> Resample(double t0, double t1, size_t buckets) const;

 private:
  std::vector<Point> points_;
};

}  // namespace biopera

#endif  // BIOPERA_COMMON_STATS_H_
