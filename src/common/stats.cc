#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace biopera {

void SampleStats::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void SampleStats::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0;
}

double SampleStats::Mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

void SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleStats::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double ss = 0;
  for (double v : samples_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  double rank = (p / 100.0) * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

std::string SampleStats::Summary() const {
  return StrFormat("n=%zu mean=%.4g p50=%.4g p95=%.4g max=%.4g", count(),
                   Mean(), Percentile(50), Percentile(95), Max());
}

void StepSeries::Set(double t, double value) {
  assert(points_.empty() || t >= points_.back().t);
  if (!points_.empty() && points_.back().t == t) {
    points_.back().value = value;
    return;
  }
  // Skip no-op transitions to keep the series compact.
  if (!points_.empty() && points_.back().value == value) return;
  points_.push_back({t, value});
}

double StepSeries::At(double t) const {
  double v = 0;
  for (const auto& p : points_) {
    if (p.t > t) break;
    v = p.value;
  }
  return v;
}

double StepSeries::Integral(double t0, double t1) const {
  if (t1 <= t0 || points_.empty()) return 0;
  double integral = 0;
  double cur_value = 0;
  double cur_t = t0;
  for (const auto& p : points_) {
    if (p.t <= t0) {
      cur_value = p.value;
      continue;
    }
    if (p.t >= t1) break;
    integral += cur_value * (p.t - cur_t);
    cur_t = p.t;
    cur_value = p.value;
  }
  integral += cur_value * (t1 - cur_t);
  return integral;
}

double StepSeries::TimeAverage(double t0, double t1) const {
  if (t1 <= t0) return 0;
  return Integral(t0, t1) / (t1 - t0);
}

double StepSeries::MaxOver(double t0, double t1) const {
  double m = At(t0);
  for (const auto& p : points_) {
    if (p.t > t0 && p.t <= t1) m = std::max(m, p.value);
  }
  return m;
}

std::vector<double> StepSeries::Resample(double t0, double t1,
                                         size_t buckets) const {
  std::vector<double> out;
  out.reserve(buckets);
  if (buckets == 0 || t1 <= t0) return out;
  double w = (t1 - t0) / static_cast<double>(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    double a = t0 + w * static_cast<double>(i);
    out.push_back(TimeAverage(a, a + w));
  }
  return out;
}

}  // namespace biopera
