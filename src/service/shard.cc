#include "service/shard.h"

#include <utility>

#include "common/logging.h"
#include "service/router.h"

namespace biopera::service {

EngineShard::EngineShard(int idx, std::string shard_dir,
                         core::ActivityRegistry* registry,
                         const Options& options)
    : index(idx),
      dir(std::move(shard_dir)),
      obs(options.trace_capacity, options.span_capacity) {
  auto opened = RecordStore::Open(dir);
  if (!opened.ok()) {
    BIOPERA_LOG(kError) << "shard " << index << ": store open failed: "
                        << opened.status().ToString();
    return;
  }
  store = std::move(*opened);
  store->SetWallProfile(&wall_profile);
  cluster = std::make_unique<cluster::ClusterSim>(&sim);
  core::EngineOptions engine_options = options.engine;
  engine_options.seed = ShardSeed(options.engine.seed, index);
  engine_options.observability = &obs;
  engine_options.wall_profile = &wall_profile;
  engine_options.job_cost_sensor = &job_cost_sensor;
  if (options.fault_channel) {
    channel = std::make_unique<comms::FaultChannel>();
    channel->BindSimulator(&sim);
    engine_options.channel = channel.get();
  } else {
    engine_options.channel = nullptr;  // engine owns a lossless channel
  }
  engine = std::make_unique<core::Engine>(&sim, cluster.get(), store.get(),
                                          registry, engine_options);
  console = std::make_unique<core::AdminConsole>(engine.get());
}

EngineShard::~EngineShard() {
  console.reset();
  engine.reset();  // before the store / cluster / channel it references
}

size_t EngineShard::LiveInstances() const {
  if (engine == nullptr) return 0;
  size_t live = 0;
  for (const auto& summary : engine->ListInstances()) {
    if (summary.state == core::InstanceState::kRunning ||
        summary.state == core::InstanceState::kSuspended) {
      ++live;
    }
  }
  return live;
}

}  // namespace biopera::service
