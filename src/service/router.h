#ifndef BIOPERA_SERVICE_ROUTER_H_
#define BIOPERA_SERVICE_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace biopera::service {

/// How the front door maps a placement key (instance id, or a caller-
/// supplied affinity key) to an engine shard.
enum class PlacementMode {
  /// Consistent hashing over a ring of virtual nodes: changing the shard
  /// count by one moves only ~1/N of future placements, so a resize does
  /// not reshuffle the whole keyspace.
  kConsistentHash = 0,
  /// Strict rotation, ignoring the key: perfectly even but placement-
  /// history dependent (used by the saturation bench for exact balance).
  kRoundRobin,
};

/// Deterministic per-shard RNG stream: SplitMix64 over (base seed, shard),
/// so shard i's engine randomness is independent of — but fully determined
/// by — the service seed, and adding shards never perturbs existing ones.
uint64_t ShardSeed(uint64_t base_seed, int shard);

/// The placement half of the admission/routing front door. Stateless
/// except for the round-robin cursor; the service owns the authoritative
/// instance -> shard map (placements are sticky once made).
class Router {
 public:
  /// `virtual_nodes` ring points per shard; more points = smoother
  /// balance, linearly slower resize.
  Router(int shards, PlacementMode mode, int virtual_nodes = 64);

  /// Shard for a fresh placement of `key`. Round-robin advances the
  /// cursor; consistent hashing is pure.
  int Place(const std::string& key);

  /// Pure lookup (no cursor advance): where consistent hashing would put
  /// `key`. Round-robin mode falls back to hashing too, so the answer is
  /// stable for tests.
  int HashShard(const std::string& key) const;

  int shards() const { return shards_; }
  PlacementMode mode() const { return mode_; }

 private:
  int shards_;
  PlacementMode mode_;
  uint64_t rr_cursor_ = 0;
  /// Ring position -> shard, sorted by position (consistent hashing).
  std::map<uint64_t, int> ring_;
};

}  // namespace biopera::service

#endif  // BIOPERA_SERVICE_ROUTER_H_
