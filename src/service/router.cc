#include "service/router.h"

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::service {

uint64_t ShardSeed(uint64_t base_seed, int shard) {
  // SplitMix64 finalizer over the combined word: well-mixed, cheap, and
  // stable across platforms.
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                               (static_cast<uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

/// FNV-1a alone is a poor ring hash: sequential keys ("g1", "g2", ...)
/// differ only in trailing digit bytes and land in a handful of lumps on
/// the 64-bit circle, skewing 2-shard placement past 90/10. A SplitMix64
/// finalizer on top restores uniformity.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Router::Router(int shards, PlacementMode mode, int virtual_nodes)
    : shards_(shards < 1 ? 1 : shards), mode_(mode) {
  for (int s = 0; s < shards_; ++s) {
    for (int v = 0; v < virtual_nodes; ++v) {
      uint64_t pos = Mix64(obs::Fnv1a64(StrFormat("shard-%d#%d", s, v)));
      // Collisions resolve to the lower shard id deterministically.
      ring_.emplace(pos, s);
    }
  }
}

int Router::HashShard(const std::string& key) const {
  uint64_t h = Mix64(obs::Fnv1a64(key));
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

int Router::Place(const std::string& key) {
  if (mode_ == PlacementMode::kRoundRobin) {
    return static_cast<int>(rr_cursor_++ % static_cast<uint64_t>(shards_));
  }
  return HashShard(key);
}

}  // namespace biopera::service
