#ifndef BIOPERA_SERVICE_SERVICE_CONSOLE_H_
#define BIOPERA_SERVICE_SERVICE_CONSOLE_H_

#include <string>

#include "common/result.h"
#include "service/service.h"

namespace biopera::service {

/// Operator console over the whole sharded service. Three command forms:
///
///  * Service-level: SHARDS, STATS, TENANTS, REPORT, FLEETREPORT, HEALTH,
///    METRICS [prefix]. METRICS shows every shard's registry rows with a
///    `shard=<i>` label injected (plus the fleet registry's own rows
///    verbatim), merge-sorted by key — per-shard attribution survives the
///    merge instead of being summed away.
///  * Shard passthrough: `@<i> <cmd>` runs `<cmd>` verbatim on shard i's
///    AdminConsole (e.g. `@2 PS`, `@0 SCRUB`).
///  * Instance commands addressed by *global* id: STATUS / SUSPEND /
///    RESUME / ABORT / RESTART / HISTORY / WB / LINEAGE are routed to the
///    owning shard with the id rewritten to the engine-local one.
class ServiceConsole {
 public:
  explicit ServiceConsole(ShardedService* service) : service_(service) {}

  /// Executes one command line; the result is the console output text.
  Result<std::string> Execute(const std::string& line);

 private:
  Result<std::string> MergedMetrics(const std::string& prefix) const;

  ShardedService* service_;
};

}  // namespace biopera::service

#endif  // BIOPERA_SERVICE_SERVICE_CONSOLE_H_
