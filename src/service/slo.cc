#include "service/slo.h"

#include <cstdio>

namespace biopera {
namespace service {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kWarn:
      return "warn";
    case HealthState::kCrit:
      return "crit";
  }
  return "unknown";
}

HealthReport EvaluateSlo(const std::vector<SloRule>& rules,
                         const std::map<std::string, double>& sensors) {
  HealthReport report;
  report.verdicts.reserve(rules.size());
  for (const SloRule& rule : rules) {
    SloVerdict verdict;
    verdict.rule = rule;
    auto it = sensors.find(rule.sensor);
    if (it == sensors.end()) {
      verdict.missing = true;
    } else {
      verdict.value = it->second;
      if (verdict.value >= rule.crit) {
        verdict.state = HealthState::kCrit;
      } else if (verdict.value >= rule.warn) {
        verdict.state = HealthState::kWarn;
      }
    }
    if (static_cast<int>(verdict.state) > static_cast<int>(report.overall)) {
      report.overall = verdict.state;
    }
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

std::string HealthReport::ToText() const {
  std::string out = "health: ";
  out += HealthStateName(overall);
  out += "\n";
  char line[256];
  for (const SloVerdict& v : verdicts) {
    if (v.missing) {
      std::snprintf(line, sizeof(line),
                    "  %-16s %-24s value=n/a       warn>=%-10.3f crit>=%-10.3f %s\n",
                    v.rule.name.c_str(), v.rule.sensor.c_str(), v.rule.warn,
                    v.rule.crit, HealthStateName(v.state));
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-16s %-24s value=%-9.3f warn>=%-10.3f crit>=%-10.3f %s\n",
                    v.rule.name.c_str(), v.rule.sensor.c_str(), v.value,
                    v.rule.warn, v.rule.crit, HealthStateName(v.state));
    }
    out += line;
  }
  return out;
}

std::vector<SloRule> DefaultSloRules() {
  return {
      {"backlog", "backlog_depth", 64.0, 512.0},
      {"rejections", "rejection_ratio", 0.01, 0.10},
      {"admission-wait", "admission_wait_p99_hours", 2.0, 24.0},
      {"straggler-skew", "shard_busy_skew", 2.0, 4.0},
  };
}

}  // namespace service
}  // namespace biopera
