#include "service/service_console.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "core/console.h"
#include "obs/metrics.h"

namespace biopera::service {

namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

/// Injects a `shard=<i>` label into a snapshot key ("name" or
/// "name{a=b,...}"), keeping the label list sorted by name — the same
/// order MetricKey produces, so injected and native keys collate
/// identically.
std::string InjectShardLabel(const std::string& key, int shard) {
  const std::string label = StrFormat("shard=%d", shard);
  const size_t brace = key.find('{');
  if (brace == std::string::npos) return key + "{" + label + "}";
  std::vector<std::string> parts;
  std::string inside = key.substr(brace + 1, key.size() - brace - 2);
  size_t from = 0;
  while (from <= inside.size()) {
    size_t comma = inside.find(',', from);
    if (comma == std::string::npos) comma = inside.size();
    parts.push_back(inside.substr(from, comma - from));
    from = comma + 1;
  }
  auto at = parts.begin();
  while (at != parts.end() &&
         at->substr(0, at->find('=')) < std::string("shard")) {
    ++at;
  }
  parts.insert(at, label);
  std::string out = key.substr(0, brace) + "{";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ",";
    out += parts[i];
  }
  out += "}";
  return out;
}

}  // namespace

Result<std::string> ServiceConsole::MergedMetrics(
    const std::string& prefix) const {
  // Every shard's rows keep their identity via an injected shard=<i>
  // label (per-shard attribution survives the merge instead of being
  // summed away); the fleet registry's own rows — service_* admission
  // counters, SLO sensors, barrier-stall histograms — pass through
  // verbatim. The result is merge-sorted by key, so the row *order* is
  // deterministic even when wall-clock values are not.
  std::vector<obs::MetricsSnapshot::Entry> rows;
  for (int i = 0; i < service_->hosted_shards(); ++i) {
    obs::MetricsSnapshot snapshot =
        service_->shard(i)->obs.metrics.Snapshot();
    for (auto& entry : snapshot.entries) {
      entry.key = InjectShardLabel(entry.key, i);
      rows.push_back(std::move(entry));
    }
  }
  obs::MetricsSnapshot fleet = service_->fleet_obs().metrics.Snapshot();
  for (auto& entry : fleet.entries) rows.push_back(std::move(entry));
  std::sort(rows.begin(), rows.end(),
            [](const obs::MetricsSnapshot::Entry& a,
               const obs::MetricsSnapshot::Entry& b) { return a.key < b.key; });
  obs::MetricsSnapshot out;
  out.entries = std::move(rows);
  return out.ToText(prefix);
}

Result<std::string> ServiceConsole::Execute(const std::string& line) {
  std::vector<std::string> words = SplitWords(line);
  if (words.empty()) return Status::InvalidArgument("empty command");

  // Shard passthrough: @<i> <cmd...>
  if (words[0].size() > 1 && words[0][0] == '@') {
    int shard = std::atoi(words[0].c_str() + 1);
    if (shard < 0 || shard >= service_->hosted_shards()) {
      return Status::NotFound(StrFormat("no shard %d", shard));
    }
    size_t rest = line.find(words[0]) + words[0].size();
    while (rest < line.size() && line[rest] == ' ') ++rest;
    if (rest >= line.size()) {
      return Status::InvalidArgument("usage: @<shard> <command>");
    }
    return service_->shard(shard)->console->Execute(line.substr(rest));
  }

  const std::string& cmd = words[0];
  if (cmd == "SHARDS") {
    std::ostringstream out;
    out << StrFormat("%d hosted / %d routed\n", service_->hosted_shards(),
                     service_->routed_shards());
    out << "shard  live  dir\n";
    for (int i = 0; i < service_->hosted_shards(); ++i) {
      const EngineShard* shard = service_->shard(i);
      out << StrFormat("%5d %5zu  %s%s\n", i, shard->LiveInstances(),
                       shard->dir.c_str(),
                       i >= service_->routed_shards() ? "  (draining)" : "");
    }
    return out.str();
  }
  if (cmd == "STATS") {
    ServiceStats stats = service_->GetStats();
    return StrFormat(
        "submitted=%llu admitted=%llu rejected=%llu backlog=%zu live=%zu\n"
        "barriers=%llu barrier_wall_ms=%.1f\n"
        "pump_runs=%llu dispatched=%llu running=%llu queue=%llu\n",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.rejected), stats.backlog_depth,
        stats.live, static_cast<unsigned long long>(stats.barriers),
        static_cast<double>(stats.barrier_wall_ns) / 1e6,
        static_cast<unsigned long long>(stats.pump_runs),
        static_cast<unsigned long long>(stats.dispatched),
        static_cast<unsigned long long>(stats.running_jobs),
        static_cast<unsigned long long>(stats.queue_depth));
  }
  if (cmd == "TENANTS") {
    std::ostringstream out;
    out << "tenant  live  backlog  admitted  rejected\n";
    for (const auto& [tenant, tstats] : service_->GetTenantStats()) {
      out << StrFormat("%s  %zu  %zu  %llu  %llu\n", tenant.c_str(),
                       tstats.live, tstats.backlog,
                       static_cast<unsigned long long>(tstats.admitted),
                       static_cast<unsigned long long>(tstats.rejected));
    }
    return out.str();
  }
  if (cmd == "REPORT") return service_->BuildCrossShardReport();
  if (cmd == "FLEETREPORT") return service_->BuildFleetReport();
  if (cmd == "HEALTH") return service_->EvaluateHealth().ToText();
  if (cmd == "METRICS") {
    return MergedMetrics(words.size() > 1 ? words[1] : "");
  }

  // Global-id instance commands: rewrite to the owning shard console.
  static const char* kInstanceCommands[] = {"STATUS",  "SUSPEND", "RESUME",
                                            "ABORT",   "RESTART", "HISTORY",
                                            "WB",      "LINEAGE"};
  for (const char* known : kInstanceCommands) {
    if (cmd != known) continue;
    if (words.size() < 2) {
      return Status::InvalidArgument(cmd + " needs a global instance id");
    }
    BIOPERA_ASSIGN_OR_RETURN(Ticket ticket, service_->Find(words[1]));
    if (ticket.backlogged) {
      return std::string(words[1] + ": queued for admission (no shard yet)\n");
    }
    std::string rewritten = cmd;
    rewritten += " " + ticket.instance_id;
    for (size_t w = 2; w < words.size(); ++w) rewritten += " " + words[w];
    BIOPERA_ASSIGN_OR_RETURN(
        std::string out,
        service_->shard(ticket.shard)->console->Execute(rewritten));
    return StrFormat("[shard %d] ", ticket.shard) + out;
  }

  return Status::InvalidArgument(
      "unknown service command " + cmd +
      " (try SHARDS, STATS, TENANTS, REPORT, FLEETREPORT, HEALTH, METRICS, "
      "@<shard> <cmd>, or an instance command with a global id)");
}

}  // namespace biopera::service
