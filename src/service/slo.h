// Declarative SLO rules for the sharded service.
//
// A rule names a fleet sensor (a scalar the service computes from its
// deterministic state: backlog depth, rejection ratio, admission-wait
// percentile, shard busy skew) and two inclusive thresholds. Higher sensor
// values are always worse; crossing `warn` yields kWarn, crossing `crit`
// yields kCrit. Evaluation is a pure function of (rules, sensor map), so
// health reports stay byte-identical across same-seed reruns.
#ifndef BIOPERA_SERVICE_SLO_H_
#define BIOPERA_SERVICE_SLO_H_

#include <string>
#include <map>
#include <vector>

namespace biopera {
namespace service {

enum class HealthState {
  kOk = 0,
  kWarn = 1,
  kCrit = 2,
};

// "ok" / "warn" / "crit".
const char* HealthStateName(HealthState state);

struct SloRule {
  std::string name;    // human-readable rule name, e.g. "backlog"
  std::string sensor;  // sensor key the rule reads, e.g. "backlog_depth"
  double warn = 0.0;   // value >= warn  -> at least kWarn
  double crit = 0.0;   // value >= crit  -> kCrit
};

struct SloVerdict {
  SloRule rule;
  double value = 0.0;
  bool missing = false;  // sensor key absent from the sample -> treated as ok
  HealthState state = HealthState::kOk;
};

struct HealthReport {
  HealthState overall = HealthState::kOk;
  std::vector<SloVerdict> verdicts;

  // Aligned table: one row per rule with value, thresholds, and state.
  std::string ToText() const;
};

// Evaluates every rule against the sensor sample. Missing sensors evaluate
// to kOk and are flagged `missing`. The overall state is the worst verdict.
HealthReport EvaluateSlo(const std::vector<SloRule>& rules,
                         const std::map<std::string, double>& sensors);

// The rules the service installs when ServiceOptions::slo_rules is empty.
std::vector<SloRule> DefaultSloRules();

}  // namespace service
}  // namespace biopera

#endif  // BIOPERA_SERVICE_SLO_H_
