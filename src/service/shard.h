#ifndef BIOPERA_SERVICE_SHARD_H_
#define BIOPERA_SERVICE_SHARD_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "comms/channel.h"
#include "core/console.h"
#include "core/engine.h"
#include "obs/barrier_profile.h"
#include "obs/quantile.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "store/fs.h"
#include "store/record_store.h"

namespace biopera::service {

/// One engine shard: a complete single-engine world — simulator, cluster,
/// record store (in its own directory, so WAL, checkpoints and writer-
/// epoch fencing stay per-shard), observability sinks, optional fault
/// channel, engine and admin console. The sharded service partitions
/// process instances across these worlds and pumps them in lockstep
/// (docs/SHARDING.md); a shard shares nothing mutable with its siblings,
/// which is what makes concurrent pumping on real threads deterministic
/// per shard.
///
/// Like bench::BenchWorld this is a plumbing aggregate, not an
/// abstraction boundary: members are public and declared in destruction-
/// safe order (the engine dies before the store, channel and cluster it
/// references).
class EngineShard {
 public:
  struct Options {
    /// Template for the engine; `seed` is replaced by ShardSeed(seed,
    /// index) so every shard draws from its own deterministic stream,
    /// and `observability`/`channel` are replaced by the shard's own.
    core::EngineOptions engine;
    /// Give the shard a comms::FaultChannel so chaos runs can inject
    /// message faults and per-link partitions independently per shard.
    bool fault_channel = false;
    size_t trace_capacity = 65536;
    size_t span_capacity = 1 << 20;
  };

  /// Opens (or creates) the store in `dir` and builds the world. The
  /// registry is shared across shards and must be fully populated before
  /// concurrent pumping starts (engines only read it).
  EngineShard(int index, std::string dir, core::ActivityRegistry* registry,
              const Options& options);
  ~EngineShard();
  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// True when the store opened and the engine was constructed.
  bool ok() const { return engine != nullptr; }

  /// Non-terminal instances hosted by this shard.
  size_t LiveInstances() const;

  int index = 0;
  std::string dir;
  Simulator sim;
  obs::Observability obs;
  /// Wall-clock self-time buckets (pump / kernel / store) the engine and
  /// store charge while this shard steps; the service drains them once per
  /// barrier for the barrier-stall profiler. Declared before `engine` so
  /// the engine (which holds a pointer) dies first.
  obs::WallProfile wall_profile;
  /// Streaming per-job virtual compute-time quantiles (P²), fed by the
  /// engine on every job completion. Deterministic for a deterministic run.
  obs::QuantileSensor job_cost_sensor;
  /// Per-shard control-plane fault injector (null unless requested).
  std::unique_ptr<comms::FaultChannel> channel;
  std::unique_ptr<RecordStore> store;
  std::unique_ptr<cluster::ClusterSim> cluster;
  std::unique_ptr<core::Engine> engine;
  std::unique_ptr<core::AdminConsole> console;
};

}  // namespace biopera::service

#endif  // BIOPERA_SERVICE_SHARD_H_
