#ifndef BIOPERA_SERVICE_SERVICE_H_
#define BIOPERA_SERVICE_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "obs/barrier_profile.h"
#include "obs/fleet.h"
#include "obs/quantile.h"
#include "ocr/model.h"
#include "service/router.h"
#include "service/shard.h"
#include "service/slo.h"

namespace biopera::exec {
class ThreadPool;
}

namespace biopera::service {

/// Configuration of the sharded multi-engine service (docs/SHARDING.md).
struct ServiceOptions {
  /// Engine shards that receive *new* placements. A reopen additionally
  /// hosts every pre-existing shard directory beyond this count (so a
  /// shrink drains old shards instead of orphaning their instances).
  int shards = 1;
  /// Service-wide seed; shard i's engine runs on ShardSeed(seed, i).
  uint64_t seed = 1;
  PlacementMode placement = PlacementMode::kConsistentHash;
  int virtual_nodes = 64;
  /// Lockstep barrier quantum: every barrier advances all shards to
  /// (earliest pending event across shards with regular work) + quantum.
  /// Larger quanta amortize barrier overhead; any value yields the same
  /// per-shard execution (shards share no state between barriers).
  Duration barrier_quantum = Duration::Minutes(1);
  /// Admission control, all "0 = unlimited": global live-instance cap,
  /// per-tenant live cap, and the bounded backlog that absorbs
  /// over-quota submissions until capacity frees (beyond it, submissions
  /// are rejected with Unavailable).
  size_t max_live_instances = 0;
  size_t max_live_per_tenant = 0;
  size_t max_backlog = 0;
  /// Pumps shard barriers concurrently (one RunUntil task per shard).
  /// Because the pool is consumed here, hosted engines must not also use
  /// it as their executor: Startup() nulls shard.engine.executor when it
  /// equals this pool. Must outlive the service.
  exec::ThreadPool* pool = nullptr;
  /// Per-shard world options (engine template, fault channel, sink
  /// capacities). shard.engine.seed is the template seed replaced per
  /// shard; see EngineShard::Options.
  EngineShard::Options shard;
  /// Builds shard `index`'s cluster (required: a shard without nodes can
  /// dispatch nothing). Must be deterministic per index.
  std::function<void(int index, cluster::ClusterSim*)> configure_cluster;
  /// Fleet observability context capacities (the front door's own trace /
  /// span sinks; per-shard sinks are sized via `shard`).
  size_t fleet_trace_capacity = 65536;
  size_t fleet_span_capacity = 1 << 20;
  /// Declarative health rules evaluated against the fleet SLO sensors at
  /// every barrier; empty installs DefaultSloRules().
  std::vector<SloRule> slo_rules;
  /// Per-barrier stall records kept for the Chrome export (totals and
  /// histograms accumulate beyond it).
  size_t barrier_profile_records = 4096;
};

/// One unit of work at the front door.
struct Submission {
  std::string tenant = "default";
  std::string template_name;
  ocr::Value::Map args;
  int priority = 0;
  /// Placement affinity key; empty uses the assigned global id (spreads
  /// uniformly). Submissions sharing a key land on the same shard.
  std::string key;
};

/// Admission outcome: the service-wide handle plus, once started, the
/// owning shard and its engine-local instance id.
struct Ticket {
  std::string global_id;
  int shard = -1;           // -1 while backlogged
  std::string instance_id;  // empty while backlogged
  bool backlogged = false;
};

/// Aggregate service counters (console STATS / bench output).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t barriers = 0;
  uint64_t barrier_wall_ns = 0;  // wall time inside StepBarrier advances
  size_t backlog_depth = 0;
  size_t live = 0;
  // Aggregated engine dispatch stats across hosted shards.
  uint64_t pump_runs = 0;
  uint64_t dispatched = 0;
  uint64_t running_jobs = 0;
  uint64_t queue_depth = 0;
};

/// The virtual laboratory: N single-engine shards behind an admission/
/// routing front door. Instances are partitioned across shards by
/// consistent hashing (or round-robin), each shard owns its own store and
/// deterministic RNG stream, and virtual time advances in lockstep
/// barriers — concurrently on a thread pool when one is provided — so
/// same-seed runs stay byte-identical per shard regardless of shard
/// interleaving, pool size, or barrier quantum. See docs/SHARDING.md.
class ShardedService {
 public:
  /// `root_dir` holds one subdirectory per shard ("shard-000", ...) plus
  /// the service MANIFEST (instance -> shard placements, so lookups and
  /// reopens with a different shard count stay correct). The registry is
  /// shared by all shard engines and must outlive the service.
  ShardedService(std::string root_dir, core::ActivityRegistry* registry,
                 ServiceOptions options);
  ~ShardedService();
  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Creates/reopens every shard world, starts the engines (each
  /// acquires a fresh writer epoch on its own store, fencing any earlier
  /// service generation per shard), loads the manifest and reconciles it
  /// against the recovered instances. Hosted shard count =
  /// max(options.shards, existing shard directories).
  Status Startup();

  /// Registers the template on every hosted shard.
  Status RegisterTemplate(const ocr::ProcessDef& def);

  /// Admission: starts the instance on its routed shard if the quotas
  /// allow, queues it in the bounded backlog otherwise, rejects with
  /// Unavailable when the backlog is full. Backlogged work is
  /// admitted (round-robin across tenants, FIFO within one) as capacity
  /// frees at barrier boundaries. The backlog is in-memory: work queued
  /// but not yet started does not survive a service restart.
  Result<Ticket> Submit(const Submission& submission);

  /// One lockstep barrier: drains admissions, advances every hosted
  /// shard to the common target time (concurrently when a pool is set),
  /// then refreshes liveness and drains again. Returns false when fully
  /// quiescent (no regular events anywhere and an un-admittable or empty
  /// backlog).
  bool StepBarrier();
  /// Barriers until quiescent. `max_barriers` bounds runaway loops
  /// (0 = unbounded).
  void RunUntilQuiescent(size_t max_barriers = 0);
  /// Single barrier to exactly `t` on every shard (chaos scripting).
  void AdvanceUntil(TimePoint t);

  /// The lockstep clock: every hosted shard's virtual now after a
  /// barrier (the max across shards between barriers).
  TimePoint VirtualNow() const;

  // --- Queries --------------------------------------------------------------
  Result<Ticket> Find(const std::string& global_id) const;
  Result<core::InstanceState> GetState(const std::string& global_id) const;
  Result<ocr::Value> GetWhiteboardValue(const std::string& global_id,
                                        const std::string& var) const;

  int hosted_shards() const { return static_cast<int>(shards_.size()); }
  int routed_shards() const { return options_.shards; }
  /// Hosted shard world (0 <= i < hosted_shards()); null before Startup.
  EngineShard* shard(int i) { return shards_[i].get(); }
  const EngineShard* shard(int i) const { return shards_[i].get(); }

  size_t LiveInstances() const;
  ServiceStats GetStats() const;

  struct TenantStats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    size_t live = 0;
    size_t backlog = 0;
  };
  std::map<std::string, TenantStats> GetTenantStats() const;

  /// Merged cross-shard run report: service totals, per-shard and
  /// per-tenant tables. Deterministic for same-seed runs.
  std::string BuildCrossShardReport() const;

  // --- Fleet observability (docs/OBSERVABILITY.md) --------------------------
  /// The front door's own observability context: fleet metric registry
  /// (admission/SLO counters and histograms, barrier-stall histograms),
  /// admission + barrier spans, SLO trace events. Stamped from the
  /// lockstep clock (max shard virtual now).
  obs::Observability& fleet_obs() { return *fleet_obs_; }
  const obs::Observability& fleet_obs() const { return *fleet_obs_; }

  /// Wall-clock barrier-stall attribution; null before Startup().
  const obs::BarrierProfiler* barrier_profiler() const {
    return barrier_profiler_.get();
  }
  /// Virtual end time of every barrier so far, ascending (feeds the
  /// fleet critical path's barrier_wait attribution).
  const std::vector<TimePoint>& barrier_bounds() const {
    return barrier_bounds_;
  }

  /// The scalar SLO sensor sample the health rules read: backlog_depth,
  /// rejection_ratio, admission_wait_p99_hours, shard_busy_skew. All
  /// virtual-time or count quantities — deterministic for same seeds.
  std::map<std::string, double> CollectSloSensors() const;
  /// Evaluates the SLO rules, emits a kSloStateChanged trace event for
  /// every rule whose health state changed, and returns the report.
  /// Called automatically at every barrier; console HEALTH calls it too.
  HealthReport EvaluateHealth();

  /// Deterministic fleet report (console FLEETREPORT): service totals,
  /// per-tenant admission-wait percentiles, streaming straggler sensors
  /// and the SLO verdicts. No wall-clock quantities.
  std::string BuildFleetReport() const;

  // --- Fleet export fan-in ---------------------------------------------------
  /// Federated span timeline across the front door + every shard, JSONL
  /// with fleet-global ids. Byte-identical for same-seed runs.
  std::string ExportFleetSpans() const;
  /// Same federation as one Chrome/Perfetto document (one process per
  /// shard plus the front door).
  std::string ExportFleetChrome() const;
  /// Every hosted instance's lineage export, tagged `"shard":<k>` per
  /// line and ordered by (shard, engine instance id). Byte-identical for
  /// same-seed runs.
  std::string ExportFleetLineage() const;
  /// The barrier-stall profile as a Chrome document (one track per
  /// shard). Wall-clock: values vary run to run; only the tiling
  /// invariant is stable.
  std::string ExportBarrierProfile() const;
  /// Fleet critical path of one submission: the shard-local critical
  /// path extended back to Submit() time with barrier_wait/backlog_wait.
  Result<obs::CriticalPathReport> FleetCriticalPath(
      const std::string& global_id) const;

  // --- Per-shard export fan-in (byte-identity checks, artifacts) ------------
  std::string ExportShardSpans(int shard) const;
  std::string ExportShardTrace(int shard) const;
  std::string ExportShardTimeline(int shard) const;

 private:
  struct InstanceRec {
    std::string global_id;
    std::string tenant;
    std::string instance_id;
    int shard = -1;
    bool terminal = false;
    TimePoint submitted;        // front-door Submit() virtual time
    bool submit_known = false;  // false for manifest-recovered instances
  };

  /// Cached per-tenant metric handles in the fleet registry.
  struct TenantMetrics {
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Gauge* backlog = nullptr;
    obs::Gauge* live = nullptr;
    obs::Histogram* admission_wait = nullptr;  // virtual hours
  };
  TenantMetrics& TenantMetricsFor(const std::string& tenant);
  /// Mirrors backlog/live totals into the fleet gauges.
  void UpdateGauges();

  Result<Ticket> Admit(const Submission& submission,
                       const std::string& global_id, TimePoint submitted,
                       uint64_t admission_span);
  bool WithinQuota(const std::string& tenant) const;
  /// Admits backlogged submissions round-robin across tenants while the
  /// quotas allow.
  void DrainBacklog();
  /// Polls non-terminal instances and updates live counts.
  void RefreshLiveness();
  void AdvanceAll(TimePoint target);

  Status LoadManifest();
  Status AppendManifest(const InstanceRec& rec);
  std::string ManifestPath() const;
  std::string ShardDir(int index) const;

  /// The lockstep clock as a Clock: stamps the front door's trace/span
  /// sinks with max shard virtual now.
  class FleetClock : public Clock {
   public:
    explicit FleetClock(const ShardedService* service) : service_(service) {}
    TimePoint Now() const override { return service_->VirtualNow(); }

   private:
    const ShardedService* service_;
  };

  std::string root_dir_;
  core::ActivityRegistry* registry_;
  ServiceOptions options_;
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<EngineShard>> shards_;

  std::map<std::string, InstanceRec> instances_;  // by global id
  std::set<std::string> live_ids_;                // non-terminal global ids
  std::map<std::string, TenantStats> tenants_;
  /// One backlogged submission: handle, payload, and the front-door
  /// context (submit time, open admission span) the admission metrics
  /// need when it finally starts.
  struct BacklogEntry {
    std::string global_id;
    Submission submission;
    TimePoint submitted;
    uint64_t span = 0;  // open kAdmission span in the fleet sink
  };
  /// Backlog: FIFO per tenant + rotation cursor for fairness.
  std::map<std::string, std::deque<BacklogEntry>> backlog_;
  std::string backlog_cursor_;  // tenant after which the next drain starts
  size_t backlog_depth_ = 0;
  uint64_t next_seq_ = 1;
  ServiceStats stats_;
  bool started_ = false;

  // --- Fleet observability state ---------------------------------------------
  std::unique_ptr<FleetClock> fleet_clock_;
  std::unique_ptr<obs::Observability> fleet_obs_;
  std::unique_ptr<obs::BarrierProfiler> barrier_profiler_;
  std::vector<TimePoint> barrier_bounds_;
  /// Per-shard streaming step sensor: virtual seconds of engine busy time
  /// per barrier (the deterministic straggler signal), fed from
  /// DispatchStats::busy_virtual_us deltas.
  struct ShardStepSensor {
    obs::QuantileSensor step;
    uint64_t last_busy_us = 0;
  };
  std::vector<ShardStepSensor> step_sensors_;
  std::vector<SloRule> slo_rules_;
  /// Last health state per rule name (transition detection for
  /// kSloStateChanged events).
  std::map<std::string, HealthState> rule_state_;
  HealthState overall_health_ = HealthState::kOk;
  std::map<std::string, TenantMetrics> tenant_metrics_;
  obs::Counter* submitted_metric_ = nullptr;
  obs::Counter* admitted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Counter* barriers_metric_ = nullptr;
  obs::Counter* backlog_drained_metric_ = nullptr;
  obs::Gauge* backlog_gauge_ = nullptr;
  obs::Gauge* live_gauge_ = nullptr;
  /// Cumulative StepBarrier advance wall time in seconds. The *key* is
  /// registered deterministically; the value is wall clock.
  obs::Gauge* barrier_wall_gauge_ = nullptr;
  std::vector<obs::Counter*> placement_metrics_;  // per routed shard
};

}  // namespace biopera::service

#endif  // BIOPERA_SERVICE_SERVICE_H_
