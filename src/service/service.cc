#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/thread_pool.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace biopera::service {

namespace {

/// Wall-clock delta helper for barrier accounting (never feeds virtual
/// time or any determinism-bearing state).
uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedService::ShardedService(std::string root_dir,
                               core::ActivityRegistry* registry,
                               ServiceOptions options)
    : root_dir_(std::move(root_dir)),
      registry_(registry),
      options_(std::move(options)) {
  if (options_.shards < 1) options_.shards = 1;
  fleet_clock_ = std::make_unique<FleetClock>(this);
  fleet_obs_ = std::make_unique<obs::Observability>(
      options_.fleet_trace_capacity, options_.fleet_span_capacity);
  fleet_obs_->SetClock(fleet_clock_.get());
  slo_rules_ =
      options_.slo_rules.empty() ? DefaultSloRules() : options_.slo_rules;
  // Register the service-level families up front so METRICS key order is
  // deterministic regardless of which events fire first.
  obs::Registry& reg = fleet_obs_->metrics;
  submitted_metric_ = reg.GetCounter("service_submitted_total");
  admitted_metric_ = reg.GetCounter("service_admitted_total");
  rejected_metric_ = reg.GetCounter("service_rejected_total");
  barriers_metric_ = reg.GetCounter("service_barriers_total");
  backlog_drained_metric_ = reg.GetCounter("service_backlog_drained_total");
  backlog_gauge_ = reg.GetGauge("service_backlog_depth");
  live_gauge_ = reg.GetGauge("service_live_instances");
  barrier_wall_gauge_ = reg.GetGauge("service_barrier_wall_seconds_total");
}

ShardedService::~ShardedService() = default;

std::string ShardedService::ShardDir(int index) const {
  return root_dir_ + "/" + StrFormat("shard-%03d", index);
}

std::string ShardedService::ManifestPath() const {
  return root_dir_ + "/MANIFEST";
}

Status ShardedService::Startup() {
  if (started_) return Status::FailedPrecondition("service already started");
  std::error_code ec;
  std::filesystem::create_directories(root_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create service root " + root_dir_);
  }

  // Hosted shards = requested routing shards plus every pre-existing
  // shard directory beyond them: a shrink keeps old shards hosted (and
  // recovering, and serving queries) but routes no new work to them, so
  // they drain instead of orphaning instances.
  int hosted = options_.shards;
  for (int i = hosted;; ++i) {
    if (!std::filesystem::is_directory(ShardDir(i))) break;
    hosted = i + 1;
  }

  EngineShard::Options shard_options = options_.shard;
  shard_options.engine.seed = options_.seed;
  if (options_.pool != nullptr &&
      shard_options.engine.executor == options_.pool) {
    // The barrier pool cannot be re-entered from inside a shard pump
    // (ThreadPool::RunBatch is single-caller); hosted engines fall back
    // to inline kernel execution.
    shard_options.engine.executor = nullptr;
  }

  for (int i = 0; i < hosted; ++i) {
    auto shard = std::make_unique<EngineShard>(i, ShardDir(i), registry_,
                                               shard_options);
    if (!shard->ok()) {
      return Status::IOError(
          StrFormat("shard %d: store open failed under %s", i,
                    root_dir_.c_str()));
    }
    if (options_.configure_cluster) {
      options_.configure_cluster(i, shard->cluster.get());
    }
    BIOPERA_RETURN_IF_ERROR(shard->engine->Startup());
    shards_.push_back(std::move(shard));
  }
  router_ = std::make_unique<Router>(options_.shards, options_.placement,
                                     options_.virtual_nodes);
  barrier_profiler_ = std::make_unique<obs::BarrierProfiler>(
      hosted, &fleet_obs_->metrics, options_.barrier_profile_records);
  step_sensors_.resize(hosted);
  placement_metrics_.resize(hosted);
  for (int i = 0; i < hosted; ++i) {
    placement_metrics_[i] = fleet_obs_->metrics.GetCounter(
        "service_placements_total", {{"shard", StrFormat("%d", i)}});
  }
  BIOPERA_RETURN_IF_ERROR(LoadManifest());
  RefreshLiveness();
  UpdateGauges();
  started_ = true;
  return Status::OK();
}

Status ShardedService::LoadManifest() {
  std::ifstream in(ManifestPath());
  if (!in.is_open()) return Status::OK();  // fresh service
  std::string line;
  while (std::getline(in, line)) {
    // instance <global> <shard> <local-id> <tenant-json-escaped>
    std::istringstream row(line);
    std::string kind;
    row >> kind;
    if (kind != "instance") continue;
    InstanceRec rec;
    std::string tenant_escaped;
    row >> rec.global_id >> rec.shard >> rec.instance_id >> tenant_escaped;
    if (rec.global_id.empty() || rec.shard < 0 ||
        rec.shard >= static_cast<int>(shards_.size())) {
      continue;  // tolerate trailing garbage from a torn append
    }
    rec.tenant = obs::JsonUnescape(tenant_escaped).value_or(tenant_escaped);
    // g<seq> handles: keep the sequence monotone across restarts.
    if (rec.global_id.size() > 1 && rec.global_id[0] == 'g') {
      uint64_t seq = std::strtoull(rec.global_id.c_str() + 1, nullptr, 10);
      next_seq_ = std::max(next_seq_, seq + 1);
    }
    tenants_[rec.tenant];        // materialize the row
    TenantMetricsFor(rec.tenant);  // ...and its metric keys
    instances_[rec.global_id] = std::move(rec);
  }
  for (auto& [global_id, rec] : instances_) {
    auto state = shards_[rec.shard]->engine->GetInstanceState(rec.instance_id);
    rec.terminal = !state.ok() ||  // archived or lost: nothing to track
                   (*state != core::InstanceState::kRunning &&
                    *state != core::InstanceState::kSuspended);
    if (!rec.terminal) live_ids_.insert(global_id);
  }
  return Status::OK();
}

Status ShardedService::AppendManifest(const InstanceRec& rec) {
  std::ofstream out(ManifestPath(), std::ios::app);
  if (!out.is_open()) {
    return Status::IOError("cannot append service manifest");
  }
  out << "instance " << rec.global_id << " " << rec.shard << " "
      << rec.instance_id << " " << obs::JsonEscape(rec.tenant) << "\n";
  out.flush();
  return out.good() ? Status::OK()
                    : Status::IOError("service manifest write failed");
}

Status ShardedService::RegisterTemplate(const ocr::ProcessDef& def) {
  for (auto& shard : shards_) {
    BIOPERA_RETURN_IF_ERROR(shard->engine->RegisterTemplate(def));
  }
  return Status::OK();
}

bool ShardedService::WithinQuota(const std::string& tenant) const {
  if (options_.max_live_instances != 0 &&
      live_ids_.size() >= options_.max_live_instances) {
    return false;
  }
  if (options_.max_live_per_tenant != 0) {
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.live >= options_.max_live_per_tenant)
      return false;
  }
  return true;
}

ShardedService::TenantMetrics& ShardedService::TenantMetricsFor(
    const std::string& tenant) {
  auto it = tenant_metrics_.find(tenant);
  if (it != tenant_metrics_.end()) return it->second;
  obs::Registry& reg = fleet_obs_->metrics;
  const obs::Labels labels = {{"tenant", tenant}};
  TenantMetrics tm;
  tm.admitted = reg.GetCounter("service_admitted_total", labels);
  tm.rejected = reg.GetCounter("service_rejected_total", labels);
  tm.backlog = reg.GetGauge("service_backlog_depth", labels);
  tm.live = reg.GetGauge("service_live_instances", labels);
  // Admission wait in virtual hours: first bucket < 36 virtual seconds,
  // top bucket beyond a month — wide enough for backlog storms.
  obs::HistogramOptions wait_options;
  wait_options.first_bound = 0.01;
  wait_options.growth = 3.0;
  wait_options.num_buckets = 12;
  tm.admission_wait =
      reg.GetHistogram("service_admission_wait_hours", labels, wait_options);
  return tenant_metrics_.emplace(tenant, tm).first->second;
}

void ShardedService::UpdateGauges() {
  backlog_gauge_->Set(static_cast<double>(backlog_depth_));
  live_gauge_->Set(static_cast<double>(live_ids_.size()));
  for (const auto& [tenant, tstats] : tenants_) {
    TenantMetrics& tm = TenantMetricsFor(tenant);
    tm.backlog->Set(static_cast<double>(tstats.backlog));
    tm.live->Set(static_cast<double>(tstats.live));
  }
}

Result<Ticket> ShardedService::Admit(const Submission& submission,
                                     const std::string& global_id,
                                     TimePoint submitted,
                                     uint64_t admission_span) {
  const std::string& key =
      submission.key.empty() ? global_id : submission.key;
  int target = router_->Place(key);
  EngineShard* shard = shards_[target].get();
  auto started = shard->engine->StartProcess(
      submission.template_name, submission.args, submission.priority);
  if (!started.ok()) {
    fleet_obs_->spans.End(admission_span, "failed",
                          {{"error", started.status().ToString()}});
    return started.status();
  }
  const std::string& instance_id = *started;
  InstanceRec rec;
  rec.global_id = global_id;
  rec.tenant = submission.tenant;
  rec.instance_id = instance_id;
  rec.shard = target;
  rec.submitted = submitted;
  rec.submit_known = true;
  Status persisted = AppendManifest(rec);
  if (!persisted.ok()) {
    BIOPERA_LOG(kWarning) << "manifest append failed: "
                          << persisted.ToString();
  }
  instances_[global_id] = rec;
  live_ids_.insert(global_id);
  TenantStats& tstats = tenants_[submission.tenant];
  ++tstats.admitted;
  ++tstats.live;
  ++stats_.admitted;
  admitted_metric_->Increment();
  TenantMetrics& tm = TenantMetricsFor(submission.tenant);
  tm.admitted->Increment();
  tm.admission_wait->Observe((VirtualNow() - submitted).ToSeconds() / 3600.0);
  if (target < static_cast<int>(placement_metrics_.size())) {
    placement_metrics_[target]->Increment();
  }
  fleet_obs_->spans.End(admission_span, "admitted",
                        {{"shard", StrFormat("%d", target)},
                         {"instance", instance_id}});
  Ticket ticket;
  ticket.global_id = global_id;
  ticket.shard = target;
  ticket.instance_id = instance_id;
  return ticket;
}

Result<Ticket> ShardedService::Submit(const Submission& submission) {
  if (!started_) return Status::FailedPrecondition("service not started");
  ++stats_.submitted;
  submitted_metric_->Increment();
  const std::string global_id = StrFormat(
      "g%llu", static_cast<unsigned long long>(next_seq_++));
  const TimePoint submitted = VirtualNow();
  if (WithinQuota(submission.tenant)) {
    // Open the admission span before placement so an immediate admit
    // still leaves a (zero-duration) front-door record on the timeline.
    uint64_t span = fleet_obs_->spans.Begin(
        obs::SpanKind::kAdmission, global_id, 0, 0, global_id, "", "",
        {{"tenant", submission.tenant}});
    Result<Ticket> ticket = Admit(submission, global_id, submitted, span);
    if (ticket.ok()) UpdateGauges();
    return ticket;
  }
  if (backlog_depth_ >= options_.max_backlog) {
    ++tenants_[submission.tenant].rejected;
    ++stats_.rejected;
    rejected_metric_->Increment();
    TenantMetricsFor(submission.tenant).rejected->Increment();
    fleet_obs_->spans.EmitInstant(obs::SpanKind::kAdmission, global_id, 0,
                                  global_id, "", "",
                                  {{"tenant", submission.tenant}},
                                  "rejected");
    --next_seq_;  // the handle was never issued
    return Status::Unavailable("admission quota reached and backlog full");
  }
  BacklogEntry entry;
  entry.global_id = global_id;
  entry.submission = submission;
  entry.submitted = submitted;
  entry.span = fleet_obs_->spans.Begin(
      obs::SpanKind::kAdmission, global_id, 0, 0, global_id, "", "",
      {{"tenant", submission.tenant}, {"backlogged", "1"}});
  backlog_[submission.tenant].push_back(std::move(entry));
  ++backlog_depth_;
  ++tenants_[submission.tenant].backlog;
  UpdateGauges();
  Ticket ticket;
  ticket.global_id = global_id;
  ticket.backlogged = true;
  return ticket;
}

void ShardedService::DrainBacklog() {
  if (backlog_depth_ == 0) return;
  // Round-robin across tenants (FIFO within one): each cycle admits at
  // most one submission per tenant, so a heavy tenant cannot starve the
  // others while quotas free up.
  bool progressed = true;
  while (backlog_depth_ > 0 && progressed) {
    progressed = false;
    // Start the cycle after the tenant that was served last.
    auto start = backlog_.upper_bound(backlog_cursor_);
    for (size_t visited = 0; visited < backlog_.size() + 1; ++visited) {
      if (backlog_.empty()) break;
      if (start == backlog_.end()) start = backlog_.begin();
      auto current = start++;
      const std::string tenant = current->first;
      if (current->second.empty()) {
        backlog_.erase(current);
        continue;
      }
      if (!WithinQuota(tenant)) continue;
      BacklogEntry entry = std::move(current->second.front());
      current->second.pop_front();
      --backlog_depth_;
      TenantStats& tstats = tenants_[tenant];
      if (tstats.backlog > 0) --tstats.backlog;
      backlog_cursor_ = tenant;
      Result<Ticket> admitted =
          Admit(entry.submission, entry.global_id, entry.submitted,
                entry.span);
      if (admitted.ok()) {
        backlog_drained_metric_->Increment();
      } else {
        BIOPERA_LOG(kWarning)
            << "backlogged submission " << entry.global_id
            << " failed to start: " << admitted.status().ToString();
        ++tstats.rejected;
        ++stats_.rejected;
        rejected_metric_->Increment();
        TenantMetricsFor(tenant).rejected->Increment();
      }
      progressed = true;
      if (current->second.empty()) backlog_.erase(tenant);
    }
  }
}

void ShardedService::RefreshLiveness() {
  for (auto it = live_ids_.begin(); it != live_ids_.end();) {
    InstanceRec& rec = instances_[*it];
    auto state = shards_[rec.shard]->engine->GetInstanceState(rec.instance_id);
    bool terminal = !state.ok() ||
                    (*state != core::InstanceState::kRunning &&
                     *state != core::InstanceState::kSuspended);
    if (terminal) {
      rec.terminal = true;
      TenantStats& tstats = tenants_[rec.tenant];
      if (tstats.live > 0) --tstats.live;
      it = live_ids_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardedService::AdvanceAll(TimePoint target) {
  const TimePoint virtual_start = VirtualNow();
  const uint64_t barrier_seq = stats_.barriers + 1;
  const uint64_t barrier_span = fleet_obs_->spans.Begin(
      obs::SpanKind::kBarrier,
      StrFormat("barrier %llu",
                static_cast<unsigned long long>(barrier_seq)),
      0, 0, "", "", "", {{"target", target.ToString()}});

  // One raw profile sample per shard: the shard's own RunUntil wall time
  // (measured on the pumping thread), then the pump/kernel/store buckets
  // drained from its wall profile after the join (ThreadPool::RunBatch
  // joins, so the drains are ordered after every pump).
  std::vector<obs::BarrierProfiler::RawSample> raw(shards_.size());
  const uint64_t t0 = WallNowNs();
  if (options_.pool != nullptr && shards_.size() > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      EngineShard* s = shards_[i].get();
      obs::BarrierProfiler::RawSample* sample = &raw[i];
      tasks.push_back([s, target, sample] {
        const uint64_t s0 = WallNowNs();
        s->sim.RunUntil(target);
        sample->step_ns = WallNowNs() - s0;
      });
    }
    options_.pool->RunBatch(std::move(tasks));
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) {
      const uint64_t s0 = WallNowNs();
      shards_[i]->sim.RunUntil(target);
      raw[i].step_ns = WallNowNs() - s0;
    }
  }
  const uint64_t wall_ns = WallNowNs() - t0;
  stats_.barrier_wall_ns += wall_ns;
  ++stats_.barriers;
  barriers_metric_->Increment();
  barrier_wall_gauge_->Set(static_cast<double>(stats_.barrier_wall_ns) / 1e9);

  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t buckets[obs::WallProfile::kNumBuckets];
    shards_[i]->wall_profile.Drain(buckets);
    raw[i].pump_ns = buckets[obs::WallProfile::kPump];
    raw[i].kernel_ns = buckets[obs::WallProfile::kKernel];
    raw[i].store_ns = buckets[obs::WallProfile::kStore];
  }
  const TimePoint virtual_end = VirtualNow();
  if (barrier_profiler_ != nullptr) {
    barrier_profiler_->Record(wall_ns, virtual_start, virtual_end, raw);
  }
  barrier_bounds_.push_back(virtual_end);

  // Streaming straggler sensors: each shard's *virtual* busy time this
  // barrier (deterministic), not its wall time.
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t busy =
        shards_[i]->engine->GetDispatchStats().busy_virtual_us;
    const uint64_t delta = busy - step_sensors_[i].last_busy_us;
    step_sensors_[i].last_busy_us = busy;
    if (delta > 0) {
      step_sensors_[i].step.Observe(static_cast<double>(delta) / 1e6);
    }
  }
  fleet_obs_->spans.End(barrier_span, "advanced");
}

bool ShardedService::StepBarrier() {
  DrainBacklog();
  // Barrier target: the earliest pending event among shards that still
  // have regular work, plus the quantum. Shards with only daemon events
  // (periodic monitors) do not drive the barrier, but are advanced to
  // the same target so the lockstep clock never skews.
  bool any = false;
  TimePoint earliest;
  for (auto& shard : shards_) {
    if (shard->sim.NumPendingRegular() == 0) continue;
    TimePoint t;
    if (shard->sim.NextEventTime(&t) && (!any || t < earliest)) {
      earliest = t;
      any = true;
    }
  }
  if (!any) return false;
  AdvanceAll(earliest + options_.barrier_quantum);
  RefreshLiveness();
  DrainBacklog();
  UpdateGauges();
  EvaluateHealth();
  return true;
}

void ShardedService::RunUntilQuiescent(size_t max_barriers) {
  size_t steps = 0;
  while (StepBarrier()) {
    if (max_barriers != 0 && ++steps >= max_barriers) break;
  }
}

void ShardedService::AdvanceUntil(TimePoint t) {
  DrainBacklog();
  AdvanceAll(t);
  RefreshLiveness();
  DrainBacklog();
  UpdateGauges();
  EvaluateHealth();
}

TimePoint ShardedService::VirtualNow() const {
  TimePoint now;
  for (const auto& shard : shards_) now = std::max(now, shard->sim.Now());
  return now;
}

Result<Ticket> ShardedService::Find(const std::string& global_id) const {
  auto it = instances_.find(global_id);
  if (it == instances_.end()) {
    // Backlogged submissions have a handle but no placement yet.
    for (const auto& [tenant, queue] : backlog_) {
      for (const BacklogEntry& entry : queue) {
        if (entry.global_id == global_id) {
          Ticket ticket;
          ticket.global_id = global_id;
          ticket.backlogged = true;
          return ticket;
        }
      }
    }
    return Status::NotFound("no instance " + global_id);
  }
  Ticket ticket;
  ticket.global_id = global_id;
  ticket.shard = it->second.shard;
  ticket.instance_id = it->second.instance_id;
  return ticket;
}

Result<core::InstanceState> ShardedService::GetState(
    const std::string& global_id) const {
  BIOPERA_ASSIGN_OR_RETURN(Ticket ticket, Find(global_id));
  if (ticket.backlogged) {
    return Status::Unavailable(global_id + " is queued for admission");
  }
  return shards_[ticket.shard]->engine->GetInstanceState(ticket.instance_id);
}

Result<ocr::Value> ShardedService::GetWhiteboardValue(
    const std::string& global_id, const std::string& var) const {
  BIOPERA_ASSIGN_OR_RETURN(Ticket ticket, Find(global_id));
  if (ticket.backlogged) {
    return Status::Unavailable(global_id + " is queued for admission");
  }
  return shards_[ticket.shard]->engine->GetWhiteboardValue(
      ticket.instance_id, var);
}

size_t ShardedService::LiveInstances() const { return live_ids_.size(); }

ServiceStats ShardedService::GetStats() const {
  ServiceStats stats = stats_;
  stats.backlog_depth = backlog_depth_;
  stats.live = live_ids_.size();
  for (const auto& shard : shards_) {
    core::Engine::DispatchStats ds = shard->engine->GetDispatchStats();
    stats.pump_runs += ds.pump_runs;
    stats.dispatched += ds.dispatched;
    stats.running_jobs += ds.running_jobs;
    stats.queue_depth += ds.ready + ds.parked_starved + ds.parked_suspended;
  }
  return stats;
}

std::map<std::string, ShardedService::TenantStats>
ShardedService::GetTenantStats() const {
  return tenants_;
}

std::string ShardedService::BuildCrossShardReport() const {
  std::ostringstream out;
  size_t done = 0, failed = 0, live = 0;
  uint64_t tasks_done = 0, tasks_total = 0;
  struct ShardRow {
    size_t live = 0, done = 0, failed = 0;
    core::Engine::DispatchStats dispatch;
    uint64_t epoch = 0;
  };
  std::vector<ShardRow> rows(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardRow& row = rows[i];
    row.dispatch = shards_[i]->engine->GetDispatchStats();
    row.epoch = shards_[i]->engine->writer_epoch();
    for (const auto& summary : shards_[i]->engine->ListInstances()) {
      tasks_done += summary.tasks_done;
      tasks_total += summary.tasks_total;
      switch (summary.state) {
        case core::InstanceState::kDone:
          ++row.done;
          ++done;
          break;
        case core::InstanceState::kFailed:
        case core::InstanceState::kAborted:
          ++row.failed;
          ++failed;
          break;
        default:
          ++row.live;
          ++live;
          break;
      }
    }
  }
  out << "=== cross-shard run report @ " << VirtualNow().ToString()
      << " ===\n";
  out << StrFormat(
      "shards: %d hosted / %d routed   instances: %zu live, %zu done, "
      "%zu failed   backlog: %zu\n",
      hosted_shards(), routed_shards(), live, done, failed, backlog_depth_);
  double pct = tasks_total == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(tasks_done) /
                         static_cast<double>(tasks_total);
  out << StrFormat("activities: %llu / %llu (%.1f%%)\n",
                   static_cast<unsigned long long>(tasks_done),
                   static_cast<unsigned long long>(tasks_total), pct);
  out << "shard  live  done  fail  queue  running  pumps  dispatched  "
         "epoch\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& row = rows[i];
    out << StrFormat(
        "%5zu %5zu %5zu %5zu %6zu %8zu %6llu %11llu %6llu%s\n", i, row.live,
        row.done, row.failed,
        row.dispatch.ready + row.dispatch.parked_starved +
            row.dispatch.parked_suspended,
        row.dispatch.running_jobs,
        static_cast<unsigned long long>(row.dispatch.pump_runs),
        static_cast<unsigned long long>(row.dispatch.dispatched),
        static_cast<unsigned long long>(row.epoch),
        static_cast<int>(i) >= options_.shards ? "  (draining)" : "");
  }
  if (!tenants_.empty()) {
    out << "tenant  live  backlog  admitted  rejected\n";
    for (const auto& [tenant, tstats] : tenants_) {
      out << StrFormat("%s  %zu  %zu  %llu  %llu\n", tenant.c_str(),
                       tstats.live, tstats.backlog,
                       static_cast<unsigned long long>(tstats.admitted),
                       static_cast<unsigned long long>(tstats.rejected));
    }
  }
  return out.str();
}

std::map<std::string, double> ShardedService::CollectSloSensors() const {
  std::map<std::string, double> sensors;
  sensors["backlog_depth"] = static_cast<double>(backlog_depth_);
  const uint64_t decided = stats_.admitted + stats_.rejected;
  sensors["rejection_ratio"] =
      decided == 0 ? 0.0
                   : static_cast<double>(stats_.rejected) /
                         static_cast<double>(decided);
  double wait_p99 = 0.0;
  for (const auto& [tenant, tm] : tenant_metrics_) {
    if (tm.admission_wait != nullptr) {
      wait_p99 = std::max(wait_p99, tm.admission_wait->Percentile(99.0));
    }
  }
  sensors["admission_wait_p99_hours"] = wait_p99;
  // Straggler skew: slowest shard's streaming p90 busy-time over the
  // fleet mean p90. 1.0 when balanced (or before any data).
  double max_p90 = 0.0, sum_p90 = 0.0;
  int with_data = 0;
  for (const auto& sensor : step_sensors_) {
    if (sensor.step.count == 0) continue;
    const double p90 = sensor.step.p90.Estimate();
    max_p90 = std::max(max_p90, p90);
    sum_p90 += p90;
    ++with_data;
  }
  sensors["shard_busy_skew"] =
      (with_data == 0 || sum_p90 <= 0.0)
          ? 1.0
          : max_p90 / (sum_p90 / static_cast<double>(with_data));
  return sensors;
}

HealthReport ShardedService::EvaluateHealth() {
  HealthReport report = EvaluateSlo(slo_rules_, CollectSloSensors());
  for (const SloVerdict& verdict : report.verdicts) {
    HealthState& last = rule_state_[verdict.rule.name];  // defaults to kOk
    if (verdict.state == last) continue;
    fleet_obs_->trace.Emit(
        obs::EventType::kSloStateChanged, "", "", "",
        {{"rule", verdict.rule.name},
         {"sensor", verdict.rule.sensor},
         {"value", StrFormat("%.3f", verdict.value)},
         {"from", HealthStateName(last)},
         {"to", HealthStateName(verdict.state)}});
    last = verdict.state;
  }
  overall_health_ = report.overall;
  return report;
}

std::string ShardedService::BuildFleetReport() const {
  std::ostringstream out;
  out << "=== fleet report @ " << VirtualNow().ToString() << " ===\n";
  out << StrFormat(
      "submitted=%llu admitted=%llu rejected=%llu backlog=%zu live=%zu "
      "barriers=%llu\n",
      static_cast<unsigned long long>(stats_.submitted),
      static_cast<unsigned long long>(stats_.admitted),
      static_cast<unsigned long long>(stats_.rejected), backlog_depth_,
      live_ids_.size(), static_cast<unsigned long long>(stats_.barriers));
  if (!tenants_.empty()) {
    out << "--- tenants (admission wait in virtual hours) ---\n";
    out << "tenant  live  backlog  admitted  rejected  wait_p50  wait_p99\n";
    for (const auto& [tenant, tstats] : tenants_) {
      double p50 = 0.0, p99 = 0.0;
      auto it = tenant_metrics_.find(tenant);
      if (it != tenant_metrics_.end() && it->second.admission_wait != nullptr) {
        p50 = it->second.admission_wait->Percentile(50.0);
        p99 = it->second.admission_wait->Percentile(99.0);
      }
      out << StrFormat("%s  %zu  %zu  %llu  %llu  %.3f  %.3f\n",
                       tenant.c_str(), tstats.live, tstats.backlog,
                       static_cast<unsigned long long>(tstats.admitted),
                       static_cast<unsigned long long>(tstats.rejected), p50,
                       p99);
    }
  }
  out << "--- streaming straggler sensors ---\n";
  for (size_t i = 0; i < step_sensors_.size(); ++i) {
    out << step_sensors_[i].step.ToRow(
               StrFormat("shard %zu step-busy (virtual s)", i))
        << "\n";
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    out << shards_[i]->job_cost_sensor.ToRow(
               StrFormat("shard %zu job-cost (virtual s)", i))
        << "\n";
  }
  out << "--- SLO ---\n";
  out << EvaluateSlo(slo_rules_, CollectSloSensors()).ToText();
  return out.str();
}

std::string ShardedService::ExportFleetSpans() const {
  std::vector<obs::FleetSource> sources;
  sources.push_back({-1, &fleet_obs_->spans});
  for (size_t i = 0; i < shards_.size(); ++i) {
    sources.push_back({static_cast<int>(i), &shards_[i]->obs.spans});
  }
  return obs::FederateSpansJsonl(sources);
}

std::string ShardedService::ExportFleetChrome() const {
  std::vector<obs::FleetSource> sources;
  sources.push_back({-1, &fleet_obs_->spans});
  for (size_t i = 0; i < shards_.size(); ++i) {
    sources.push_back({static_cast<int>(i), &shards_[i]->obs.spans});
  }
  return obs::FederateChromeTrace(sources);
}

std::string ShardedService::ExportFleetLineage() const {
  std::vector<std::pair<int, std::string>> sources;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::vector<std::string> ids;
    for (const auto& summary : shards_[i]->engine->ListInstances()) {
      ids.push_back(summary.id);
    }
    std::sort(ids.begin(), ids.end());
    std::string shard_lineage;
    for (const std::string& id : ids) {
      auto jsonl = shards_[i]->engine->ExportLineageJsonl(id);
      if (jsonl.ok()) shard_lineage += *jsonl;
    }
    sources.emplace_back(static_cast<int>(i), std::move(shard_lineage));
  }
  return obs::MergeJsonlByShard(sources);
}

std::string ShardedService::ExportBarrierProfile() const {
  if (barrier_profiler_ == nullptr) return "";
  return barrier_profiler_->ExportChromeTrace();
}

Result<obs::CriticalPathReport> ShardedService::FleetCriticalPath(
    const std::string& global_id) const {
  auto it = instances_.find(global_id);
  if (it == instances_.end()) {
    return Status::NotFound("no instance " + global_id);
  }
  const InstanceRec& rec = it->second;
  obs::FleetPathInput input;
  input.shard_spans = &shards_[rec.shard]->obs.spans;
  input.shard = rec.shard;
  input.instance = rec.instance_id;
  // Manifest-recovered instances predate this service generation: no
  // submit time is known, so stamp "now" — the analyzer then leaves the
  // shard-local report unextended.
  input.submitted = rec.submit_known ? rec.submitted : VirtualNow();
  input.barriers = barrier_bounds_;
  return obs::AnalyzeFleetCriticalPath(input);
}

std::string ShardedService::ExportShardSpans(int shard) const {
  return shards_[shard]->obs.spans.ExportJsonl();
}

std::string ShardedService::ExportShardTrace(int shard) const {
  return shards_[shard]->obs.trace.ExportJsonl();
}

std::string ShardedService::ExportShardTimeline(int shard) const {
  const obs::Observability& obs = shards_[shard]->obs;
  return obs::TimelineCsv(obs::BuildTimeline(obs.trace), obs.trace.dropped());
}

}  // namespace biopera::service
