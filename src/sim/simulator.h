#ifndef BIOPERA_SIM_SIMULATOR_H_
#define BIOPERA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace biopera {

/// Identifies a scheduled event; valid ids are non-zero.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Deterministic discrete-event simulator.
///
/// The simulator is the spine of every experiment: the cluster model, the
/// failure injector, and the BioOpera engine all schedule callbacks on it
/// and observe its virtual clock. Events with equal timestamps fire in
/// scheduling order, which makes whole experiments bit-reproducible given
/// fixed RNG seeds.
///
/// Events come in two kinds: regular events keep Run() alive; *daemon*
/// events (periodic monitors, background load generators — anything that
/// reschedules itself forever) execute normally but do not prevent Run()
/// from returning once all regular work has drained.
class Simulator : public Clock {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const override { return now_; }

  /// Schedules `fn` to run `delay` from now (negative delays are clamped to
  /// zero). Returns an id usable with Cancel().
  EventId Schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  EventId ScheduleAt(TimePoint t, std::function<void()> fn);

  /// Daemon variants: the event fires normally but does not keep Run()
  /// alive on its own.
  EventId ScheduleDaemon(Duration delay, std::function<void()> fn);
  EventId ScheduleDaemonAt(TimePoint t, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool Cancel(EventId id);

  /// Runs the next pending event, advancing the clock. Returns false when
  /// no events remain (daemon or not).
  bool Step();

  /// Runs until no *regular* events remain (pending daemons are left
  /// scheduled; they will fire if more regular work appears later).
  void Run();

  /// Runs all events with time <= t, then sets the clock to exactly t.
  void RunUntil(TimePoint t);

  /// Runs for `d` of virtual time from now.
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Time of the earliest pending event (daemons included). Returns false
  /// when nothing is scheduled. Prunes cancelled entries off the heap
  /// head, so it is not const; it never executes or reorders anything.
  /// The sharded service uses it to pick lockstep barrier targets.
  bool NextEventTime(TimePoint* t);

  /// Number of pending (non-cancelled) events, daemons included.
  size_t NumPending() const { return live_.size(); }
  /// Pending regular (non-daemon) events.
  size_t NumPendingRegular() const { return regular_pending_; }

  /// Total events executed since construction.
  uint64_t NumExecuted() const { return executed_; }

 private:
  struct Entry {
    TimePoint time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  EventId ScheduleInternal(TimePoint t, std::function<void()> fn,
                           bool daemon);
  // Pops the next non-cancelled event, or returns false. `*daemon`
  // receives the event's daemon flag.
  bool PopNext(Entry* out, bool* daemon);

  TimePoint now_;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  size_t regular_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Live (pending) events: id -> is_daemon.
  std::unordered_map<EventId, bool> live_;
};

}  // namespace biopera

#endif  // BIOPERA_SIM_SIMULATOR_H_
