#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace biopera {

EventId Simulator::Schedule(Duration delay, std::function<void()> fn) {
  if (delay < Duration::Zero()) delay = Duration::Zero();
  return ScheduleInternal(now_ + delay, std::move(fn), /*daemon=*/false);
}

EventId Simulator::ScheduleAt(TimePoint t, std::function<void()> fn) {
  return ScheduleInternal(t, std::move(fn), /*daemon=*/false);
}

EventId Simulator::ScheduleDaemon(Duration delay, std::function<void()> fn) {
  if (delay < Duration::Zero()) delay = Duration::Zero();
  return ScheduleInternal(now_ + delay, std::move(fn), /*daemon=*/true);
}

EventId Simulator::ScheduleDaemonAt(TimePoint t, std::function<void()> fn) {
  return ScheduleInternal(t, std::move(fn), /*daemon=*/true);
}

EventId Simulator::ScheduleInternal(TimePoint t, std::function<void()> fn,
                                    bool daemon) {
  if (t < now_) t = now_;
  EventId id = next_id_++;
  queue_.push(Entry{t, id, std::move(fn)});
  live_.emplace(id, daemon);
  if (!daemon) ++regular_pending_;
  return id;
}

bool Simulator::Cancel(EventId id) {
  // Only events that are still pending can be cancelled; erase from the
  // live map and let PopNext drop the stale heap entry lazily.
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  if (!it->second) --regular_pending_;
  live_.erase(it);
  return true;
}

bool Simulator::NextEventTime(TimePoint* t) {
  while (!queue_.empty() && live_.find(queue_.top().id) == live_.end()) {
    queue_.pop();  // cancelled; drop the stale heap entry
  }
  if (queue_.empty()) return false;
  *t = queue_.top().time;
  return true;
}

bool Simulator::PopNext(Entry* out, bool* daemon) {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    auto it = live_.find(e.id);
    if (it == live_.end()) continue;  // cancelled
    *daemon = it->second;
    if (!it->second) --regular_pending_;
    live_.erase(it);
    *out = std::move(e);
    return true;
  }
  return false;
}

bool Simulator::Step() {
  Entry e;
  bool daemon = false;
  if (!PopNext(&e, &daemon)) return false;
  assert(e.time >= now_);
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

void Simulator::Run() {
  while (regular_pending_ > 0 && Step()) {
  }
}

void Simulator::RunUntil(TimePoint t) {
  while (true) {
    Entry e;
    bool daemon = false;
    if (!PopNext(&e, &daemon)) break;
    if (e.time > t) {
      // Fires after the horizon; re-insert (the id becomes live again).
      live_.emplace(e.id, daemon);
      if (!daemon) ++regular_pending_;
      queue_.push(std::move(e));
      break;
    }
    now_ = e.time;
    ++executed_;
    e.fn();
  }
  if (t > now_) now_ = t;
}

}  // namespace biopera
