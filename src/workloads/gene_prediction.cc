#include "workloads/gene_prediction.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ocr/builder.h"

namespace biopera::workloads {

using core::ActivityInput;
using core::ActivityOutput;
using ocr::ProcessDef;
using ocr::TaskBuilder;
using ocr::Value;

ProcessDef BuildGenePredictionProcess() {
  Result<ProcessDef> def =
      ocr::ProcessBuilder("gene_prediction")
          .Data("genome_kb", Value(0))
          .Data("contigs")
          .Data("contig_results")
          .Data("gene_count")
          .Data("annotation")
          .Task(TaskBuilder::Activity("fetch_genome", "genepred.fetch")
                    .Input("wb.genome_kb", "in.genome_kb")
                    .Output("out.contigs", "wb.contigs")
                    .Retry(3, Duration::Minutes(1)))
          .Task(TaskBuilder::Parallel(
                    "predict", "wb.contigs",
                    TaskBuilder::Subprocess("contig", "predict_contig")
                        .Input("item", "in.contig"))
                    .Collect("wb.contig_results"))
          .Task(TaskBuilder::Activity("merge", "genepred.merge")
                    .Input("wb.contig_results", "in.results")
                    .Output("out.gene_count", "wb.gene_count")
                    .Output("out.annotation", "wb.annotation")
                    .Retry(3, Duration::Minutes(1)))
          .Connect("fetch_genome", "predict")
          .Connect("predict", "merge")
          .Build();
  assert(def.ok());
  return std::move(*def);
}

ProcessDef BuildPredictContigProcess() {
  // The three finders run concurrently (no connectors between them); the
  // consensus joins on all three.
  Result<ProcessDef> def =
      ocr::ProcessBuilder("predict_contig")
          .Data("contig")
          .Data("hmm_hits")
          .Data("orf_hits")
          .Data("splice_hits")
          .Data("accepted")
          .Task(TaskBuilder::Activity("hmm_finder", "genepred.finder_hmm")
                    .Input("wb.contig", "in.contig")
                    .Output("out.hits", "wb.hmm_hits")
                    .Retry(4, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("orf_finder", "genepred.finder_orf")
                    .Input("wb.contig", "in.contig")
                    .Output("out.hits", "wb.orf_hits")
                    .Retry(4, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("splice_finder",
                                      "genepred.finder_splice")
                    .Input("wb.contig", "in.contig")
                    .Output("out.hits", "wb.splice_hits")
                    .Retry(4, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("consensus", "genepred.combine")
                    .Input("wb.contig", "in.contig")
                    .Input("wb.hmm_hits", "in.hmm")
                    .Input("wb.orf_hits", "in.orf")
                    .Input("wb.splice_hits", "in.splice")
                    .Output("out.accepted", "wb.accepted")
                    .Retry(4, Duration::Minutes(2)))
          .Connect("hmm_finder", "consensus")
          .Connect("orf_finder", "consensus")
          .Connect("splice_finder", "consensus")
          .Build();
  assert(def.ok());
  return std::move(*def);
}

namespace {

int64_t ContigKb(const Value& contig) {
  if (!contig.is_map()) return 0;
  auto it = contig.AsMap().find("kb");
  return it != contig.AsMap().end() && it->second.is_int()
             ? it->second.AsInt()
             : 0;
}

int64_t ContigTrueGenes(const GenePredictionContext& ctx,
                        const Value& contig) {
  return static_cast<int64_t>(
      std::floor(static_cast<double>(ContigKb(contig)) * ctx.genes_per_kb));
}

/// One finder: detects a deterministic `sensitivity` share of the true
/// genes plus some false positives.
Result<ActivityOutput> RunFinder(const GenePredictionContext& ctx,
                                 const ActivityInput& input,
                                 double sensitivity, double cost_per_kb) {
  const Value& contig = input.Get("contig");
  int64_t kb = ContigKb(contig);
  if (kb <= 0) {
    return Status::InvalidArgument("finder: contig descriptor missing");
  }
  int64_t true_genes = ContigTrueGenes(ctx, contig);
  int64_t found = static_cast<int64_t>(
      std::floor(static_cast<double>(true_genes) * sensitivity));
  int64_t spurious = static_cast<int64_t>(
      std::floor(static_cast<double>(kb) * ctx.false_positives_per_kb));
  ActivityOutput out;
  Value::Map hits;
  hits["true_hits"] = Value(found);
  hits["false_hits"] = Value(spurious);
  out.fields["hits"] = Value(std::move(hits));
  out.cost = Duration::Seconds(cost_per_kb * static_cast<double>(kb));
  return out;
}

int64_t HitField(const Value& hits, const char* field) {
  if (!hits.is_map()) return 0;
  auto it = hits.AsMap().find(field);
  return it != hits.AsMap().end() && it->second.is_int() ? it->second.AsInt()
                                                         : 0;
}

}  // namespace

Status RegisterGenePredictionActivities(
    core::ActivityRegistry* registry,
    std::shared_ptr<GenePredictionContext> context) {
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "genepred.fetch",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        int64_t genome_kb = input.Get("genome_kb").is_int()
                                ? input.Get("genome_kb").AsInt()
                                : 0;
        if (genome_kb <= 0) genome_kb = ctx->genome_kb;
        Value::List contigs;
        int64_t index = 0;
        for (int64_t off = 0; off < genome_kb; off += ctx->contig_kb) {
          Value::Map contig;
          contig["index"] = Value(index++);
          contig["kb"] = Value(std::min(ctx->contig_kb, genome_kb - off));
          contigs.emplace_back(std::move(contig));
        }
        ActivityOutput out;
        out.fields["contigs"] = Value(std::move(contigs));
        out.cost = Duration::Seconds(
            10 + 0.01 * static_cast<double>(genome_kb));
        return out;
      }));

  auto finder = [&](const char* binding, double sensitivity,
                    double cost_per_kb) {
    return registry->Register(
        binding, [ctx = context, sensitivity, cost_per_kb](
                     const ActivityInput& input) -> Result<ActivityOutput> {
          return RunFinder(*ctx, input, sensitivity, cost_per_kb);
        });
  };
  BIOPERA_RETURN_IF_ERROR(finder("genepred.finder_hmm",
                                 context->hmm_sensitivity,
                                 context->hmm_cost_per_kb));
  BIOPERA_RETURN_IF_ERROR(finder("genepred.finder_orf",
                                 context->orf_sensitivity,
                                 context->orf_cost_per_kb));
  BIOPERA_RETURN_IF_ERROR(finder("genepred.finder_splice",
                                 context->splice_sensitivity,
                                 context->splice_cost_per_kb));

  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "genepred.combine",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        // Consensus model: a true gene is accepted when enough finders saw
        // it. With deterministic sensitivities s_i, the expected number of
        // genes seen by >= k finders follows from inclusion of the k
        // highest-sensitivity finders (a simplification that keeps the
        // pipeline deterministic and testable).
        const Value& contig = input.Get("contig");
        int64_t true_genes = ContigTrueGenes(*ctx, contig);
        std::vector<double> sens = {ctx->hmm_sensitivity,
                                    ctx->orf_sensitivity,
                                    ctx->splice_sensitivity};
        std::sort(sens.begin(), sens.end(), std::greater<>());
        int k = std::clamp(ctx->votes_needed, 1, 3);
        double joint = 1.0;
        for (int i = 0; i < k; ++i) joint *= sens[static_cast<size_t>(i)];
        int64_t accepted = static_cast<int64_t>(
            std::floor(static_cast<double>(true_genes) * joint));
        // False positives rarely agree across finders: suppressed by the
        // vote. (Single-finder mode keeps them.)
        int64_t false_kept =
            k >= 2 ? 0 : HitField(input.Get("hmm"), "false_hits");
        ActivityOutput out;
        out.fields["accepted"] = Value(accepted + false_kept);
        out.fields["candidates"] =
            Value(HitField(input.Get("hmm"), "true_hits") +
                  HitField(input.Get("orf"), "true_hits") +
                  HitField(input.Get("splice"), "true_hits"));
        out.cost = Duration::Seconds(20);
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "genepred.merge",
      [](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& results = input.Get("results");
        if (!results.is_list()) {
          return Status::InvalidArgument("merge: results missing");
        }
        int64_t total = 0;
        for (const Value& r : results.AsList()) {
          if (!r.is_map()) continue;
          auto it = r.AsMap().find("accepted");
          if (it != r.AsMap().end() && it->second.is_int()) {
            total += it->second.AsInt();
          }
        }
        ActivityOutput out;
        out.fields["gene_count"] = Value(total);
        out.fields["annotation"] =
            Value("annotation.gff (" + std::to_string(total) + " genes)");
        out.cost = Duration::Seconds(30);
        return out;
      }));
  return Status::OK();
}

}  // namespace biopera::workloads
