#include "workloads/tower.h"

#include <cassert>
#include <cmath>

#include "ocr/builder.h"

namespace biopera::workloads {

using core::ActivityInput;
using core::ActivityOutput;
using ocr::ProcessDef;
using ocr::TaskBuilder;
using ocr::Value;

namespace {

int64_t IntParam(const ActivityInput& input, const std::string& name,
                 int64_t dflt) {
  const Value& v = input.Get(name);
  return v.is_int() ? v.AsInt() : dflt;
}

}  // namespace

ProcessDef BuildTowerProcess() {
  Result<ProcessDef> def =
      ocr::ProcessBuilder("tower_of_information")
          .Data("num_dna", Value(0))
          .Data("dna_count")
          .Data("protein_count")
          .Data("shards")
          .Data("comparative_results")
          .Data("tree_count")
          .Data("prediction_count")
          .Task(TaskBuilder::Activity("acquire_dna", "tower.acquire")
                    .Input("wb.num_dna", "in.count")
                    .Output("out.dna_count", "wb.dna_count")
                    .Retry(3, Duration::Minutes(1)))
          .Task(TaskBuilder::Subprocess("genomics", "tower_genomics")
                    .Input("wb.dna_count", "in.dna_count")
                    .Output("out.protein_count", "wb.protein_count")
                    .Output("out.shards", "wb.shards"))
          .Task(TaskBuilder::Parallel(
                    "comparative", "wb.shards",
                    TaskBuilder::Subprocess("shard", "tower_comparative")
                        .Input("item", "in.shard"))
                    .Collect("wb.comparative_results"))
          .Task(TaskBuilder::Subprocess("phylogeny", "tower_phylogeny")
                    .Input("wb.protein_count", "in.protein_count")
                    .Output("out.tree_count", "wb.tree_count"))
          .Task(TaskBuilder::Subprocess("prediction", "tower_prediction")
                    .Input("wb.protein_count", "in.protein_count")
                    .Input("wb.tree_count", "in.tree_count")
                    .Output("out.prediction_count", "wb.prediction_count"))
          .Connect("acquire_dna", "genomics")
          .Connect("genomics", "comparative")
          .Connect("comparative", "phylogeny")
          .Connect("phylogeny", "prediction")
          .Build();
  assert(def.ok());
  return std::move(*def);
}

std::vector<ProcessDef> BuildTowerSubprocesses() {
  std::vector<ProcessDef> out;

  Result<ProcessDef> genomics =
      ocr::ProcessBuilder("tower_genomics")
          .Data("dna_count", Value(0))
          .Data("gene_count")
          .Data("protein_count")
          .Data("shards")
          .Task(TaskBuilder::Activity("gene_finding", "tower.gene_finding")
                    .Input("wb.dna_count", "in.count")
                    .Output("out.gene_count", "wb.gene_count")
                    .Retry(3, Duration::Minutes(1)))
          .Task(TaskBuilder::Activity("translation", "tower.translation")
                    .Input("wb.gene_count", "in.count")
                    .Output("out.protein_count", "wb.protein_count")
                    .Output("out.shards", "wb.shards")
                    .Retry(3, Duration::Minutes(1)))
          .Connect("gene_finding", "translation")
          .Build();
  assert(genomics.ok());
  out.push_back(std::move(*genomics));

  Result<ProcessDef> comparative =
      ocr::ProcessBuilder("tower_comparative")
          .Data("shard")
          .Data("alignment_count")
          .Data("variance_count")
          .Task(TaskBuilder::Activity("pairwise_alignment",
                                      "tower.pairwise_alignment")
                    .Input("wb.shard", "in.shard")
                    .Output("out.alignment_count", "wb.alignment_count")
                    .Retry(5, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("variances", "tower.variances")
                    .Input("wb.alignment_count", "in.count")
                    .Output("out.variance_count", "wb.variance_count")
                    .Retry(5, Duration::Minutes(2)))
          .Connect("pairwise_alignment", "variances")
          .Build();
  assert(comparative.ok());
  out.push_back(std::move(*comparative));

  Result<ProcessDef> phylogeny =
      ocr::ProcessBuilder("tower_phylogeny")
          .Data("protein_count", Value(0))
          .Data("msa_count")
          .Data("tree_count")
          .Data("ancestral_count")
          .Task(TaskBuilder::Activity("msa", "tower.msa")
                    .Input("wb.protein_count", "in.count")
                    .Output("out.msa_count", "wb.msa_count")
                    .Retry(3, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("trees", "tower.trees")
                    .Input("wb.msa_count", "in.count")
                    .Output("out.tree_count", "wb.tree_count")
                    .Retry(3, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("ancestral", "tower.ancestral")
                    .Input("wb.tree_count", "in.count")
                    .Output("out.ancestral_count", "wb.ancestral_count")
                    .Retry(3, Duration::Minutes(2)))
          .Connect("msa", "trees")
          .Connect("trees", "ancestral")
          .Build();
  assert(phylogeny.ok());
  out.push_back(std::move(*phylogeny));

  Result<ProcessDef> prediction =
      ocr::ProcessBuilder("tower_prediction")
          .Data("protein_count", Value(0))
          .Data("tree_count", Value(0))
          .Data("structure_count")
          .Data("prediction_count")
          .Task(TaskBuilder::Activity("secondary_structure",
                                      "tower.structure")
                    .Input("wb.protein_count", "in.count")
                    .Input("wb.tree_count", "in.trees")
                    .Output("out.structure_count", "wb.structure_count")
                    .Retry(3, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("function", "tower.function")
                    .Input("wb.structure_count", "in.count")
                    .Output("out.prediction_count", "wb.prediction_count")
                    .Retry(3, Duration::Minutes(2)))
          .Connect("secondary_structure", "function")
          .Build();
  assert(prediction.ok());
  out.push_back(std::move(*prediction));

  return out;
}

Status RegisterTowerActivities(core::ActivityRegistry* registry,
                               std::shared_ptr<TowerContext> context) {
  auto counting = [registry](const std::string& binding,
                             std::function<Result<ActivityOutput>(
                                 const ActivityInput&)> fn) {
    return registry->Register(binding, std::move(fn));
  };

  BIOPERA_RETURN_IF_ERROR(counting(
      "tower.acquire",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        int64_t n = IntParam(input, "count", 0);
        if (n <= 0) n = ctx->num_dna_sequences;
        ActivityOutput out;
        out.fields["dna_count"] = Value(n);
        out.cost = Duration::Seconds(5 + 0.001 * static_cast<double>(n));
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(counting(
      "tower.gene_finding",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        int64_t n = IntParam(input, "count", 0);
        ActivityOutput out;
        out.fields["gene_count"] = Value(static_cast<int64_t>(
            std::llround(static_cast<double>(n) * ctx->gene_rate)));
        out.cost = Duration::Seconds(ctx->gene_finding_cost *
                                     static_cast<double>(n));
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(counting(
      "tower.translation",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        int64_t n = IntParam(input, "count", 0);
        ActivityOutput out;
        out.fields["protein_count"] = Value(n);
        // Shard the protein set for the parallel comparative stage.
        int64_t shard_size = 250;
        Value::List shards;
        for (int64_t start = 0; start < n; start += shard_size) {
          Value::Map shard;
          shard["first"] = Value(start);
          shard["last"] = Value(std::min(n, start + shard_size));
          shards.emplace_back(std::move(shard));
        }
        out.fields["shards"] = Value(std::move(shards));
        out.cost =
            Duration::Seconds(ctx->translation_cost * static_cast<double>(n));
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(counting(
      "tower.pairwise_alignment",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& shard = input.Get("shard");
        if (!shard.is_map()) {
          return Status::InvalidArgument("pairwise_alignment: shard missing");
        }
        int64_t first = 0, last = 0;
        auto f = shard.AsMap().find("first");
        auto l = shard.AsMap().find("last");
        if (f != shard.AsMap().end() && f->second.is_int()) {
          first = f->second.AsInt();
        }
        if (l != shard.AsMap().end() && l->second.is_int()) {
          last = l->second.AsInt();
        }
        int64_t n = std::max<int64_t>(0, last - first);
        ActivityOutput out;
        out.fields["alignment_count"] = Value(n * (n - 1) / 2);
        out.cost =
            Duration::Seconds(ctx->alignment_cost * static_cast<double>(n));
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(counting(
      "tower.variances",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        int64_t n = IntParam(input, "count", 0);
        ActivityOutput out;
        out.fields["variance_count"] = Value(n);
        out.cost = Duration::Seconds(
            ctx->variance_cost * std::sqrt(static_cast<double>(n) + 1));
        return out;
      }));

  auto chain_step = [&](const std::string& binding, double unit_cost,
                        const std::string& out_field, double ratio) {
    return counting(
        binding,
        [unit_cost, out_field, ratio](
            const ActivityInput& input) -> Result<ActivityOutput> {
          int64_t n = IntParam(input, "count", 0);
          ActivityOutput out;
          out.fields[out_field] = Value(static_cast<int64_t>(
              std::llround(static_cast<double>(n) * ratio)));
          out.cost = Duration::Seconds(
              1.0 + unit_cost * std::sqrt(static_cast<double>(n) + 1));
          return out;
        });
  };
  BIOPERA_RETURN_IF_ERROR(
      chain_step("tower.msa", context->msa_cost, "msa_count", 0.2));
  BIOPERA_RETURN_IF_ERROR(
      chain_step("tower.trees", context->tree_cost, "tree_count", 1.0));
  BIOPERA_RETURN_IF_ERROR(chain_step("tower.ancestral",
                                     context->ancestral_cost,
                                     "ancestral_count", 3.0));
  BIOPERA_RETURN_IF_ERROR(chain_step("tower.structure",
                                     context->structure_cost,
                                     "structure_count", 1.0));
  BIOPERA_RETURN_IF_ERROR(chain_step("tower.function", context->function_cost,
                                     "prediction_count", 0.8));
  return Status::OK();
}

}  // namespace biopera::workloads
