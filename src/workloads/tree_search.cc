#include "workloads/tree_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "ocr/builder.h"

namespace biopera::workloads {

using core::ActivityInput;
using core::ActivityOutput;
using ocr::ProcessDef;
using ocr::TaskBuilder;
using ocr::Value;

double TreeSearchContext::CandidateLogLikelihood(int64_t round,
                                                 int64_t candidate,
                                                 double incoming_best) const {
  // Deterministic pseudo-random landscape: most candidates are worse, a
  // few improve; the attainable improvement shrinks geometrically with the
  // round (local search approaching a local optimum).
  Rng rng(seed ^ (static_cast<uint64_t>(round) << 32) ^
          static_cast<uint64_t>(candidate));
  double max_gain = 40.0 * std::pow(0.7, static_cast<double>(round));
  double u = rng.NextDouble();
  if (candidate == 0 || u > 0.75) {
    // An improving move (candidate 0 always improves slightly: the
    // landscape guarantees monotone progress until gains vanish).
    return incoming_best + max_gain * rng.NextDouble();
  }
  return incoming_best - 30.0 * rng.NextDouble();
}

ProcessDef BuildTreeSearchProcess(int rounds) {
  assert(rounds >= 1);
  ocr::ProcessBuilder builder("tree_search");
  builder.Data("num_taxa", Value(0));
  builder.Data("best_ll", Value(-100000.0));
  builder.Data("rounds_run", Value(0));
  std::string prev;
  for (int r = 0; r < rounds; ++r) {
    std::string tag = std::to_string(r);
    std::string candidates = "candidates_" + tag;
    std::string scores = "scores_" + tag;
    builder.Data(candidates);
    builder.Data(scores);
    builder.Task(TaskBuilder::Activity("propose_" + tag,
                                       "treesearch.propose")
                     .Input("wb.best_ll", "in.best_ll")
                     .Input("wb.rounds_run", "in.round")
                     .Output("out.candidates", "wb." + candidates)
                     .Retry(3, Duration::Minutes(1)));
    builder.Task(
        TaskBuilder::Parallel("evaluate_" + tag, "wb." + candidates,
                              TaskBuilder::Activity("eval",
                                                    "treesearch.evaluate")
                                  .Input("item", "in.candidate")
                                  .Input("wb.num_taxa", "in.num_taxa"))
            .Collect("wb." + scores));
    builder.Task(TaskBuilder::Activity("select_" + tag, "treesearch.select")
                     .Input("wb." + scores, "in.scores")
                     .Input("wb.best_ll", "in.best_ll")
                     .Input("wb.rounds_run", "in.rounds_run")
                     .Output("out.best_ll", "wb.best_ll")
                     .Output("out.rounds_run", "wb.rounds_run")
                     .Retry(3, Duration::Minutes(1)));
    if (!prev.empty()) builder.Connect(prev, "propose_" + tag);
    builder.Connect("propose_" + tag, "evaluate_" + tag);
    builder.Connect("evaluate_" + tag, "select_" + tag);
    prev = "select_" + tag;
  }
  Result<ProcessDef> def = builder.Build();
  assert(def.ok());
  return std::move(*def);
}

Status RegisterTreeSearchActivities(
    core::ActivityRegistry* registry,
    std::shared_ptr<TreeSearchContext> context) {
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "treesearch.propose",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        double best = input.Get("best_ll").is_number()
                          ? input.Get("best_ll").AsDouble()
                          : -100000.0;
        int64_t round = input.Get("round").is_int()
                            ? input.Get("round").AsInt()
                            : 0;
        // Candidates carry (round, index, base) so each evaluation is a
        // pure deterministic function — safe to re-execute after failures.
        ActivityOutput out;
        Value::List candidates;
        for (int64_t c = 0; c < ctx->candidates_per_round; ++c) {
          Value::Map candidate;
          candidate["index"] = Value(c);
          candidate["round"] = Value(round);
          candidate["base_ll"] = Value(best);
          candidates.emplace_back(std::move(candidate));
        }
        out.fields["candidates"] = Value(std::move(candidates));
        out.cost = Duration::Seconds(15);
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "treesearch.evaluate",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& candidate = input.Get("candidate");
        if (!candidate.is_map()) {
          return Status::InvalidArgument("evaluate: candidate missing");
        }
        int64_t index = candidate.AsMap().at("index").AsInt();
        double base = candidate.AsMap().at("base_ll").AsDouble();
        int64_t round = candidate.AsMap().contains("round")
                            ? candidate.AsMap().at("round").AsInt()
                            : 0;
        double ll = ctx->CandidateLogLikelihood(round, index, base);
        int64_t taxa = input.Get("num_taxa").is_int() &&
                               input.Get("num_taxa").AsInt() > 0
                           ? input.Get("num_taxa").AsInt()
                           : ctx->num_taxa;
        ActivityOutput out;
        out.fields["ll"] = Value(ll);
        out.cost = Duration::Seconds(ctx->eval_cost_per_taxon *
                                     static_cast<double>(taxa));
        return out;
      }));

  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "treesearch.select",
      [](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& scores = input.Get("scores");
        if (!scores.is_list()) {
          return Status::InvalidArgument("select: scores missing");
        }
        double best = input.Get("best_ll").is_number()
                          ? input.Get("best_ll").AsDouble()
                          : -1e9;
        for (const Value& s : scores.AsList()) {
          if (s.is_map() && s.AsMap().contains("ll") &&
              s.AsMap().at("ll").is_number()) {
            best = std::max(best, s.AsMap().at("ll").AsDouble());
          }
        }
        int64_t rounds = input.Get("rounds_run").is_int()
                             ? input.Get("rounds_run").AsInt()
                             : 0;
        ActivityOutput out;
        out.fields["best_ll"] = Value(best);
        out.fields["rounds_run"] = Value(rounds + 1);
        out.cost = Duration::Seconds(10);
        return out;
      }));
  return Status::OK();
}

}  // namespace biopera::workloads
