#include "workloads/allvsall.h"

#include <algorithm>
#include <cmath>
#include <cassert>

#include "common/strings.h"
#include "darwin/align.h"
#include "darwin/align_simd.h"
#include "darwin/banded.h"
#include "darwin/banded_simd.h"
#include "darwin/pam.h"
#include "ocr/builder.h"
#include "workloads/partition.h"

namespace biopera::workloads {

using core::ActivityFn;
using core::ActivityInput;
using core::ActivityOutput;
using core::ActivityRegistry;
using darwin::Match;
using ocr::ProcessDef;
using ocr::TaskBuilder;
using ocr::Value;

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

double AllVsAllContext::NoiseFactor(uint64_t tag, uint32_t first,
                                    uint32_t last) const {
  if (per_entry_noise_sigma <= 0 || last <= first) return 1.0;
  double sigma = std::min(
      0.6, per_entry_noise_sigma /
               std::sqrt(static_cast<double>(last - first)));
  Rng rng(noise_seed ^ (tag * 0x9e3779b97f4a7c15ULL) ^
          (static_cast<uint64_t>(first) << 32) ^ last);
  // Mean-one lognormal: exp(sigma Z - sigma^2/2).
  return std::exp(rng.Normal(0.0, sigma) - sigma * sigma / 2);
}

void AllVsAllContext::PrepareSynthetic() {
  family_members.clear();
  for (uint32_t i = 0; i < family_of.size(); ++i) {
    family_members[family_of[i]].push_back(i);
  }
  // Drop singleton families: they produce no matches.
  for (auto it = family_members.begin(); it != family_members.end();) {
    if (it->second.size() < 2) {
      it = family_members.erase(it);
    } else {
      ++it;
    }
  }
  cost_model.Prepare(lengths);
}

uint64_t AllVsAllContext::PairCount(uint32_t first, uint32_t last) const {
  const uint64_t n = lengths.size();
  // Sum over i in [first, last) of (n - 1 - i).
  uint64_t count = 0;
  for (uint64_t i = first; i < last && i < n; ++i) count += n - 1 - i;
  return count;
}

uint64_t AllVsAllContext::SyntheticMatchCount(uint32_t first,
                                              uint32_t last) const {
  uint64_t matches = 0;
  for (uint32_t i = first; i < last && i < family_of.size(); ++i) {
    auto fam = family_members.find(family_of[i]);
    if (fam == family_members.end()) continue;
    // Relatives with a larger index (the triangular structure).
    const auto& members = fam->second;
    auto it = std::upper_bound(members.begin(), members.end(), i);
    matches += static_cast<uint64_t>(members.end() - it);
  }
  // Deterministic expected count of spurious background matches.
  matches += static_cast<uint64_t>(
      static_cast<double>(PairCount(first, last)) * background_match_rate);
  return matches;
}

double AllVsAllContext::OldPartnerResidues() const {
  double total = 0;
  for (uint32_t j = 0; j < update_from && j < lengths.size(); ++j) {
    total += lengths[j];
  }
  return total;
}

uint64_t AllVsAllContext::PairCountFor(const std::vector<uint32_t>& entries,
                                       uint32_t first, uint32_t last) const {
  uint64_t count = 0;
  for (uint32_t p = first; p < last && p < entries.size(); ++p) {
    // Later queue entries...
    count += entries.size() - 1 - p;
    // ...plus every old entry (update mode).
    count += update_from;
  }
  return count;
}

uint64_t AllVsAllContext::SyntheticMatchCountFor(
    const std::vector<uint32_t>& entries, uint32_t first,
    uint32_t last) const {
  uint64_t matches = 0;
  for (uint32_t p = first; p < last && p < entries.size(); ++p) {
    uint32_t i = entries[p];
    auto fam = family_members.find(family_of[i]);
    if (fam != family_members.end()) {
      const auto& members = fam->second;
      // Relatives among later entries (the triangular structure)...
      auto later = std::upper_bound(members.begin(), members.end(), i);
      matches += static_cast<uint64_t>(members.end() - later);
      // ...plus relatives among the old entries (update mode).
      if (update_from > 0) {
        auto old_end = std::lower_bound(members.begin(), members.end(),
                                        update_from);
        matches += static_cast<uint64_t>(old_end - members.begin());
        // Avoid double counting relatives that are both old and > i
        // (impossible: old indexes < update_from <= i for new entries).
      }
    }
  }
  matches += static_cast<uint64_t>(
      static_cast<double>(PairCountFor(entries, first, last)) *
      background_match_rate);
  return matches;
}

std::shared_ptr<AllVsAllContext> MakeRealContext(
    const darwin::Dataset* dataset, const darwin::PamFamily* pam,
    double match_threshold) {
  auto ctx = std::make_shared<AllVsAllContext>();
  ctx->dataset = dataset;
  ctx->pam = pam;
  ctx->match_threshold = match_threshold;
  ctx->lengths = darwin::CostModel::Lengths(*dataset);
  ctx->cost_model.Prepare(ctx->lengths);
  return ctx;
}

std::shared_ptr<AllVsAllContext> MakeSyntheticContext(
    const darwin::SyntheticDataset& data,
    const darwin::CostModelOptions& cost_options) {
  return MakeSyntheticContext(darwin::CostModel::Lengths(data.dataset),
                              data.family_of, cost_options);
}

std::shared_ptr<AllVsAllContext> MakeSyntheticContext(
    std::vector<uint32_t> lengths, std::vector<uint32_t> family_of,
    const darwin::CostModelOptions& cost_options) {
  auto ctx = std::make_shared<AllVsAllContext>();
  ctx->lengths = std::move(lengths);
  ctx->family_of = std::move(family_of);
  ctx->cost_model = darwin::CostModel(cost_options);
  ctx->PrepareSynthetic();
  return ctx;
}

// ---------------------------------------------------------------------------
// Process definitions (Figure 3)
// ---------------------------------------------------------------------------

ProcessDef BuildAllVsAllProcess() {
  auto body = TaskBuilder::Subprocess("align", "align_partition")
                  .Input("item", "in.partition")
                  .Input("wb.db_name", "in.db_name")
                  .Input("wb.queue_file", "in.queue_file");
  Result<ProcessDef> def =
      ocr::ProcessBuilder("all_vs_all")
          .Data("db_name", Value(""))
          .Data("queue_file")
          .Data("num_teus", Value(50))
          .Data("output_files", Value("results"))
          .Data("partition")
          .Data("results")
          .Data("master_file")
          .Data("pam_sorted_file")
          .Data("total_matches")
          .Task(TaskBuilder::Activity("user_input", "avsa.user_input")
                    .Input("wb.db_name", "in.db_name")
                    .Input("wb.queue_file", "in.queue_file")
                    .Input("wb.output_files", "in.output_files")
                    .Retry(2, Duration::Seconds(10)))
          .Task(TaskBuilder::Activity("queue_generation", "avsa.queue_gen")
                    .Input("wb.db_name", "in.db_name")
                    .Output("out.queue_file", "wb.queue_file")
                    .Retry(3, Duration::Seconds(30)))
          .Task(TaskBuilder::Activity("preprocessing", "avsa.preprocess")
                    .Input("wb.queue_file", "in.queue_file")
                    .Input("wb.num_teus", "in.num_teus")
                    .Output("out.partition", "wb.partition")
                    .Retry(3, Duration::Seconds(30)))
          .Task(TaskBuilder::Parallel("alignment", "wb.partition",
                                      std::move(body))
                    .Collect("wb.results"))
          .Task(TaskBuilder::Activity("merge_by_entry", "avsa.merge_entry")
                    .Input("wb.results", "in.results")
                    .Input("wb.output_files", "in.output_files")
                    .Output("out.master_file", "wb.master_file")
                    .Output("out.match_count", "wb.total_matches")
                    .Retry(3, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("merge_by_pam", "avsa.merge_pam")
                    .Input("wb.results", "in.results")
                    .Output("out.pam_sorted_file", "wb.pam_sorted_file")
                    .Retry(3, Duration::Minutes(2)))
          .Connect("user_input", "queue_generation",
                   "!defined(wb.queue_file)")
          .Connect("user_input", "preprocessing", "defined(wb.queue_file)")
          .Connect("queue_generation", "preprocessing")
          .Connect("preprocessing", "alignment")
          .Connect("alignment", "merge_by_entry")
          .Connect("alignment", "merge_by_pam")
          .Build();
  assert(def.ok());
  return std::move(*def);
}

ProcessDef BuildAlignPartitionProcess() {
  Result<ProcessDef> def =
      ocr::ProcessBuilder("align_partition")
          .Data("partition")
          .Data("db_name", Value(""))
          .Data("queue_file")
          .Data("raw_matches")
          .Data("raw_count")
          .Data("matches")
          .Data("match_count")
          .Task(TaskBuilder::Activity("fixed_pam_alignment",
                                      "darwin.fixed_pam")
                    .ResourceClass("align")
                    .Input("wb.partition", "in.partition")
                    .Input("wb.queue_file", "in.queue_file")
                    .Output("out.matches", "wb.raw_matches")
                    .Output("out.count", "wb.raw_count")
                    .Retry(5, Duration::Minutes(2)))
          .Task(TaskBuilder::Activity("pam_refinement", "darwin.refine")
                    .ResourceClass("refine")
                    .Input("wb.partition", "in.partition")
                    .Input("wb.queue_file", "in.queue_file")
                    .Input("wb.raw_matches", "in.matches")
                    .Input("wb.raw_count", "in.count")
                    .Output("out.matches", "wb.matches")
                    .Output("out.count", "wb.match_count")
                    .Retry(5, Duration::Minutes(2)))
          .Connect("fixed_pam_alignment", "pam_refinement")
          .Build();
  assert(def.ok());
  return std::move(*def);
}

// ---------------------------------------------------------------------------
// Activity implementations
// ---------------------------------------------------------------------------

namespace {

/// Decodes a queue-file value: either a map {"count": N} standing for the
/// implicit full range [0, N), or an explicit list of entry indexes.
Result<std::vector<uint32_t>> DecodeQueue(const Value& queue,
                                          size_t dataset_size) {
  std::vector<uint32_t> entries;
  if (queue.is_null()) {
    entries.reserve(dataset_size);
    for (size_t i = 0; i < dataset_size; ++i) {
      entries.push_back(static_cast<uint32_t>(i));
    }
    return entries;
  }
  if (queue.is_map()) {
    auto it = queue.AsMap().find("count");
    if (it == queue.AsMap().end() || !it->second.is_int()) {
      return Status::InvalidArgument("queue map needs int count");
    }
    int64_t n = it->second.AsInt();
    int64_t start = 0;
    auto first_it = queue.AsMap().find("first");
    if (first_it != queue.AsMap().end() && first_it->second.is_int()) {
      start = first_it->second.AsInt();
    }
    if (n < 0 || start < 0 ||
        static_cast<size_t>(start + n) > dataset_size) {
      return Status::InvalidArgument("queue range out of bounds");
    }
    entries.reserve(static_cast<size_t>(n));
    for (int64_t i = start; i < start + n; ++i) {
      entries.push_back(static_cast<uint32_t>(i));
    }
    return entries;
  }
  if (queue.is_list()) {
    for (const Value& v : queue.AsList()) {
      if (!v.is_int() || v.AsInt() < 0 ||
          static_cast<size_t>(v.AsInt()) >= dataset_size) {
        return Status::InvalidArgument("bad queue entry");
      }
      entries.push_back(static_cast<uint32_t>(v.AsInt()));
    }
    return entries;
  }
  return Status::InvalidArgument("queue file must be a map or a list");
}

/// Queue-position lengths for cost estimation / partitioning.
std::vector<uint32_t> QueueLengths(const AllVsAllContext& ctx,
                                   const std::vector<uint32_t>& entries) {
  std::vector<uint32_t> out;
  out.reserve(entries.size());
  for (uint32_t e : entries) out.push_back(ctx.lengths[e]);
  return out;
}

Duration FixedPassCost(const AllVsAllContext& ctx,
                       const std::vector<uint32_t>& lengths, uint32_t first,
                       uint32_t last) {
  const auto& opt = ctx.cost_model.options();
  // Walk backwards keeping the running suffix sum of partner lengths.
  double suffix = 0;
  for (size_t j = lengths.size(); j > last; --j) suffix += lengths[j - 1];
  const double old_partners = ctx.OldPartnerResidues();
  double cells = 0;
  for (size_t i = std::min<size_t>(last, lengths.size()); i > first; --i) {
    cells += static_cast<double>(lengths[i - 1]) * (suffix + old_partners);
    suffix += lengths[i - 1];
  }
  return Duration::Seconds(cells * opt.sw_cell_seconds *
                               ctx.NoiseFactor(0, first, last) +
                           opt.darwin_init_seconds);
}

Duration RefinePassCost(const AllVsAllContext& ctx,
                        const std::vector<uint32_t>& lengths, uint32_t first,
                        uint32_t last) {
  const auto& opt = ctx.cost_model.options();
  double suffix = 0;
  for (size_t j = lengths.size(); j > last; --j) suffix += lengths[j - 1];
  const double old_partners = ctx.OldPartnerResidues();
  double cells = 0;
  for (size_t i = std::min<size_t>(last, lengths.size()); i > first; --i) {
    cells += static_cast<double>(lengths[i - 1]) * (suffix + old_partners);
    suffix += lengths[i - 1];
  }
  double seconds = cells * opt.sw_cell_seconds * opt.match_rate *
                       opt.refine_evaluations * ctx.NoiseFactor(1, first, last) +
                   opt.darwin_init_seconds;
  return Duration::Seconds(seconds);
}

}  // namespace

Status RegisterAllVsAllActivities(ActivityRegistry* registry,
                                  std::shared_ptr<AllVsAllContext> context) {
  // --- user_input ----------------------------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "avsa.user_input", [](const ActivityInput& input) -> Result<ActivityOutput> {
        ActivityOutput out;
        if (!input.Get("db_name").is_string() ||
            input.Get("db_name").AsString().empty()) {
          return Status::InvalidArgument("user_input: db_name is required");
        }
        out.fields["db_name"] = input.Get("db_name");
        out.cost = Duration::Seconds(1);
        return out;
      }));

  // --- queue_generation ----------------------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "avsa.queue_gen",
      [ctx = context](const ActivityInput&) -> Result<ActivityOutput> {
        ActivityOutput out;
        Value::Map queue;
        queue["count"] = Value(static_cast<int64_t>(ctx->lengths.size()));
        out.fields["queue_file"] = Value(std::move(queue));
        out.cost = Duration::Seconds(
            2.0 + 1e-5 * static_cast<double>(ctx->lengths.size()));
        return out;
      }));

  // --- preprocessing -------------------------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "avsa.preprocess",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        BIOPERA_ASSIGN_OR_RETURN(
            std::vector<uint32_t> entries,
            DecodeQueue(input.Get("queue_file"), ctx->lengths.size()));
        const Value& num_teus = input.Get("num_teus");
        if (!num_teus.is_int() || num_teus.AsInt() <= 0) {
          return Status::InvalidArgument("preprocess: num_teus must be > 0");
        }
        std::vector<Teu> teus =
            ctx->partition_by_cost
                ? PartitionByCost(QueueLengths(*ctx, entries),
                                  static_cast<size_t>(num_teus.AsInt()))
                : PartitionByCount(entries.size(),
                                   static_cast<size_t>(num_teus.AsInt()));
        ActivityOutput out;
        out.fields["partition"] = TeusToValue(teus);
        out.provenance.emplace_back(
            "partition_strategy",
            ctx->partition_by_cost ? "by_cost" : "by_count");
        out.provenance.emplace_back(
            "queue_entries", StrFormat("%zu", entries.size()));
        out.cost = Duration::Seconds(
            2.0 + 2e-5 * static_cast<double>(entries.size()));
        return out;
      }));

  // --- fixed-PAM alignment pass (one TEU) ------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "darwin.fixed_pam",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        BIOPERA_ASSIGN_OR_RETURN(Teu teu, TeuFromValue(input.Get("partition")));
        BIOPERA_ASSIGN_OR_RETURN(
            std::vector<uint32_t> entries,
            DecodeQueue(input.Get("queue_file"), ctx->lengths.size()));
        if (teu.last > entries.size()) {
          return Status::InvalidArgument("fixed_pam: TEU beyond queue");
        }
        std::vector<uint32_t> lengths = QueueLengths(*ctx, entries);
        ActivityOutput out;
        out.cost = FixedPassCost(*ctx, lengths, teu.first, teu.last);
        out.provenance.emplace_back(
            "pam_matrix",
            StrFormat("%s/pam%d",
                      std::string(darwin::PamFamilyVersion()).c_str(),
                      ctx->fixed_pam));
        out.provenance.emplace_back(
            "match_threshold", StrFormat("%g", ctx->match_threshold));
        out.provenance.emplace_back(
            "mode", ctx->dataset != nullptr ? "real" : "synthetic");
        if (ctx->dataset == nullptr) {
          out.provenance.emplace_back(
              "noise_seed",
              StrFormat("0x%llx",
                        static_cast<unsigned long long>(ctx->noise_seed)));
        }
        if (ctx->dataset != nullptr) {
          // Real computation: align each TEU entry against all later ones.
          const darwin::ScoringMatrix& matrix =
              ctx->pam->Scoring(ctx->fixed_pam);
          std::vector<Match> matches;
          if (ctx->use_banded_screen) {
            // Banded screen: quantized SIMD banded kernel per pair, with
            // saturated pairs and pairs inside the quantization band of
            // the threshold re-scored by the exact double banded kernel —
            // the accept set and the recorded scores are bit-identical to
            // screening every pair with BandedSmithWatermanScore.
            const darwin::QuantizedMatrix& qmatrix =
                ctx->pam->QuantizedScoring(ctx->fixed_pam);
            const darwin::SwKernel kernel = darwin::ResolveSwKernel();
            uint64_t banded_rescored = 0;
            auto align_pair = [&](uint32_t ei, uint32_t ej) {
              const darwin::Sequence& sa = (*ctx->dataset)[ei];
              const darwin::Sequence& sb = (*ctx->dataset)[ej];
              const size_t band = darwin::SuggestBand(
                  sa.length(), sb.length(), ctx->fixed_pam);
              darwin::SwScore q = darwin::BandedSimdScore(
                  sa, sb, qmatrix, band, darwin::GapPenalty{}, kernel);
              double score;
              if (q.saturated) {
                score = darwin::BandedSmithWatermanScore(sa, sb, matrix,
                                                         band);
                ++banded_rescored;
              } else {
                double bound = darwin::QuantizationErrorBound(
                    sa.length(), sb.length(), qmatrix,
                    darwin::GapPenalty{});
                if (q.Value() < ctx->match_threshold - bound) return;
                score = darwin::BandedSmithWatermanScore(sa, sb, matrix,
                                                         band);
                ++banded_rescored;
              }
              if (score >= ctx->match_threshold) {
                Match m;
                m.entry_a = std::min(ei, ej);
                m.entry_b = std::max(ei, ej);
                m.score = score;
                m.pam_distance = ctx->fixed_pam;
                matches.push_back(m);
              }
            };
            // Update mode: each queue (new) entry also scans the old ones.
            for (uint32_t qi = teu.first; qi < teu.last; ++qi) {
              for (uint32_t old = 0; old < ctx->update_from; ++old) {
                align_pair(entries[qi], old);
              }
              for (size_t qj = qi + 1; qj < entries.size(); ++qj) {
                align_pair(entries[qi], entries[qj]);
              }
            }
            out.provenance.emplace_back(
                "sw_kernel", std::string(darwin::SwKernelName(kernel)));
            out.provenance.emplace_back(
                "sw_rescored",
                StrFormat("%llu", static_cast<unsigned long long>(
                                      banded_rescored)));
          } else {
            // Full pass: one striped-SIMD batch per query entry, with
            // every pair inside the quantization band of the threshold
            // re-scored by the exact double kernel — the accept set and
            // the recorded scores are bit-identical to scoring every
            // pair with SmithWatermanScore.
            const darwin::QuantizedMatrix& qmatrix =
                ctx->pam->QuantizedScoring(ctx->fixed_pam);
            const darwin::SwKernel kernel = darwin::ResolveSwKernel();
            darwin::ScorePairsStats sw_stats;
            uint64_t rescored = 0;
            std::vector<const darwin::Sequence*> targets;
            std::vector<uint32_t> partners;
            for (uint32_t qi = teu.first; qi < teu.last; ++qi) {
              const uint32_t ei = entries[qi];
              const darwin::Sequence& sa = (*ctx->dataset)[ei];
              targets.clear();
              partners.clear();
              for (uint32_t old = 0; old < ctx->update_from; ++old) {
                targets.push_back(&(*ctx->dataset)[old]);
                partners.push_back(old);
              }
              for (size_t qj = qi + 1; qj < entries.size(); ++qj) {
                targets.push_back(&(*ctx->dataset)[entries[qj]]);
                partners.push_back(entries[qj]);
              }
              std::vector<double> scores =
                  darwin::ScorePairs(sa, targets, matrix, qmatrix,
                                     darwin::GapPenalty{}, kernel, &sw_stats);
              for (size_t t = 0; t < targets.size(); ++t) {
                double bound = darwin::QuantizationErrorBound(
                    sa.length(), targets[t]->length(), qmatrix,
                    darwin::GapPenalty{});
                if (scores[t] < ctx->match_threshold - bound) continue;
                double score =
                    darwin::SmithWatermanScore(sa, *targets[t], matrix);
                ++rescored;
                if (score < ctx->match_threshold) continue;
                Match m;
                m.entry_a = std::min(ei, partners[t]);
                m.entry_b = std::max(ei, partners[t]);
                m.score = score;
                m.pam_distance = ctx->fixed_pam;
                matches.push_back(m);
              }
            }
            out.provenance.emplace_back(
                "sw_kernel", std::string(darwin::SwKernelName(kernel)));
            out.provenance.emplace_back(
                "sw_cells",
                StrFormat("%llu",
                          static_cast<unsigned long long>(sw_stats.cells)));
            out.provenance.emplace_back(
                "sw_rescored",
                StrFormat("%llu",
                          static_cast<unsigned long long>(rescored)));
          }
          out.fields["matches"] = Value(darwin::MatchesToText(matches));
          out.fields["count"] = Value(static_cast<int64_t>(matches.size()));
        } else {
          uint64_t count =
              ctx->SyntheticMatchCountFor(entries, teu.first, teu.last);
          out.fields["count"] = Value(static_cast<int64_t>(count));
          out.fields["pairs"] = Value(static_cast<int64_t>(
              ctx->PairCountFor(entries, teu.first, teu.last)));
        }
        return out;
      }));

  // --- PAM-parameter refinement (one TEU's matches) ---------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "darwin.refine",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        BIOPERA_ASSIGN_OR_RETURN(Teu teu, TeuFromValue(input.Get("partition")));
        BIOPERA_ASSIGN_OR_RETURN(
            std::vector<uint32_t> entries,
            DecodeQueue(input.Get("queue_file"), ctx->lengths.size()));
        std::vector<uint32_t> lengths = QueueLengths(*ctx, entries);
        ActivityOutput out;
        out.cost = RefinePassCost(*ctx, lengths, teu.first, teu.last);
        out.provenance.emplace_back(
            "pam_matrix", std::string(darwin::PamFamilyVersion()));
        out.provenance.emplace_back(
            "mode", ctx->dataset != nullptr ? "real" : "synthetic");
        if (ctx->dataset != nullptr) {
          const Value& raw = input.Get("matches");
          if (!raw.is_string()) {
            return Status::InvalidArgument("refine: matches text missing");
          }
          BIOPERA_ASSIGN_OR_RETURN(std::vector<Match> matches,
                                   darwin::MatchesFromText(raw.AsString()));
          for (Match& m : matches) {
            darwin::RefinementResult r = darwin::RefinePamDistance(
                (*ctx->dataset)[m.entry_a], (*ctx->dataset)[m.entry_b],
                *ctx->pam);
            m.pam_distance = r.best_pam;
            m.score = r.best_score;
          }
          out.fields["matches"] = Value(darwin::MatchesToText(matches));
          out.fields["count"] = Value(static_cast<int64_t>(matches.size()));
        } else {
          out.fields["count"] = input.Get("count");
        }
        return out;
      }));

  // --- merge by entry number --------------------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "avsa.merge_entry",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& results = input.Get("results");
        if (!results.is_list()) {
          return Status::InvalidArgument("merge_entry: results list missing");
        }
        ActivityOutput out;
        std::vector<Match> all;
        int64_t total = 0;
        for (const Value& r : results.AsList()) {
          if (!r.is_map()) continue;  // skipped body
          auto count = r.AsMap().find("match_count");
          if (count != r.AsMap().end() && count->second.is_int()) {
            total += count->second.AsInt();
          }
          auto matches = r.AsMap().find("matches");
          if (ctx->dataset != nullptr && matches != r.AsMap().end() &&
              matches->second.is_string()) {
            BIOPERA_ASSIGN_OR_RETURN(
                std::vector<Match> part,
                darwin::MatchesFromText(matches->second.AsString()));
            all.insert(all.end(), part.begin(), part.end());
          }
        }
        if (ctx->dataset != nullptr) {
          darwin::SortByEntry(&all);
          out.fields["master_file"] = Value(darwin::MatchesToText(all));
          total = static_cast<int64_t>(all.size());
        } else {
          const Value& name = input.Get("output_files");
          out.fields["master_file"] =
              Value((name.is_string() ? name.AsString() : "results") +
                    ".by_entry");
        }
        out.fields["match_count"] = Value(total);
        out.cost = Duration::Seconds(5.0 + 1e-5 * static_cast<double>(total));
        return out;
      }));

  // --- merge by PAM distance ---------------------------------------------------
  BIOPERA_RETURN_IF_ERROR(registry->Register(
      "avsa.merge_pam",
      [ctx = context](const ActivityInput& input) -> Result<ActivityOutput> {
        const Value& results = input.Get("results");
        if (!results.is_list()) {
          return Status::InvalidArgument("merge_pam: results list missing");
        }
        ActivityOutput out;
        std::vector<Match> all;
        int64_t total = 0;
        for (const Value& r : results.AsList()) {
          if (!r.is_map()) continue;
          auto count = r.AsMap().find("match_count");
          if (count != r.AsMap().end() && count->second.is_int()) {
            total += count->second.AsInt();
          }
          auto matches = r.AsMap().find("matches");
          if (ctx->dataset != nullptr && matches != r.AsMap().end() &&
              matches->second.is_string()) {
            BIOPERA_ASSIGN_OR_RETURN(
                std::vector<Match> part,
                darwin::MatchesFromText(matches->second.AsString()));
            all.insert(all.end(), part.begin(), part.end());
          }
        }
        if (ctx->dataset != nullptr) {
          darwin::SortByPamDistance(&all);
          out.fields["pam_sorted_file"] = Value(darwin::MatchesToText(all));
          total = static_cast<int64_t>(all.size());
        } else {
          out.fields["pam_sorted_file"] = Value(std::string("results.by_pam"));
        }
        out.fields["match_count"] = Value(total);
        out.cost = Duration::Seconds(5.0 + 1e-5 * static_cast<double>(total));
        return out;
      }));

  return Status::OK();
}

}  // namespace biopera::workloads
