#ifndef BIOPERA_WORKLOADS_PARTITION_H_
#define BIOPERA_WORKLOADS_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ocr/value.h"

namespace biopera::workloads {

/// One task execution unit (TEU): a contiguous range [first, last) of
/// positions in the queue file. TEU i aligns each of its entries against
/// all entries with a larger queue position (triangular all-vs-all,
/// redundant comparisons ruled out as in the paper's footnote).
struct Teu {
  uint32_t first = 0;
  uint32_t last = 0;

  uint32_t size() const { return last - first; }
  friend bool operator==(const Teu&, const Teu&) = default;
};

/// Splits `queue_size` entries into `num_teus` contiguous TEUs balanced by
/// *estimated cost* (each entry's cost is its length times the total
/// length of all later entries). `lengths[i]` is the residue length of the
/// i-th queue entry. Balancing by cost rather than by count matters
/// because the triangular structure makes early entries far more expensive
/// (paper §5.3's straggler discussion).
std::vector<Teu> PartitionByCost(const std::vector<uint32_t>& lengths,
                                 size_t num_teus);

/// Naive equal-count split (ablation baseline: shows the straggler effect
/// that cost balancing removes).
std::vector<Teu> PartitionByCount(size_t queue_size, size_t num_teus);

/// OCR value encoding: a TEU list <-> list of {"first", "last"} maps.
ocr::Value TeusToValue(const std::vector<Teu>& teus);
Result<std::vector<Teu>> TeusFromValue(const ocr::Value& value);
Result<Teu> TeuFromValue(const ocr::Value& value);

}  // namespace biopera::workloads

#endif  // BIOPERA_WORKLOADS_PARTITION_H_
