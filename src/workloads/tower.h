#ifndef BIOPERA_WORKLOADS_TOWER_H_
#define BIOPERA_WORKLOADS_TOWER_H_

#include <memory>

#include "common/rng.h"
#include "core/activity.h"
#include "ocr/model.h"

namespace biopera::workloads {

/// Parameters of the tower-of-information workload (paper Figure 1): the
/// chain of derived datasets from raw DNA to protein function.
struct TowerContext {
  /// Number of raw DNA sequences entering the tower.
  int64_t num_dna_sequences = 2000;
  /// Fraction of DNA entries in which a gene is found.
  double gene_rate = 0.7;
  /// Simulated per-item costs (reference-CPU seconds) of each step.
  double gene_finding_cost = 0.8;
  double translation_cost = 0.05;
  double alignment_cost = 2.5;
  double variance_cost = 0.3;
  double msa_cost = 6.0;
  double tree_cost = 20.0;
  double ancestral_cost = 4.0;
  double structure_cost = 9.0;
  double function_cost = 1.5;
};

/// The tower process: every step of Figure 1 as a *subprocess* (the paper:
/// "the tower of information is built as a process where every step is a
/// subprocess"), with the sequence-analysis middle stages fanned out by a
/// parallel task over dataset shards.
///
/// Top-level structure:
///   acquire_dna -> genomics (subprocess: gene finding -> translation)
///               -> comparative (parallel over shards: subprocess with
///                  pairwise alignment -> variances)
///               -> phylogeny (subprocess: MSA -> trees -> ancestral seqs)
///               -> prediction (subprocess: secondary structure -> function)
ocr::ProcessDef BuildTowerProcess();
/// Subprocess templates referenced by the tower; register all of them.
std::vector<ocr::ProcessDef> BuildTowerSubprocesses();

/// Registers the tower activity bindings ("tower.*").
Status RegisterTowerActivities(core::ActivityRegistry* registry,
                               std::shared_ptr<TowerContext> context);

}  // namespace biopera::workloads

#endif  // BIOPERA_WORKLOADS_TOWER_H_
