#ifndef BIOPERA_WORKLOADS_GENE_PREDICTION_H_
#define BIOPERA_WORKLOADS_GENE_PREDICTION_H_

#include <memory>

#include "core/activity.h"
#include "ocr/model.h"

namespace biopera::workloads {

/// The gene-prediction package sketched in the paper's future work (§6):
/// "As each new genome is made available, the process will apply several
/// existing and new gene finding algorithms to the raw DNA dataset."
///
/// Structure: fetch the genome and split it into contigs, fan the contigs
/// out with a parallel task, and inside each contig run THREE independent
/// gene finders (HMM, ORF scan, splice-site model) whose candidate sets a
/// consensus step combines; a final merge step assembles the genome-wide
/// annotation. The per-contig part is a subprocess so alternative finder
/// sets can be swapped in by re-registering one template (late binding).
struct GenePredictionContext {
  /// Genome size in kilobases (fetch splits it into ~`contig_kb` contigs).
  int64_t genome_kb = 4000;
  int64_t contig_kb = 250;
  /// True gene density per kb, and per-finder detection characteristics
  /// (sensitivity; false positives per kb).
  double genes_per_kb = 0.9;
  double hmm_sensitivity = 0.85;
  double orf_sensitivity = 0.70;
  double splice_sensitivity = 0.60;
  double false_positives_per_kb = 0.15;
  /// A candidate is accepted when at least `votes_needed` finders agree.
  int votes_needed = 2;
  /// Reference-CPU seconds per kb for each finder.
  double hmm_cost_per_kb = 2.0;
  double orf_cost_per_kb = 0.4;
  double splice_cost_per_kb = 1.1;
};

/// Top-level process "gene_prediction" (whiteboard inputs: genome_kb).
ocr::ProcessDef BuildGenePredictionProcess();
/// Per-contig subprocess "predict_contig" (three finders + consensus).
ocr::ProcessDef BuildPredictContigProcess();

/// Registers bindings "genepred.*".
Status RegisterGenePredictionActivities(
    core::ActivityRegistry* registry,
    std::shared_ptr<GenePredictionContext> context);

}  // namespace biopera::workloads

#endif  // BIOPERA_WORKLOADS_GENE_PREDICTION_H_
