#ifndef BIOPERA_WORKLOADS_TREE_SEARCH_H_
#define BIOPERA_WORKLOADS_TREE_SEARCH_H_

#include <memory>

#include "core/activity.h"
#include "ocr/model.h"

namespace biopera::workloads {

/// Search-space parallelization for the phylogenetic tree problem with
/// maximum-likelihood scoring (paper future work, §6).
///
/// The classic local search: from the current best tree, *propose* a set
/// of neighbor topologies (NNI/SPR moves), *evaluate* their likelihoods in
/// parallel across the cluster, *select* the best, repeat. Each round is
/// propose -> PARALLEL evaluate -> select; the candidate list is produced
/// at runtime by the propose activity — exactly the §3.3 point that "the
/// degree of parallelism can be determined at runtime by producing a
/// longer or shorter list (this list can be produced by another
/// activity)". OCR processes are acyclic, so the rounds are unrolled.
struct TreeSearchContext {
  /// Taxa in the tree (drives evaluation cost).
  int64_t num_taxa = 64;
  /// Neighbor candidates proposed per round.
  int64_t candidates_per_round = 16;
  /// Reference-CPU seconds to evaluate one candidate likelihood
  /// (per taxon; ML scoring is expensive, hence the parallelization).
  double eval_cost_per_taxon = 4.0;
  /// Deterministic search-landscape seed.
  uint64_t seed = 0x7ee5;

  /// The deterministic likelihood of candidate `c` in round `r` given the
  /// incoming best log-likelihood. The landscape guarantees that at least
  /// one candidate improves, with diminishing returns per round.
  double CandidateLogLikelihood(int64_t round, int64_t candidate,
                                double incoming_best) const;
};

/// Builds the unrolled process "tree_search" with `rounds` rounds.
/// Whiteboard inputs: none required (num_taxa defaults from the context);
/// outputs: best_ll (final log-likelihood), rounds_run.
ocr::ProcessDef BuildTreeSearchProcess(int rounds);

/// Registers bindings "treesearch.*".
Status RegisterTreeSearchActivities(core::ActivityRegistry* registry,
                                    std::shared_ptr<TreeSearchContext> context);

}  // namespace biopera::workloads

#endif  // BIOPERA_WORKLOADS_TREE_SEARCH_H_
