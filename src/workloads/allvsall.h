#ifndef BIOPERA_WORKLOADS_ALLVSALL_H_
#define BIOPERA_WORKLOADS_ALLVSALL_H_

#include <memory>
#include <vector>

#include "core/activity.h"
#include "darwin/cost_model.h"
#include "darwin/generator.h"
#include "darwin/match.h"
#include "ocr/model.h"

namespace biopera::workloads {

/// Shared context for the all-vs-all activity implementations.
///
/// Two execution modes share one process definition:
///  - *real* mode (dataset != nullptr): activities actually run the
///    Smith-Waterman kernels and produce match lists — used by examples
///    and integration tests on small datasets;
///  - *synthetic* mode: activities produce match statistics derived from
///    the generator's ground-truth family structure, and costs from the
///    calibrated Darwin cost model — used to reproduce the paper's
///    cluster-scale experiments in simulated time.
struct AllVsAllContext {
  // Common: entry lengths of the dataset (drives cost estimation).
  std::vector<uint32_t> lengths;
  darwin::CostModel cost_model;
  /// Fixed evolutionary distance of the first alignment pass.
  int fixed_pam = 250;
  /// User-defined similarity threshold for a pair to become a match.
  double match_threshold = 80;
  /// Partitioning strategy used by the preprocessing activity: balanced by
  /// estimated triangular cost (default) vs naive equal entry counts
  /// (ablation baseline exposing the straggler effect).
  bool partition_by_cost = true;

  /// Incremental-update mode (paper §2: "current updates typically involve
  /// at most 15,000 new sequences"): entries with dataset index >=
  /// `update_from` are NEW. The queue file then lists only the new
  /// entries, and each is compared against every OLD entry plus the new
  /// entries after it (i.e., all pairs that involve a new entry, each
  /// once). 0 = full all-vs-all (no old entries).
  uint32_t update_from = 0;

  // Real mode.
  const darwin::Dataset* dataset = nullptr;
  const darwin::PamFamily* pam = nullptr;
  /// Use the banded Smith-Waterman for the fixed-PAM screening pass
  /// (Darwin's "fast but inaccurate" first algorithm): a large speedup
  /// that can only lose borderline off-diagonal matches, which the
  /// refinement pass would down-weight anyway.
  bool use_banded_screen = false;

  // Synthetic mode: ground-truth family structure.
  std::vector<uint32_t> family_of;
  /// Background rate of spurious cross-family matches.
  double background_match_rate = 0.0005;

  /// Per-entry runtime variability. Real TEU durations differ even for
  /// cost-balanced partitions — "the CPU time for TEUs will always
  /// differ" (§5.3) — and that variance is exactly what pushes the
  /// optimal granularity well above the CPU count in Figure 4. Each
  /// entry's true cost carries an independent lognormal factor, so a
  /// TEU of k entries has cost noise ~ sigma/sqrt(k): large TEUs are
  /// relatively stable, small ones vary a lot. The factor has mean 1
  /// (total CPU is granularity-independent in expectation) and is
  /// deterministic per (TEU, pass) so re-executions after failures
  /// charge the same cost.
  double per_entry_noise_sigma = 1.2;
  uint64_t noise_seed = 0xb10f;

  /// Deterministic mean-one lognormal factor for one TEU's pass
  /// (tag 0 = fixed alignment, 1 = refinement).
  double NoiseFactor(uint64_t tag, uint32_t first, uint32_t last) const;

  /// Builds the members-per-family index used by synthetic counting.
  void PrepareSynthetic();
  /// Number of matches TEU [first, last) finds (pairs (i, j), i < j).
  /// Positions index the full dataset (full-run layout).
  uint64_t SyntheticMatchCount(uint32_t first, uint32_t last) const;
  /// Number of pairs TEU [first, last) aligns (full-run layout).
  uint64_t PairCount(uint32_t first, uint32_t last) const;

  /// Generalized forms over an explicit queue: `entries` are dataset
  /// indexes, [first, last) the TEU's queue positions. Honors
  /// `update_from` (old-entry partners).
  uint64_t SyntheticMatchCountFor(const std::vector<uint32_t>& entries,
                                  uint32_t first, uint32_t last) const;
  uint64_t PairCountFor(const std::vector<uint32_t>& entries, uint32_t first,
                        uint32_t last) const;
  /// Total residues of the old entries each new entry must scan.
  double OldPartnerResidues() const;

  std::map<uint32_t, std::vector<uint32_t>> family_members;
};

/// Creates a context for real-computation mode over `dataset`.
std::shared_ptr<AllVsAllContext> MakeRealContext(
    const darwin::Dataset* dataset, const darwin::PamFamily* pam,
    double match_threshold = 80);

/// Creates a context for synthetic mode from a generated dataset's
/// ground truth.
std::shared_ptr<AllVsAllContext> MakeSyntheticContext(
    const darwin::SyntheticDataset& data,
    const darwin::CostModelOptions& cost_options = {});

/// Creates a synthetic context directly from entry lengths and family ids
/// (for cluster-scale datasets where generating real sequences is
/// unnecessary).
std::shared_ptr<AllVsAllContext> MakeSyntheticContext(
    std::vector<uint32_t> lengths, std::vector<uint32_t> family_of,
    const darwin::CostModelOptions& cost_options = {});

/// The all-vs-all process of Figure 3:
///   user_input -> [queue_generation] -> preprocessing ->
///   Alignment (parallel block of align_partition subprocesses) ->
///   merge_by_entry + merge_by_pam
/// Whiteboard inputs: db_name (string), queue_file (optional list of entry
/// indexes), num_teus (int), output_files (string).
ocr::ProcessDef BuildAllVsAllProcess();

/// The Alignment-block body: fixed-PAM alignment followed by PAM-parameter
/// refinement, as its own process so the block can late-bind it.
ocr::ProcessDef BuildAlignPartitionProcess();

/// Registers all activity implementations against `registry`, bound to
/// `context`. Bindings: avsa.user_input, avsa.queue_gen, avsa.preprocess,
/// darwin.fixed_pam, darwin.refine, avsa.merge_entry, avsa.merge_pam.
Status RegisterAllVsAllActivities(core::ActivityRegistry* registry,
                                  std::shared_ptr<AllVsAllContext> context);

}  // namespace biopera::workloads

#endif  // BIOPERA_WORKLOADS_ALLVSALL_H_
