#include "workloads/partition.h"

#include <algorithm>

namespace biopera::workloads {

std::vector<Teu> PartitionByCost(const std::vector<uint32_t>& lengths,
                                 size_t num_teus) {
  std::vector<Teu> out;
  const size_t n = lengths.size();
  if (n == 0 || num_teus == 0) return out;
  num_teus = std::min(num_teus, n);

  // Suffix length sums, then per-entry triangular cost.
  std::vector<double> suffix(n + 1, 0.0);
  for (size_t i = n; i > 0; --i) {
    suffix[i - 1] = suffix[i] + lengths[i - 1];
  }
  std::vector<double> cost(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    cost[i] = static_cast<double>(lengths[i]) * suffix[i + 1];
    total += cost[i];
  }

  // Greedy sweep: each TEU takes entries until it reaches its share of the
  // remaining cost, always leaving at least one entry per remaining TEU.
  size_t start = 0;
  double remaining = total;
  for (size_t k = 0; k < num_teus; ++k) {
    size_t teus_left = num_teus - k;
    double share = remaining / static_cast<double>(teus_left);
    size_t max_end = n - (teus_left - 1);
    size_t end = start;
    double acc = 0;
    while (end < max_end && (end == start || acc + cost[end] <= share ||
                             acc == 0)) {
      acc += cost[end];
      ++end;
    }
    out.push_back(
        Teu{static_cast<uint32_t>(start), static_cast<uint32_t>(end)});
    remaining -= acc;
    start = end;
  }
  out.back().last = static_cast<uint32_t>(n);
  return out;
}

std::vector<Teu> PartitionByCount(size_t queue_size, size_t num_teus) {
  std::vector<Teu> out;
  if (queue_size == 0 || num_teus == 0) return out;
  num_teus = std::min(num_teus, queue_size);
  size_t base = queue_size / num_teus;
  size_t extra = queue_size % num_teus;
  uint32_t start = 0;
  for (size_t k = 0; k < num_teus; ++k) {
    uint32_t size = static_cast<uint32_t>(base + (k < extra ? 1 : 0));
    out.push_back(Teu{start, start + size});
    start += size;
  }
  return out;
}

ocr::Value TeusToValue(const std::vector<Teu>& teus) {
  ocr::Value::List list;
  for (const Teu& teu : teus) {
    ocr::Value::Map m;
    m["first"] = ocr::Value(static_cast<int64_t>(teu.first));
    m["last"] = ocr::Value(static_cast<int64_t>(teu.last));
    list.emplace_back(std::move(m));
  }
  return ocr::Value(std::move(list));
}

Result<Teu> TeuFromValue(const ocr::Value& value) {
  if (!value.is_map()) {
    return Status::InvalidArgument("TEU value must be a map");
  }
  const auto& m = value.AsMap();
  auto first = m.find("first");
  auto last = m.find("last");
  if (first == m.end() || last == m.end() || !first->second.is_int() ||
      !last->second.is_int()) {
    return Status::InvalidArgument("TEU value needs int first/last");
  }
  Teu teu;
  teu.first = static_cast<uint32_t>(first->second.AsInt());
  teu.last = static_cast<uint32_t>(last->second.AsInt());
  if (teu.last < teu.first) {
    return Status::InvalidArgument("TEU range reversed");
  }
  return teu;
}

Result<std::vector<Teu>> TeusFromValue(const ocr::Value& value) {
  if (!value.is_list()) {
    return Status::InvalidArgument("TEU list value must be a list");
  }
  std::vector<Teu> out;
  for (const auto& v : value.AsList()) {
    BIOPERA_ASSIGN_OR_RETURN(Teu teu, TeuFromValue(v));
    out.push_back(teu);
  }
  return out;
}

}  // namespace biopera::workloads
