#include "core/console.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "common/table.h"
#include "core/planner.h"
#include "obs/critical_path.h"
#include "obs/report.h"
#include "obs/rundiff.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace biopera::core {

namespace {

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string token;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!token.empty()) out.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) out.push_back(std::move(token));
  return out;
}

constexpr char kHelp[] = R"(commands:
  TEMPLATES | INSTANCES | NODES | JOBS
  STATUS <id> | HISTORY <id> [n] | WB <id> <var>
  LINEAGE <id>  (provenance JSONL) | LINEAGE <id> <var>  (who wrote var)
  DIFF <idA> <idB>
  WHATIF <node> [node...]
  TASKS <id> | ETA <id>
  METRICS [prefix] | STATS | TRACE <id|*> [n] | TIMELINE <node|*> | SCRUB
  REPORT <id> [--json] | CRITPATH <id> | SPANS <id|*> [n] [kind]
  SUSPEND <id> | RESUME <id> | ABORT <id> | RESTART <id>
  RAISE <id> <event> | INVALIDATE <id> <task> | ARCHIVE <id>
)";

}  // namespace

Result<std::string> AdminConsole::Execute(const std::string& line) {
  std::vector<std::string> args = Tokenize(line);
  if (args.empty()) return Status::InvalidArgument("empty command");
  const std::string command = Upper(args[0]);

  auto need = [&](size_t n) -> Status {
    if (args.size() < n + 1) {
      return Status::InvalidArgument(command + ": missing argument(s)");
    }
    return Status::OK();
  };

  if (command == "HELP") return std::string(kHelp);

  if (command == "TEMPLATES") {
    std::string out;
    for (const std::string& name : engine_->ListTemplates()) {
      out += name + "\n";
    }
    return out.empty() ? "(no templates)\n" : out;
  }

  if (command == "INSTANCES") {
    TextTable table({"instance", "state", "done", "total", "CPU", "WALL"});
    for (const InstanceSummary& s : engine_->ListInstances()) {
      table.AddRow({s.id, std::string(InstanceStateName(s.state)),
                    StrFormat("%zu", s.tasks_done),
                    StrFormat("%zu", s.tasks_total),
                    s.stats.CpuTime().ToString(),
                    s.state == InstanceState::kRunning
                        ? "(running)"
                        : s.stats.WallTime().ToString()});
    }
    return table.num_rows() == 0 ? std::string("(no instances)\n")
                                 : table.ToString();
  }

  if (command == "STATUS") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_ASSIGN_OR_RETURN(InstanceSummary s, engine_->Summary(args[1]));
    return StrFormat(
        "instance %s (template %s)\n"
        "  state: %s\n"
        "  tasks: %zu done / %zu running / %zu ready / %zu failed / %zu "
        "total\n"
        "  CPU(P): %s  WALL so far: %s\n"
        "  activities completed: %llu, failed executions: %llu\n",
        s.id.c_str(), s.template_name.c_str(),
        std::string(InstanceStateName(s.state)).c_str(), s.tasks_done,
        s.tasks_running, s.tasks_ready, s.tasks_failed, s.tasks_total,
        s.stats.CpuTime().ToString().c_str(),
        s.stats.WallTime().ToString().c_str(),
        static_cast<unsigned long long>(s.stats.activities_completed),
        static_cast<unsigned long long>(s.stats.activities_failed));
  }

  if (command == "TASKS") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_ASSIGN_OR_RETURN(std::vector<Engine::TaskRow> rows,
                             engine_->ListTasks(args[1]));
    TextTable table({"task", "state", "node", "attempts", "cost"});
    for (const Engine::TaskRow& row : rows) {
      table.AddRow({row.path, std::string(TaskStateName(row.state)),
                    row.node.empty() ? "-" : row.node,
                    StrFormat("%d", row.attempts),
                    row.cost == Duration::Zero() ? "-"
                                                 : row.cost.ToString()});
    }
    return table.ToString();
  }

  if (command == "ETA") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_ASSIGN_OR_RETURN(Duration remaining,
                             engine_->EstimateRemainingWork(args[1]));
    return "estimated remaining reference-CPU work: " +
           remaining.ToString() + "\n";
  }

  if (command == "HISTORY") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    if (engine_->FindInstance(args[1]) == nullptr) {
      return Status::NotFound("no instance " + args[1]);
    }
    long long n = 10;
    if (args.size() > 2 && !ParseInt64(args[2], &n)) {
      return Status::InvalidArgument("HISTORY: bad count " + args[2]);
    }
    auto history = engine_->GetHistory(args[1]);
    std::string out;
    size_t start = history.size() > static_cast<size_t>(n)
                       ? history.size() - static_cast<size_t>(n)
                       : 0;
    for (size_t i = start; i < history.size(); ++i) {
      out += history[i] + "\n";
    }
    return out;
  }

  if (command == "WB") {
    BIOPERA_RETURN_IF_ERROR(need(2));
    BIOPERA_ASSIGN_OR_RETURN(ocr::Value v,
                             engine_->GetWhiteboardValue(args[1], args[2]));
    return v.ToText() + "\n";
  }

  if (command == "LINEAGE") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    if (args.size() == 2) {
      // One argument: the instance's full provenance export — which
      // inputs produced which outputs, through which attempts.
      return engine_->ExportLineageJsonl(args[1]);
    }
    BIOPERA_ASSIGN_OR_RETURN(std::string writer,
                             engine_->GetLineage(args[1], args[2]));
    return args[2] + " was written by " + writer + "\n";
  }

  if (command == "DIFF") {
    BIOPERA_RETURN_IF_ERROR(need(2));
    BIOPERA_ASSIGN_OR_RETURN(obs::RunLineage a,
                             engine_->BuildRunLineage(args[1], args[1]));
    BIOPERA_ASSIGN_OR_RETURN(obs::RunLineage b,
                             engine_->BuildRunLineage(args[2], args[2]));
    return obs::DiffRuns(a, b).ToText();
  }

  if (command == "NODES") {
    TextTable table({"node", "up", "cpus", "speed", "ext load", "our jobs",
                     "dispatched", "failures"});
    for (const auto* view : engine_->awareness().UpNodes()) {
      table.AddRow({view->config.name, "yes",
                    StrFormat("%d", view->config.num_cpus),
                    StrFormat("%.2f", view->config.speed),
                    StrFormat("%.0f%%", view->reported_load * 100),
                    StrFormat("%d", view->running_jobs),
                    StrFormat("%llu", (unsigned long long)view->total_dispatched),
                    StrFormat("%llu", (unsigned long long)view->total_failures)});
    }
    return table.ToString();
  }

  if (command == "JOBS") {
    TextTable table({"job", "instance", "task", "node", "work"});
    for (const Engine::RunningJob& job : engine_->GetRunningJobs()) {
      table.AddRow({StrFormat("%llu", (unsigned long long)job.job),
                    job.instance_id, job.path, job.node,
                    job.cost.ToString()});
    }
    return table.num_rows() == 0 ? std::string("(no running jobs)\n")
                                 : table.ToString();
  }

  if (command == "METRICS") {
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    return obs->metrics.Snapshot().ToText(args.size() > 1 ? args[1] : "");
  }

  if (command == "STATS") {
    Engine::DispatchStats s = engine_->GetDispatchStats();
    return StrFormat(
        "dispatcher:\n"
        "  ready queue:       %zu\n"
        "  parked (starved):  %zu\n"
        "  parked (suspended): %zu\n"
        "  running jobs:      %zu\n"
        "  pump runs:         %llu\n"
        "  entries scanned:   %llu\n"
        "  tasks dispatched:  %llu\n",
        s.ready, s.parked_starved, s.parked_suspended, s.running_jobs,
        static_cast<unsigned long long>(s.pump_runs),
        static_cast<unsigned long long>(s.entries_scanned),
        static_cast<unsigned long long>(s.dispatched));
  }

  if (command == "TRACE") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    long long n = 20;
    if (args.size() > 2 && (!ParseInt64(args[2], &n) || n <= 0)) {
      return Status::InvalidArgument("TRACE: bad count " + args[2]);
    }
    std::string filter = args[1] == "*" ? "" : args[1];
    std::vector<obs::TraceRecord> records =
        obs->trace.Tail(static_cast<size_t>(n), filter);
    std::string out;
    for (const obs::TraceRecord& rec : records) {
      out += rec.ToJson() + "\n";
    }
    return out.empty() ? std::string("(no matching trace events)\n") : out;
  }

  if (command == "SCRUB") {
    return engine_->ScrubStore();
  }

  if (command == "TIMELINE") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    std::string node = args[1] == "*" ? "" : args[1];
    std::vector<obs::TimelineInterval> intervals =
        obs::BuildTimeline(obs->trace, node);
    if (intervals.empty()) return std::string("(no timeline intervals)\n");
    return obs::TimelineCsv(intervals, obs->trace.dropped());
  }

  if (command == "REPORT") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    bool json = false;
    if (args.size() > 2) {
      if (args[2] != "--json") {
        return Status::InvalidArgument("REPORT: unknown option " + args[2]);
      }
      json = true;
    }
    BIOPERA_ASSIGN_OR_RETURN(InstanceSummary s, engine_->Summary(args[1]));
    obs::ReportInput input;
    input.instance = args[1];
    input.state = std::string(InstanceStateName(s.state));
    input.activities_done = s.tasks_done;
    input.activities_total = s.tasks_total;
    Result<Duration> remaining = engine_->EstimateRemainingWork(args[1]);
    if (remaining.ok()) input.remaining_work_seconds = remaining->ToSeconds();
    input.now = obs->spans.Now();
    if (json) return obs::BuildRunReportJson(input, *obs) + "\n";
    return obs::BuildRunReport(input, *obs);
  }

  if (command == "CRITPATH") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    return obs::AnalyzeCriticalPath(obs->spans, args[1]).ToText();
  }

  if (command == "SPANS") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    obs::Observability* obs = engine_->observability();
    if (obs == nullptr) return std::string("(observability not enabled)\n");
    long long n = 20;
    if (args.size() > 2 && (!ParseInt64(args[2], &n) || n <= 0)) {
      return Status::InvalidArgument("SPANS: bad count " + args[2]);
    }
    std::string kind;
    if (args.size() > 3) {
      obs::SpanKind parsed;
      if (!obs::SpanKindFromName(args[3], &parsed)) {
        return Status::InvalidArgument("SPANS: unknown kind " + args[3]);
      }
      kind = args[3];
    }
    std::string filter = args[1] == "*" ? "" : args[1];
    std::string out;
    for (obs::Span& span :
         obs->spans.Tail(static_cast<size_t>(n), filter, kind)) {
      out += span.ToJson() + "\n";
    }
    return out.empty() ? std::string("(no matching spans)\n") : out;
  }

  if (command == "WHATIF") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    OutagePlanner planner(engine_);
    std::vector<std::string> nodes(args.begin() + 1, args.end());
    return planner.Plan(nodes).ToReport();
  }

  if (command == "SUSPEND") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_RETURN_IF_ERROR(engine_->Suspend(args[1]));
    return "suspended " + args[1] + "\n";
  }
  if (command == "RESUME") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_RETURN_IF_ERROR(engine_->Resume(args[1]));
    return "resumed " + args[1] + "\n";
  }
  if (command == "ABORT") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_RETURN_IF_ERROR(engine_->Abort(args[1]));
    return "aborted " + args[1] + "\n";
  }
  if (command == "RESTART") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_RETURN_IF_ERROR(engine_->Restart(args[1]));
    return "restarted " + args[1] + "\n";
  }
  if (command == "ARCHIVE") {
    BIOPERA_RETURN_IF_ERROR(need(1));
    BIOPERA_RETURN_IF_ERROR(engine_->Archive(args[1]));
    return "archived " + args[1] + "\n";
  }
  if (command == "RAISE") {
    BIOPERA_RETURN_IF_ERROR(need(2));
    BIOPERA_RETURN_IF_ERROR(engine_->RaiseEvent(args[1], args[2]));
    return "raised event '" + args[2] + "' on " + args[1] + "\n";
  }
  if (command == "INVALIDATE") {
    BIOPERA_RETURN_IF_ERROR(need(2));
    BIOPERA_RETURN_IF_ERROR(engine_->Invalidate(args[1], args[2]));
    return "invalidated " + args[2] + " (and downstream) on " + args[1] +
           "\n";
  }

  return Status::InvalidArgument("unknown command " + command +
                                 "; try HELP");
}

}  // namespace biopera::core
