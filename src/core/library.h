#ifndef BIOPERA_CORE_LIBRARY_H_
#define BIOPERA_CORE_LIBRARY_H_

#include <map>
#include <string>
#include <vector>

#include "core/activity.h"
#include "ocr/builder.h"
#include "ocr/model.h"

namespace biopera::core {

/// Metadata for a pre-packaged activity (paper §3.2: the library
/// management element lets "users with more computer knowledge prepare
/// pre-packaged activities for those users with less computer knowledge"
/// — program to invoke, inputs, outputs, where it runs, how to pass
/// arguments).
struct ActivityPackage {
  std::string binding;
  std::string description;
  /// Parameters the implementation requires (process inputs must map
  /// something into each "in.<param>").
  std::vector<std::string> required_params;
  /// Output fields the implementation produces.
  std::vector<std::string> produced_fields;
  /// Recommended placement restriction ("" = anywhere).
  std::string default_resource_class;
  /// Recommended failure policy for tasks using this activity.
  ocr::FailurePolicy recommended_failure;
};

/// The activity library: implementations plus the metadata a process
/// designer (or the planned GUI) needs to wire them correctly.
class ActivityLibrary {
 public:
  explicit ActivityLibrary(ActivityRegistry* registry)
      : registry_(registry) {}

  /// Registers the implementation and its package metadata.
  Status Add(ActivityPackage package, ActivityFn fn);

  Result<const ActivityPackage*> Describe(const std::string& binding) const;
  std::vector<std::string> List() const;
  size_t size() const { return packages_.size(); }

  /// Builds a task pre-wired with the package's recommended resource
  /// class and failure policy; the caller adds the data mappings.
  Result<ocr::TaskBuilder> MakeTask(const std::string& task_name,
                                    const std::string& binding) const;

  /// Library-aware process validation: every activity's binding must be
  /// packaged here, and every required parameter must receive an input
  /// mapping. Catches wiring mistakes the structural validator cannot see.
  Status CheckProcess(const ocr::ProcessDef& def) const;

  /// Human-readable catalog (for the console / docs).
  std::string Render() const;

 private:
  Status CheckTask(const ocr::TaskDef& task, const std::string& where) const;

  ActivityRegistry* registry_;
  std::map<std::string, ActivityPackage> packages_;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_LIBRARY_H_
