#include "core/library.h"

#include <algorithm>

#include "common/strings.h"

namespace biopera::core {

Status ActivityLibrary::Add(ActivityPackage package, ActivityFn fn) {
  if (StripWhitespace(package.binding).empty()) {
    return Status::InvalidArgument("package needs a binding name");
  }
  if (packages_.contains(package.binding)) {
    return Status::AlreadyExists("package " + package.binding);
  }
  BIOPERA_RETURN_IF_ERROR(registry_->Register(package.binding, std::move(fn)));
  std::string binding = package.binding;
  packages_.emplace(std::move(binding), std::move(package));
  return Status::OK();
}

Result<const ActivityPackage*> ActivityLibrary::Describe(
    const std::string& binding) const {
  auto it = packages_.find(binding);
  if (it == packages_.end()) {
    return Status::NotFound("no package " + binding);
  }
  return &it->second;
}

std::vector<std::string> ActivityLibrary::List() const {
  std::vector<std::string> out;
  for (const auto& [binding, package] : packages_) out.push_back(binding);
  return out;
}

Result<ocr::TaskBuilder> ActivityLibrary::MakeTask(
    const std::string& task_name, const std::string& binding) const {
  BIOPERA_ASSIGN_OR_RETURN(const ActivityPackage* package, Describe(binding));
  ocr::TaskBuilder task = ocr::TaskBuilder::Activity(task_name, binding);
  if (!package->default_resource_class.empty()) {
    task.ResourceClass(package->default_resource_class);
  }
  task.Retry(package->recommended_failure.max_retries,
             package->recommended_failure.retry_backoff);
  if (!package->recommended_failure.alternative_binding.empty()) {
    task.Alternative(package->recommended_failure.alternative_binding);
  }
  if (package->recommended_failure.ignore_failure) task.IgnoreFailure();
  return task;
}

Status ActivityLibrary::CheckTask(const ocr::TaskDef& task,
                                  const std::string& where) const {
  switch (task.kind) {
    case ocr::TaskKind::kActivity: {
      auto package = Describe(task.binding);
      if (!package.ok()) {
        return Status::NotFound(where + ": activity binding '" +
                                task.binding + "' is not in the library");
      }
      for (const std::string& param : (*package)->required_params) {
        const std::string target = "in." + param;
        bool wired = std::any_of(
            task.inputs.begin(), task.inputs.end(),
            [&](const ocr::Mapping& m) { return m.to == target; });
        if (!wired) {
          return Status::InvalidArgument(
              where + ": required parameter '" + param + "' of " +
              task.binding + " has no input mapping");
        }
      }
      break;
    }
    case ocr::TaskKind::kBlock:
      for (const ocr::TaskDef& sub : task.subtasks) {
        BIOPERA_RETURN_IF_ERROR(CheckTask(sub, where + "." + sub.name));
      }
      break;
    case ocr::TaskKind::kParallel:
      for (const ocr::TaskDef& body : task.body) {
        BIOPERA_RETURN_IF_ERROR(CheckTask(body, where + "[body]"));
      }
      break;
    case ocr::TaskKind::kSubprocess:
      // Checked when the referenced template itself is checked.
      break;
  }
  return Status::OK();
}

Status ActivityLibrary::CheckProcess(const ocr::ProcessDef& def) const {
  for (const ocr::TaskDef& task : def.tasks) {
    BIOPERA_RETURN_IF_ERROR(CheckTask(task, def.name + "." + task.name));
  }
  return Status::OK();
}

std::string ActivityLibrary::Render() const {
  std::string out;
  for (const auto& [binding, package] : packages_) {
    out += StrFormat("%s — %s\n", binding.c_str(),
                     package.description.c_str());
    if (!package.required_params.empty()) {
      out += "    in:  " + StrJoin(package.required_params, ", ") + "\n";
    }
    if (!package.produced_fields.empty()) {
      out += "    out: " + StrJoin(package.produced_fields, ", ") + "\n";
    }
    if (!package.default_resource_class.empty()) {
      out += "    class: " + package.default_resource_class + "\n";
    }
  }
  return out.empty() ? "(empty library)\n" : out;
}

}  // namespace biopera::core
