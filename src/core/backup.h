#ifndef BIOPERA_CORE_BACKUP_H_
#define BIOPERA_CORE_BACKUP_H_

#include <memory>

#include "core/engine.h"

namespace biopera::core {

/// Backup architecture for the BioOpera server (the paper's stated future
/// work, §6: "if a server fails or requires maintenance, the backup can
/// assume control and continue execution smoothly").
///
/// The standby watches the primary with a heartbeat; when a heartbeat
/// finds the primary down, it promotes itself: it constructs a fresh
/// Engine over the SAME persistent spaces (which is all the state there
/// is — the design's whole point) and runs the standard recovery path.
/// Processes continue from their last committed transition; the takeover
/// latency is bounded by the heartbeat interval plus recovery time.
///
/// Promotion also *fences* the replaced primary: Engine::Startup acquires
/// a fresh writer epoch (persisted in the configuration space) and the
/// store rejects commits stamped with any older epoch. A primary that was
/// only presumed dead therefore cannot corrupt the spaces after takeover —
/// its first commit fails with a stale-epoch error and it steps down.
class BackupServer {
 public:
  /// The standby shares the primary's simulator, cluster, store and
  /// activity registry (in a real deployment: the same database and the
  /// same PECs re-registering with whoever is primary).
  BackupServer(Simulator* sim, cluster::ClusterSim* cluster,
               RecordStore* store, ActivityRegistry* registry,
               const EngineOptions& options = {});
  ~BackupServer();
  BackupServer(const BackupServer&) = delete;
  BackupServer& operator=(const BackupServer&) = delete;

  /// Starts heartbeat-monitoring `primary`. Must be called once.
  void Watch(Engine* primary, Duration heartbeat_interval);
  /// Stops monitoring (e.g. the operator decommissions the standby).
  void StopWatching();

  /// True once the standby has taken over.
  bool promoted() const { return promoted_; }
  /// The engine currently in charge: the primary until promotion, the
  /// standby afterwards (nullptr before Watch()).
  Engine* active();
  /// Virtual time of the takeover (zero if not promoted).
  TimePoint promoted_at() const { return promoted_at_; }

 private:
  void Beat();

  Simulator* sim_;
  cluster::ClusterSim* cluster_;
  RecordStore* store_;
  ActivityRegistry* registry_;
  EngineOptions options_;

  Engine* primary_ = nullptr;
  std::unique_ptr<Engine> standby_;
  Duration interval_ = Duration::Seconds(30);
  bool watching_ = false;
  bool promoted_ = false;
  TimePoint promoted_at_;
  EventId next_beat_ = kInvalidEventId;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_BACKUP_H_
