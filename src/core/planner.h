#ifndef BIOPERA_CORE_PLANNER_H_
#define BIOPERA_CORE_PLANNER_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace biopera::core {

/// Result of a what-if outage query (paper §3.5): what happens if a set of
/// nodes is taken off-line for maintenance.
struct OutagePlan {
  /// Nodes the administrator wants to take down.
  std::vector<std::string> nodes;

  struct AffectedJob {
    std::string instance_id;
    std::string path;
    std::string node;
    /// Reference-CPU work that would be lost (the job restarts elsewhere;
    /// checkpointing is per completed activity).
    Duration lost_work;
    /// Where the current policy would re-place it, "" if nowhere.
    std::string replacement_node;
  };
  std::vector<AffectedJob> affected_jobs;

  struct AffectedInstance {
    std::string instance_id;
    int priority = 0;
    /// Fraction of activities already completed (how far along it is).
    double progress = 0;
    /// True if some task class would have NO remaining capable node, so
    /// the instance stalls until the outage ends.
    bool stalls = false;
    /// Resource classes that lose their last capable node.
    std::vector<std::string> orphaned_classes;
  };
  std::vector<AffectedInstance> affected_instances;

  /// CPUs remaining after the outage.
  int remaining_cpus = 0;
  /// Crude slowdown estimate: capacity before / capacity after (1.0 = none).
  double slowdown_factor = 1.0;

  /// Human-readable report for the administrator.
  std::string ToReport() const;
};

/// Read-only what-if analysis over the engine's awareness model and
/// dispatcher state. Thanks to the explicit process representation the
/// server can answer "which processes will be affected if these nodes go
/// off-line" without touching the execution.
class OutagePlanner {
 public:
  explicit OutagePlanner(Engine* engine) : engine_(engine) {}

  OutagePlan Plan(const std::vector<std::string>& nodes_to_remove) const;

 private:
  Engine* engine_;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_PLANNER_H_
