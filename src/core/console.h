#ifndef BIOPERA_CORE_CONSOLE_H_
#define BIOPERA_CORE_CONSOLE_H_

#include <string>

#include "core/engine.h"

namespace biopera::core {

/// Text administration console over a running engine — the operator
/// tooling the paper sketches in §3.4/§3.5 ("a system administrator could
/// ask the system which processes will be affected if a node or set of
/// nodes is taken off-line"). One command in, one report out; every
/// command is also usable programmatically through the Engine API this
/// wraps.
///
/// Commands (case-insensitive keyword, space-separated arguments):
///   HELP
///   TEMPLATES                     list registered process templates
///   INSTANCES                     one status line per instance
///   STATUS <id>                   detailed instance status
///   HISTORY <id> [n]              last n (default 10) history entries
///   WB <id> <var>                 whiteboard value
///   LINEAGE <id> <var>            which task wrote the variable
///   NODES                         awareness-model view of the cluster
///   JOBS                          running jobs (instance, task, node)
///   METRICS                       metrics-registry snapshot (if enabled)
///   TRACE <id|*> [n]              last n trace events (default 20)
///   TIMELINE <node|*>             per-task execution intervals as CSV
///   WHATIF <node> [node...]       outage plan for taking nodes off-line
///   SUSPEND|RESUME|ABORT|RESTART <id>
///   RAISE <id> <event>            deliver an OCR event
///   INVALIDATE <id> <task>        recompute a task and its downstream
class AdminConsole {
 public:
  explicit AdminConsole(Engine* engine) : engine_(engine) {}

  /// Executes one command line; the returned string is the report shown to
  /// the operator. Errors come back as statuses (unknown command, missing
  /// arguments, unknown instance, ...).
  Result<std::string> Execute(const std::string& line);

 private:
  Engine* engine_;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_CONSOLE_H_
