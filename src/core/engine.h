#ifndef BIOPERA_CORE_ENGINE_H_
#define BIOPERA_CORE_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "comms/channel.h"
#include "common/result.h"
#include "core/activity.h"
#include "core/instance.h"
#include "monitor/adaptive_monitor.h"
#include "monitor/awareness.h"
#include "obs/lineage.h"
#include "obs/rundiff.h"
#include "obs/trace.h"
#include "ocr/model.h"
#include "sched/policy.h"
#include "sim/simulator.h"
#include "store/spaces.h"

namespace biopera::exec {
class ThreadPool;
}

namespace biopera::obs {
class WallProfile;
struct QuantileSensor;
}  // namespace biopera::obs

namespace biopera::core {

/// Engine configuration.
struct EngineOptions {
  /// Scheduling policy name (see sched::MakePolicy).
  std::string policy = "least_loaded";
  /// Enable the §5.4 kill-and-restart load-balancing strategy: jobs whose
  /// node became saturated by external users are aborted and re-queued.
  bool migration_enabled = false;
  /// How often to re-try dispatching when no placement was possible.
  Duration dispatch_retry = Duration::Minutes(5);
  /// Coalesce every store commit inside one engine action (an entry
  /// point, cluster callback, or timer lambda) into a single WAL
  /// append+flush, with a flush barrier before any externally visible
  /// action (job dispatch, console reply, checkpoint). Recovered state is
  /// byte-identical with or without coalescing; see docs/STORE.md.
  bool group_commit = true;
  /// Checkpoint the store after this many commits (snapshot + WAL trim).
  /// Enforced by the store itself (RecordStore::CheckpointPolicy), so
  /// non-engine commits cannot skew the cadence. 0 disables.
  uint64_t checkpoint_every_commits = 2000;
  /// Additionally checkpoint once the live WAL exceeds this many bytes.
  /// 0 disables the size trigger.
  uint64_t checkpoint_wal_bytes = 4ull << 20;
  /// Use per-node adaptive monitors to maintain the awareness model. When
  /// false, raw PEC load pushes are consumed directly (no sampling error,
  /// but full network overhead; used by the monitoring ablation).
  bool adaptive_monitoring = true;
  /// Automatic lost-report detection: a job whose completion has not been
  /// reported after `job_timeout_factor` x its estimated cost (plus
  /// `job_timeout_slack`) is declared lost, killed, and re-scheduled —
  /// the paper's event 10 ("TEUs failed to report") without the manual
  /// restart. 0 disables the watchdog.
  double job_timeout_factor = 0;
  Duration job_timeout_slack = Duration::Hours(1);
  /// Degraded-mode retry backoff (store IOError survival): the first
  /// retry of the failed commit fires after `degraded_retry_initial`,
  /// doubling up to `degraded_retry_max` until the disk accepts writes.
  Duration degraded_retry_initial = Duration::Seconds(1);
  Duration degraded_retry_max = Duration::Minutes(5);
  monitor::AdaptiveMonitorOptions monitor_options;
  /// Control-plane channel between the engine and the PECs. When null the
  /// engine creates and owns a plain comms::Channel (lossless, synchronous
  /// delivery — byte-identical to the pre-seam direct calls). Pass a
  /// comms::FaultChannel to subject every launch/kill command and every
  /// completion/heartbeat report to drops, delays, duplicates, reorders
  /// and asymmetric partitions (see docs/COMMS.md). Must outlive the
  /// engine.
  comms::Channel* channel = nullptr;
  /// Lease-based failure detection. When non-zero, PECs heartbeat at this
  /// interval, direct crash/repair notifications are disabled
  /// (ClusterSim::SetSilentCrashes), and the engine runs the
  /// suspected/condemned state machine of docs/COMMS.md: a node missing
  /// `lease_misses_to_suspect` consecutive heartbeats is *suspected*
  /// (scheduler stops placing on it; a probe is sent); if silence persists
  /// for `lease_condemn_grace` more it is *condemned* and its jobs are
  /// re-queued. A heartbeat at any point reconciles the node without
  /// losing running jobs. Zero keeps the legacy instant-notification mode.
  Duration heartbeat_interval = Duration::Zero();
  int lease_misses_to_suspect = 3;
  Duration lease_condemn_grace = Duration::Minutes(2);
  /// Kill-command retry policy: a kKill that cannot be delivered (link
  /// down, injected drop) is retried with exponential backoff
  /// (`kill_retry_base` doubling to `kill_retry_max`, plus deterministic
  /// per-(node,job,attempt) jitter — comms::RetryBackoff) at most
  /// `kill_retry_limit` times; undeliverable kills are also flushed
  /// immediately when the command link comes back.
  Duration kill_retry_base = Duration::Seconds(2);
  Duration kill_retry_max = Duration::Minutes(4);
  int kill_retry_limit = 8;
  /// Deterministic seed for engine-internal randomness (random policy).
  uint64_t seed = 1;
  /// Optional observability context. When set, the engine emits trace
  /// events and metrics for its hot paths (dispatch, completion, failure,
  /// watchdog, migration, recovery) and propagates the context to the
  /// cluster, the record store, and the per-node adaptive monitors, so one
  /// field instruments the whole stack. Must outlive the engine.
  obs::Observability* observability = nullptr;
  /// Optional real-thread executor. When set, each dispatch pump first
  /// runs the activity kernels of all ready entries concurrently on this
  /// pool and joins, then the scan consumes the results in its usual
  /// deterministic order — wall-clock time drops by roughly the core
  /// count on real-dataset workloads while virtual time, spans, lineage
  /// and traces stay byte-identical (see docs/KERNELS.md). Activity
  /// implementations must be pure functions of their input (already
  /// required for crash re-execution). Must outlive the engine.
  exec::ThreadPool* executor = nullptr;
  /// Speculation depth beyond the current pump's scan set. With an
  /// executor and lookahead > 0, the pre-execute batch also covers
  /// capacity-parked entries — the next ready frontier, dispatched by
  /// *future* pumps once their resource class frees — and up to this
  /// many mid-pump overflow waves (entries navigation enqueues while the
  /// scan runs) are batched before the scan's tail drains them. 0
  /// restores single-frontier speculation. Any value yields
  /// byte-identical runs: a speculative result is only consumed when the
  /// freshly built input equals the captured one (see the exec_test
  /// pool-vs-inline identity check).
  int preexec_lookahead = 4;
  /// Optional wall-clock self-time profile (obs::WallProfile): the engine
  /// scopes its dispatch pumps as `pump` and its kernel executions
  /// (inline and thread-pool batches) as `kernel`; the store adds `store`
  /// via RecordStore::SetWallProfile. Feeds only the sharded service's
  /// barrier-stall profiler — never virtual time. Null-check-only when
  /// unset. Must outlive the engine.
  obs::WallProfile* wall_profile = nullptr;
  /// Optional streaming sensor fed every completed job's virtual compute
  /// cost in seconds (obs::QuantileSensor) — the per-job half of the
  /// sharded service's straggler sensors. Null-check-only when unset.
  /// Must outlive the engine.
  obs::QuantileSensor* job_cost_sensor = nullptr;
};

/// A summary row for one instance (monitoring queries, examples, benches).
struct InstanceSummary {
  std::string id;
  std::string template_name;
  InstanceState state = InstanceState::kRunning;
  InstanceStats stats;
  size_t tasks_total = 0;
  size_t tasks_done = 0;
  size_t tasks_running = 0;
  size_t tasks_ready = 0;
  size_t tasks_failed = 0;
};

/// The BioOpera server: navigator + dispatcher + recovery manager over the
/// persistent spaces, driving processes across the simulated cluster
/// (paper §3.2, Figure 2).
///
/// Every state transition is committed to the record store *before* it
/// takes effect in memory, so Crash() + Startup() at any point resumes the
/// computation without losing completed activities — the paper's central
/// dependability property.
class Engine : public cluster::ClusterListener, public comms::ReportHandler {
 public:
  Engine(Simulator* sim, cluster::ClusterSim* cluster, RecordStore* store,
         ActivityRegistry* registry, const EngineOptions& options = {});
  ~Engine() override;

  // --- Server lifecycle -----------------------------------------------------
  /// Boots the server: registers the cluster topology in the awareness
  /// model and configuration space, then recovers every instance found in
  /// the instance space (re-queueing activities that were running when the
  /// server last stopped).
  Status Startup();
  /// Simulates a server crash: in-memory state is dropped and all cluster
  /// jobs are killed ("when the BioOpera server fails, ongoing processes
  /// are stopped"). Call Startup() to recover.
  void Crash();
  bool IsUp() const { return up_; }

  /// Degraded mode (paper Fig. 5, event 5): when a store flush fails with
  /// an I/O error the engine stops dispatching, keeps its in-memory state,
  /// and retries the commit with exponential backoff; dispatch resumes as
  /// soon as a write goes through. Completed transitions are never lost —
  /// they stay in the image and the retained commit group.
  bool IsDegraded() const { return degraded_; }

  /// The writer epoch this engine acquired at Startup (0 before). Another
  /// engine starting on the same store acquires a newer epoch and this
  /// one's commits are fenced off (split-brain protection).
  uint64_t writer_epoch() const { return spaces_.epoch(); }

  /// Runs the store self-check (console SCRUB): CRC-verifies segments and
  /// WAL, quarantines corrupt segments, rebuilds from the live image.
  Result<std::string> ScrubStore();

  // --- Template space ------------------------------------------------------
  /// Validates and stores a process definition (as OCR text).
  Status RegisterTemplate(const ocr::ProcessDef& def);
  std::vector<std::string> ListTemplates() const;

  // --- Instance control ------------------------------------------------------
  /// Starts a process from a stored template. `args` overlays the
  /// whiteboard defaults (the paper's user input parameters). Returns the
  /// new instance id.
  Result<std::string> StartProcess(const std::string& template_name,
                                   const ocr::Value::Map& args = {},
                                   int priority = 0);
  /// Stops dispatching new activities; running ones finish (paper event 1).
  Status Suspend(const std::string& instance_id);
  Status Resume(const std::string& instance_id);
  /// Kills running jobs and marks the instance aborted.
  Status Abort(const std::string& instance_id);
  /// Re-queues failed/stuck tasks of a failed or running instance (paper
  /// event 10: restart re-schedules TEUs that never reported).
  Status Restart(const std::string& instance_id);
  /// OCR event handling (§3.1): delivers `event` to the instance. Tasks
  /// gated with ON_EVENT on it become dispatchable (the paper's
  /// user-triggered activities, e.g. visualization checks, §3.4).
  /// Idempotent; the raised-event set is persisted with the instance.
  Status RaiseEvent(const std::string& instance_id, const std::string& event);
  /// Recompute support (paper conclusions: "the system [can] recompute
  /// processes as data inputs or algorithms change"): discards the named
  /// top-level task and everything control-flow downstream of it, then
  /// re-runs navigation — upstream results are reused from their
  /// checkpoints, only the invalidated tail re-executes (against the
  /// *current* activity registry and templates, so upgraded algorithms
  /// take effect).
  Status Invalidate(const std::string& instance_id,
                    const std::string& task_name);
  /// Housekeeping on a long-lived server: removes a *terminal* instance's
  /// records from the instance space and drops it from memory. Its
  /// execution history remains queryable in the history space.
  Status Archive(const std::string& instance_id);

  // --- Queries ---------------------------------------------------------------
  Result<InstanceSummary> Summary(const std::string& instance_id) const;
  std::vector<InstanceSummary> ListInstances() const;
  Result<InstanceState> GetInstanceState(const std::string& instance_id) const;
  /// Whiteboard value of a (running or finished) instance.
  Result<ocr::Value> GetWhiteboardValue(const std::string& instance_id,
                                        const std::string& var) const;
  /// Path of the task that last wrote `var` (automatic lineage tracking).
  Result<std::string> GetLineage(const std::string& instance_id,
                                 const std::string& var) const;
  /// Execution history records of an instance, oldest first.
  std::vector<std::string> GetHistory(const std::string& instance_id) const;

  // --- Provenance / lineage --------------------------------------------------
  /// All lineage records of an instance, read back from the provenance
  /// space (so they survive crashes and are recovered with the instance),
  /// ordered by (task path, attempt). Records exist only for dispatches
  /// made while an Observability context was attached.
  Result<std::vector<obs::LineageRecord>> GetTaskLineage(
      const std::string& instance_id) const;
  /// The instance's full lineage export: one header line plus one line
  /// per attempt, flat JSONL (see docs/PROVENANCE.md). Byte-identical
  /// across same-seed runs.
  Result<std::string> ExportLineageJsonl(const std::string& instance_id) const;
  /// In-memory run view for differencing two instances of this engine
  /// (console DIFF). Outage windows come from the span sink when present.
  Result<obs::RunLineage> BuildRunLineage(const std::string& instance_id,
                                          std::string label) const;
  /// Content digest of the configuration space (node rows), recomputed at
  /// Startup and on every cluster config change. Two runs with different
  /// versions ran against different declared resources.
  const std::string& config_version() const { return config_version_; }

  const monitor::AwarenessModel& awareness() const { return awareness_; }

  /// The observability context from EngineOptions (nullptr if not set).
  obs::Observability* observability() const { return options_.observability; }

  /// Aggregate adaptive-monitoring statistics across all per-node
  /// monitors since the last Startup (paper §3.4: the scheme "helps to
  /// considerably reduce the sampling and network overheads").
  struct MonitoringStats {
    uint64_t samples_taken = 0;
    uint64_t reports_sent = 0;
    double DiscardRate() const {
      return samples_taken == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(reports_sent) /
                             static_cast<double>(samples_taken);
    }
  };
  MonitoringStats GetMonitoringStats() const;
  ProcessInstance* FindInstance(const std::string& instance_id);
  const ProcessInstance* FindInstance(const std::string& instance_id) const;

  /// Estimated reference-CPU work remaining in an instance: queued/ready
  /// activities at the mean completed-activity cost plus the outstanding
  /// jobs' full costs. Part of the §3.4 awareness/monitoring view.
  Result<Duration> EstimateRemainingWork(const std::string& instance_id) const;

  /// Per-task status rows (path, state, node if running, timings) —
  /// the monitoring drill-down behind the console's TASKS command.
  struct TaskRow {
    std::string path;
    TaskState state;
    std::string node;  // when running
    TimePoint started;
    TimePoint finished;
    Duration cost;
    int attempts;
  };
  Result<std::vector<TaskRow>> ListTasks(const std::string& instance_id) const;

  /// Jobs currently dispatched: (instance, task path, node).
  struct RunningJob {
    cluster::JobId job;
    std::string instance_id;
    std::string path;
    std::string node;
    Duration cost;
  };
  std::vector<RunningJob> GetRunningJobs() const;
  /// Entries awaiting dispatch: the ready queue plus every parked entry
  /// (starved classes and suspended instances).
  size_t QueueDepth() const;

  /// Dispatcher internals for monitoring (console STATS).
  struct DispatchStats {
    size_t ready = 0;             // dispatchable at the next pump
    size_t parked_starved = 0;    // waiting for capacity in their class
    size_t parked_suspended = 0;  // waiting for their instance to resume
    size_t running_jobs = 0;
    uint64_t pump_runs = 0;        // engine_pump_runs_total
    uint64_t entries_scanned = 0;  // engine_pump_entries_scanned_total
    uint64_t dispatched = 0;       // engine_tasks_dispatched_total
    /// Virtual microseconds this engine had at least one job in flight —
    /// a deterministic utilization clock. The sharded service takes
    /// per-barrier deltas of it to feed the straggler step sensors.
    uint64_t busy_virtual_us = 0;
  };
  DispatchStats GetDispatchStats() const;

  // --- Failure injection ------------------------------------------------------
  /// While set, every activity execution fails with IOError. Legacy shim:
  /// prefer FaultFs::SetDiskFull on the store's filesystem, which drives
  /// the real commit path into degraded mode instead of failing
  /// activities (the Fig. 5 "disk space shortage" is now modelled there).
  void SetStorageFailure(bool failing) { storage_failing_ = failing; }

  // --- ClusterListener -------------------------------------------------------
  void OnJobFinished(cluster::JobId id, const std::string& node) override;
  void OnJobFailed(cluster::JobId id, const std::string& node,
                   const std::string& reason) override;
  void OnNodeDown(const std::string& node) override;
  void OnNodeUp(const std::string& node) override;
  void OnLoadReport(const std::string& node, double load) override;
  void OnConfigChanged(const cluster::NodeConfig& config) override;
  void OnLinkChanged(const std::string& node) override;

  // --- comms::ReportHandler --------------------------------------------------
  /// Report-plane entry point: every heartbeat / completion / failure /
  /// load message from the PECs arrives here (possibly dropped, delayed,
  /// duplicated or reordered by a FaultChannel). Completion and failure
  /// reports are fenced: a report whose (job, fence) does not match the
  /// engine's outstanding attempt is a duplicate or a zombie from a
  /// condemned attempt and is dropped idempotently.
  void HandleReport(const comms::Message& msg) override;

  /// Lease-detector state of a node (legacy mode reports kUp for known
  /// nodes). See docs/COMMS.md.
  enum class LeaseState { kUp, kSuspected, kCondemned, kUnknown };
  LeaseState GetLeaseState(const std::string& node) const;

  /// The control-plane channel in use (owned default or the one from
  /// EngineOptions).
  comms::Channel* channel() const { return channel_; }

 private:
  friend class OutagePlanner;

  /// Dispatch order: priority descending, then enqueue sequence (FIFO).
  /// Used as the key of the ready map and the parked queues, so a parked
  /// entry re-enters the scan exactly where the old sort-every-pump deque
  /// would have placed it.
  using ReadyKey = std::pair<int, uint64_t>;  // (-priority, seq)

  /// Captured state of one speculative activity execution on the
  /// options.executor pool (defined in engine.cc).
  struct PreExecState;

  struct ReadyEntry {
    std::string instance_id;
    std::string path;
    /// Cached execution result when a previous placement attempt declined.
    std::optional<ActivityOutput> cached;
    /// Node to avoid if any alternative exists (set by the lost-report
    /// watchdog: the node may be silently partitioned).
    std::string avoid_node;
    /// Instance priority and enqueue sequence, frozen at enqueue time
    /// (instance priority is immutable after creation).
    int priority = 0;
    uint64_t seq = 0;
    /// Resolved handles, validated by the generation counters below; on
    /// mismatch the pump falls back to FindInstance/FindByPath once and
    /// re-caches.
    ProcessInstance* inst_hint = nullptr;
    TaskNode* node_hint = nullptr;
    uint64_t engine_gen = 0;     // vs Engine::instance_generation_
    uint64_t structure_gen = 0;  // vs ProcessInstance::structure_generation()
    /// The activity's resource class, cached so parking/waking never needs
    /// to resolve the node.
    std::string resource_class;
    /// Span covering this attempt from enqueue to its terminal outcome
    /// (0 when spans are not enabled).
    uint64_t attempt_span = 0;
    /// Input descriptors captured when the activity first executed (empty
    /// until then, and always empty when spans are not enabled).
    std::vector<std::pair<std::string, std::string>> input_desc;
    /// Speculative execution handed back by the thread pool, consumed by
    /// the scan only if the freshly built input still matches the one it
    /// ran with (activities are pure, so equal input implies the result
    /// the inline path would have computed). Null when not pre-executed.
    std::shared_ptr<PreExecState> pre_exec;

    ReadyKey key() const { return {-priority, seq}; }
  };
  struct PendingJob {
    std::string instance_id;
    std::string path;
    ocr::Value::Map outputs;
    Duration cost;
    std::string node;
    /// Attempt-epoch fencing token stamped on the launch command. A
    /// completion/failure report is applied only if its fence matches —
    /// duplicated, reordered, and zombie (post-condemnation) reports of
    /// older attempts are dropped idempotently. 0 only before dispatch.
    uint64_t fence = 0;
    /// Lost-report watchdog event, cancelled when the job reports in time
    /// (kInvalidEventId when the watchdog is disabled).
    EventId watchdog = kInvalidEventId;
    /// Spans (0 when not enabled): the enclosing attempt, and the
    /// execution slice opened at dispatch.
    uint64_t attempt_span = 0;
    uint64_t job_span = 0;
    /// Lineage carry-through: the attempt number this dispatch persisted
    /// under, plus the input/parameter descriptors so a timeout or
    /// migration re-queue keeps them for the next attempt's record.
    int attempt = 0;
    std::vector<std::pair<std::string, std::string>> input_desc;
    std::vector<std::pair<std::string, std::string>> params;
  };

  // -- Navigation --
  /// Builds children of a composite node when it activates.
  Status ExpandComposite(ProcessInstance* inst, TaskNode* node,
                         WriteBatch* batch);
  /// Runs connector evaluation in `scope` until fixpoint, activating and
  /// skipping children; checks scope completion.
  Status EvaluateScope(ProcessInstance* inst, TaskNode* scope,
                       WriteBatch* batch);
  Status ActivateTask(ProcessInstance* inst, TaskNode* node,
                      WriteBatch* batch);
  Status SkipTask(ProcessInstance* inst, TaskNode* node, WriteBatch* batch);
  /// Marks a task done, applies the mapping phase, bubbles completion
  /// upward and re-evaluates the surrounding scope.
  Status CompleteTask(ProcessInstance* inst, TaskNode* node,
                      ocr::Value::Map outputs, Duration cost,
                      WriteBatch* batch);
  Status HandleTaskFailure(ProcessInstance* inst, TaskNode* node,
                           const std::string& reason, WriteBatch* batch);
  /// Checks whether all children of `scope` are terminal and finishes the
  /// composite (collection, output mapping, instance completion).
  Status MaybeCompleteScope(ProcessInstance* inst, TaskNode* scope,
                            WriteBatch* batch);
  /// Applies output mappings of `node` into its scope whiteboard.
  Status ApplyOutputMappings(ProcessInstance* inst, TaskNode* node,
                             WriteBatch* batch);
  /// Re-runs navigation over all active scopes (after Restart resets).
  Status ReevaluateAll(ProcessInstance* inst, WriteBatch* batch);
  /// Sphere-of-atomicity failure handling: run compensation bindings of
  /// completed activities in reverse completion order, discard the
  /// sphere's state, and re-run it (bounded by its failure policy).
  Status CompensateSphere(ProcessInstance* inst, TaskNode* scope,
                          WriteBatch* batch);
  /// Deletes a node's children (records, index entries and nodes); kills
  /// outstanding jobs and queue entries under it.
  void DiscardSubtree(ProcessInstance* inst, TaskNode* node,
                      WriteBatch* batch);
  /// Assembles the ActivityInput of a task from its input mappings.
  Result<ActivityInput> BuildInput(ProcessInstance* inst, TaskNode* node);

  // -- Dispatching --
  void EnqueueReady(ProcessInstance* inst, TaskNode* node);
  /// Routes an entry into the ready map — or, during a pump, into the
  /// pump-local overflow queue (scanned at the tail of the running pump,
  /// in enqueue order, mirroring the old deque's mid-pump appends).
  void PushEntry(ReadyEntry entry);
  /// Runs the activity kernels of all executable ready entries as one
  /// batch on options.executor (no-op without one), so the scan below
  /// finds their results precomputed. Purely a wall-clock optimization:
  /// input assembly, validation, ordering, failure handling and all
  /// observability stay on the engine thread.
  void PreExecuteReady();
  /// Same speculation over the current pump-overflow wave (the next ready
  /// frontier); returns true when a batch actually ran. Bounded per pump
  /// by options.preexec_lookahead.
  bool PreExecuteOverflow();
  void PumpDispatch();
  void SchedulePumpRetry();
  /// Arms the lost-report watchdog; returns its event id (kInvalidEventId
  /// when disabled) for cancellation on timely completion.
  EventId ArmJobWatchdog(cluster::JobId job_id, Duration cost);
  /// Kill-and-restart migration check (see EngineOptions).
  void CheckMigrations();
  /// Re-queues a job taken from the job table as a fresh attempt
  /// (watchdog timeouts and lease condemnations share this path).
  /// `outcome` labels the lineage record and attempt span; `avoid_node`
  /// steers the next placement away from the possibly-partitioned node.
  void RequeueLostJob(PendingJob pending, std::string_view outcome);

  // -- Control plane (comms seam) --
  /// Applies a verified completion/failure (fence already checked).
  void ApplyJobFinished(cluster::JobId id, const std::string& node);
  void ApplyJobFailed(cluster::JobId id, const std::string& node,
                      const std::string& reason);
  /// Sends a kKill for (node, job, fence); an undeliverable kill enters
  /// the bounded-retry registry instead of being lost.
  void SendKill(const std::string& node, cluster::JobId job, uint64_t fence);
  void ScheduleKillRetry(cluster::JobId job);
  /// Command link to `node` came back: re-send its queued kills now.
  void FlushPendingKills(const std::string& node);
  void CancelPendingKills();

  // -- Lease detector (heartbeat mode only) --
  void ArmLeaseCheck();
  void CheckLeases();
  void HandleHeartbeat(const std::string& node);
  void SuspectNode(const std::string& node);
  void CondemnNode(const std::string& node);
  /// A suspected (not yet condemned) node heartbeated: false suspicion —
  /// restore it without touching its still-running jobs.
  void ReconcileNode(const std::string& node);

  // -- Parked-entry wakeups --
  /// Marks a parked resource class dispatch-eligible again; the next pump
  /// scans its head. Mid-pump, also un-freezes the class so entries later
  /// in the scan get a fresh placement attempt (capacity just changed).
  void MarkClassWoken(const std::string& resource_class);
  /// Capacity appeared on `node_name`: wake every parked class it serves.
  void WakeClassesForNode(const std::string& node_name);
  void WakeAllClasses();
  /// Re-queues entries parked while `instance_id` was suspended (RESUME /
  /// RESTART).
  void WakeInstance(const std::string& instance_id);
  void DropParkedForInstance(const std::string& instance_id);
  size_t NumParkedStarved() const;
  size_t NumParkedSuspended() const;

  // -- Job table --
  void IndexJob(cluster::JobId job_id, const PendingJob& pending);
  /// Busy-clock transitions (DispatchStats::busy_virtual_us): call after
  /// inserting into jobs_ / before or after removing from it.
  void NoteJobsNonEmpty();
  void NoteJobsMaybeDrained();
  /// Removes a job from the table and the per-node / per-instance
  /// indices, cancels its watchdog, releases its awareness slot, wakes
  /// the classes its node serves and closes the job span with `outcome`
  /// ("completed", "failed", "timed_out", "migrated", "killed"). Every
  /// jobs_ removal goes through here.
  PendingJob TakeJob(std::map<cluster::JobId, PendingJob>::iterator it,
                     bool failed, std::string_view outcome);
  PendingJob TakeJob(cluster::JobId job_id, bool failed,
                     std::string_view outcome);

  // -- Persistence --
  void PersistTask(ProcessInstance* inst, const TaskNode* node,
                   WriteBatch* batch);
  void PersistWhiteboard(ProcessInstance* inst, const TaskNode* scope_owner,
                         WriteBatch* batch);
  void PersistHeader(ProcessInstance* inst, WriteBatch* batch);
  Status Commit(WriteBatch* batch);
  /// Store to group commits on: the record store when group commit is
  /// enabled, nullptr (a no-op CommitScope) otherwise.
  RecordStore* GroupTarget();
  void AppendHistory(const std::string& instance_id, const std::string& event);
  /// Rebuilds one instance from its records; re-queues interrupted work.
  Status RecoverInstance(const std::string& instance_id);

  Result<const ocr::ProcessDef*> ResolveTemplate(const std::string& name);

  // -- Degraded mode & fencing --
  /// Store flush failed at a commit barrier: decide between fencing
  /// (another engine took over the store) and degraded mode (disk error).
  void OnStoreFlushFailure(const Status& cause);
  void EnterDegraded(const Status& cause);
  void ScheduleDegradedRetry();
  /// Backoff retry: flush the retained group and probe with a fresh
  /// config write; on success leave degraded mode and resume dispatch.
  void RetryDegradedCommit();
  /// If `st` is the store's fencing rejection, schedules the engine's
  /// step-down (at the current virtual time, outside the failing call
  /// stack) and returns true.
  bool MaybeHandleFenced(const Status& st);
  /// Fenced step-down: drop in-memory state and stop, but do NOT kill
  /// cluster jobs — they now belong to the engine that took over.
  void TearDownFenced();

  // -- Observability --
  /// Emits kInstanceStateChanged for the instance's current state.
  void EmitInstanceState(const ProcessInstance* inst);
  /// Refreshes the queue-depth / running-jobs gauges.
  void SyncObsGauges();

  // -- Span instrumentation (all no-ops when spans_ == nullptr) --
  /// The instance's span id, opening (first start) or re-attaching
  /// (recovery after a crash dropped the in-memory handle) as needed.
  uint64_t InstanceSpanId(ProcessInstance* inst);
  /// Opens the attempt span for a freshly queued entry; a retry links to
  /// the attempt it replaces through the task's last_attempt_span.
  void BeginAttemptSpan(ReadyEntry* entry, ProcessInstance* inst,
                        TaskNode* node);
  /// Closes an attempt span with its terminal outcome.
  void EndAttemptSpan(uint64_t attempt_span, std::string_view outcome);

  // -- Provenance (all no-ops when spans_ == nullptr) --
  /// Writes the attempt's in-row (inputs, params, node, binding, dispatch
  /// time) into the dispatch commit's batch.
  void RecordLineageDispatch(const ReadyEntry& entry, const TaskNode* node,
                             const std::string& target, int attempt,
                             WriteBatch* batch);
  /// Writes the attempt's out-row (outcome, finish time, cost, output
  /// descriptors) into the outcome commit's batch.
  void RecordLineageOutcome(const PendingJob& pending, std::string_view outcome,
                            bool with_outputs, WriteBatch* batch);
  /// Recomputes config_version_ from the config space's node rows.
  void RefreshConfigVersion();

  Simulator* sim_;
  cluster::ClusterSim* cluster_;
  Spaces spaces_;
  ActivityRegistry* registry_;
  EngineOptions options_;
  Rng rng_;

  bool up_ = false;
  bool storage_failing_ = false;
  bool degraded_ = false;
  bool fenced_pending_ = false;
  Duration degraded_backoff_;
  EventId degraded_event_ = kInvalidEventId;
  monitor::AwarenessModel awareness_;
  std::unique_ptr<sched::SchedulingPolicy> policy_;
  std::map<std::string, std::unique_ptr<monitor::AdaptiveMonitor>> monitors_;

  /// Parsed template cache; pointers into it stay valid for the engine's
  /// life (recovered instances reference these definitions).
  std::map<std::string, std::unique_ptr<ocr::ProcessDef>> template_cache_;
  /// Superseded parses kept alive because instances may still point at them.
  std::vector<std::unique_ptr<ocr::ProcessDef>> retired_defs_;

  std::map<std::string, std::unique_ptr<ProcessInstance>> instances_;
  /// Bumped whenever instances_ loses an element (Archive, Crash, fenced
  /// step-down); validates ReadyEntry::inst_hint.
  uint64_t instance_generation_ = 0;

  /// Entries the next pump scans, in dispatch order. Fresh enqueues land
  /// here; entries that decline placement or hit a suspended instance
  /// move to the parked maps below and are skipped by later pumps until a
  /// wake event readmits them — per-pump work tracks what can actually
  /// dispatch, not total queue depth.
  std::map<ReadyKey, ReadyEntry> ready_;
  /// Starved entries, per resource class, in dispatch order.
  std::map<std::string, std::map<ReadyKey, ReadyEntry>, std::less<>>
      parked_by_class_;
  /// Classes re-admitted to the pump scan by a capacity event.
  std::set<std::string, std::less<>> woken_classes_;
  /// Entries of suspended instances, re-queued on RESUME/RESTART.
  std::map<std::string, std::map<ReadyKey, ReadyEntry>> parked_by_instance_;
  uint64_t next_ready_seq_ = 1;
  /// Pump re-entrancy: enqueues from navigation running inside a pump go
  /// to the overflow queue; classes declining this pump freeze until the
  /// pump ends (or capacity frees mid-pump).
  bool pumping_ = false;
  std::deque<ReadyEntry> pump_overflow_;
  /// Lookahead speculations for tasks that are not ready yet (inactive
  /// nodes whose input could be assembled early), keyed by (instance id,
  /// path). EnqueueReady attaches a hit to the new entry; the scan's
  /// input-equality gate validates it like any other speculation.
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<PreExecState>>
      lookahead_spec_;
  std::set<std::string, std::less<>> pump_frozen_;

  // -- Control plane state --
  /// Owned default channel (used when EngineOptions.channel is null).
  std::unique_ptr<comms::Channel> owned_channel_;
  /// The channel the cluster is attached through (never null after the
  /// constructor).
  comms::Channel* channel_ = nullptr;
  /// Per-Startup fence counter; fences are writer_epoch << 20 | counter,
  /// so attempts of different server incarnations never collide.
  uint64_t next_fence_seq_ = 0;
  /// Undeliverable kKill commands awaiting retry/backoff or a link-up
  /// flush. Keyed by job id; a job's entry is dropped once the kill
  /// delivers, the retry budget is exhausted, or the attempt resolves.
  struct PendingKill {
    std::string node;
    uint64_t fence = 0;
    int attempts = 0;
    EventId retry = kInvalidEventId;
  };
  std::map<cluster::JobId, PendingKill> pending_kills_;
  /// Lease table (heartbeat mode only; empty in legacy mode).
  struct NodeLease {
    TimePoint last_heartbeat;
    LeaseState state = LeaseState::kUp;
    TimePoint suspected_at;
    /// Suspicion span (0 when spans are off or node not suspected).
    uint64_t suspicion_span = 0;
  };
  std::map<std::string, NodeLease> leases_;
  EventId lease_check_ = kInvalidEventId;

  std::map<cluster::JobId, PendingJob> jobs_;
  /// Busy-clock state for DispatchStats::busy_virtual_us: closed busy
  /// windows accumulate here; a window opens when jobs_ becomes non-empty
  /// (busy_since_) and closes when it drains. Maintained by
  /// NoteJobsNonEmpty / NoteJobsMaybeDrained around every jobs_ mutation.
  uint64_t busy_virtual_us_ = 0;
  TimePoint busy_since_;
  bool busy_open_ = false;
  /// Secondary indices over jobs_ (deterministic JobId order inside each
  /// bucket) so Abort/Restart/DiscardSubtree/EstimateRemainingWork/
  /// ListTasks and the migration scan touch only their own jobs.
  std::map<std::string, std::set<cluster::JobId>> jobs_by_instance_;
  std::map<std::string, std::set<cluster::JobId>> jobs_by_node_;
  cluster::JobId next_job_id_ = 1;
  uint64_t next_instance_seq_ = 1;
  bool pump_scheduled_ = false;
  EventId pump_event_ = kInvalidEventId;

  // Span sink (null without an Observability context) and the open
  // overlay spans it tracks for the engine: the server-down window
  // between Crash() and the next Startup(), and the store-degraded
  // window. The critical-path analyzer uses these windows to classify
  // waiting time as recovery / store stall.
  obs::SpanSink* spans_ = nullptr;
  uint64_t server_down_span_ = 0;
  uint64_t degraded_span_ = 0;
  /// See config_version(). Empty until Startup.
  std::string config_version_;

  // Resolved metric handles (null without an Observability context).
  obs::Counter* dispatched_metric_ = nullptr;
  obs::Counter* pump_runs_metric_ = nullptr;
  obs::Counter* pump_scanned_metric_ = nullptr;
  obs::Counter* preexec_batches_metric_ = nullptr;
  obs::Counter* preexec_tasks_metric_ = nullptr;
  obs::Counter* preexec_lookahead_metric_ = nullptr;
  obs::Counter* completed_metric_ = nullptr;
  obs::Counter* failed_metric_ = nullptr;
  obs::Counter* timed_out_metric_ = nullptr;
  obs::Counter* migrations_metric_ = nullptr;
  obs::Counter* recovered_metric_ = nullptr;
  obs::Counter* degraded_total_metric_ = nullptr;
  obs::Counter* degraded_retries_metric_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* parked_starved_gauge_ = nullptr;
  obs::Gauge* parked_suspended_gauge_ = nullptr;
  obs::Gauge* running_jobs_gauge_ = nullptr;
  obs::Histogram* task_cost_metric_ = nullptr;
  // Control-plane metrics.
  obs::Counter* suspected_metric_ = nullptr;
  obs::Counter* condemned_metric_ = nullptr;
  obs::Counter* reconciled_metric_ = nullptr;
  obs::Counter* fenced_reports_metric_ = nullptr;
  obs::Counter* dup_reports_metric_ = nullptr;
  obs::Counter* kill_retries_metric_ = nullptr;
  obs::Counter* kill_gave_up_metric_ = nullptr;
  obs::Gauge* suspected_gauge_ = nullptr;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_ENGINE_H_
