#ifndef BIOPERA_CORE_INSTANCE_H_
#define BIOPERA_CORE_INSTANCE_H_

#include <array>
#include <functional>
#include <map>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "ocr/model.h"
#include "ocr/value.h"

namespace biopera::core {

/// Lifecycle of one task instance.
enum class TaskState {
  kInactive,   // not yet eligible
  kReady,      // eligible, queued at the dispatcher
  kRunning,    // dispatched to a node (activity) / children active (composite)
  kRetryWait,  // failed, waiting out the retry backoff
  kEventWait,  // activated but gated on an ON_EVENT trigger
  kDone,       // completed; outputs applied
  kSkipped,    // dead path: all incoming connectors false
  kFailed,     // failed permanently (retries exhausted)
};
/// Number of TaskState values (size of per-state count arrays).
inline constexpr size_t kNumTaskStates = 8;

std::string_view TaskStateName(TaskState s);
Result<TaskState> TaskStateFromName(std::string_view name);
/// True for states a task can no longer leave during normal navigation.
bool IsTerminal(TaskState s);

enum class InstanceState {
  kRunning,
  kSuspended,
  kDone,
  kFailed,
  kAborted,
};
std::string_view InstanceStateName(InstanceState s);
Result<InstanceState> InstanceStateFromName(std::string_view name);

/// Runtime node of the task-instance tree. The tree mirrors the TaskDef
/// structure, with parallel tasks expanded into one child per list element
/// and subprocesses expanded into their (late-bound) definition's tasks.
/// The pseudo-root of an instance has def == nullptr and owns the process
/// whiteboard scope.
struct TaskNode {
  const ocr::TaskDef* def = nullptr;
  TaskNode* parent = nullptr;
  /// Persistent address, e.g. "alignment[3]/fixed_pam" (index suffix =
  /// parallel expansion; '/' = subprocess boundary; '.' = block nesting).
  std::string path;

  TaskState state = TaskState::kInactive;
  int attempts = 0;
  /// Binding actually used (switches to the alternative after failures).
  std::string binding_used;
  /// Output structure after completion (activities: the ActivityFn fields;
  /// subprocesses: the final child whiteboard).
  ocr::Value::Map outputs;
  /// Reference-CPU cost charged for the completed execution.
  Duration cost;
  TimePoint started;
  TimePoint finished;

  /// Observability: span id of this task's latest attempt (0 when spans
  /// are not enabled). Runtime-only — never persisted; after a server
  /// crash rebuilt nodes start at 0 and the server-down overlay span
  /// explains the causal gap. A retry reads it to link the new attempt
  /// span to the one it replaces.
  uint64_t last_attempt_span = 0;

  /// Parallel-body locals (index >= 0 marks a body instance).
  ocr::Value item;
  int64_t index = -1;
  /// For an expanded parallel node: the evaluated input list.
  ocr::Value expansion;

  /// Children: block subtasks, parallel bodies, or subprocess tasks.
  std::vector<std::unique_ptr<TaskNode>> children;
  /// Connectors scoping the children (null for parallel).
  const std::vector<ocr::ControlConnector>* connectors = nullptr;
  /// Late-bound subprocess definition (owned by the engine's template
  /// cache) and its private whiteboard.
  const ocr::ProcessDef* sub_def = nullptr;
  std::unique_ptr<ocr::Value::Map> own_whiteboard;

  bool is_root() const { return def == nullptr && parent == nullptr; }
  ocr::TaskKind kind() const {
    return def == nullptr ? ocr::TaskKind::kBlock : def->kind;
  }
  /// Finds a direct child by task-definition name.
  TaskNode* FindChild(std::string_view name);
  /// The whiteboard this node's scope reads and writes (walks up to the
  /// nearest subprocess boundary or the instance root).
  ocr::Value::Map* ScopeWhiteboard();
  /// The node owning the whiteboard (root or subprocess ancestor).
  TaskNode* ScopeOwner();
  /// Nearest ancestor-or-self carrying parallel-body locals, or nullptr.
  const TaskNode* BodyAncestor() const;
};

/// Execution statistics of one instance, the measurements of §5.2:
/// CPU(P) = sum of activity CPU times, WALL(P) = finish - start, and
/// CPU(A) = CPU(P) / |A|.
struct InstanceStats {
  double cpu_seconds = 0;
  uint64_t activities_completed = 0;
  uint64_t activities_failed = 0;  // failed executions (before retries)
  TimePoint started;
  TimePoint finished;

  Duration CpuTime() const { return Duration::Seconds(cpu_seconds); }
  Duration WallTime() const { return finished - started; }
  Duration CpuPerActivity() const {
    if (activities_completed == 0) return Duration::Zero();
    return Duration::Seconds(cpu_seconds /
                             static_cast<double>(activities_completed));
  }
};

/// One executing (or recovered) process: the instance tree plus the
/// process whiteboard, statistics and lineage records. Pure state — all
/// navigation logic lives in the Engine; all persistence in the engine's
/// persist/rebuild helpers.
class ProcessInstance {
 public:
  ProcessInstance(std::string id, const ocr::ProcessDef* def);

  const std::string& id() const { return id_; }
  const ocr::ProcessDef& def() const { return *def_; }
  TaskNode* root() { return &root_; }
  const TaskNode* root() const { return &root_; }

  /// The process whiteboard (owned by the pseudo-root node's scope).
  ocr::Value::Map& whiteboard() { return *root_.own_whiteboard; }
  const ocr::Value::Map& whiteboard() const { return *root_.own_whiteboard; }

  InstanceState state() const { return state_; }
  void set_state(InstanceState s) { state_ = s; }

  InstanceStats& stats() { return stats_; }
  const InstanceStats& stats() const { return stats_; }

  int priority() const { return priority_; }
  void set_priority(int p) { priority_ = p; }

  /// Lineage: whiteboard variable -> path of the task that last wrote it
  /// (paper conclusion: "lineage tracking is done automatically").
  std::map<std::string, std::string>& lineage() { return lineage_; }
  const std::map<std::string, std::string>& lineage() const {
    return lineage_;
  }

  /// Events raised against this instance (OCR event handling): tasks with
  /// an ON_EVENT gate wait until their event appears here.
  std::set<std::string>& raised_events() { return raised_events_; }
  const std::set<std::string>& raised_events() const {
    return raised_events_;
  }

  /// Depth-first walk over all task nodes (excluding the pseudo-root).
  void ForEachNode(const std::function<void(TaskNode*)>& fn);
  void ForEachNode(const std::function<void(const TaskNode*)>& fn) const;

  /// Finds a node by its persistent path; nullptr if absent. O(log n) via
  /// the path index.
  TaskNode* FindByPath(std::string_view path);
  const TaskNode* FindByPath(std::string_view path) const;

  /// Must be called for every TaskNode created after construction
  /// (composite expansion, recovery) to keep the path index current.
  void IndexNode(TaskNode* node);
  /// Removes a destroyed node from the path index and the state counters
  /// (sphere-of-atomicity re-runs, invalidation). Bumps the structure
  /// generation, invalidating cached TaskNode pointers held elsewhere.
  void UnindexNode(TaskNode* node);

  /// All task-state writes after IndexNode must go through here so the
  /// per-state counters stay exact.
  void SetTaskState(TaskNode* node, TaskState s);

  /// O(1) task-state aggregates over all indexed nodes / activity nodes
  /// only. Kept incrementally by IndexNode/UnindexNode/SetTaskState so
  /// Summary and the progress estimators never walk the tree.
  size_t NumNodes() const { return path_index_.size(); }
  size_t CountInState(TaskState s) const {
    return state_counts_[static_cast<size_t>(s)];
  }
  size_t ActivitiesInState(TaskState s) const {
    return activity_counts_[static_cast<size_t>(s)];
  }

  /// Bumped whenever an indexed node is destroyed; consumers caching raw
  /// TaskNode pointers re-resolve via FindByPath when this moves.
  uint64_t structure_generation() const { return structure_generation_; }

  /// Observability: id of this instance's span in the experiment's span
  /// sink (0 when spans are not enabled). Runtime-only, never persisted;
  /// recovery re-attaches it via SpanSink::FindOpen so one instance keeps
  /// one span across server crashes and restarts.
  uint64_t span_id() const { return span_id_; }
  void set_span_id(uint64_t id) { span_id_ = id; }

 private:
  std::string id_;
  const ocr::ProcessDef* def_;
  TaskNode root_;
  InstanceState state_ = InstanceState::kRunning;
  InstanceStats stats_;
  int priority_ = 0;
  std::map<std::string, std::string> lineage_;
  std::set<std::string> raised_events_;
  std::map<std::string, TaskNode*, std::less<>> path_index_;
  std::array<size_t, kNumTaskStates> state_counts_{};
  std::array<size_t, kNumTaskStates> activity_counts_{};
  uint64_t structure_generation_ = 0;
  uint64_t span_id_ = 0;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_INSTANCE_H_
