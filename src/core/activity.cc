#include "core/activity.h"

namespace biopera::core {

const ocr::Value& ActivityInput::Get(const std::string& name) const {
  static const ocr::Value& null_value = *new ocr::Value();
  auto it = params.find(name);
  return it == params.end() ? null_value : it->second;
}

Status ActivityRegistry::Register(std::string binding, ActivityFn fn) {
  auto [it, inserted] = fns_.emplace(std::move(binding), std::move(fn));
  if (!inserted) {
    return Status::AlreadyExists("binding already registered: " + it->first);
  }
  return Status::OK();
}

void ActivityRegistry::Override(std::string binding, ActivityFn fn) {
  fns_[std::move(binding)] = std::move(fn);
}

Result<ActivityFn> ActivityRegistry::Find(const std::string& binding) const {
  auto it = fns_.find(binding);
  if (it == fns_.end()) {
    return Status::NotFound("no activity binding: " + binding);
  }
  return it->second;
}

bool ActivityRegistry::Contains(const std::string& binding) const {
  return fns_.contains(binding);
}

}  // namespace biopera::core
