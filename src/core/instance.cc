#include "core/instance.h"

#include <functional>

namespace biopera::core {

std::string_view TaskStateName(TaskState s) {
  switch (s) {
    case TaskState::kInactive: return "Inactive";
    case TaskState::kReady: return "Ready";
    case TaskState::kRunning: return "Running";
    case TaskState::kRetryWait: return "RetryWait";
    case TaskState::kEventWait: return "EventWait";
    case TaskState::kDone: return "Done";
    case TaskState::kSkipped: return "Skipped";
    case TaskState::kFailed: return "Failed";
  }
  return "?";
}

Result<TaskState> TaskStateFromName(std::string_view name) {
  for (TaskState s :
       {TaskState::kInactive, TaskState::kReady, TaskState::kRunning,
        TaskState::kRetryWait, TaskState::kEventWait, TaskState::kDone,
        TaskState::kSkipped, TaskState::kFailed}) {
    if (TaskStateName(s) == name) return s;
  }
  return Status::InvalidArgument("unknown task state: " + std::string(name));
}

bool IsTerminal(TaskState s) {
  return s == TaskState::kDone || s == TaskState::kSkipped ||
         s == TaskState::kFailed;
}

std::string_view InstanceStateName(InstanceState s) {
  switch (s) {
    case InstanceState::kRunning: return "Running";
    case InstanceState::kSuspended: return "Suspended";
    case InstanceState::kDone: return "Done";
    case InstanceState::kFailed: return "Failed";
    case InstanceState::kAborted: return "Aborted";
  }
  return "?";
}

Result<InstanceState> InstanceStateFromName(std::string_view name) {
  for (InstanceState s :
       {InstanceState::kRunning, InstanceState::kSuspended,
        InstanceState::kDone, InstanceState::kFailed,
        InstanceState::kAborted}) {
    if (InstanceStateName(s) == name) return s;
  }
  return Status::InvalidArgument("unknown instance state: " +
                                 std::string(name));
}

TaskNode* TaskNode::FindChild(std::string_view name) {
  for (auto& child : children) {
    if (child->def != nullptr && child->def->name == name) {
      return child.get();
    }
  }
  return nullptr;
}

TaskNode* TaskNode::ScopeOwner() {
  TaskNode* node = this;
  while (node->parent != nullptr && node->own_whiteboard == nullptr) {
    node = node->parent;
  }
  return node;
}

ocr::Value::Map* TaskNode::ScopeWhiteboard() {
  TaskNode* owner = ScopeOwner();
  return owner->own_whiteboard.get();
}

const TaskNode* TaskNode::BodyAncestor() const {
  const TaskNode* node = this;
  while (node != nullptr) {
    if (node->index >= 0) return node;
    node = node->parent;
  }
  return nullptr;
}

ProcessInstance::ProcessInstance(std::string id, const ocr::ProcessDef* def)
    : id_(std::move(id)), def_(def) {
  root_.path = "";
  root_.state = TaskState::kRunning;
  root_.connectors = &def_->connectors;
  root_.own_whiteboard = std::make_unique<ocr::Value::Map>();
  for (const ocr::DataObjectDef& d : def_->whiteboard) {
    (*root_.own_whiteboard)[d.name] = d.initial;
  }
  for (const ocr::TaskDef& task : def_->tasks) {
    auto child = std::make_unique<TaskNode>();
    child->def = &task;
    child->parent = &root_;
    child->path = task.name;
    IndexNode(child.get());
    root_.children.push_back(std::move(child));
  }
}

void ProcessInstance::ForEachNode(const std::function<void(TaskNode*)>& fn) {
  std::function<void(TaskNode*)> walk = [&](TaskNode* node) {
    for (auto& child : node->children) {
      fn(child.get());
      walk(child.get());
    }
  };
  walk(&root_);
}

void ProcessInstance::ForEachNode(
    const std::function<void(const TaskNode*)>& fn) const {
  std::function<void(const TaskNode*)> walk = [&](const TaskNode* node) {
    for (const auto& child : node->children) {
      fn(child.get());
      walk(child.get());
    }
  };
  walk(&root_);
}

TaskNode* ProcessInstance::FindByPath(std::string_view path) {
  auto it = path_index_.find(path);
  return it == path_index_.end() ? nullptr : it->second;
}

const TaskNode* ProcessInstance::FindByPath(std::string_view path) const {
  auto it = path_index_.find(path);
  return it == path_index_.end() ? nullptr : it->second;
}

void ProcessInstance::IndexNode(TaskNode* node) {
  path_index_[node->path] = node;
  ++state_counts_[static_cast<size_t>(node->state)];
  if (node->kind() == ocr::TaskKind::kActivity) {
    ++activity_counts_[static_cast<size_t>(node->state)];
  }
}

void ProcessInstance::UnindexNode(TaskNode* node) {
  auto it = path_index_.find(node->path);
  if (it == path_index_.end() || it->second != node) return;
  path_index_.erase(it);
  --state_counts_[static_cast<size_t>(node->state)];
  if (node->kind() == ocr::TaskKind::kActivity) {
    --activity_counts_[static_cast<size_t>(node->state)];
  }
  ++structure_generation_;
}

void ProcessInstance::SetTaskState(TaskNode* node, TaskState s) {
  if (node->state == s) return;
  // The pseudo-root is never indexed; its state is not counted.
  if (!node->is_root()) {
    --state_counts_[static_cast<size_t>(node->state)];
    ++state_counts_[static_cast<size_t>(s)];
    if (node->kind() == ocr::TaskKind::kActivity) {
      --activity_counts_[static_cast<size_t>(node->state)];
      ++activity_counts_[static_cast<size_t>(s)];
    }
  }
  node->state = s;
}

}  // namespace biopera::core
