#include "core/planner.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace biopera::core {

OutagePlan OutagePlanner::Plan(
    const std::vector<std::string>& nodes_to_remove) const {
  OutagePlan plan;
  plan.nodes = nodes_to_remove;
  std::set<std::string> removed(nodes_to_remove.begin(),
                                nodes_to_remove.end());

  const monitor::AwarenessModel& awareness = engine_->awareness();

  // Capacity before/after.
  int before = 0, after = 0;
  std::vector<const monitor::AwarenessModel::NodeView*> survivors;
  for (const auto* view : awareness.UpNodes()) {
    before += view->config.num_cpus;
    if (!removed.contains(view->config.name)) {
      after += view->config.num_cpus;
      survivors.push_back(view);
    }
  }
  plan.remaining_cpus = after;
  plan.slowdown_factor =
      after > 0 ? static_cast<double>(before) / after : 0.0;

  // Jobs that would be interrupted, and where they could restart.
  std::set<std::string> affected_instance_ids;
  for (const Engine::RunningJob& job : engine_->GetRunningJobs()) {
    if (!removed.contains(job.node)) continue;
    OutagePlan::AffectedJob affected;
    affected.instance_id = job.instance_id;
    affected.path = job.path;
    affected.node = job.node;
    affected.lost_work = job.cost;  // upper bound: the whole activity re-runs
    // Find any surviving node serving this task's class.
    std::string cls;
    const ProcessInstance* inst = engine_->FindInstance(job.instance_id);
    if (inst != nullptr) {
      const TaskNode* node = inst->FindByPath(job.path);
      if (node != nullptr && node->def != nullptr) {
        cls = node->def->resource_class;
      }
    }
    for (const auto* view : survivors) {
      if (view->config.ServesClass(cls)) {
        affected.replacement_node = view->config.name;
        break;
      }
    }
    affected_instance_ids.insert(job.instance_id);
    plan.affected_jobs.push_back(std::move(affected));
  }

  // Per-instance impact: progress, and whether some resource class would be
  // left with no capable node at all.
  for (const InstanceSummary& summary : engine_->ListInstances()) {
    if (summary.state != InstanceState::kRunning &&
        summary.state != InstanceState::kSuspended) {
      continue;
    }
    // Resource classes this instance still needs (non-terminal activities).
    std::set<std::string> needed_classes;
    const ProcessInstance* inst = engine_->FindInstance(summary.id);
    if (inst == nullptr) continue;
    inst->ForEachNode([&](const TaskNode* node) {
      if (node->def == nullptr ||
          node->def->kind != ocr::TaskKind::kActivity) {
        return;
      }
      if (!IsTerminal(node->state)) {
        needed_classes.insert(node->def->resource_class);
      }
    });
    // Tasks still inactive inside unexpanded composites are not visible in
    // the tree; conservatively include classes from the template.
    std::function<void(const ocr::TaskDef&)> collect =
        [&](const ocr::TaskDef& def) {
          if (def.kind == ocr::TaskKind::kActivity) {
            needed_classes.insert(def.resource_class);
          }
          for (const auto& sub : def.subtasks) collect(sub);
          for (const auto& body : def.body) collect(body);
        };
    if (summary.tasks_done == 0 || summary.tasks_total == 0 ||
        summary.tasks_done < summary.tasks_total) {
      for (const auto& task : inst->def().tasks) collect(task);
    }

    OutagePlan::AffectedInstance affected;
    affected.instance_id = summary.id;
    affected.priority = inst->priority();
    affected.progress =
        summary.tasks_total == 0
            ? 0.0
            : static_cast<double>(summary.tasks_done) / summary.tasks_total;
    for (const std::string& cls : needed_classes) {
      bool servable = false;
      for (const auto* view : survivors) {
        if (view->config.ServesClass(cls)) {
          servable = true;
          break;
        }
      }
      if (!servable) {
        affected.stalls = true;
        affected.orphaned_classes.push_back(cls.empty() ? "(any)" : cls);
      }
    }
    bool touched = affected.stalls ||
                   affected_instance_ids.contains(summary.id) ||
                   plan.slowdown_factor > 1.0;
    if (touched) plan.affected_instances.push_back(std::move(affected));
  }
  return plan;
}

std::string OutagePlan::ToReport() const {
  std::string out = "Outage plan for nodes: ";
  out += StrJoin(nodes, ", ");
  out += StrFormat("\n  remaining CPUs: %d (slowdown x%.2f)\n",
                   remaining_cpus, slowdown_factor);
  if (affected_jobs.empty()) {
    out += "  no running jobs affected\n";
  } else {
    out += StrFormat("  %zu running job(s) interrupted:\n",
                     affected_jobs.size());
    for (const auto& job : affected_jobs) {
      out += StrFormat("    %s %s on %s: up to %s of work re-runs %s\n",
                       job.instance_id.c_str(), job.path.c_str(),
                       job.node.c_str(), job.lost_work.ToString().c_str(),
                       job.replacement_node.empty()
                           ? "(NO replacement node!)"
                           : ("on " + job.replacement_node).c_str());
    }
  }
  for (const auto& inst : affected_instances) {
    out += StrFormat("  instance %s (priority %d, %.0f%% complete): %s\n",
                     inst.instance_id.c_str(), inst.priority,
                     inst.progress * 100,
                     inst.stalls ? ("STALLS: no node serves " +
                                    StrJoin(inst.orphaned_classes, ", "))
                                       .c_str()
                                 : "slowed but able to proceed");
  }
  return out;
}

}  // namespace biopera::core
