#include "core/engine.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/thread_pool.h"
#include "obs/barrier_profile.h"
#include "obs/json.h"
#include "obs/quantile.h"
#include "ocr/ocr_text.h"
#include "store/codec.h"

namespace biopera::core {

/// One speculative activity execution: the input it ran with (captured on
/// the engine thread), and the result filled in by a pool worker. The
/// pool's batch join publishes `output` before the scan reads it.
struct Engine::PreExecState {
  ActivityInput input;
  std::optional<Result<ActivityOutput>> output;
};

using ocr::ControlConnector;
using ocr::ProcessDef;
using ocr::TaskDef;
using ocr::TaskKind;
using ocr::Value;

namespace {

// ---------------------------------------------------------------------------
// Reference resolution
// ---------------------------------------------------------------------------

/// Descends a dotted path inside a Value (maps only).
Result<Value> Descend(const Value& v, const std::vector<std::string>& path,
                      size_t from) {
  const Value* cur = &v;
  for (size_t i = from; i < path.size(); ++i) {
    if (!cur->is_map()) {
      return Status::NotFound("cannot descend into non-map at " + path[i]);
    }
    auto it = cur->AsMap().find(path[i]);
    if (it == cur->AsMap().end()) {
      return Status::NotFound("no field " + path[i]);
    }
    cur = &it->second;
  }
  return *cur;
}

/// Sets `value` at a dotted path inside `map`, creating nested maps.
Status SetIntoMap(Value::Map* map, const std::vector<std::string>& path,
                  size_t from, Value value) {
  assert(from < path.size());
  Value::Map* cur = map;
  for (size_t i = from; i + 1 < path.size(); ++i) {
    Value& slot = (*cur)[path[i]];
    if (!slot.is_map()) slot = Value(Value::Map{});
    cur = &slot.AsMap();
  }
  (*cur)[path.back()] = std::move(value);
  return Status::OK();
}

Result<std::vector<std::string>> SplitRef(const std::string& ref) {
  BIOPERA_ASSIGN_OR_RETURN(ocr::Expr e, ocr::Expr::Parse(ref));
  if (e.kind() != ocr::Expr::Kind::kRef) {
    return Status::InvalidArgument("not a data reference: " + ref);
  }
  return e.ref_path();
}

/// Evaluation context rooted at one scope node: resolves wb.*, sibling
/// task outputs, and parallel-body locals (item / index).
class ScopeEvalContext : public ocr::EvalContext {
 public:
  ScopeEvalContext(TaskNode* scope, const TaskNode* current)
      : scope_(scope), current_(current) {}

  Result<Value> Lookup(const std::vector<std::string>& path) const override {
    if (path.empty()) return Status::InvalidArgument("empty reference");
    const std::string& root = path[0];
    if (root == "wb") {
      if (path.size() < 2) return Status::InvalidArgument("bare wb ref");
      Value::Map* wb = scope_->ScopeWhiteboard();
      auto it = wb->find(path[1]);
      if (it == wb->end()) return Status::NotFound("no wb var " + path[1]);
      return Descend(it->second, path, 2);
    }
    if (root == "item" || root == "index") {
      const TaskNode* body =
          current_ != nullptr ? current_->BodyAncestor() : nullptr;
      if (body == nullptr) body = scope_->BodyAncestor();
      if (body == nullptr) {
        return Status::NotFound("no parallel body in scope for " + root);
      }
      if (root == "index") return Value(body->index);
      return Descend(body->item, path, 1);
    }
    // Sibling task outputs: <task>.out.<field>...
    TaskNode* sibling = scope_->FindChild(root);
    if (sibling == nullptr) {
      return Status::NotFound("no task or variable " + root);
    }
    if (path.size() < 2 || path[1] != "out") {
      return Status::InvalidArgument("task reference must use " + root +
                                     ".out.*");
    }
    if (path.size() == 2) return Value(sibling->outputs);
    auto it = sibling->outputs.find(path[2]);
    if (it == sibling->outputs.end()) {
      return Status::NotFound("no output field " + path[2]);
    }
    return Descend(it->second, path, 3);
  }

 private:
  TaskNode* scope_;
  const TaskNode* current_;
};

// ---------------------------------------------------------------------------
// Persistence record codecs: Value::Map <-> marker-framed binary records
// (store/codec.h). Decoding falls back to the legacy Value::FromText form,
// so stores written before the binary codec still open.
// ---------------------------------------------------------------------------

std::string TaskRecordKey(const std::string& path) { return "task/" + path; }

std::string EncodeTaskRecord(const TaskNode& node) {
  Value::Map rec;
  rec["state"] = Value(std::string(TaskStateName(node.state)));
  rec["attempts"] = Value(static_cast<int64_t>(node.attempts));
  if (!node.binding_used.empty()) rec["binding"] = Value(node.binding_used);
  if (!node.outputs.empty()) rec["outputs"] = Value(node.outputs);
  if (node.cost != Duration::Zero()) {
    rec["cost_us"] = Value(node.cost.micros());
  }
  rec["started_us"] = Value(node.started.micros());
  rec["finished_us"] = Value(node.finished.micros());
  if (!node.expansion.is_null()) rec["expansion"] = node.expansion;
  if (node.sub_def != nullptr) rec["sub"] = Value(node.sub_def->name);
  return EncodeValueRecord(Value(std::move(rec)));
}

std::string EncodeWhiteboard(const Value::Map& wb) {
  return EncodeValueRecord(Value(wb));
}

std::string EncodeHeader(const ProcessInstance& inst) {
  Value::Map rec;
  rec["template"] = Value(inst.def().name);
  rec["state"] = Value(std::string(InstanceStateName(inst.state())));
  rec["priority"] = Value(static_cast<int64_t>(inst.priority()));
  rec["cpu_seconds"] = Value(inst.stats().cpu_seconds);
  rec["completed"] =
      Value(static_cast<int64_t>(inst.stats().activities_completed));
  rec["failed"] = Value(static_cast<int64_t>(inst.stats().activities_failed));
  rec["started_us"] = Value(inst.stats().started.micros());
  rec["finished_us"] = Value(inst.stats().finished.micros());
  Value::Map lineage;
  for (const auto& [var, writer] : inst.lineage()) {
    lineage[var] = Value(writer);
  }
  rec["lineage"] = Value(std::move(lineage));
  if (!inst.raised_events().empty()) {
    Value::List events;
    for (const auto& event : inst.raised_events()) {
      events.emplace_back(event);
    }
    rec["events"] = Value(std::move(events));
  }
  return EncodeValueRecord(Value(std::move(rec)));
}

int64_t RecInt(const Value::Map& rec, const std::string& key, int64_t dflt) {
  auto it = rec.find(key);
  if (it == rec.end() || !it->second.is_number()) return dflt;
  return it->second.is_int() ? it->second.AsInt()
                             : static_cast<int64_t>(it->second.AsDouble());
}

double RecDouble(const Value::Map& rec, const std::string& key, double dflt) {
  auto it = rec.find(key);
  if (it == rec.end() || !it->second.is_number()) return dflt;
  return it->second.AsDouble();
}

std::string RecString(const Value::Map& rec, const std::string& key) {
  auto it = rec.find(key);
  return it != rec.end() && it->second.is_string() ? it->second.AsString()
                                                   : std::string();
}

// ---------------------------------------------------------------------------
// Provenance descriptors and row keys
// ---------------------------------------------------------------------------

/// Renders one activity parameter/output value as a short, stable
/// descriptor: scalars verbatim, {first, last} maps as half-open ranges
/// (sequence-queue partitions), anything bulky as size + content digest —
/// lineage rows stay small no matter how large a match set grows, while
/// different contents still yield different descriptors.
std::string DescribeValue(const Value& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return v.AsBool() ? "true" : "false";
  if (v.is_int()) return StrFormat("%lld", static_cast<long long>(v.AsInt()));
  if (v.is_double()) return v.ToText();
  if (v.is_string()) {
    const std::string& s = v.AsString();
    if (s.size() <= 48 && s.find_first_of("\n\r\t") == std::string::npos) {
      return s;
    }
    return StrFormat("len=%zu,fnv64=%016llx", s.size(),
                     static_cast<unsigned long long>(obs::Fnv1a64(s)));
  }
  if (v.is_map()) {
    const Value::Map& m = v.AsMap();
    auto first = m.find("first");
    auto last = m.find("last");
    if (m.size() == 2 && first != m.end() && last != m.end() &&
        first->second.is_int() && last->second.is_int()) {
      return StrFormat("[%lld,%lld)",
                       static_cast<long long>(first->second.AsInt()),
                       static_cast<long long>(last->second.AsInt()));
    }
    return StrFormat("map(%zu):fnv64=%016llx", m.size(),
                     static_cast<unsigned long long>(obs::Fnv1a64(v.ToText())));
  }
  return StrFormat("list(%zu):fnv64=%016llx", v.AsList().size(),
                   static_cast<unsigned long long>(obs::Fnv1a64(v.ToText())));
}

std::vector<std::pair<std::string, std::string>> DescribeValueMap(
    const Value::Map& m) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(m.size());
  for (const auto& [key, value] : m) out.emplace_back(key, DescribeValue(value));
  return out;
}

/// Provenance-space row keys. Attempts are zero-padded so the store's
/// key order is (path, attempt) order, with the in-row sorting before
/// the out-row of the same attempt ("in" < "out").
std::string LineageInKey(const std::string& path, int attempt) {
  return StrFormat("%s/a%04d/in", path.c_str(), attempt);
}
std::string LineageOutKey(const std::string& path, int attempt) {
  return StrFormat("%s/a%04d/out", path.c_str(), attempt);
}

/// Creates, indexes, and attaches one child node under `parent`. Shared
/// by ExpandComposite and RecoverInstance so expansion and recovery stay
/// in lockstep.
TaskNode* AddChildNode(ProcessInstance* inst, TaskNode* parent,
                       const TaskDef* def, std::string path) {
  auto child = std::make_unique<TaskNode>();
  child->def = def;
  child->parent = parent;
  child->path = std::move(path);
  TaskNode* raw = child.get();
  inst->IndexNode(raw);
  parent->children.push_back(std::move(child));
  return raw;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / lifecycle
// ---------------------------------------------------------------------------

Engine::Engine(Simulator* sim, cluster::ClusterSim* cluster,
               RecordStore* store, ActivityRegistry* registry,
               const EngineOptions& options)
    : sim_(sim),
      cluster_(cluster),
      spaces_(store),
      registry_(registry),
      options_(options),
      rng_(options.seed) {
  cluster_->SetListener(this);
  // All engine<->PEC traffic goes through the comms seam. Without an
  // explicit channel the engine owns a plain one (synchronous, lossless —
  // byte-identical to the direct calls it replaced).
  if (options_.channel != nullptr) {
    channel_ = options_.channel;
  } else {
    owned_channel_ = std::make_unique<comms::Channel>();
    channel_ = owned_channel_.get();
  }
  channel_->SetReportHandler(this);
  cluster_->AttachChannel(channel_);
  if (options_.heartbeat_interval > Duration::Zero()) {
    // Lease mode: failure detection runs on heartbeats alone — the
    // cluster stops telling the listener about crashes/repairs directly.
    cluster_->SetSilentCrashes(true);
    cluster_->EnableHeartbeats(options_.heartbeat_interval);
  }
  RecordStore::CheckpointPolicy checkpoint_policy;
  checkpoint_policy.wal_bytes = options_.checkpoint_wal_bytes;
  checkpoint_policy.every_commits = options_.checkpoint_every_commits;
  store->SetCheckpointPolicy(checkpoint_policy);
  if (obs::Observability* obs = options_.observability; obs != nullptr) {
    obs->SetClock(sim_);
    // One EngineOptions field instruments the whole stack.
    cluster_->SetObservability(obs);
    store->SetObservability(obs);
    spans_ = &obs->spans;
    dispatched_metric_ = obs->metrics.GetCounter("engine_tasks_dispatched_total");
    pump_runs_metric_ = obs->metrics.GetCounter("engine_pump_runs_total");
    pump_scanned_metric_ =
        obs->metrics.GetCounter("engine_pump_entries_scanned_total");
    preexec_batches_metric_ =
        obs->metrics.GetCounter("engine_preexec_batches_total");
    preexec_tasks_metric_ =
        obs->metrics.GetCounter("engine_preexec_activities_total");
    preexec_lookahead_metric_ =
        obs->metrics.GetCounter("engine_preexec_lookahead_total");
    completed_metric_ = obs->metrics.GetCounter("engine_tasks_completed_total");
    failed_metric_ = obs->metrics.GetCounter("engine_tasks_failed_total");
    timed_out_metric_ = obs->metrics.GetCounter("engine_jobs_timed_out_total");
    migrations_metric_ = obs->metrics.GetCounter("engine_migrations_total");
    recovered_metric_ = obs->metrics.GetCounter("engine_recovered_tasks_total");
    degraded_total_metric_ =
        obs->metrics.GetCounter("engine_store_degraded_total");
    degraded_retries_metric_ =
        obs->metrics.GetCounter("engine_store_degraded_retries_total");
    degraded_gauge_ = obs->metrics.GetGauge("engine_store_degraded");
    queue_depth_gauge_ = obs->metrics.GetGauge("engine_ready_queue_depth");
    parked_starved_gauge_ =
        obs->metrics.GetGauge("engine_parked_starved_depth");
    parked_suspended_gauge_ =
        obs->metrics.GetGauge("engine_parked_suspended_depth");
    running_jobs_gauge_ = obs->metrics.GetGauge("engine_running_jobs");
    // Task costs span seconds to days: 1s x4 buckets.
    obs::HistogramOptions cost_buckets;
    cost_buckets.first_bound = 1.0;
    task_cost_metric_ =
        obs->metrics.GetHistogram("engine_task_cost_seconds", {}, cost_buckets);
    suspected_metric_ =
        obs->metrics.GetCounter("engine_comms_nodes_suspected_total");
    condemned_metric_ =
        obs->metrics.GetCounter("engine_comms_nodes_condemned_total");
    reconciled_metric_ =
        obs->metrics.GetCounter("engine_comms_nodes_reconciled_total");
    fenced_reports_metric_ =
        obs->metrics.GetCounter("engine_comms_reports_fenced_total");
    dup_reports_metric_ =
        obs->metrics.GetCounter("engine_comms_reports_duplicate_total");
    kill_retries_metric_ =
        obs->metrics.GetCounter("engine_comms_kill_retries_total");
    kill_gave_up_metric_ =
        obs->metrics.GetCounter("engine_comms_kills_abandoned_total");
    suspected_gauge_ = obs->metrics.GetGauge("engine_comms_nodes_suspected");
  }
}

void Engine::EmitInstanceState(const ProcessInstance* inst) {
  if (options_.observability == nullptr) return;
  options_.observability->trace.Emit(
      obs::EventType::kInstanceStateChanged, inst->id(), "", "",
      {{"state", std::string(InstanceStateName(inst->state()))}});
}

void Engine::SyncObsGauges() {
  if (queue_depth_gauge_ == nullptr) return;
  queue_depth_gauge_->Set(
      static_cast<double>(ready_.size() + pump_overflow_.size()));
  parked_starved_gauge_->Set(static_cast<double>(NumParkedStarved()));
  parked_suspended_gauge_->Set(static_cast<double>(NumParkedSuspended()));
  running_jobs_gauge_->Set(static_cast<double>(jobs_.size()));
}

Engine::~Engine() {
  // Another engine (a promoted backup) may have registered after us.
  if (cluster_->listener() == this) cluster_->SetListener(nullptr);
  CancelPendingKills();
  if (lease_check_ != kInvalidEventId) {
    sim_->Cancel(lease_check_);
    lease_check_ = kInvalidEventId;
  }
  if (channel_->report_handler() == this) channel_->SetReportHandler(nullptr);
  cluster_->DetachChannel(channel_);
  spaces_.store()->ClearFlushFailureHandler(this);
}

Status Engine::Startup() {
  if (up_) return Status::FailedPrecondition("server already up");
  Result<std::unique_ptr<sched::SchedulingPolicy>> policy =
      sched::MakePolicy(options_.policy, &rng_);
  BIOPERA_RETURN_IF_ERROR(policy.status());
  policy_ = std::move(*policy);
  up_ = true;
  degraded_ = false;
  if (degraded_event_ != kInvalidEventId) {
    sim_->Cancel(degraded_event_);
    degraded_event_ = kInvalidEventId;
  }
  // Claim write ownership of the store: any engine still holding an older
  // epoch (a partitioned primary after a backup takeover) is fenced off.
  spaces_.set_epoch(spaces_.store()->AcquireWriterEpoch());
  spaces_.store()->SetFlushFailureHandler(
      this, [this](const Status& cause) { OnStoreFlushFailure(cause); });
  // Startup writes many config records and recovery markers; group them
  // into one WAL record.
  RecordStore::CommitScope commit_group(GroupTarget());

  // Discover the cluster topology (the PECs re-register with the server).
  for (const cluster::NodeConfig& node : cluster_->Nodes()) {
    awareness_.RegisterNode(node, sim_->Now());
    if (!cluster_->IsUp(node.name)) {
      awareness_.NodeDown(node.name, sim_->Now());
    } else {
      // Seed the awareness with the current true load; afterwards the
      // adaptive monitor (or raw pushes) keeps it fresh.
      awareness_.UpdateLoad(node.name,
                            cluster_->ExternalLoad(node.name) /
                                std::max(1, node.num_cpus),
                            sim_->Now());
      if (options_.adaptive_monitoring) OnNodeUp(node.name);
    }
    // Record hardware characteristics in the configuration space.
    Value::Map cfg;
    cfg["cpus"] = Value(static_cast<int64_t>(node.num_cpus));
    cfg["speed"] = Value(node.speed);
    cfg["os"] = Value(node.os);
    cfg["classes"] = Value(node.resource_classes);
    BIOPERA_RETURN_IF_ERROR(
        spaces_.PutConfig("node/" + node.name, Value(cfg).ToText()));
  }
  RefreshConfigVersion();

  // Fences restart per incarnation: writer_epoch << 20 | counter — a new
  // epoch makes every old attempt's reports distinguishable from ours.
  next_fence_seq_ = 0;
  if (options_.heartbeat_interval > Duration::Zero()) {
    // Every node starts with a fresh lease; nodes that are actually dead
    // miss their heartbeats and get suspected, then condemned.
    leases_.clear();
    if (suspected_gauge_ != nullptr) suspected_gauge_->Set(0);
    for (const cluster::NodeConfig& node : cluster_->Nodes()) {
      NodeLease lease;
      lease.last_heartbeat = sim_->Now();
      leases_[node.name] = lease;
    }
    ArmLeaseCheck();
  }

  // Restore the instance-id counter.
  Result<std::string> seq = spaces_.GetConfig("next_instance_seq");
  if (seq.ok()) {
    long long v = 1;
    if (ParseInt64(*seq, &v)) next_instance_seq_ = static_cast<uint64_t>(v);
  }

  // Recover every persisted instance.
  for (const std::string& id : spaces_.ListInstances()) {
    Status st = RecoverInstance(id);
    if (!st.ok()) {
      BIOPERA_LOG(kError) << "recovery of " << id << " failed: "
                          << st.ToString();
      return st;
    }
  }
  if (spans_ != nullptr) {
    // Close the server-down window opened at Crash(). A successor engine
    // sharing the Observability context (backup takeover, crash-point
    // harness) re-attaches the window its predecessor left open.
    if (server_down_span_ == 0) {
      server_down_span_ = spans_->FindOpen(obs::SpanKind::kServerDown, "");
    }
    spans_->End(server_down_span_, "recovered");
    server_down_span_ = 0;
  }
  if (options_.observability != nullptr) {
    options_.observability->trace.Emit(
        obs::EventType::kServerStarted, "", "", "",
        {{"instances", StrFormat("%zu", instances_.size())}});
  }
  PumpDispatch();
  SyncObsGauges();
  return Status::OK();
}

void Engine::Crash() {
  if (options_.observability != nullptr) {
    options_.observability->trace.Emit(
        obs::EventType::kServerCrashed, "", "", "",
        {{"jobs_killed", StrFormat("%zu", jobs_.size())}});
  }
  if (spans_ != nullptr) {
    // Every queued attempt and running job dies with the server; instance
    // spans stay open — the server-down window explains the causal gap
    // until recovery re-queues the work.
    for (const auto& [key, entry] : ready_) {
      EndAttemptSpan(entry.attempt_span, "killed");
    }
    for (const auto& [cls, entries] : parked_by_class_) {
      for (const auto& [key, entry] : entries) {
        EndAttemptSpan(entry.attempt_span, "killed");
      }
    }
    for (const auto& [id, entries] : parked_by_instance_) {
      for (const auto& [key, entry] : entries) {
        EndAttemptSpan(entry.attempt_span, "killed");
      }
    }
    for (const ReadyEntry& entry : pump_overflow_) {
      EndAttemptSpan(entry.attempt_span, "killed");
    }
    for (const auto& [job_id, pending] : jobs_) {
      spans_->End(pending.job_span, "killed");
      EndAttemptSpan(pending.attempt_span, "killed");
    }
    spans_->End(degraded_span_, "server_crashed");
    degraded_span_ = 0;
    server_down_span_ = spans_->Begin(obs::SpanKind::kServerDown, "server down");
  }
  up_ = false;
  // Ongoing jobs are stopped when the server dies (paper §5.4, event 4).
  // This is out-of-band teardown, not a control-plane message — the
  // simulated world stops the jobs with the server.
  cluster_->KillAllJobs();
  CancelPendingKills();
  if (lease_check_ != kInvalidEventId) {
    sim_->Cancel(lease_check_);
    lease_check_ = kInvalidEventId;
  }
  if (spans_ != nullptr) {
    for (const auto& [name, lease] : leases_) {
      spans_->End(lease.suspicion_span, "server_crashed");
    }
  }
  leases_.clear();
  if (suspected_gauge_ != nullptr) suspected_gauge_->Set(0);
  monitors_.clear();
  instances_.clear();
  ++instance_generation_;
  ready_.clear();
  parked_by_class_.clear();
  parked_by_instance_.clear();
  woken_classes_.clear();
  pump_overflow_.clear();
  pump_frozen_.clear();
  lookahead_spec_.clear();
  for (const auto& [job_id, pending] : jobs_) {
    if (pending.watchdog != kInvalidEventId) sim_->Cancel(pending.watchdog);
  }
  jobs_.clear();
  NoteJobsMaybeDrained();
  jobs_by_instance_.clear();
  jobs_by_node_.clear();
  awareness_ = monitor::AwarenessModel();
  policy_.reset();
  if (pump_event_ != kInvalidEventId) {
    sim_->Cancel(pump_event_);
    pump_event_ = kInvalidEventId;
  }
  pump_scheduled_ = false;
  degraded_ = false;
  if (degraded_gauge_ != nullptr) degraded_gauge_->Set(0);
  if (degraded_event_ != kInvalidEventId) {
    sim_->Cancel(degraded_event_);
    degraded_event_ = kInvalidEventId;
  }
  spaces_.store()->ClearFlushFailureHandler(this);
  SyncObsGauges();
}

// ---------------------------------------------------------------------------
// Degraded mode & fencing
// ---------------------------------------------------------------------------

void Engine::OnStoreFlushFailure(const Status& cause) {
  if (MaybeHandleFenced(cause)) return;
  if (cause.IsIOError()) EnterDegraded(cause);
}

void Engine::EnterDegraded(const Status& cause) {
  if (!up_ || degraded_) return;
  degraded_ = true;
  degraded_backoff_ = options_.degraded_retry_initial;
  BIOPERA_LOG(kWarning) << "store degraded, dispatch suspended: "
                        << cause.ToString();
  if (degraded_gauge_ != nullptr) {
    degraded_gauge_->Set(1);
    degraded_total_metric_->Increment();
  }
  if (options_.observability != nullptr) {
    options_.observability->trace.Emit(obs::EventType::kStoreDegraded, "", "",
                                       "", {{"reason", cause.ToString()}});
  }
  if (spans_ != nullptr && degraded_span_ == 0) {
    degraded_span_ = spans_->Begin(obs::SpanKind::kStoreDegraded, "store degraded",
                                   0, 0, "", "", "",
                                   {{"reason", cause.ToString()}});
  }
  ScheduleDegradedRetry();
}

void Engine::ScheduleDegradedRetry() {
  degraded_event_ = sim_->ScheduleDaemon(degraded_backoff_,
                                         [this] { RetryDegradedCommit(); });
}

void Engine::RetryDegradedCommit() {
  degraded_event_ = kInvalidEventId;
  if (!up_ || !degraded_) return;
  if (degraded_retries_metric_ != nullptr) {
    degraded_retries_metric_->Increment();
  }
  RecordStore* store = spaces_.store();
  // First land the retained commit group, then prove the disk accepts
  // fresh writes with a probe record (a direct WAL append).
  Status st = store->Flush();
  if (st.ok()) {
    st = spaces_.PutConfig("store/last_recovery_probe",
                           StrFormat("%.0f", sim_->Now().SinceEpoch().ToSeconds()));
  }
  if (MaybeHandleFenced(st)) return;
  if (!st.ok()) {
    degraded_backoff_ =
        std::min(degraded_backoff_ * 2, options_.degraded_retry_max);
    ScheduleDegradedRetry();
    return;
  }
  degraded_ = false;
  if (degraded_gauge_ != nullptr) degraded_gauge_->Set(0);
  if (options_.observability != nullptr) {
    options_.observability->trace.Emit(obs::EventType::kStoreRecovered, "",
                                       "", "", {});
  }
  if (spans_ != nullptr) {
    spans_->End(degraded_span_, "recovered");
    degraded_span_ = 0;
  }
  BIOPERA_LOG(kInfo) << "store writes succeed again; resuming dispatch";
  // Entries parked while degraded never saw a capacity event; re-probe all.
  WakeAllClasses();
  PumpDispatch();
}

bool Engine::MaybeHandleFenced(const Status& st) {
  if (!RecordStore::IsFenced(st)) return false;
  if (!up_ || fenced_pending_) return true;
  // Step down outside the failing call stack: callers may still hold
  // pointers into the state TearDownFenced clears.
  fenced_pending_ = true;
  sim_->ScheduleDaemon(Duration::Seconds(0), [this] {
    fenced_pending_ = false;
    TearDownFenced();
  });
  return true;
}

void Engine::TearDownFenced() {
  if (!up_) return;
  BIOPERA_LOG(kWarning) << "writer epoch " << spaces_.epoch()
                        << " fenced: another server took over; stepping down";
  if (options_.observability != nullptr) {
    options_.observability->trace.Emit(
        obs::EventType::kServerFenced, "", "", "",
        {{"stale_epoch", StrFormat("%llu", static_cast<unsigned long long>(
                                               spaces_.epoch()))}});
  }
  up_ = false;
  degraded_ = false;
  if (degraded_event_ != kInvalidEventId) {
    sim_->Cancel(degraded_event_);
    degraded_event_ = kInvalidEventId;
  }
  // Unlike Crash(), do NOT kill cluster jobs: the engine that fenced us
  // owns them now (it registered as the cluster listener when it booted).
  monitors_.clear();
  instances_.clear();
  ++instance_generation_;
  ready_.clear();
  parked_by_class_.clear();
  parked_by_instance_.clear();
  woken_classes_.clear();
  pump_overflow_.clear();
  pump_frozen_.clear();
  lookahead_spec_.clear();
  for (const auto& [job_id, pending] : jobs_) {
    if (pending.watchdog != kInvalidEventId) sim_->Cancel(pending.watchdog);
  }
  jobs_.clear();
  NoteJobsMaybeDrained();
  jobs_by_instance_.clear();
  jobs_by_node_.clear();
  awareness_ = monitor::AwarenessModel();
  policy_.reset();
  if (pump_event_ != kInvalidEventId) {
    sim_->Cancel(pump_event_);
    pump_event_ = kInvalidEventId;
  }
  pump_scheduled_ = false;
  spaces_.store()->ClearFlushFailureHandler(this);
  SyncObsGauges();
}

Result<std::string> Engine::ScrubStore() {
  if (!up_) return Status::Unavailable("server is down");
  BIOPERA_ASSIGN_OR_RETURN(RecordStore::ScrubReport report,
                           spaces_.store()->Scrub());
  return report.ToText();
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

Status Engine::RegisterTemplate(const ProcessDef& def) {
  BIOPERA_RETURN_IF_ERROR(ocr::ValidateProcess(def));
  RecordStore::CommitScope commit_group(GroupTarget());
  if (Status st = spaces_.PutTemplate(def.name, ocr::PrintOcr(def));
      !st.ok()) {
    MaybeHandleFenced(st);
    return st;
  }
  // Retire (but keep alive) any cached parse: existing instances hold
  // pointers into it; new activations late-bind to the fresh text.
  auto it = template_cache_.find(def.name);
  if (it != template_cache_.end()) {
    retired_defs_.push_back(std::move(it->second));
    template_cache_.erase(it);
  }
  return Status::OK();
}

std::vector<std::string> Engine::ListTemplates() const {
  return spaces_.ListTemplates();
}

Result<const ProcessDef*> Engine::ResolveTemplate(const std::string& name) {
  auto it = template_cache_.find(name);
  if (it != template_cache_.end()) return it->second.get();
  BIOPERA_ASSIGN_OR_RETURN(std::string text, spaces_.GetTemplate(name));
  BIOPERA_ASSIGN_OR_RETURN(ProcessDef def, ocr::ParseOcr(text));
  auto owned = std::make_unique<ProcessDef>(std::move(def));
  const ProcessDef* ptr = owned.get();
  template_cache_[name] = std::move(owned);
  return ptr;
}

// ---------------------------------------------------------------------------
// Instance control
// ---------------------------------------------------------------------------

Result<std::string> Engine::StartProcess(const std::string& template_name,
                                         const Value::Map& args,
                                         int priority) {
  if (!up_) return Status::Unavailable("server is down");
  RecordStore::CommitScope commit_group(GroupTarget());
  BIOPERA_ASSIGN_OR_RETURN(const ProcessDef* def,
                           ResolveTemplate(template_name));
  std::string id = StrFormat("%s-%06llu", template_name.c_str(),
                             static_cast<unsigned long long>(
                                 next_instance_seq_++));
  BIOPERA_RETURN_IF_ERROR(
      spaces_.PutConfig("next_instance_seq",
                        StrFormat("%llu", static_cast<unsigned long long>(
                                              next_instance_seq_))));

  auto inst = std::make_unique<ProcessInstance>(id, def);
  inst->set_priority(priority);
  inst->stats().started = sim_->Now();
  for (const auto& [key, value] : args) {
    inst->whiteboard()[key] = value;
  }
  ProcessInstance* raw = inst.get();
  instances_[id] = std::move(inst);
  if (spans_ != nullptr) {
    raw->set_span_id(spans_->Begin(
        obs::SpanKind::kInstance, id, /*parent=*/0, /*link=*/0,
        /*instance=*/id, /*task=*/"", /*node=*/"",
        {{"template", template_name},
         {"priority", StrFormat("%d", priority)}}));
  }

  WriteBatch batch;
  PersistHeader(raw, &batch);
  PersistWhiteboard(raw, raw->root(), &batch);
  BIOPERA_RETURN_IF_ERROR(EvaluateScope(raw, raw->root(), &batch));
  BIOPERA_RETURN_IF_ERROR(MaybeCompleteScope(raw, raw->root(), &batch));
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  AppendHistory(id, "started template=" + template_name);
  EmitInstanceState(raw);
  PumpDispatch();
  return id;
}

Status Engine::Suspend(const std::string& instance_id) {
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  if (inst->state() != InstanceState::kRunning) {
    return Status::FailedPrecondition("instance not running");
  }
  inst->set_state(InstanceState::kSuspended);
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  PersistHeader(inst, &batch);
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  AppendHistory(instance_id, "suspended");
  EmitInstanceState(inst);
  return Status::OK();
}

Status Engine::Resume(const std::string& instance_id) {
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  if (inst->state() != InstanceState::kSuspended) {
    return Status::FailedPrecondition("instance not suspended");
  }
  inst->set_state(InstanceState::kRunning);
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  PersistHeader(inst, &batch);
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  AppendHistory(instance_id, "resumed");
  EmitInstanceState(inst);
  WakeInstance(instance_id);
  PumpDispatch();
  return Status::OK();
}

Status Engine::Abort(const std::string& instance_id) {
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  // Kill this instance's running jobs.
  std::vector<cluster::JobId> to_kill;
  if (auto it = jobs_by_instance_.find(instance_id);
      it != jobs_by_instance_.end()) {
    to_kill.assign(it->second.begin(), it->second.end());
  }
  for (cluster::JobId job_id : to_kill) {
    const PendingJob& doomed = jobs_.at(job_id);
    SendKill(doomed.node, job_id, doomed.fence);
    TakeJob(job_id, /*failed=*/false, "killed");
  }
  DropParkedForInstance(instance_id);
  inst->set_state(InstanceState::kAborted);
  if (spans_ != nullptr) {
    spans_->End(inst->span_id(), "aborted");
    inst->set_span_id(0);
  }
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  PersistHeader(inst, &batch);
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  AppendHistory(instance_id, "aborted");
  EmitInstanceState(inst);
  SyncObsGauges();
  return Status::OK();
}

Status Engine::Restart(const std::string& instance_id) {
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  inst->set_state(InstanceState::kRunning);
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  // Re-queue permanently failed and stuck work; completed activities keep
  // their checkpointed results. Outstanding jobs of this instance are
  // killed and re-scheduled (the paper's event 10: a restart immediately
  // re-schedules TEUs that never reported).
  std::vector<cluster::JobId> stale;
  if (auto it = jobs_by_instance_.find(instance_id);
      it != jobs_by_instance_.end()) {
    stale.assign(it->second.begin(), it->second.end());
  }
  for (cluster::JobId job_id : stale) {
    const PendingJob& doomed = jobs_.at(job_id);
    SendKill(doomed.node, job_id, doomed.fence);
    TakeJob(job_id, /*failed=*/false, "killed");
  }
  // Entries parked while the instance was suspended are dispatchable again.
  WakeInstance(instance_id);
  inst->ForEachNode([&](TaskNode* node) {
    switch (node->state) {
      case TaskState::kFailed:
      case TaskState::kRetryWait:
      case TaskState::kRunning:
        node->attempts = 0;
        if (node->kind() == TaskKind::kActivity) {
          inst->SetTaskState(node, TaskState::kReady);
          EnqueueReady(inst, node);
        } else {
          // Composite: children re-queue themselves; mark running again.
          inst->SetTaskState(node, TaskState::kRunning);
        }
        PersistTask(inst, node, &batch);
        break;
      case TaskState::kSkipped:
        // Dead paths may have been skipped because their source failed;
        // reset and let re-evaluation decide again.
        inst->SetTaskState(node, TaskState::kInactive);
        PersistTask(inst, node, &batch);
        break;
      default:
        break;
    }
  });
  PersistHeader(inst, &batch);
  // Re-run navigation over every active scope: connectors whose sources
  // are already complete must re-activate the tasks we just reset.
  BIOPERA_RETURN_IF_ERROR(ReevaluateAll(inst, &batch));
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  AppendHistory(instance_id, "restarted");
  EmitInstanceState(inst);
  PumpDispatch();
  return Status::OK();
}

Status Engine::ReevaluateAll(ProcessInstance* inst, WriteBatch* batch) {
  // Bottom-up over composite scopes so child completions bubble upward.
  std::function<Status(TaskNode*)> visit = [&](TaskNode* scope) -> Status {
    for (auto& child : scope->children) {
      if (!child->children.empty() &&
          child->state == TaskState::kRunning) {
        BIOPERA_RETURN_IF_ERROR(visit(child.get()));
      }
    }
    if (scope->is_root() || scope->state == TaskState::kRunning) {
      BIOPERA_RETURN_IF_ERROR(EvaluateScope(inst, scope, batch));
      BIOPERA_RETURN_IF_ERROR(MaybeCompleteScope(inst, scope, batch));
    }
    return Status::OK();
  };
  return visit(inst->root());
}

void Engine::DiscardSubtree(ProcessInstance* inst, TaskNode* node,
                            WriteBatch* batch) {
  // Kill any outstanding jobs under this subtree first. Only this
  // instance's jobs are examined (per-instance index), in JobId order.
  std::vector<cluster::JobId> stale;
  if (auto it = jobs_by_instance_.find(inst->id());
      it != jobs_by_instance_.end()) {
    for (cluster::JobId job_id : it->second) {
      TaskNode* owner = inst->FindByPath(jobs_.at(job_id).path);
      for (TaskNode* walk = owner; walk != nullptr; walk = walk->parent) {
        if (walk == node) {
          stale.push_back(job_id);
          break;
        }
      }
    }
  }
  for (cluster::JobId job_id : stale) {
    const PendingJob& doomed = jobs_.at(job_id);
    SendKill(doomed.node, job_id, doomed.fence);
    TakeJob(job_id, /*failed=*/false, "killed");
  }
  std::function<void(TaskNode*)> discard = [&](TaskNode* n) {
    for (auto& child : n->children) {
      discard(child.get());
      spaces_.BatchDeleteInstanceRecord(batch, inst->id(),
                                        "task/" + child->path);
      if (child->own_whiteboard != nullptr) {
        spaces_.BatchDeleteInstanceRecord(batch, inst->id(),
                                          "wb/" + child->path);
      }
      inst->UnindexNode(child.get());
    }
    n->children.clear();
  };
  discard(node);
}

Status Engine::Invalidate(const std::string& instance_id,
                          const std::string& task_name) {
  if (!up_) return Status::Unavailable("server is down");
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  if (inst->state() == InstanceState::kAborted) {
    return Status::FailedPrecondition("instance aborted");
  }
  TaskNode* target = inst->root()->FindChild(task_name);
  if (target == nullptr) {
    return Status::NotFound("no top-level task " + task_name);
  }
  // Transitive control-flow closure over the top-level connectors.
  std::set<std::string> affected = {task_name};
  bool grew = true;
  while (grew) {
    grew = false;
    for (const ocr::ControlConnector& conn : inst->def().connectors) {
      if (affected.contains(conn.source) && !affected.contains(conn.target)) {
        affected.insert(conn.target);
        grew = true;
      }
    }
  }
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  for (const std::string& name : affected) {
    TaskNode* node = inst->root()->FindChild(name);
    if (node == nullptr || node->state == TaskState::kInactive) continue;
    DiscardSubtree(inst, node, &batch);
    inst->SetTaskState(node, TaskState::kInactive);
    node->attempts = 0;
    node->outputs.clear();
    node->expansion = Value();
    node->sub_def = nullptr;
    node->own_whiteboard.reset();
    node->connectors = nullptr;
    PersistTask(inst, node, &batch);
  }
  if (inst->state() != InstanceState::kSuspended) {
    inst->set_state(InstanceState::kRunning);
  }
  inst->stats().finished = TimePoint();
  PersistHeader(inst, &batch);
  AppendHistory(instance_id,
                StrFormat("invalidated %s and %zu downstream task(s)",
                          task_name.c_str(), affected.size() - 1));
  // Upstream results are intact; re-evaluation re-activates the tail.
  BIOPERA_RETURN_IF_ERROR(ReevaluateAll(inst, &batch));
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  EmitInstanceState(inst);
  PumpDispatch();
  return Status::OK();
}

Status Engine::Archive(const std::string& instance_id) {
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  if (inst->state() == InstanceState::kRunning ||
      inst->state() == InstanceState::kSuspended) {
    return Status::FailedPrecondition(
        "instance still active; abort or let it finish first");
  }
  RecordStore::CommitScope commit_group(GroupTarget());
  BIOPERA_RETURN_IF_ERROR(spaces_.DeleteInstance(instance_id));
  AppendHistory(instance_id, "archived");
  instances_.erase(instance_id);
  ++instance_generation_;
  DropParkedForInstance(instance_id);
  return Status::OK();
}

Status Engine::RaiseEvent(const std::string& instance_id,
                          const std::string& event) {
  if (!up_) return Status::Unavailable("server is down");
  ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  if (inst->raised_events().contains(event)) return Status::OK();
  inst->raised_events().insert(event);
  RecordStore::CommitScope commit_group(GroupTarget());
  AppendHistory(instance_id, "event raised: " + event);
  WriteBatch batch;
  PersistHeader(inst, &batch);
  // Release every task gated on this event.
  std::vector<TaskNode*> waiting;
  inst->ForEachNode([&](TaskNode* node) {
    if (node->state == TaskState::kEventWait && node->def != nullptr &&
        node->def->wait_event == event) {
      waiting.push_back(node);
    }
  });
  for (TaskNode* node : waiting) {
    inst->SetTaskState(node, TaskState::kInactive);
    BIOPERA_RETURN_IF_ERROR(ActivateTask(inst, node, &batch));
  }
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  PumpDispatch();
  return Status::OK();
}

Status Engine::CompensateSphere(ProcessInstance* inst, TaskNode* scope,
                                WriteBatch* batch) {
  AppendHistory(inst->id(),
                StrFormat("sphere %s failed; running compensation",
                          scope->path.c_str()));
  // Completed activities with undo actions, in reverse completion order.
  std::vector<TaskNode*> done;
  std::function<void(TaskNode*)> collect = [&](TaskNode* n) {
    for (auto& child : n->children) {
      collect(child.get());
      if (child->kind() == TaskKind::kActivity &&
          child->state == TaskState::kDone && child->def != nullptr &&
          !child->def->compensation_binding.empty()) {
        done.push_back(child.get());
      }
    }
  };
  collect(scope);
  std::stable_sort(done.begin(), done.end(),
                   [](const TaskNode* a, const TaskNode* b) {
                     return a->finished > b->finished;
                   });
  bool compensation_failed = false;
  for (TaskNode* node : done) {
    Result<ActivityFn> fn =
        registry_->Find(node->def->compensation_binding);
    ActivityInput input;
    input.params = node->outputs;  // the undo action sees what was produced
    Result<ActivityOutput> out =
        fn.ok() ? (*fn)(input) : Result<ActivityOutput>(fn.status());
    if (!out.ok()) {
      AppendHistory(inst->id(),
                    StrFormat("compensation of %s FAILED: %s",
                              node->path.c_str(),
                              out.status().ToString().c_str()));
      compensation_failed = true;
      break;
    }
    inst->stats().cpu_seconds += out->cost.ToSeconds();
    AppendHistory(inst->id(),
                  StrFormat("compensated %s via %s", node->path.c_str(),
                            node->def->compensation_binding.c_str()));
  }
  DiscardSubtree(inst, scope, batch);
  ++inst->stats().activities_failed;
  ++scope->attempts;
  PersistHeader(inst, batch);
  if (!compensation_failed &&
      scope->attempts <= scope->def->failure.max_retries) {
    AppendHistory(inst->id(),
                  StrFormat("re-running sphere %s (attempt %d)",
                            scope->path.c_str(), scope->attempts + 1));
    BIOPERA_RETURN_IF_ERROR(ExpandComposite(inst, scope, batch));
    PersistTask(inst, scope, batch);
    BIOPERA_RETURN_IF_ERROR(EvaluateScope(inst, scope, batch));
    return MaybeCompleteScope(inst, scope, batch);
  }
  PersistTask(inst, scope, batch);
  // Exhausted (or an undo action itself failed): regular failure path.
  // HandleTaskFailure sees a composite and routes to kFailed/ignore.
  return HandleTaskFailure(inst, scope,
                           compensation_failed
                               ? "sphere compensation failed"
                               : "sphere retries exhausted",
                           batch);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

ProcessInstance* Engine::FindInstance(const std::string& instance_id) {
  auto it = instances_.find(instance_id);
  return it == instances_.end() ? nullptr : it->second.get();
}

const ProcessInstance* Engine::FindInstance(
    const std::string& instance_id) const {
  auto it = instances_.find(instance_id);
  return it == instances_.end() ? nullptr : it->second.get();
}

Result<InstanceSummary> Engine::Summary(const std::string& instance_id) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  InstanceSummary s;
  s.id = instance_id;
  s.template_name = inst->def().name;
  s.state = inst->state();
  s.stats = inst->stats();
  // For in-flight instances report wall time so far.
  if (s.stats.finished < s.stats.started) s.stats.finished = sim_->Now();
  s.tasks_total = inst->NumNodes();
  s.tasks_done = inst->CountInState(TaskState::kDone);
  s.tasks_running = inst->CountInState(TaskState::kRunning);
  s.tasks_ready = inst->CountInState(TaskState::kReady);
  s.tasks_failed = inst->CountInState(TaskState::kFailed);
  return s;
}

std::vector<InstanceSummary> Engine::ListInstances() const {
  std::vector<InstanceSummary> out;
  for (const auto& [id, inst] : instances_) {
    Result<InstanceSummary> s = Summary(id);
    if (s.ok()) out.push_back(*s);
  }
  return out;
}

Result<InstanceState> Engine::GetInstanceState(
    const std::string& instance_id) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  return inst->state();
}

Result<Value> Engine::GetWhiteboardValue(const std::string& instance_id,
                                         const std::string& var) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  auto it = inst->whiteboard().find(var);
  if (it == inst->whiteboard().end()) {
    return Status::NotFound("no whiteboard variable " + var);
  }
  return it->second;
}

Result<std::string> Engine::GetLineage(const std::string& instance_id,
                                       const std::string& var) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  auto it = inst->lineage().find(var);
  if (it == inst->lineage().end()) {
    return Status::NotFound("no lineage for " + var);
  }
  return it->second;
}

std::vector<std::string> Engine::GetHistory(
    const std::string& instance_id) const {
  return spaces_.History(instance_id);
}

Engine::MonitoringStats Engine::GetMonitoringStats() const {
  MonitoringStats stats;
  for (const auto& [node, mon] : monitors_) {
    stats.samples_taken += mon->samples_taken();
    stats.reports_sent += mon->reports_sent();
  }
  return stats;
}

std::vector<Engine::RunningJob> Engine::GetRunningJobs() const {
  std::vector<RunningJob> out;
  for (const auto& [job_id, pending] : jobs_) {
    out.push_back({job_id, pending.instance_id, pending.path, pending.node,
                   pending.cost});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------------

Status Engine::ExpandComposite(ProcessInstance* inst, TaskNode* node,
                               WriteBatch* batch) {
  const TaskDef* def = node->def;
  switch (node->kind()) {
    case TaskKind::kBlock: {
      node->connectors = &def->connectors;
      for (const TaskDef& sub : def->subtasks) {
        AddChildNode(inst, node, &sub, node->path + "." + sub.name);
      }
      break;
    }
    case TaskKind::kParallel: {
      ScopeEvalContext ctx(node->parent, node);
      BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> ref,
                               SplitRef(def->list_input));
      BIOPERA_ASSIGN_OR_RETURN(Value list, ctx.Lookup(ref));
      if (!list.is_list()) {
        return Status::InvalidArgument(
            node->path + ": parallel LIST input " + def->list_input +
            " is not a list (got " + std::string(list.TypeName()) + ")");
      }
      node->expansion = list;
      const auto& items = list.AsList();
      for (size_t i = 0; i < items.size(); ++i) {
        TaskNode* child = AddChildNode(
            inst, node, &def->body[0],
            StrFormat("%s[%zu]", node->path.c_str(), i));
        child->item = items[i];
        child->index = static_cast<int64_t>(i);
      }
      break;
    }
    case TaskKind::kSubprocess: {
      // Late binding: the template is resolved only now, so a re-registered
      // definition takes effect for instances expanded afterwards (§3.1).
      BIOPERA_ASSIGN_OR_RETURN(const ProcessDef* sub,
                               ResolveTemplate(def->subprocess_name));
      node->sub_def = sub;
      node->connectors = &sub->connectors;
      node->own_whiteboard = std::make_unique<Value::Map>();
      for (const ocr::DataObjectDef& d : sub->whiteboard) {
        (*node->own_whiteboard)[d.name] = d.initial;
      }
      // Input mappings initialize same-named whiteboard variables.
      ScopeEvalContext ctx(node->parent, node);
      for (const ocr::Mapping& m : def->inputs) {
        BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> from,
                                 SplitRef(m.from));
        BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> to, SplitRef(m.to));
        Result<Value> v = ctx.Lookup(from);
        if (!v.ok() && v.status().IsNotFound()) continue;  // optional input
        BIOPERA_RETURN_IF_ERROR(v.status());
        // to = "in.<param>": parameter name doubles as wb variable name.
        BIOPERA_RETURN_IF_ERROR(
            SetIntoMap(node->own_whiteboard.get(), to, 1, *v));
      }
      for (const TaskDef& sub_task : sub->tasks) {
        AddChildNode(inst, node, &sub_task, node->path + "/" + sub_task.name);
      }
      PersistWhiteboard(inst, node, batch);
      break;
    }
    case TaskKind::kActivity:
      return Status::Internal("activities have no children");
  }
  return Status::OK();
}

Status Engine::ActivateTask(ProcessInstance* inst, TaskNode* node,
                            WriteBatch* batch) {
  // ON_EVENT gate: the task is eligible but waits for its trigger.
  if (node->def != nullptr && !node->def->wait_event.empty() &&
      !inst->raised_events().contains(node->def->wait_event)) {
    inst->SetTaskState(node, TaskState::kEventWait);
    PersistTask(inst, node, batch);
    AppendHistory(inst->id(), StrFormat("task %s waiting for event '%s'",
                                        node->path.c_str(),
                                        node->def->wait_event.c_str()));
    return Status::OK();
  }
  node->started = sim_->Now();
  if (node->kind() == TaskKind::kActivity) {
    inst->SetTaskState(node, TaskState::kReady);
    PersistTask(inst, node, batch);
    EnqueueReady(inst, node);
    return Status::OK();
  }
  inst->SetTaskState(node, TaskState::kRunning);
  BIOPERA_RETURN_IF_ERROR(ExpandComposite(inst, node, batch));
  PersistTask(inst, node, batch);
  BIOPERA_RETURN_IF_ERROR(EvaluateScope(inst, node, batch));
  // An empty expansion (or empty subprocess) completes immediately.
  BIOPERA_RETURN_IF_ERROR(MaybeCompleteScope(inst, node, batch));
  return Status::OK();
}

Status Engine::SkipTask(ProcessInstance* inst, TaskNode* node,
                        WriteBatch* batch) {
  inst->SetTaskState(node, TaskState::kSkipped);
  node->finished = sim_->Now();
  PersistTask(inst, node, batch);
  return Status::OK();
}

Status Engine::EvaluateScope(ProcessInstance* inst, TaskNode* scope,
                             WriteBatch* batch) {
  // Parallel scopes: all bodies start unconditionally.
  if (scope->kind() == TaskKind::kParallel && !scope->is_root()) {
    for (auto& child : scope->children) {
      if (child->state == TaskState::kInactive) {
        BIOPERA_RETURN_IF_ERROR(ActivateTask(inst, child.get(), batch));
      }
    }
    return Status::OK();
  }
  if (scope->connectors == nullptr) return Status::OK();

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& child : scope->children) {
      if (child->state != TaskState::kInactive) continue;
      // Collect incoming connectors of this child.
      bool all_evaluated = true;
      bool any_true = false;
      bool has_incoming = false;
      for (const ControlConnector& conn : *scope->connectors) {
        if (conn.target != child->def->name) continue;
        has_incoming = true;
        TaskNode* source = scope->FindChild(conn.source);
        if (source == nullptr) {
          return Status::Internal("connector source missing: " + conn.source);
        }
        if (!IsTerminal(source->state)) {
          all_evaluated = false;
          break;
        }
        if (source->state == TaskState::kSkipped ||
            source->state == TaskState::kFailed) {
          continue;  // dead path: connector is false
        }
        bool value = true;
        if (!conn.condition.empty()) {
          BIOPERA_ASSIGN_OR_RETURN(ocr::Expr expr,
                                   ocr::Expr::Parse(conn.condition));
          ScopeEvalContext ctx(scope, child.get());
          BIOPERA_ASSIGN_OR_RETURN(Value v, expr.Eval(ctx));
          value = v.Truthy();
        }
        any_true = any_true || value;
      }
      if (!has_incoming) {
        // Start task of the scope: activates as soon as the scope runs.
        BIOPERA_RETURN_IF_ERROR(ActivateTask(inst, child.get(), batch));
        changed = true;
        continue;
      }
      if (!all_evaluated) continue;
      if (any_true) {
        BIOPERA_RETURN_IF_ERROR(ActivateTask(inst, child.get(), batch));
      } else {
        BIOPERA_RETURN_IF_ERROR(SkipTask(inst, child.get(), batch));
      }
      changed = true;
    }
  }
  return Status::OK();
}

Status Engine::ApplyOutputMappings(ProcessInstance* inst, TaskNode* node,
                                   WriteBatch* batch) {
  if (node->def == nullptr || node->def->outputs.empty()) return Status::OK();
  // Parallel bodies contribute via collection, not mappings.
  if (node->index >= 0) return Status::OK();
  TaskNode* scope = node->parent->ScopeOwner();
  Value::Map* wb = scope->ScopeWhiteboard();
  bool wrote_wb = false;
  for (const ocr::Mapping& m : node->def->outputs) {
    BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> from, SplitRef(m.from));
    BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> to, SplitRef(m.to));
    // from = "out.<field>..."
    Result<Value> v = Descend(Value(node->outputs), from, 1);
    if (!v.ok() && v.status().IsNotFound()) continue;  // absent output field
    BIOPERA_RETURN_IF_ERROR(v.status());
    if (to[0] != "wb" || to.size() < 2) {
      return Status::InvalidArgument(node->path + ": output target " + m.to +
                                     " must be wb.*");
    }
    BIOPERA_RETURN_IF_ERROR(SetIntoMap(wb, to, 1, std::move(*v)));
    inst->lineage()[to[1]] = node->path;
    wrote_wb = true;
  }
  if (wrote_wb) PersistWhiteboard(inst, scope, batch);
  return Status::OK();
}

Status Engine::CompleteTask(ProcessInstance* inst, TaskNode* node,
                            Value::Map outputs, Duration cost,
                            WriteBatch* batch) {
  node->outputs = std::move(outputs);
  node->cost = cost;
  inst->SetTaskState(node, TaskState::kDone);
  node->finished = sim_->Now();
  if (node->kind() == TaskKind::kActivity) {
    inst->stats().cpu_seconds += cost.ToSeconds();
    ++inst->stats().activities_completed;
  }
  BIOPERA_RETURN_IF_ERROR(ApplyOutputMappings(inst, node, batch));
  PersistTask(inst, node, batch);
  PersistHeader(inst, batch);

  TaskNode* parent = node->parent;
  if (parent == nullptr) return Status::OK();
  // Re-evaluate the surrounding scope: our completion may enable siblings.
  TaskNode* scope = parent;
  BIOPERA_RETURN_IF_ERROR(EvaluateScope(inst, scope, batch));
  return MaybeCompleteScope(inst, scope, batch);
}

Status Engine::MaybeCompleteScope(ProcessInstance* inst, TaskNode* scope,
                                  WriteBatch* batch) {
  if (scope->state != TaskState::kRunning && !scope->is_root()) {
    return Status::OK();
  }
  bool all_terminal = true;
  bool any_failed = false;
  for (const auto& child : scope->children) {
    if (!IsTerminal(child->state)) {
      all_terminal = false;
      break;
    }
    if (child->state == TaskState::kFailed) any_failed = true;
  }
  if (!all_terminal) return Status::OK();

  if (scope->is_root()) {
    if (inst->state() == InstanceState::kRunning ||
        inst->state() == InstanceState::kSuspended) {
      inst->set_state(any_failed ? InstanceState::kFailed
                                 : InstanceState::kDone);
      inst->stats().finished = sim_->Now();
      PersistHeader(inst, batch);
      AppendHistory(inst->id(), any_failed ? "failed" : "completed");
      EmitInstanceState(inst);
      // The instance span closes only on success; a kFailed instance may
      // still be RESTARTed, and its makespan should cover that recovery.
      if (spans_ != nullptr && !any_failed) {
        spans_->End(inst->span_id(), "completed");
        inst->set_span_id(0);
      }
    }
    return Status::OK();
  }

  if (any_failed) {
    if (scope->kind() == TaskKind::kBlock && scope->def != nullptr &&
        scope->def->atomic) {
      return CompensateSphere(inst, scope, batch);
    }
    return HandleTaskFailure(inst, scope, "nested task failed", batch);
  }

  switch (scope->kind()) {
    case TaskKind::kBlock: {
      return CompleteTask(inst, scope, {}, Duration::Zero(), batch);
    }
    case TaskKind::kParallel: {
      // Collect body results in index order.
      Value::List collected;
      for (const auto& child : scope->children) {
        if (child->state == TaskState::kSkipped) {
          collected.emplace_back();  // null placeholder
        } else if (child->def->kind == TaskKind::kSubprocess) {
          collected.emplace_back(child->own_whiteboard == nullptr
                                     ? Value::Map{}
                                     : *child->own_whiteboard);
        } else {
          collected.emplace_back(child->outputs);
        }
      }
      if (!scope->def->collect_output.empty()) {
        BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> to,
                                 SplitRef(scope->def->collect_output));
        if (to[0] != "wb" || to.size() < 2) {
          return Status::InvalidArgument(scope->path +
                                         ": COLLECT target must be wb.*");
        }
        TaskNode* owner = scope->parent->ScopeOwner();
        BIOPERA_RETURN_IF_ERROR(SetIntoMap(owner->ScopeWhiteboard(), to, 1,
                                           Value(std::move(collected))));
        inst->lineage()[to[1]] = scope->path;
        PersistWhiteboard(inst, owner, batch);
      }
      Value::Map outputs;
      outputs["count"] = Value(static_cast<int64_t>(scope->children.size()));
      return CompleteTask(inst, scope, std::move(outputs), Duration::Zero(),
                          batch);
    }
    case TaskKind::kSubprocess: {
      // The subprocess's output structure is its final whiteboard.
      Value::Map outputs = *scope->own_whiteboard;
      return CompleteTask(inst, scope, std::move(outputs), Duration::Zero(),
                          batch);
    }
    case TaskKind::kActivity:
      return Status::Internal("activity cannot be a scope");
  }
  return Status::OK();
}

Status Engine::HandleTaskFailure(ProcessInstance* inst, TaskNode* node,
                                 const std::string& reason,
                                 WriteBatch* batch) {
  ++inst->stats().activities_failed;
  ++node->attempts;
  AppendHistory(inst->id(),
                StrFormat("task %s failed (attempt %d): %s",
                          node->path.c_str(), node->attempts,
                          reason.c_str()));
  const ocr::FailurePolicy& policy =
      node->def != nullptr ? node->def->failure : ocr::FailurePolicy{};

  const bool can_retry = node->kind() == TaskKind::kActivity &&
                         node->attempts <= policy.max_retries;
  if (failed_metric_ != nullptr) {
    failed_metric_->Increment();
    options_.observability->trace.Emit(
        obs::EventType::kTaskFailed, inst->id(), node->path, "",
        {{"reason", reason},
         {"attempt", StrFormat("%d", node->attempts)},
         {"action", can_retry               ? "retry"
                    : policy.ignore_failure ? "ignored"
                                            : "failed"}});
  }
  if (can_retry) {
    if (!policy.alternative_binding.empty()) {
      node->binding_used = policy.alternative_binding;
    }
    inst->SetTaskState(node, TaskState::kRetryWait);
    PersistTask(inst, node, batch);
    std::string instance_id = inst->id();
    std::string path = node->path;
    sim_->Schedule(policy.retry_backoff, [this, instance_id, path] {
      if (!up_) return;
      ProcessInstance* inst2 = FindInstance(instance_id);
      if (inst2 == nullptr) return;
      TaskNode* node2 = inst2->FindByPath(path);
      if (node2 == nullptr || node2->state != TaskState::kRetryWait) return;
      inst2->SetTaskState(node2, TaskState::kReady);
      RecordStore::CommitScope commit_group(GroupTarget());
      WriteBatch retry_batch;
      PersistTask(inst2, node2, &retry_batch);
      Status st = Commit(&retry_batch);
      if (!st.ok()) {
        BIOPERA_LOG(kError) << "retry commit failed: " << st.ToString();
        return;
      }
      EnqueueReady(inst2, node2);
      PumpDispatch();
    });
    return Status::OK();
  }

  if (policy.ignore_failure) {
    // Spheres-of-atomicity boundary: the failure is absorbed and the task
    // completes with an empty output structure.
    return CompleteTask(inst, node, {}, Duration::Zero(), batch);
  }

  inst->SetTaskState(node, TaskState::kFailed);
  node->finished = sim_->Now();
  PersistTask(inst, node, batch);
  PersistHeader(inst, batch);
  TaskNode* parent = node->parent;
  if (parent == nullptr) return Status::OK();
  BIOPERA_RETURN_IF_ERROR(EvaluateScope(inst, parent, batch));
  return MaybeCompleteScope(inst, parent, batch);
}

Result<ActivityInput> Engine::BuildInput(ProcessInstance* inst,
                                         TaskNode* node) {
  (void)inst;
  ActivityInput input;
  ScopeEvalContext ctx(node->parent, node);
  for (const ocr::Mapping& m : node->def->inputs) {
    BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> from, SplitRef(m.from));
    BIOPERA_ASSIGN_OR_RETURN(std::vector<std::string> to, SplitRef(m.to));
    Result<Value> v = ctx.Lookup(from);
    if (!v.ok() && v.status().IsNotFound()) {
      input.params[to[1]] = Value();  // optional input: null
      continue;
    }
    BIOPERA_RETURN_IF_ERROR(v.status());
    BIOPERA_RETURN_IF_ERROR(SetIntoMap(&input.params, to, 1, std::move(*v)));
  }
  return input;
}

// ---------------------------------------------------------------------------
// Dispatching
// ---------------------------------------------------------------------------

void Engine::EnqueueReady(ProcessInstance* inst, TaskNode* node) {
  ReadyEntry entry;
  entry.instance_id = inst->id();
  entry.path = node->path;
  entry.priority = inst->priority();
  entry.inst_hint = inst;
  entry.engine_gen = instance_generation_;
  entry.node_hint = node;
  entry.structure_gen = inst->structure_generation();
  if (node->def != nullptr) entry.resource_class = node->def->resource_class;
  // A lookahead speculation for this task may already be computed; the
  // scan's input-equality gate decides whether it is still valid.
  if (!lookahead_spec_.empty()) {
    auto spec = lookahead_spec_.find({entry.instance_id, entry.path});
    if (spec != lookahead_spec_.end()) {
      entry.pre_exec = std::move(spec->second);
      lookahead_spec_.erase(spec);
    }
  }
  BeginAttemptSpan(&entry, inst, node);
  PushEntry(std::move(entry));
}

void Engine::PushEntry(ReadyEntry entry) {
  entry.seq = next_ready_seq_++;
  if (pumping_) {
    // The running pump scans mid-pump enqueues at its tail, in enqueue
    // order (the old deque's append-while-scanning behavior).
    pump_overflow_.push_back(std::move(entry));
    return;
  }
  ReadyKey key = entry.key();
  ready_.emplace(key, std::move(entry));
}

void Engine::MarkClassWoken(const std::string& resource_class) {
  woken_classes_.insert(resource_class);
  // Capacity changed mid-pump: entries of this class later in the scan
  // must get a fresh placement attempt instead of the frozen short-cut.
  if (pumping_) pump_frozen_.erase(resource_class);
}

void Engine::WakeClassesForNode(const std::string& node_name) {
  if (parked_by_class_.empty()) return;
  const monitor::AwarenessModel::NodeView* view = awareness_.Find(node_name);
  for (const auto& [cls, queue] : parked_by_class_) {
    if (queue.empty()) continue;
    // Unknown node: wake everything rather than risk a lost wakeup.
    if (view == nullptr || view->config.ServesClass(cls)) MarkClassWoken(cls);
  }
}

void Engine::WakeAllClasses() {
  for (const auto& [cls, queue] : parked_by_class_) {
    if (!queue.empty()) MarkClassWoken(cls);
  }
}

void Engine::WakeInstance(const std::string& instance_id) {
  auto it = parked_by_instance_.find(instance_id);
  if (it == parked_by_instance_.end()) return;
  for (auto& [key, entry] : it->second) {
    ready_.emplace(key, std::move(entry));
  }
  parked_by_instance_.erase(it);
}

void Engine::DropParkedForInstance(const std::string& instance_id) {
  if (auto it = parked_by_instance_.find(instance_id);
      it != parked_by_instance_.end()) {
    for (auto& [key, entry] : it->second) {
      EndAttemptSpan(entry.attempt_span, "stale");
    }
    parked_by_instance_.erase(it);
  }
  // Entries in ready_/parked_by_class_ are dropped lazily: the next scan
  // sees the instance gone (or not running) and discards them — ending
  // their attempt spans as it goes.
}

size_t Engine::NumParkedStarved() const {
  size_t n = 0;
  for (const auto& [cls, queue] : parked_by_class_) n += queue.size();
  return n;
}

size_t Engine::NumParkedSuspended() const {
  size_t n = 0;
  for (const auto& [id, queue] : parked_by_instance_) n += queue.size();
  return n;
}

size_t Engine::QueueDepth() const {
  return ready_.size() + pump_overflow_.size() + NumParkedStarved() +
         NumParkedSuspended();
}

Engine::DispatchStats Engine::GetDispatchStats() const {
  DispatchStats stats;
  stats.ready = ready_.size() + pump_overflow_.size();
  stats.parked_starved = NumParkedStarved();
  stats.parked_suspended = NumParkedSuspended();
  stats.running_jobs = jobs_.size();
  if (pump_runs_metric_ != nullptr) {
    stats.pump_runs = pump_runs_metric_->value();
    stats.entries_scanned = pump_scanned_metric_->value();
    stats.dispatched = dispatched_metric_->value();
  }
  stats.busy_virtual_us = busy_virtual_us_;
  if (busy_open_) {
    // The open window counts up to "now" so per-barrier deltas are
    // monotone even while jobs are still in flight.
    stats.busy_virtual_us +=
        static_cast<uint64_t>((sim_->Now() - busy_since_).micros());
  }
  return stats;
}

void Engine::IndexJob(cluster::JobId job_id, const PendingJob& pending) {
  jobs_by_instance_[pending.instance_id].insert(job_id);
  jobs_by_node_[pending.node].insert(job_id);
}

void Engine::NoteJobsNonEmpty() {
  if (!busy_open_ && !jobs_.empty()) {
    busy_open_ = true;
    busy_since_ = sim_->Now();
  }
}

void Engine::NoteJobsMaybeDrained() {
  if (busy_open_ && jobs_.empty()) {
    busy_open_ = false;
    busy_virtual_us_ +=
        static_cast<uint64_t>((sim_->Now() - busy_since_).micros());
  }
}

Engine::PendingJob Engine::TakeJob(
    std::map<cluster::JobId, PendingJob>::iterator it, bool failed,
    std::string_view outcome) {
  cluster::JobId job_id = it->first;
  PendingJob pending = std::move(it->second);
  jobs_.erase(it);
  NoteJobsMaybeDrained();
  if (spans_ != nullptr) {
    spans_->End(pending.job_span, std::string(outcome));
    spans_->End(pending.attempt_span, std::string(outcome));
  }
  auto inst_it = jobs_by_instance_.find(pending.instance_id);
  if (inst_it != jobs_by_instance_.end()) {
    inst_it->second.erase(job_id);
    if (inst_it->second.empty()) jobs_by_instance_.erase(inst_it);
  }
  auto node_it = jobs_by_node_.find(pending.node);
  if (node_it != jobs_by_node_.end()) {
    node_it->second.erase(job_id);
    if (node_it->second.empty()) jobs_by_node_.erase(node_it);
  }
  if (pending.watchdog != kInvalidEventId) {
    // No-op if the watchdog already fired (Cancel tolerates spent ids).
    sim_->Cancel(pending.watchdog);
    pending.watchdog = kInvalidEventId;
  }
  awareness_.JobFinishedOrFailed(pending.node, failed);
  // A CPU freed on this node: classes parked for capacity can try again.
  WakeClassesForNode(pending.node);
  return pending;
}

Engine::PendingJob Engine::TakeJob(cluster::JobId job_id, bool failed,
                                   std::string_view outcome) {
  return TakeJob(jobs_.find(job_id), failed, outcome);
}

uint64_t Engine::InstanceSpanId(ProcessInstance* inst) {
  if (spans_ == nullptr) return 0;
  if (inst->span_id() == 0) {
    // After a crash the rebuilt instance lost its span id: re-attach to
    // the span left open before the crash so one instance keeps one
    // makespan span, or open a fresh one if it fell off the sink.
    uint64_t id = spans_->FindOpen(obs::SpanKind::kInstance, inst->id());
    if (id == 0) {
      id = spans_->Begin(obs::SpanKind::kInstance, inst->id(), /*parent=*/0,
                         /*link=*/0, inst->id());
    }
    inst->set_span_id(id);
  }
  return inst->span_id();
}

void Engine::BeginAttemptSpan(ReadyEntry* entry, ProcessInstance* inst,
                              TaskNode* node) {
  if (spans_ == nullptr) return;
  entry->attempt_span = spans_->Begin(
      obs::SpanKind::kAttempt, node->path, InstanceSpanId(inst),
      /*link=*/node->last_attempt_span, inst->id(), node->path, "",
      {{"class",
        node->def != nullptr ? node->def->resource_class : std::string()},
       {"attempt", StrFormat("%d", node->attempts + 1)}});
  node->last_attempt_span = entry->attempt_span;
}

void Engine::EndAttemptSpan(uint64_t attempt_span, std::string_view outcome) {
  if (spans_ == nullptr || attempt_span == 0) return;
  spans_->End(attempt_span, std::string(outcome));
}

void Engine::SchedulePumpRetry() {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  pump_event_ = sim_->Schedule(options_.dispatch_retry, [this] {
    pump_scheduled_ = false;
    pump_event_ = kInvalidEventId;
    // Periodic full re-probe: capacity estimates may have drifted without
    // a wake event (the old pump re-tried every queued entry here too).
    WakeAllClasses();
    PumpDispatch();
  });
}

void Engine::PreExecuteReady() {
  if (options_.executor == nullptr || storage_failing_) return;
  std::vector<std::function<void()>> tasks;
  // Mirror the scan's validation: only entries it would execute are
  // worth speculating on. Entries that fail validation here are left
  // for the scan, which reports failures in deterministic order.
  auto speculate = [&](ReadyEntry& entry) {
    if (entry.cached.has_value() || entry.pre_exec != nullptr) return;
    ProcessInstance* inst = FindInstance(entry.instance_id);
    if (inst == nullptr || inst->state() != InstanceState::kRunning) {
      return;
    }
    TaskNode* node = inst->FindByPath(entry.path);
    if (node == nullptr || node->state != TaskState::kReady) return;
    std::string binding =
        node->binding_used.empty() ? node->def->binding : node->binding_used;
    Result<ActivityFn> fn = registry_->Find(binding);
    if (!fn.ok()) return;
    Result<ActivityInput> input = BuildInput(inst, node);
    if (!input.ok()) return;
    auto state = std::make_shared<PreExecState>();
    state->input = std::move(*input);
    entry.pre_exec = state;
    tasks.push_back([state, fn = std::move(*fn)] {
      state->output = fn(state->input);
    });
  };
  for (auto& [key, entry] : ready_) speculate(entry);
  if (options_.preexec_lookahead > 0) {
    // Look ahead past this pump: inactive activity nodes are the ready
    // frontier of *future* pumps — navigation marks them ready as their
    // predecessors complete. Their inputs are assembled as they read
    // right now; if navigation changes an input before the node is
    // scanned (a data dependency on a still-pending output), the scan's
    // equality gate discards the speculation and re-runs inline, so
    // lookahead depth never affects results — only how much of the
    // frontier's pure compute overlaps with simulated time. The walk is
    // budgeted to bound wasted work on low-hit-rate graphs.
    size_t budget = static_cast<size_t>(options_.preexec_lookahead) * 16;
    // Drop speculations nothing will consume: their instance finished
    // (or was archived) before the node ever became ready.
    for (auto it = lookahead_spec_.begin(); it != lookahead_spec_.end();) {
      ProcessInstance* inst = FindInstance(it->first.first);
      if (inst == nullptr || inst->state() != InstanceState::kRunning) {
        it = lookahead_spec_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& [id, inst] : instances_) {
      if (budget == 0) break;
      if (inst->state() != InstanceState::kRunning) continue;
      inst->ForEachNode([&](TaskNode* node) {
        if (budget == 0) return;
        if (node->def == nullptr || node->def->binding.empty()) return;
        if (node->state != TaskState::kInactive) return;
        std::pair<std::string, std::string> key{inst->id(), node->path};
        if (lookahead_spec_.contains(key)) return;
        Result<ActivityFn> fn = registry_->Find(node->def->binding);
        if (!fn.ok()) return;
        Result<ActivityInput> input = BuildInput(inst.get(), node);
        if (!input.ok()) return;
        auto state = std::make_shared<PreExecState>();
        state->input = std::move(*input);
        lookahead_spec_.emplace(std::move(key), state);
        tasks.push_back([state, fn = std::move(*fn)] {
          state->output = fn(state->input);
        });
        if (preexec_lookahead_metric_ != nullptr) {
          preexec_lookahead_metric_->Increment();
        }
        --budget;
      });
    }
  }
  if (tasks.empty()) return;
  if (preexec_batches_metric_ != nullptr) {
    preexec_batches_metric_->Increment();
    preexec_tasks_metric_->Increment(tasks.size());
  }
  {
    // Pool-batched kernel execution is `kernel` wall time, not `pump`.
    obs::WallProfile::Scope kernel_scope(options_.wall_profile,
                                         obs::WallProfile::kKernel);
    options_.executor->RunBatch(std::move(tasks));
  }
}

bool Engine::PreExecuteOverflow() {
  if (options_.executor == nullptr || storage_failing_) return false;
  std::vector<std::function<void()>> tasks;
  for (ReadyEntry& entry : pump_overflow_) {
    if (entry.cached.has_value() || entry.pre_exec != nullptr) continue;
    ProcessInstance* inst = FindInstance(entry.instance_id);
    if (inst == nullptr || inst->state() != InstanceState::kRunning) {
      continue;
    }
    TaskNode* node = inst->FindByPath(entry.path);
    if (node == nullptr || node->state != TaskState::kReady) continue;
    std::string binding =
        node->binding_used.empty() ? node->def->binding : node->binding_used;
    Result<ActivityFn> fn = registry_->Find(binding);
    if (!fn.ok()) continue;
    Result<ActivityInput> input = BuildInput(inst, node);
    if (!input.ok()) continue;
    auto state = std::make_shared<PreExecState>();
    state->input = std::move(*input);
    entry.pre_exec = state;
    tasks.push_back([state, fn = std::move(*fn)] {
      state->output = fn(state->input);
    });
  }
  if (tasks.empty()) return false;
  if (preexec_batches_metric_ != nullptr) {
    preexec_batches_metric_->Increment();
    preexec_tasks_metric_->Increment(tasks.size());
  }
  {
    // Pool-batched kernel execution is `kernel` wall time, not `pump`.
    obs::WallProfile::Scope kernel_scope(options_.wall_profile,
                                         obs::WallProfile::kKernel);
    options_.executor->RunBatch(std::move(tasks));
  }
  return true;
}

namespace {

/// Inline kernel execution, attributed to the `kernel` wall bucket so the
/// barrier-stall profiler separates compute from dispatcher navigation.
Result<ActivityOutput> RunKernelScoped(obs::WallProfile* profile,
                                       const ActivityFn& fn,
                                       const ActivityInput& input) {
  obs::WallProfile::Scope scope(profile, obs::WallProfile::kKernel);
  return fn(input);
}

}  // namespace

void Engine::PumpDispatch() {
  if (!up_ || degraded_) return;  // degraded: no dispatch until writes heal
  // Wall-clock self-time of the whole pump is `pump`; the kernel and
  // store scopes opened inside subtract themselves out, so the three
  // buckets never double-count (see obs::WallProfile).
  obs::WallProfile::Scope pump_scope(options_.wall_profile,
                                     obs::WallProfile::kPump);
  // One commit group per pump: state transitions for all entries handled
  // in this pass coalesce into (at most) a few WAL records, bounded by
  // the pre-dispatch flush barriers below.
  RecordStore::CommitScope commit_group(GroupTarget());
  if (pump_runs_metric_ != nullptr) pump_runs_metric_->Increment();
  // Real-thread execution beneath virtual time: run all ready activity
  // kernels concurrently and join before the scan consumes anything, so
  // scan order — and with it every commit, span, lineage record and
  // trace event — is exactly the inline order.
  PreExecuteReady();
  pumping_ = true;
  pump_frozen_.clear();
  bool starved = false;

  enum class Verdict { kContinue, kStopDegraded, kStopFenced };

  // Processes one entry exactly as the sort-every-pump loop did: resolve
  // the instance and node (cached handles, validated by generation
  // counters), run the activity implementation on first scan, place, and
  // dispatch. Entries that cannot dispatch park — under their resource
  // class when placement declined, under their instance when it is
  // suspended — instead of returning to the scan set, so the next pump's
  // work is proportional to what can actually dispatch.
  auto scan_entry = [&](ReadyEntry entry) -> Verdict {
    if (pump_scanned_metric_ != nullptr) pump_scanned_metric_->Increment();
    ProcessInstance* inst =
        entry.engine_gen == instance_generation_ ? entry.inst_hint : nullptr;
    if (inst == nullptr) {
      inst = FindInstance(entry.instance_id);
      if (inst == nullptr) {
        EndAttemptSpan(entry.attempt_span, "stale");
        return Verdict::kContinue;  // instance gone
      }
      entry.inst_hint = inst;
      entry.engine_gen = instance_generation_;
      entry.node_hint = nullptr;
      entry.structure_gen = 0;
    }
    if (inst->state() == InstanceState::kSuspended) {
      ReadyKey key = entry.key();
      parked_by_instance_[entry.instance_id].emplace(key, std::move(entry));
      return Verdict::kContinue;
    }
    if (inst->state() != InstanceState::kRunning) {
      EndAttemptSpan(entry.attempt_span, "stale");
      return Verdict::kContinue;  // aborted/failed
    }
    TaskNode* node = entry.structure_gen == inst->structure_generation()
                         ? entry.node_hint
                         : nullptr;
    if (node == nullptr) {
      node = inst->FindByPath(entry.path);
      if (node == nullptr) {
        EndAttemptSpan(entry.attempt_span, "stale");
        return Verdict::kContinue;  // subtree discarded
      }
      entry.node_hint = node;
      entry.structure_gen = inst->structure_generation();
    }
    if (node->state != TaskState::kReady) {
      EndAttemptSpan(entry.attempt_span, "stale");
      return Verdict::kContinue;
    }

    // Execute the activity implementation (idempotent; may be a cached
    // result from a previous declined placement).
    if (!entry.cached.has_value()) {
      std::string binding =
          node->binding_used.empty() ? node->def->binding : node->binding_used;
      Result<ActivityFn> fn = registry_->Find(binding);
      Result<ActivityInput> input = BuildInput(inst, node);
      // A speculative pool execution is consumed only when the freshly
      // assembled input equals the one it ran with; earlier entries in
      // this scan may have navigated state that changes the input, in
      // which case the activity re-runs inline (it is pure, so an equal
      // input guarantees the inline result).
      std::shared_ptr<PreExecState> pre = std::move(entry.pre_exec);
      bool use_pre = pre != nullptr && pre->output.has_value() &&
                     fn.ok() && input.ok() && !storage_failing_ &&
                     pre->input.params == input->params;
      Result<ActivityOutput> output =
          use_pre ? std::move(*pre->output)
          : !fn.ok() ? Result<ActivityOutput>(fn.status())
          : !input.ok()
              ? Result<ActivityOutput>(input.status())
              : (storage_failing_
                     ? Result<ActivityOutput>(Status::IOError(
                           "storage full: cannot write activity results"))
                     : RunKernelScoped(options_.wall_profile, *fn, *input));
      if (!output.ok()) {
        EndAttemptSpan(entry.attempt_span, "failed");
        WriteBatch batch;
        Status st = HandleTaskFailure(inst, node,
                                      output.status().ToString(), &batch);
        if (st.ok()) st = Commit(&batch);
        if (!st.ok()) {
          BIOPERA_LOG(kError) << "failure handling error: " << st.ToString();
        }
        return Verdict::kContinue;
      }
      if (spans_ != nullptr && entry.input_desc.empty()) {
        // First execution of this attempt: summarize the bound inputs for
        // the lineage record written at dispatch below.
        entry.input_desc = DescribeValueMap(input->params);
      }
      entry.cached = std::move(*output);
    }

    const std::string cls = node->def->resource_class;
    if (pump_frozen_.contains(cls)) {
      // The head of this class already declined placement this pump and no
      // capacity has freed since, so the outcome is known; skipping the
      // attempt is safe because every policy leaves its internal state
      // untouched on a decline.
      entry.resource_class = cls;
      starved = true;
      ReadyKey key = entry.key();
      parked_by_class_[cls].emplace(key, std::move(entry));
      return Verdict::kContinue;
    }
    sched::PlacementRequest request;
    request.resource_class = cls;
    request.estimated_work = entry.cached->cost;
    std::string target = policy_->Place(request, awareness_);
    if (!entry.avoid_node.empty() && target == entry.avoid_node) {
      // The watchdog suspects this node; ask the policy for a second
      // opinion with the suspect artificially loaded.
      awareness_.JobDispatched(entry.avoid_node);
      std::string alternative = policy_->Place(request, awareness_);
      awareness_.JobFinishedOrFailed(entry.avoid_node, /*failed=*/false);
      if (!alternative.empty()) target = alternative;
    }
    if (target.empty()) {
      // No capacity anywhere in this class: park the entry and freeze the
      // class for the rest of the pump. A capacity event (job finished,
      // node up, load report, config change) wakes it again.
      entry.resource_class = cls;
      starved = true;
      pump_frozen_.insert(cls);
      ReadyKey key = entry.key();
      parked_by_class_[cls].emplace(key, std::move(entry));
      return Verdict::kContinue;
    }
    // Flush barrier: dispatching the job makes state externally visible,
    // so everything committed so far must be durable first.
    if (RecordStore* group_store = GroupTarget(); group_store != nullptr) {
      Status flush_status = group_store->Flush();
      if (!flush_status.ok()) {
        BIOPERA_LOG(kError) << "pre-dispatch flush failed: "
                            << flush_status.ToString();
        ReadyKey key = entry.key();
        ready_.emplace(key, std::move(entry));
        if (MaybeHandleFenced(flush_status)) return Verdict::kStopFenced;
        if (flush_status.IsIOError()) {
          // Stop dispatching entirely: the store is degraded. The entries
          // (and their cached results) stay queued; the degraded retry
          // pumps again once writes succeed.
          EnterDegraded(flush_status);
          return Verdict::kStopDegraded;
        }
        starved = true;
        return Verdict::kContinue;
      }
    }
    cluster::JobId job_id = next_job_id_++;
    // Fence this attempt: reports are applied only when they echo the
    // token, so duplicated/zombie reports of other attempts cannot
    // double-apply (docs/COMMS.md).
    const uint64_t fence = (spaces_.epoch() << 20) | ++next_fence_seq_;
    comms::Message launch;
    launch.type = comms::MessageType::kLaunch;
    launch.node = target;
    launch.job = job_id;
    launch.fence = fence;
    launch.work = entry.cached->cost;
    Status st = channel_->SendCommand(launch);
    if (!st.ok()) {
      // Raced with a node failure or an unreachable command link; keep
      // queued (not parked: placement succeeded, so the class is not
      // capacity-starved) and try elsewhere at the next pump.
      if (st.IsUnavailable()) {
        // The connect refusal is itself a detection signal: stop placing
        // work on the node until its command link heals (OnLinkChanged)
        // or, in lease mode, until the detector reconciles it.
        awareness_.NodeDown(target, sim_->Now());
      }
      starved = true;
      ReadyKey key = entry.key();
      ready_.emplace(key, std::move(entry));
      return Verdict::kContinue;
    }
    PendingJob pending{entry.instance_id, entry.path, entry.cached->fields,
                       entry.cached->cost, target};
    pending.fence = fence;
    pending.attempt_span = entry.attempt_span;
    pending.attempt = node->attempts + 1;
    if (spans_ != nullptr) {
      pending.input_desc = entry.input_desc;
      pending.params = entry.cached->provenance;
      pending.job_span = spans_->Begin(
          obs::SpanKind::kJob, entry.path, entry.attempt_span, /*link=*/0,
          entry.instance_id, entry.path, target,
          {{"job", StrFormat("%llu",
                             static_cast<unsigned long long>(job_id))},
           {"cost_us", StrFormat("%lld", static_cast<long long>(
                                             entry.cached->cost.micros()))}});
    }
    pending.watchdog = ArmJobWatchdog(job_id, entry.cached->cost);
    IndexJob(job_id, pending);
    jobs_[job_id] = std::move(pending);
    NoteJobsNonEmpty();
    inst->SetTaskState(node, TaskState::kRunning);
    node->started = sim_->Now();
    awareness_.JobDispatched(target);
    WriteBatch batch;
    PersistTask(inst, node, &batch);
    RecordLineageDispatch(entry, node, target, node->attempts + 1, &batch);
    st = Commit(&batch);
    if (!st.ok()) {
      BIOPERA_LOG(kError) << "dispatch commit failed: " << st.ToString();
    }
    AppendHistory(entry.instance_id,
                  StrFormat("dispatched %s to %s", entry.path.c_str(),
                            target.c_str()));
    if (dispatched_metric_ != nullptr) {
      dispatched_metric_->Increment();
      options_.observability->trace.Emit(
          obs::EventType::kTaskDispatched, entry.instance_id, entry.path,
          target,
          {{"job", StrFormat("%llu",
                             static_cast<unsigned long long>(job_id))},
           {"cost_us",
            StrFormat("%lld", static_cast<long long>(
                                  entry.cached->cost.micros()))}});
    }
    return Verdict::kContinue;
  };

  // Round 1: cursor-based merge of the ready map with the parked queues
  // of woken classes, in (priority, seq) order — the exact scan order of
  // the old sort-every-pump deque, minus the entries known not to
  // dispatch. The cursor only moves forward, so entries parked or
  // re-queued by the scan itself are not revisited within this pump.
  Verdict verdict = Verdict::kContinue;
  using EntryMap = std::map<ReadyKey, ReadyEntry>;
  ReadyKey cursor{0, 0};
  bool have_cursor = false;
  while (verdict == Verdict::kContinue) {
    EntryMap* source = nullptr;
    EntryMap::iterator best;
    auto consider = [&](EntryMap& m) {
      auto it = have_cursor ? m.upper_bound(cursor) : m.begin();
      if (it == m.end()) return;
      if (source == nullptr || it->first < best->first) {
        source = &m;
        best = it;
      }
    };
    consider(ready_);
    for (auto wit = woken_classes_.begin(); wit != woken_classes_.end();) {
      auto pit = parked_by_class_.find(*wit);
      if (pit == parked_by_class_.end() || pit->second.empty()) {
        // Nothing parked here any more: the wake is consumed.
        if (pit != parked_by_class_.end()) parked_by_class_.erase(pit);
        wit = woken_classes_.erase(wit);
        continue;
      }
      if (!pump_frozen_.contains(*wit)) consider(pit->second);
      ++wit;
    }
    if (source == nullptr) break;
    cursor = best->first;
    have_cursor = true;
    ReadyEntry entry = std::move(best->second);
    source->erase(best);
    verdict = scan_entry(std::move(entry));
  }
  // Round 2: entries enqueued while the pump ran (navigation inside
  // completion and failure handling), in enqueue order — exactly where
  // the old deque's mid-pump appends were scanned. With an executor,
  // each overflow wave — the next ready frontier — is first pre-executed
  // as one pool batch (up to preexec_lookahead waves per pump), so
  // speculation extends beyond the frontier PreExecuteReady covered; the
  // drain itself keeps the exact inline order, and the input-equality
  // gate in scan_entry keeps the results byte-identical.
  int lookahead = options_.preexec_lookahead;
  while (verdict == Verdict::kContinue && !pump_overflow_.empty()) {
    if (lookahead > 0 && PreExecuteOverflow()) --lookahead;
    size_t wave = pump_overflow_.size();
    while (verdict == Verdict::kContinue && wave-- > 0 &&
           !pump_overflow_.empty()) {
      ReadyEntry entry = std::move(pump_overflow_.front());
      pump_overflow_.pop_front();
      verdict = scan_entry(std::move(entry));
    }
  }
  pumping_ = false;
  // A mid-scan stop (fenced/degraded) leaves overflow entries; return
  // them to the ready map for the recovery pump.
  while (!pump_overflow_.empty()) {
    ReadyEntry entry = std::move(pump_overflow_.front());
    pump_overflow_.pop_front();
    ReadyKey key = entry.key();
    ready_.emplace(key, std::move(entry));
  }
  // Classes that declined this pump sleep until the next capacity event.
  for (const std::string& cls : pump_frozen_) woken_classes_.erase(cls);
  pump_frozen_.clear();
  if (verdict == Verdict::kStopFenced) return;  // stepping down
  SyncObsGauges();
  // Retry while anything is capacity-starved (parked suspended-instance
  // entries alone do not warrant a timer: only RESUME frees them).
  if (starved || NumParkedStarved() > 0) SchedulePumpRetry();
}

EventId Engine::ArmJobWatchdog(cluster::JobId job_id, Duration cost) {
  if (options_.job_timeout_factor <= 0) return kInvalidEventId;
  Duration timeout =
      cost * options_.job_timeout_factor + options_.job_timeout_slack;
  return sim_->ScheduleDaemon(timeout, [this, job_id] {
    if (!up_) return;
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return;  // reported in time
    // This event is the watchdog: clear the handle before TakeJob so it
    // does not try to cancel the event that is currently running.
    it->second.watchdog = kInvalidEventId;
    PendingJob pending = TakeJob(it, /*failed=*/true, "timed_out");
    // The PEC never reported (lost report, silent stall, partition):
    // declare the job lost and re-schedule (paper event 10, automated).
    // The kill carries this attempt's fence: even if the node is alive
    // and finishes later, its zombie report is fenced off.
    SendKill(pending.node, job_id, pending.fence);
    AppendHistory(pending.instance_id,
                  StrFormat("job for %s on %s timed out; re-scheduling",
                            pending.path.c_str(), pending.node.c_str()));
    if (timed_out_metric_ != nullptr) {
      timed_out_metric_->Increment();
      options_.observability->trace.Emit(
          obs::EventType::kJobTimedOut, pending.instance_id, pending.path,
          pending.node,
          {{"job", StrFormat("%llu",
                             static_cast<unsigned long long>(job_id))}});
    }
    RequeueLostJob(std::move(pending), "timed_out");
  });
}

void Engine::RequeueLostJob(PendingJob pending, std::string_view outcome) {
  ProcessInstance* inst = FindInstance(pending.instance_id);
  if (inst == nullptr) return;
  TaskNode* node = inst->FindByPath(pending.path);
  if (node == nullptr || node->state != TaskState::kRunning) return;
  inst->SetTaskState(node, TaskState::kReady);
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  PersistTask(inst, node, &batch);
  RecordLineageOutcome(pending, outcome, /*with_outputs=*/false, &batch);
  Status st = Commit(&batch);
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "lost-job requeue commit failed: " << st.ToString();
    return;
  }
  ReadyEntry entry;
  entry.instance_id = pending.instance_id;
  entry.path = pending.path;
  entry.cached = ActivityOutput{pending.outputs, pending.cost,
                                std::move(pending.params)};
  entry.input_desc = std::move(pending.input_desc);
  entry.avoid_node = pending.node;
  entry.priority = inst->priority();
  entry.inst_hint = inst;
  entry.engine_gen = instance_generation_;
  entry.node_hint = node;
  entry.structure_gen = inst->structure_generation();
  if (node->def != nullptr) entry.resource_class = node->def->resource_class;
  BeginAttemptSpan(&entry, inst, node);
  PushEntry(std::move(entry));
  PumpDispatch();
}

Result<Duration> Engine::EstimateRemainingWork(
    const std::string& instance_id) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  // Outstanding jobs contribute their known costs.
  double seconds = 0;
  if (auto it = jobs_by_instance_.find(instance_id);
      it != jobs_by_instance_.end()) {
    for (cluster::JobId job_id : it->second) {
      seconds += jobs_.at(job_id).cost.ToSeconds();
    }
  }
  // Ready/waiting activities are estimated at the mean completed cost.
  double mean = inst->stats().activities_completed > 0
                    ? inst->stats().cpu_seconds /
                          static_cast<double>(
                              inst->stats().activities_completed)
                    : 0;
  size_t outstanding = inst->ActivitiesInState(TaskState::kReady) +
                       inst->ActivitiesInState(TaskState::kRetryWait) +
                       inst->ActivitiesInState(TaskState::kEventWait) +
                       inst->ActivitiesInState(TaskState::kInactive);
  // Repeated addition (not mean * outstanding) keeps the result
  // bit-identical to the old per-node accumulation.
  for (size_t i = 0; i < outstanding; ++i) seconds += mean;
  return Duration::Seconds(seconds);
}

Result<std::vector<Engine::TaskRow>> Engine::ListTasks(
    const std::string& instance_id) const {
  const ProcessInstance* inst = FindInstance(instance_id);
  if (inst == nullptr) return Status::NotFound("no instance " + instance_id);
  std::map<std::string, std::string> nodes_by_path;
  if (auto it = jobs_by_instance_.find(instance_id);
      it != jobs_by_instance_.end()) {
    for (cluster::JobId job_id : it->second) {
      const PendingJob& pending = jobs_.at(job_id);
      nodes_by_path[pending.path] = pending.node;
    }
  }
  std::vector<TaskRow> rows;
  inst->ForEachNode([&](const TaskNode* node) {
    TaskRow row;
    row.path = node->path;
    row.state = node->state;
    auto it = nodes_by_path.find(node->path);
    if (it != nodes_by_path.end()) row.node = it->second;
    row.started = node->started;
    row.finished = node->finished;
    row.cost = node->cost;
    row.attempts = node->attempts;
    rows.push_back(std::move(row));
  });
  return rows;
}

void Engine::CheckMigrations() {
  if (!options_.migration_enabled || !up_) return;
  RecordStore::CommitScope commit_group(GroupTarget());
  // Saturation is a per-node property: use the node index so only jobs on
  // saturated nodes are examined, then probe placements in JobId order
  // (stateful policies — round-robin, random — see the same call sequence
  // as the old full-table scan).
  std::vector<cluster::JobId> candidates;
  for (const auto& [node_name, job_ids] : jobs_by_node_) {
    const monitor::AwarenessModel::NodeView* view = awareness_.Find(node_name);
    if (view == nullptr || !view->up) continue;
    // Node saturated by external users: our nice jobs make ~no progress.
    if (view->reported_load < 0.999) continue;
    candidates.insert(candidates.end(), job_ids.begin(), job_ids.end());
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<cluster::JobId> to_migrate;
  for (cluster::JobId job_id : candidates) {
    const PendingJob& pending = jobs_.at(job_id);
    // Only migrate if somewhere else has a free CPU right now.
    ProcessInstance* inst = FindInstance(pending.instance_id);
    if (inst == nullptr || inst->state() != InstanceState::kRunning) continue;
    TaskNode* node = inst->FindByPath(pending.path);
    if (node == nullptr) continue;
    sched::PlacementRequest request;
    request.resource_class = node->def->resource_class;
    request.estimated_work = pending.cost;
    std::string target = policy_->Place(request, awareness_);
    if (!target.empty() && target != pending.node) {
      to_migrate.push_back(job_id);
    }
  }
  for (cluster::JobId job_id : to_migrate) {
    const PendingJob& doomed = jobs_.at(job_id);
    SendKill(doomed.node, job_id, doomed.fence);
    PendingJob pending = TakeJob(job_id, /*failed=*/false, "migrated");
    ProcessInstance* inst = FindInstance(pending.instance_id);
    TaskNode* node = inst->FindByPath(pending.path);
    inst->SetTaskState(node, TaskState::kReady);
    WriteBatch batch;
    PersistTask(inst, node, &batch);
    RecordLineageOutcome(pending, "migrated", /*with_outputs=*/false, &batch);
    Status st = Commit(&batch);
    if (!st.ok()) {
      BIOPERA_LOG(kError) << "migration commit failed: " << st.ToString();
    }
    AppendHistory(pending.instance_id,
                  StrFormat("migrating %s away from saturated %s",
                            pending.path.c_str(), pending.node.c_str()));
    if (migrations_metric_ != nullptr) {
      migrations_metric_->Increment();
      options_.observability->trace.Emit(
          obs::EventType::kMigrationKilled, pending.instance_id,
          pending.path, pending.node,
          {{"job", StrFormat("%llu",
                             static_cast<unsigned long long>(job_id))}});
    }
    // Re-queue with the computed result cached: the work itself restarts
    // on the new node (kill-and-restart), but the deterministic outputs
    // need not be recomputed.
    ReadyEntry entry;
    entry.instance_id = pending.instance_id;
    entry.path = pending.path;
    entry.cached = ActivityOutput{pending.outputs, pending.cost,
                                  std::move(pending.params)};
    entry.input_desc = std::move(pending.input_desc);
    entry.priority = inst->priority();
    entry.inst_hint = inst;
    entry.engine_gen = instance_generation_;
    entry.node_hint = node;
    entry.structure_gen = inst->structure_generation();
    if (node->def != nullptr) entry.resource_class = node->def->resource_class;
    BeginAttemptSpan(&entry, inst, node);
    PushEntry(std::move(entry));
  }
  if (!to_migrate.empty()) PumpDispatch();
}

// ---------------------------------------------------------------------------
// Cluster events
// ---------------------------------------------------------------------------

void Engine::OnJobFinished(cluster::JobId id, const std::string& node_name) {
  // Legacy direct-notification entry point; channel reports arrive
  // through HandleReport, which fences them first.
  ApplyJobFinished(id, node_name);
}

void Engine::ApplyJobFinished(cluster::JobId id, const std::string& node_name) {
  if (!up_) return;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;  // stale report from before a crash
  PendingJob pending = TakeJob(it, /*failed=*/false, "completed");
  ProcessInstance* inst = FindInstance(pending.instance_id);
  if (inst == nullptr) return;
  TaskNode* node = inst->FindByPath(pending.path);
  if (node == nullptr || node->state != TaskState::kRunning) return;
  if (options_.job_cost_sensor != nullptr) {
    // Streaming straggler sensor: virtual compute cost of every completed
    // job, independent of whether an Observability context is attached.
    options_.job_cost_sensor->Observe(pending.cost.ToSeconds());
  }
  if (completed_metric_ != nullptr) {
    completed_metric_->Increment();
    task_cost_metric_->Observe(pending.cost.ToSeconds());
    options_.observability->trace.Emit(
        obs::EventType::kTaskCompleted, pending.instance_id, pending.path,
        node_name,
        {{"cost_us", StrFormat("%lld", static_cast<long long>(
                                           pending.cost.micros()))}});
  }
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  RecordLineageOutcome(pending, "completed", /*with_outputs=*/true, &batch);
  Status st = CompleteTask(inst, node, std::move(pending.outputs),
                           pending.cost, &batch);
  if (st.ok()) st = Commit(&batch);
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "completion failed for " << pending.path << ": "
                        << st.ToString();
    if (RecordStore::IsFenced(st)) return;  // step-down already scheduled
    if (st.IsIOError()) {
      // A disk error does not fail the instance: the completed transition
      // is already in the image (group mode) and the degraded-mode retry
      // makes it durable once the disk heals.
      EnterDegraded(st);
      return;
    }
    inst->set_state(InstanceState::kFailed);
    EmitInstanceState(inst);
  }
  PumpDispatch();
}

void Engine::OnJobFailed(cluster::JobId id, const std::string& node_name,
                         const std::string& reason) {
  ApplyJobFailed(id, node_name, reason);
}

void Engine::ApplyJobFailed(cluster::JobId id, const std::string& node_name,
                            const std::string& reason) {
  if (!up_) return;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  PendingJob pending = TakeJob(it, /*failed=*/true, "failed");
  ProcessInstance* inst = FindInstance(pending.instance_id);
  if (inst == nullptr) return;
  TaskNode* node = inst->FindByPath(pending.path);
  if (node == nullptr || node->state != TaskState::kRunning) return;
  RecordStore::CommitScope commit_group(GroupTarget());
  WriteBatch batch;
  RecordLineageOutcome(pending, "failed", /*with_outputs=*/false, &batch);
  Status st = HandleTaskFailure(inst, node, reason, &batch);
  if (st.ok()) st = Commit(&batch);
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "failure handling failed for " << pending.path
                        << ": " << st.ToString();
  }
  PumpDispatch();
}

void Engine::OnNodeDown(const std::string& node) {
  if (!up_) return;
  awareness_.NodeDown(node, sim_->Now());
  monitors_.erase(node);
  // Individual job failures arrive as separate OnJobFailed callbacks.
}

void Engine::OnNodeUp(const std::string& node) {
  if (!up_) return;
  awareness_.NodeUp(node, sim_->Now());
  WakeClassesForNode(node);
  if (options_.adaptive_monitoring && !monitors_.contains(node)) {
    auto probe = [this, node]() {
      Result<cluster::NodeConfig> config = cluster_->GetNode(node);
      if (!config.ok() || config->num_cpus == 0) return 0.0;
      return cluster_->ExternalLoad(node) / config->num_cpus;
    };
    auto report = [this, node](double load) {
      awareness_.UpdateLoad(node, load, sim_->Now());
      WakeClassesForNode(node);
      CheckMigrations();
      PumpDispatch();
    };
    auto mon = std::make_unique<monitor::AdaptiveMonitor>(
        sim_, options_.monitor_options, probe, report);
    if (options_.observability != nullptr) {
      mon->SetMetrics(&options_.observability->metrics, node);
    }
    mon->Start();
    monitors_[node] = std::move(mon);
  }
  PumpDispatch();
}

void Engine::OnLoadReport(const std::string& node, double load) {
  if (!up_) return;
  if (options_.adaptive_monitoring) return;  // monitors poll instead
  awareness_.UpdateLoad(node, load, sim_->Now());
  WakeClassesForNode(node);
  CheckMigrations();
  PumpDispatch();
}

void Engine::OnConfigChanged(const cluster::NodeConfig& config) {
  if (!up_) return;
  awareness_.UpdateConfig(config);
  // Served classes or CPU counts may have changed in any direction.
  WakeAllClasses();
  RecordStore::CommitScope commit_group(GroupTarget());
  Value::Map cfg;
  cfg["cpus"] = Value(static_cast<int64_t>(config.num_cpus));
  cfg["speed"] = Value(config.speed);
  cfg["os"] = Value(config.os);
  cfg["classes"] = Value(config.resource_classes);
  Status st = spaces_.PutConfig("node/" + config.name, Value(cfg).ToText());
  if (!st.ok()) {
    BIOPERA_LOG(kError) << "config update failed: " << st.ToString();
  }
  RefreshConfigVersion();
  PumpDispatch();
}

// ---------------------------------------------------------------------------
// Control plane (comms seam)
// ---------------------------------------------------------------------------

void Engine::HandleReport(const comms::Message& msg) {
  if (!up_) return;
  switch (msg.type) {
    case comms::MessageType::kHeartbeat:
      HandleHeartbeat(msg.node);
      return;
    case comms::MessageType::kLoad:
      OnLoadReport(msg.node, msg.load);
      return;
    case comms::MessageType::kCompletion:
    case comms::MessageType::kFailure:
      break;
    default:
      return;  // commands never arrive on the report plane
  }
  auto it = jobs_.find(msg.job);
  if (it == jobs_.end()) {
    // Already applied (a duplicated or reordered report), or a zombie from
    // an attempt this server no longer tracks (killed, condemned,
    // pre-crash). Idempotent drop either way.
    if (dup_reports_metric_ != nullptr) dup_reports_metric_->Increment();
    return;
  }
  if (msg.fence != 0 && msg.fence != it->second.fence) {
    // A live job id but the wrong attempt epoch: the fencing token does
    // the tie-break (docs/COMMS.md). Only the current attempt may apply.
    if (fenced_reports_metric_ != nullptr) fenced_reports_metric_->Increment();
    return;
  }
  if (msg.type == comms::MessageType::kCompletion) {
    ApplyJobFinished(msg.job, msg.node);
  } else {
    ApplyJobFailed(msg.job, msg.node, msg.reason);
  }
}

void Engine::OnLinkChanged(const std::string& node) {
  if (!up_) return;
  if (!channel_->CommandLinkUp(node)) {
    // Command plane lost: stop placing work there. Jobs already on the
    // node keep running — their reports still arrive while the report
    // link is up, and the watchdog/lease machinery covers the rest.
    awareness_.NodeDown(node, sim_->Now());
    return;
  }
  FlushPendingKills(node);
  // Command plane (re)established. Restore placement eligibility unless
  // the lease detector disagrees (suspected/condemned nodes rejoin via
  // heartbeats only) or the node itself is dead.
  if (GetLeaseState(node) != LeaseState::kUp) return;
  if (!cluster_->IsUp(node)) return;
  awareness_.NodeUp(node, sim_->Now());
  WakeClassesForNode(node);
  PumpDispatch();
}

void Engine::SendKill(const std::string& node, cluster::JobId job,
                      uint64_t fence) {
  comms::Message msg;
  msg.type = comms::MessageType::kKill;
  msg.node = node;
  msg.job = job;
  msg.fence = fence;
  Status st = channel_->SendCommand(msg);
  if (st.ok() || st.IsNotFound()) {
    // Delivered (NotFound: the job is already gone — same outcome). A
    // FaultChannel drop also lands here: in-flight loss gives no receipt,
    // and the fence protects against the surviving zombie's report.
    if (auto it = pending_kills_.find(job); it != pending_kills_.end()) {
      if (it->second.retry != kInvalidEventId) sim_->Cancel(it->second.retry);
      pending_kills_.erase(it);
    }
    return;
  }
  // Undeliverable (command link down): never silently forgotten — queue
  // for backoff retries and for an immediate flush when the link heals.
  auto [it, inserted] = pending_kills_.try_emplace(job);
  PendingKill& kill = it->second;
  kill.node = node;
  kill.fence = fence;
  if (!inserted && kill.retry != kInvalidEventId) return;  // already scheduled
  ScheduleKillRetry(job);
}

void Engine::ScheduleKillRetry(cluster::JobId job) {
  auto it = pending_kills_.find(job);
  if (it == pending_kills_.end()) return;
  PendingKill& kill = it->second;
  if (kill.attempts >= options_.kill_retry_limit) {
    // Retry budget exhausted: the fence still guarantees the zombie's
    // eventual report cannot double-apply.
    if (kill_gave_up_metric_ != nullptr) kill_gave_up_metric_->Increment();
    pending_kills_.erase(it);
    return;
  }
  Duration delay = comms::RetryBackoff(
      options_.kill_retry_base, options_.kill_retry_max, options_.seed,
      kill.node, job, kill.attempts);
  ++kill.attempts;
  // A regular event (not a daemon): an owed kill keeps the run alive, but
  // only until the bounded retries run out.
  kill.retry = sim_->Schedule(delay, [this, job] {
    auto retry_it = pending_kills_.find(job);
    if (retry_it == pending_kills_.end()) return;
    retry_it->second.retry = kInvalidEventId;
    if (kill_retries_metric_ != nullptr) kill_retries_metric_->Increment();
    comms::Message msg;
    msg.type = comms::MessageType::kKill;
    msg.node = retry_it->second.node;
    msg.job = job;
    msg.fence = retry_it->second.fence;
    Status st = channel_->SendCommand(msg);
    if (st.ok() || st.IsNotFound()) {
      pending_kills_.erase(retry_it);
    } else {
      ScheduleKillRetry(job);
    }
  });
}

void Engine::FlushPendingKills(const std::string& node) {
  std::vector<cluster::JobId> due;
  for (const auto& [job, kill] : pending_kills_) {
    if (kill.node == node) due.push_back(job);
  }
  for (cluster::JobId job : due) {
    auto it = pending_kills_.find(job);
    if (it == pending_kills_.end()) continue;
    if (it->second.retry != kInvalidEventId) {
      sim_->Cancel(it->second.retry);
      it->second.retry = kInvalidEventId;
    }
    comms::Message msg;
    msg.type = comms::MessageType::kKill;
    msg.node = it->second.node;
    msg.job = job;
    msg.fence = it->second.fence;
    Status st = channel_->SendCommand(msg);
    if (st.ok() || st.IsNotFound()) {
      pending_kills_.erase(it);
    } else {
      ScheduleKillRetry(job);
    }
  }
}

void Engine::CancelPendingKills() {
  for (auto& [job, kill] : pending_kills_) {
    if (kill.retry != kInvalidEventId) sim_->Cancel(kill.retry);
  }
  pending_kills_.clear();
}

// ---------------------------------------------------------------------------
// Lease-based failure detection (heartbeat mode)
// ---------------------------------------------------------------------------

Engine::LeaseState Engine::GetLeaseState(const std::string& node) const {
  if (options_.heartbeat_interval <= Duration::Zero()) {
    // Legacy mode: detection is instantaneous, so known nodes are kUp.
    return cluster_->GetNode(node).ok() ? LeaseState::kUp
                                        : LeaseState::kUnknown;
  }
  auto it = leases_.find(node);
  return it == leases_.end() ? LeaseState::kUnknown : it->second.state;
}

void Engine::ArmLeaseCheck() {
  if (options_.heartbeat_interval <= Duration::Zero()) return;
  lease_check_ = sim_->ScheduleDaemon(options_.heartbeat_interval, [this] {
    lease_check_ = kInvalidEventId;
    if (!up_) return;
    CheckLeases();
    ArmLeaseCheck();
  });
}

void Engine::CheckLeases() {
  const TimePoint now = sim_->Now();
  const Duration suspect_after =
      options_.heartbeat_interval * options_.lease_misses_to_suspect;
  // Decide first, act second: SuspectNode's probe can reconcile a node
  // synchronously, and CondemnNode re-queues work — neither may mutate
  // the table mid-scan.
  std::vector<std::string> to_suspect;
  std::vector<std::string> to_condemn;
  for (const auto& [name, lease] : leases_) {
    switch (lease.state) {
      case LeaseState::kUp:
        if (now - lease.last_heartbeat >= suspect_after) {
          to_suspect.push_back(name);
        }
        break;
      case LeaseState::kSuspected:
        if (now - lease.suspected_at >= options_.lease_condemn_grace) {
          to_condemn.push_back(name);
        }
        break;
      default:
        break;  // condemned nodes rejoin only via a heartbeat
    }
  }
  for (const std::string& name : to_suspect) SuspectNode(name);
  for (const std::string& name : to_condemn) CondemnNode(name);
}

void Engine::HandleHeartbeat(const std::string& node) {
  if (!up_ || options_.heartbeat_interval <= Duration::Zero()) return;
  auto it = leases_.try_emplace(node).first;  // nodes may join after Startup
  NodeLease& lease = it->second;
  lease.last_heartbeat = sim_->Now();
  switch (lease.state) {
    case LeaseState::kUp:
      break;
    case LeaseState::kSuspected:
      ReconcileNode(node);
      break;
    case LeaseState::kCondemned: {
      // The node outlived its condemnation (it really crashed and came
      // back, or a long partition healed). Rejoin: its old jobs were
      // already re-queued; pending kills fence off any zombies.
      lease.state = LeaseState::kUp;
      if (reconciled_metric_ != nullptr) {
        reconciled_metric_->Increment();
        options_.observability->trace.Emit(obs::EventType::kNodeReconciled, "",
                                           "", node, {{"from", "condemned"}});
      }
      OnNodeUp(node);
      FlushPendingKills(node);
      break;
    }
    default:
      break;
  }
}

void Engine::SuspectNode(const std::string& node) {
  auto it = leases_.find(node);
  if (it == leases_.end() || it->second.state != LeaseState::kUp) return;
  NodeLease& lease = it->second;
  lease.state = LeaseState::kSuspected;
  lease.suspected_at = sim_->Now();
  if (suspected_metric_ != nullptr) {
    suspected_metric_->Increment();
    suspected_gauge_->Add(1);
    options_.observability->trace.Emit(
        obs::EventType::kNodeSuspected, "", "", node,
        {{"misses", StrFormat("%d", options_.lease_misses_to_suspect)}});
  }
  if (spans_ != nullptr) {
    lease.suspicion_span = spans_->Begin(
        obs::SpanKind::kSuspicion, "suspected " + node, /*parent=*/0,
        /*link=*/0, /*instance=*/"", /*task=*/"", node, {});
  }
  // Stop placing work on the suspect (the scheduler consults awareness);
  // jobs already there keep running — a false suspicion must not lose
  // them. The adaptive monitor stays: its samples are harmless.
  awareness_.NodeDown(node, sim_->Now());
  // Ask directly. A reachable PEC answers with a heartbeat, reconciling
  // the suspicion (possibly synchronously, on a lossless channel).
  comms::Message probe;
  probe.type = comms::MessageType::kProbe;
  probe.node = node;
  (void)channel_->SendCommand(probe);
}

void Engine::ReconcileNode(const std::string& node) {
  auto it = leases_.find(node);
  if (it == leases_.end() || it->second.state != LeaseState::kSuspected) return;
  NodeLease& lease = it->second;
  lease.state = LeaseState::kUp;
  if (reconciled_metric_ != nullptr) {
    reconciled_metric_->Increment();
    suspected_gauge_->Add(-1);
    options_.observability->trace.Emit(obs::EventType::kNodeReconciled, "", "",
                                       node, {{"from", "suspected"}});
  }
  if (spans_ != nullptr) {
    spans_->End(lease.suspicion_span, "reconciled");
    lease.suspicion_span = 0;
  }
  // False suspicion: restore placement eligibility. Running jobs were
  // never touched, so nothing is lost and nothing re-executes.
  OnNodeUp(node);
}

void Engine::CondemnNode(const std::string& node) {
  auto it = leases_.find(node);
  if (it == leases_.end() || it->second.state != LeaseState::kSuspected) return;
  NodeLease& lease = it->second;
  lease.state = LeaseState::kCondemned;
  if (condemned_metric_ != nullptr) {
    condemned_metric_->Increment();
    suspected_gauge_->Add(-1);
    options_.observability->trace.Emit(
        obs::EventType::kNodeCondemned, "", "", node,
        {{"grace_us",
          StrFormat("%lld", static_cast<long long>(
                                options_.lease_condemn_grace.micros()))}});
  }
  if (spans_ != nullptr) {
    spans_->End(lease.suspicion_span, "condemned");
    lease.suspicion_span = 0;
  }
  monitors_.erase(node);
  // Give up on the node's outstanding jobs and re-schedule them
  // elsewhere. Each gets a (best-effort) fenced kill: if the node is
  // secretly alive, the kill — or failing that, the fence — neutralizes
  // the zombie attempt.
  std::vector<cluster::JobId> lost;
  if (auto jobs_it = jobs_by_node_.find(node); jobs_it != jobs_by_node_.end()) {
    lost.assign(jobs_it->second.begin(), jobs_it->second.end());
  }
  for (cluster::JobId job_id : lost) {
    PendingJob pending = TakeJob(job_id, /*failed=*/true, "condemned");
    SendKill(node, job_id, pending.fence);
    AppendHistory(pending.instance_id,
                  StrFormat("node %s condemned; re-scheduling %s",
                            node.c_str(), pending.path.c_str()));
    RequeueLostJob(std::move(pending), "condemned");
  }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

void Engine::PersistTask(ProcessInstance* inst, const TaskNode* node,
                         WriteBatch* batch) {
  spaces_.BatchPutInstanceRecord(batch, inst->id(), TaskRecordKey(node->path),
                                 EncodeTaskRecord(*node));
}

void Engine::PersistWhiteboard(ProcessInstance* inst,
                               const TaskNode* scope_owner,
                               WriteBatch* batch) {
  std::string key = scope_owner->path.empty() ? "wb" : "wb/" + scope_owner->path;
  spaces_.BatchPutInstanceRecord(batch, inst->id(), key,
                                 EncodeWhiteboard(*scope_owner->own_whiteboard));
}

void Engine::PersistHeader(ProcessInstance* inst, WriteBatch* batch) {
  spaces_.BatchPutInstanceRecord(batch, inst->id(), "header",
                                 EncodeHeader(*inst));
}

Status Engine::Commit(WriteBatch* batch) {
  if (batch->empty()) return Status::OK();
  // Checkpoint cadence is the store's job now (CheckpointPolicy, forwarded
  // in the constructor), so a commit is just an apply.
  Status st = spaces_.Apply(*batch);
  if (!st.ok()) {
    if (!MaybeHandleFenced(st) && st.IsIOError()) EnterDegraded(st);
    return st;
  }
  batch->Clear();
  return Status::OK();
}

RecordStore* Engine::GroupTarget() {
  return options_.group_commit ? spaces_.store() : nullptr;
}

void Engine::AppendHistory(const std::string& instance_id,
                           const std::string& event) {
  std::string line =
      StrFormat("[%s] %s", sim_->Now().ToString().c_str(), event.c_str());
  Status st = spaces_.AppendHistory(instance_id, line);
  if (!st.ok() && !MaybeHandleFenced(st)) {
    BIOPERA_LOG(kWarning) << "history append failed: " << st.ToString();
  }
}

// ---------------------------------------------------------------------------
// Provenance / lineage
// ---------------------------------------------------------------------------

void Engine::RefreshConfigVersion() {
  // Digest only the node rows: bookkeeping keys (next_instance_seq,
  // degraded-probe writes) must not look like a configuration change.
  std::string blob;
  for (const auto& [key, value] : spaces_.ScanConfig()) {
    if (key.rfind("node/", 0) != 0) continue;
    blob += key;
    blob.push_back('=');
    blob += value;
    blob.push_back('\n');
  }
  config_version_ = StrFormat(
      "fnv64:%016llx", static_cast<unsigned long long>(obs::Fnv1a64(blob)));
}

void Engine::RecordLineageDispatch(const ReadyEntry& entry,
                                   const TaskNode* node,
                                   const std::string& target, int attempt,
                                   WriteBatch* batch) {
  if (spans_ == nullptr) return;
  Value::Map rec;
  rec["t_dispatch_us"] = Value(sim_->Now().micros());
  rec["node"] = Value(target);
  const std::string& binding =
      node->binding_used.empty() && node->def != nullptr ? node->def->binding
                                                         : node->binding_used;
  if (!binding.empty()) rec["binding"] = Value(binding);
  Value::Map in;
  for (const auto& [key, desc] : entry.input_desc) in[key] = Value(desc);
  if (!in.empty()) rec["in"] = Value(std::move(in));
  Value::Map params;
  for (const auto& [key, desc] : entry.cached->provenance) {
    params[key] = Value(desc);
  }
  if (!params.empty()) rec["param"] = Value(std::move(params));
  // A timeout/migration re-dispatch of the same attempt number overwrites
  // this row — the record describes the dispatch that finally reported.
  spaces_.BatchPutProvenance(batch, entry.instance_id,
                             LineageInKey(entry.path, attempt),
                             EncodeValueRecord(Value(std::move(rec))));
}

void Engine::RecordLineageOutcome(const PendingJob& pending,
                                  std::string_view outcome, bool with_outputs,
                                  WriteBatch* batch) {
  if (spans_ == nullptr) return;
  Value::Map rec;
  rec["outcome"] = Value(std::string(outcome));
  rec["t_finish_us"] = Value(sim_->Now().micros());
  rec["cost_us"] = Value(pending.cost.micros());
  if (with_outputs) {
    Value::Map out;
    for (const auto& [key, value] : pending.outputs) {
      out[key] = Value(DescribeValue(value));
    }
    if (!out.empty()) rec["out"] = Value(std::move(out));
  }
  spaces_.BatchPutProvenance(batch, pending.instance_id,
                             LineageOutKey(pending.path, pending.attempt),
                             EncodeValueRecord(Value(std::move(rec))));
}

Result<std::vector<obs::LineageRecord>> Engine::GetTaskLineage(
    const std::string& instance_id) const {
  if (FindInstance(instance_id) == nullptr &&
      !spaces_.GetInstanceRecord(instance_id, "header").ok()) {
    return Status::NotFound("no instance " + instance_id);
  }
  std::vector<obs::LineageRecord> out;
  // Provenance keys sort as (path, attempt, in-before-out), so one pass
  // pairs each attempt's rows.
  for (const auto& [key, text] : spaces_.ScanProvenance(instance_id)) {
    bool is_in = false;
    std::string_view base(key);
    if (base.size() > 3 && base.substr(base.size() - 3) == "/in") {
      is_in = true;
      base.remove_suffix(3);
    } else if (base.size() > 4 && base.substr(base.size() - 4) == "/out") {
      base.remove_suffix(4);
    } else {
      continue;  // unknown row shape (forward compatibility)
    }
    // base = "<path>/aNNNN"
    size_t slash = base.rfind('/');
    if (slash == std::string_view::npos || slash + 2 > base.size() ||
        base[slash + 1] != 'a') {
      continue;
    }
    long long attempt = 0;
    if (!ParseInt64(std::string(base.substr(slash + 2)), &attempt)) continue;
    std::string path(base.substr(0, slash));
    BIOPERA_ASSIGN_OR_RETURN(Value v, DecodeValueRecord(text));
    if (!v.is_map()) {
      return Status::Corruption("bad provenance row " + key);
    }
    const Value::Map& rec = v.AsMap();
    obs::LineageRecord* record = nullptr;
    if (!out.empty() && out.back().task == path &&
        out.back().attempt == static_cast<int>(attempt)) {
      record = &out.back();
    } else {
      out.emplace_back();
      record = &out.back();
      record->instance = instance_id;
      record->task = std::move(path);
      record->attempt = static_cast<int>(attempt);
    }
    auto copy_descriptors =
        [&rec](const char* field,
               std::vector<std::pair<std::string, std::string>>* dst) {
          auto it = rec.find(field);
          if (it == rec.end() || !it->second.is_map()) return;
          for (const auto& [key2, value] : it->second.AsMap()) {
            if (value.is_string()) dst->emplace_back(key2, value.AsString());
          }
        };
    if (is_in) {
      record->binding = RecString(rec, "binding");
      record->node = RecString(rec, "node");
      record->dispatch_us = RecInt(rec, "t_dispatch_us", 0);
      copy_descriptors("in", &record->inputs);
      copy_descriptors("param", &record->params);
    } else {
      record->outcome = RecString(rec, "outcome");
      record->finish_us = RecInt(rec, "t_finish_us", -1);
      record->cost_us = RecInt(rec, "cost_us", -1);
      copy_descriptors("out", &record->outputs);
    }
  }
  return out;
}

Result<std::string> Engine::ExportLineageJsonl(
    const std::string& instance_id) const {
  BIOPERA_ASSIGN_OR_RETURN(std::vector<obs::LineageRecord> records,
                           GetTaskLineage(instance_id));
  obs::LineageHeader header;
  header.instance = instance_id;
  header.seed = options_.seed;
  header.config_version = config_version_;
  if (const ProcessInstance* inst = FindInstance(instance_id);
      inst != nullptr) {
    header.template_name = inst->def().name;
    header.state = InstanceStateName(inst->state());
  } else if (Result<std::string> text =
                 spaces_.GetInstanceRecord(instance_id, "header");
             text.ok()) {
    // Recovered-but-not-loaded (engine down) or foreign instance: read
    // the persisted header record directly.
    BIOPERA_ASSIGN_OR_RETURN(Value v, DecodeValueRecord(*text));
    if (v.is_map()) {
      header.template_name = RecString(v.AsMap(), "template");
      header.state = RecString(v.AsMap(), "state");
    }
  }
  return obs::LineageExportJsonl(header, records);
}

Result<obs::RunLineage> Engine::BuildRunLineage(const std::string& instance_id,
                                                std::string label) const {
  obs::RunLineage run;
  run.label = std::move(label);
  BIOPERA_ASSIGN_OR_RETURN(run.records, GetTaskLineage(instance_id));
  run.header.instance = instance_id;
  run.header.seed = options_.seed;
  run.header.config_version = config_version_;
  if (const ProcessInstance* inst = FindInstance(instance_id);
      inst != nullptr) {
    run.header.template_name = inst->def().name;
    run.header.state = InstanceStateName(inst->state());
  }
  if (spans_ != nullptr) {
    // The run's environment schedule, from the span sink's overlay
    // windows (same classification the file-based differ reads from a
    // span export).
    spans_->ForEach([&run](const obs::Span& span) {
      if (span.kind != obs::SpanKind::kNodeOutage &&
          span.kind != obs::SpanKind::kServerDown &&
          span.kind != obs::SpanKind::kStoreDegraded) {
        return;
      }
      obs::OutageWindow window;
      window.kind = std::string(obs::SpanKindName(span.kind));
      window.node = span.node;
      window.start_us = span.start.micros();
      window.end_us = span.open ? -1 : span.end.micros();
      run.outages.push_back(std::move(window));
    });
  }
  return run;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Status Engine::RecoverInstance(const std::string& instance_id) {
  // Load all records of this instance into a key -> parsed-map index.
  std::map<std::string, Value::Map> records;
  for (auto& [key, text] : spaces_.ScanInstance(instance_id)) {
    BIOPERA_ASSIGN_OR_RETURN(Value v, DecodeValueRecord(text));
    if (!v.is_map()) {
      return Status::Corruption("bad record " + key + " in " + instance_id);
    }
    records[key] = std::move(v.AsMap());
  }
  auto header_it = records.find("header");
  if (header_it == records.end()) {
    return Status::Corruption("instance " + instance_id + " has no header");
  }
  const Value::Map& header = header_it->second;
  BIOPERA_ASSIGN_OR_RETURN(const ProcessDef* def,
                           ResolveTemplate(RecString(header, "template")));
  auto inst = std::make_unique<ProcessInstance>(instance_id, def);
  BIOPERA_ASSIGN_OR_RETURN(
      InstanceState state, InstanceStateFromName(RecString(header, "state")));
  inst->set_state(state);
  inst->set_priority(static_cast<int>(RecInt(header, "priority", 0)));
  inst->stats().cpu_seconds = RecDouble(header, "cpu_seconds", 0);
  inst->stats().activities_completed =
      static_cast<uint64_t>(RecInt(header, "completed", 0));
  inst->stats().activities_failed =
      static_cast<uint64_t>(RecInt(header, "failed", 0));
  inst->stats().started =
      TimePoint::FromMicros(RecInt(header, "started_us", 0));
  inst->stats().finished =
      TimePoint::FromMicros(RecInt(header, "finished_us", 0));
  auto lin = header.find("lineage");
  if (lin != header.end() && lin->second.is_map()) {
    for (const auto& [var, writer] : lin->second.AsMap()) {
      if (writer.is_string()) inst->lineage()[var] = writer.AsString();
    }
  }
  auto events = header.find("events");
  if (events != header.end() && events->second.is_list()) {
    for (const auto& event : events->second.AsList()) {
      if (event.is_string()) inst->raised_events().insert(event.AsString());
    }
  }
  // Root whiteboard.
  auto wb_it = records.find("wb");
  if (wb_it != records.end()) {
    *inst->root()->own_whiteboard = wb_it->second;
  }

  // Recursively rebuild the tree. Returns the restored node state.
  std::function<Status(TaskNode*)> rebuild = [&](TaskNode* node) -> Status {
    auto rec_it = records.find(TaskRecordKey(node->path));
    if (rec_it == records.end()) return Status::OK();  // still inactive
    const Value::Map& rec = rec_it->second;
    BIOPERA_ASSIGN_OR_RETURN(TaskState state,
                             TaskStateFromName(RecString(rec, "state")));
    inst->SetTaskState(node, state);
    node->attempts = static_cast<int>(RecInt(rec, "attempts", 0));
    node->binding_used = RecString(rec, "binding");
    node->cost = Duration::Micros(RecInt(rec, "cost_us", 0));
    node->started = TimePoint::FromMicros(RecInt(rec, "started_us", 0));
    node->finished = TimePoint::FromMicros(RecInt(rec, "finished_us", 0));
    auto out_it = rec.find("outputs");
    if (out_it != rec.end() && out_it->second.is_map()) {
      node->outputs = out_it->second.AsMap();
    }
    if (node->state == TaskState::kInactive ||
        node->state == TaskState::kSkipped) {
      return Status::OK();
    }
    // Expand composites the way the original activation did.
    switch (node->kind()) {
      case TaskKind::kActivity:
        break;
      case TaskKind::kBlock: {
        node->connectors = &node->def->connectors;
        for (const TaskDef& sub : node->def->subtasks) {
          AddChildNode(inst.get(), node, &sub, node->path + "." + sub.name);
        }
        break;
      }
      case TaskKind::kParallel: {
        auto exp_it = rec.find("expansion");
        if (exp_it == rec.end() || !exp_it->second.is_list()) {
          return Status::Corruption(node->path + ": missing expansion");
        }
        node->expansion = exp_it->second;
        const auto& items = node->expansion.AsList();
        for (size_t i = 0; i < items.size(); ++i) {
          TaskNode* child = AddChildNode(
              inst.get(), node, &node->def->body[0],
              StrFormat("%s[%zu]", node->path.c_str(), i));
          child->item = items[i];
          child->index = static_cast<int64_t>(i);
        }
        break;
      }
      case TaskKind::kSubprocess: {
        BIOPERA_ASSIGN_OR_RETURN(const ProcessDef* sub,
                                 ResolveTemplate(RecString(rec, "sub")));
        node->sub_def = sub;
        node->connectors = &sub->connectors;
        node->own_whiteboard = std::make_unique<Value::Map>();
        auto sub_wb = records.find("wb/" + node->path);
        if (sub_wb != records.end()) {
          *node->own_whiteboard = sub_wb->second;
        }
        for (const TaskDef& sub_task : sub->tasks) {
          AddChildNode(inst.get(), node, &sub_task,
                       node->path + "/" + sub_task.name);
        }
        break;
      }
    }
    for (auto& child : node->children) {
      BIOPERA_RETURN_IF_ERROR(rebuild(child.get()));
    }
    return Status::OK();
  };
  // Root children were created by the ProcessInstance constructor.
  for (auto& child : inst->root()->children) {
    BIOPERA_RETURN_IF_ERROR(rebuild(child.get()));
  }

  ProcessInstance* raw = inst.get();
  instances_[instance_id] = std::move(inst);

  // Replay span: parented to the (re-attached) instance span so the causal
  // chain instance -> recovery -> re-queued attempts survives the crash.
  // Terminal instances need no live span.
  uint64_t recovery_span = 0;
  if (spans_ != nullptr && raw->state() != InstanceState::kDone &&
      raw->state() != InstanceState::kAborted) {
    recovery_span =
        spans_->Begin(obs::SpanKind::kRecovery, "recover", InstanceSpanId(raw),
                      /*link=*/0, instance_id);
  }

  // Re-queue interrupted work: activities that were queued, running (their
  // job died with the server or node), or waiting out a retry backoff
  // (the timer did not survive the crash).
  WriteBatch batch;
  size_t requeued = 0;
  raw->ForEachNode([&](TaskNode* node) {
    if (node->kind() != TaskKind::kActivity) return;
    if (node->state == TaskState::kRunning ||
        node->state == TaskState::kRetryWait) {
      raw->SetTaskState(node, TaskState::kReady);
      PersistTask(raw, node, &batch);
    }
    if (node->state == TaskState::kReady) {
      EnqueueReady(raw, node);
      ++requeued;
    }
  });
  BIOPERA_RETURN_IF_ERROR(Commit(&batch));
  if (raw->state() == InstanceState::kRunning) {
    AppendHistory(instance_id, "recovered; interrupted work re-queued");
  }
  if (recovery_span != 0) {
    spans_->Annotate(recovery_span, "requeued", StrFormat("%zu", requeued));
    spans_->Annotate(recovery_span, "state",
                     std::string(InstanceStateName(raw->state())));
    spans_->End(recovery_span, "replayed");
  }
  if (recovered_metric_ != nullptr) {
    recovered_metric_->Increment(requeued);
    options_.observability->trace.Emit(
        obs::EventType::kRecoveryReplayed, instance_id, "", "",
        {{"requeued", StrFormat("%zu", requeued)},
         {"state", std::string(InstanceStateName(raw->state()))}});
  }
  return Status::OK();
}

}  // namespace biopera::core
