#include "core/backup.h"

#include "common/logging.h"

namespace biopera::core {

BackupServer::BackupServer(Simulator* sim, cluster::ClusterSim* cluster,
                           RecordStore* store, ActivityRegistry* registry,
                           const EngineOptions& options)
    : sim_(sim),
      cluster_(cluster),
      store_(store),
      registry_(registry),
      options_(options) {}

BackupServer::~BackupServer() { StopWatching(); }

void BackupServer::Watch(Engine* primary, Duration heartbeat_interval) {
  primary_ = primary;
  interval_ = heartbeat_interval;
  watching_ = true;
  next_beat_ = sim_->ScheduleDaemon(interval_, [this] { Beat(); });
}

void BackupServer::StopWatching() {
  watching_ = false;
  if (next_beat_ != kInvalidEventId) {
    sim_->Cancel(next_beat_);
    next_beat_ = kInvalidEventId;
  }
}

Engine* BackupServer::active() {
  if (promoted_) return standby_.get();
  return primary_;
}

void BackupServer::Beat() {
  next_beat_ = kInvalidEventId;
  if (!watching_) return;
  if (!promoted_ && primary_ != nullptr && !primary_->IsUp()) {
    // Take over: construct a fresh engine over the shared spaces (its
    // constructor re-registers as the cluster listener, so PEC reports
    // flow to the standby) and run the standard recovery. Startup bumps
    // the writer epoch in the configuration space, which fences the old
    // primary: if it was merely partitioned rather than dead, its next
    // commit is rejected with a stale-epoch error and it steps down.
    BIOPERA_LOG(kInfo) << "backup server taking over";
    standby_ = std::make_unique<Engine>(sim_, cluster_, store_, registry_,
                                        options_);
    Status st = standby_->Startup();
    if (!st.ok()) {
      BIOPERA_LOG(kError) << "backup takeover failed: " << st.ToString();
      standby_.reset();
      // The primary's listener registration was clobbered by the failed
      // standby's constructor/destructor; it is down anyway.
    } else {
      BIOPERA_LOG(kInfo) << "backup promoted with writer epoch "
                         << standby_->writer_epoch();
      promoted_ = true;
      promoted_at_ = sim_->Now();
      watching_ = false;  // one takeover per standby
      return;
    }
  }
  if (watching_) {
    next_beat_ = sim_->ScheduleDaemon(interval_, [this] { Beat(); });
  }
}

}  // namespace biopera::core
