#ifndef BIOPERA_CORE_ACTIVITY_H_
#define BIOPERA_CORE_ACTIVITY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "ocr/value.h"

namespace biopera::core {

/// Input structure of one activity execution: the parameters assembled by
/// the task's input mappings.
struct ActivityInput {
  ocr::Value::Map params;

  /// Convenience accessor; returns null for missing parameters.
  const ocr::Value& Get(const std::string& name) const;
};

/// What an external program invocation produced: the output data structure
/// (consumed by the task's output mappings / parallel collection) plus the
/// reference-CPU work the invocation represents. In simulated experiments
/// `cost` comes from the Darwin cost model; in real-computation mode it can
/// be the measured execution time.
struct ActivityOutput {
  ocr::Value::Map fields;
  Duration cost = Duration::Seconds(1);
  /// Execution parameters the activity wants on the task's lineage
  /// record beyond its bound inputs — PAM matrix id/version, noise
  /// seeds, thresholds. Flat (key, value) pairs in insertion order;
  /// ignored (and free) when no Observability is attached.
  std::vector<std::pair<std::string, std::string>> provenance;
};

/// The implementation of one external binding. Implementations must be
/// deterministic and idempotent: after a node crash or a lost report the
/// engine re-executes the activity (checkpointing is per completed
/// activity, paper §3.3).
using ActivityFn = std::function<Result<ActivityOutput>(const ActivityInput&)>;

/// Maps external binding names (TaskDef::binding) to implementations —
/// BioOpera's activity library (paper §3.2: pre-packaged activities
/// prepared by expert users).
class ActivityRegistry {
 public:
  /// Registers `fn` under `binding`; AlreadyExists if taken.
  Status Register(std::string binding, ActivityFn fn);
  /// Replaces or adds a binding (library upgrades).
  void Override(std::string binding, ActivityFn fn);
  Result<ActivityFn> Find(const std::string& binding) const;
  bool Contains(const std::string& binding) const;
  size_t size() const { return fns_.size(); }

 private:
  std::map<std::string, ActivityFn> fns_;
};

}  // namespace biopera::core

#endif  // BIOPERA_CORE_ACTIVITY_H_
