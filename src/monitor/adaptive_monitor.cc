#include "monitor/adaptive_monitor.h"

#include <algorithm>
#include <cmath>

namespace biopera::monitor {

AdaptiveMonitor::AdaptiveMonitor(Simulator* sim,
                                 const AdaptiveMonitorOptions& options,
                                 std::function<double()> probe,
                                 std::function<void(double)> report)
    : sim_(sim),
      options_(options),
      probe_(std::move(probe)),
      report_(std::move(report)),
      interval_(options.min_interval) {}

AdaptiveMonitor::~AdaptiveMonitor() { Stop(); }

void AdaptiveMonitor::Start() {
  if (running_) return;
  running_ = true;
  Sample();
}

void AdaptiveMonitor::Stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_->Cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void AdaptiveMonitor::SetMetrics(obs::Registry* registry,
                                 const std::string& node) {
  if (registry == nullptr) {
    samples_metric_ = reports_metric_ = nullptr;
    return;
  }
  samples_metric_ =
      registry->GetCounter("monitor_samples_total", {{"node", node}});
  reports_metric_ =
      registry->GetCounter("monitor_reports_total", {{"node", node}});
}

void AdaptiveMonitor::Sample() {
  if (!running_) return;
  double load = probe_();
  ++samples_taken_;
  if (samples_metric_ != nullptr) samples_metric_->Increment();

  // First cutoff: adapt the sampling interval to the observed volatility.
  if (has_sampled_) {
    if (std::abs(load - last_sample_) < options_.change_cutoff) {
      interval_ = std::min(options_.max_interval,
                           interval_ * options_.growth);
    } else {
      interval_ = std::max(options_.min_interval,
                           interval_ / options_.growth);
    }
  }
  // Second cutoff: only notify the server of significant changes
  // (the very first sample is always reported).
  if (!has_sampled_ ||
      std::abs(load - last_reported_) > options_.report_cutoff) {
    ++reports_sent_;
    if (reports_metric_ != nullptr) reports_metric_->Increment();
    last_reported_ = load;
    reported_.Set(sim_->Now().SinceEpoch().ToSeconds(), load);
    if (report_) report_(load);
  }
  last_sample_ = load;
  has_sampled_ = true;

  next_event_ = sim_->ScheduleDaemon(interval_, [this] {
    next_event_ = kInvalidEventId;
    Sample();
  });
}

double AdaptiveMonitor::DiscardRate() const {
  if (samples_taken_ == 0) return 0;
  return 1.0 - static_cast<double>(reports_sent_) /
                   static_cast<double>(samples_taken_);
}

double MonitoringError(const StepSeries& truth, const StepSeries& reported,
                       double t0, double t1) {
  if (t1 <= t0) return 0;
  // Integrate |truth - reported| by splitting at every change point.
  std::vector<double> cuts;
  cuts.push_back(t0);
  for (const auto& p : truth.points()) {
    if (p.t > t0 && p.t < t1) cuts.push_back(p.t);
  }
  for (const auto& p : reported.points()) {
    if (p.t > t0 && p.t < t1) cuts.push_back(p.t);
  }
  cuts.push_back(t1);
  std::sort(cuts.begin(), cuts.end());
  double integral = 0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    double width = cuts[i + 1] - cuts[i];
    if (width <= 0) continue;
    double mid = cuts[i] + width / 2;
    integral += std::abs(truth.At(mid) - reported.At(mid)) * width;
  }
  return integral / (t1 - t0);
}

}  // namespace biopera::monitor
