#ifndef BIOPERA_MONITOR_AWARENESS_H_
#define BIOPERA_MONITOR_AWARENESS_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/time.h"

namespace biopera::monitor {

/// The server-side awareness model (paper §3.4): everything BioOpera knows
/// about the computing environment — node capabilities, availability,
/// last-reported load, dispatch/failure history. Schedulers read this to
/// make placement decisions; the outage planner reads it for what-if
/// queries.
class AwarenessModel {
 public:
  struct NodeView {
    cluster::NodeConfig config;
    bool up = true;
    /// Last load report (fraction of CPUs busy, 0..1) and when it arrived.
    double reported_load = 0;
    TimePoint load_updated;
    /// Engine-side bookkeeping of jobs currently dispatched to this node.
    int running_jobs = 0;
    uint64_t total_dispatched = 0;
    uint64_t total_failures = 0;
    Duration total_downtime;
    TimePoint down_since;
  };

  // --- Updates fed by cluster notifications --------------------------------
  void RegisterNode(const cluster::NodeConfig& config, TimePoint now);
  void UnregisterNode(const std::string& name);
  void NodeDown(const std::string& name, TimePoint now);
  void NodeUp(const std::string& name, TimePoint now);
  void UpdateConfig(const cluster::NodeConfig& config);
  void UpdateLoad(const std::string& name, double load, TimePoint now);
  void JobDispatched(const std::string& name);
  void JobFinishedOrFailed(const std::string& name, bool failed);

  // --- Queries --------------------------------------------------------------
  const NodeView* Find(const std::string& name) const;
  std::vector<const NodeView*> UpNodes() const;
  /// Nodes that are up and serve the given resource class.
  std::vector<const NodeView*> Candidates(std::string_view resource_class) const;
  /// Estimated free CPUs on a node: capacity - external load - our jobs
  /// (clamped at 0). Uses the last reported load as the external estimate.
  double EstimatedFreeCpus(const NodeView& view) const;
  size_t NumNodes() const { return nodes_.size(); }

 private:
  std::map<std::string, NodeView> nodes_;
};

}  // namespace biopera::monitor

#endif  // BIOPERA_MONITOR_AWARENESS_H_
