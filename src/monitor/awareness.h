#ifndef BIOPERA_MONITOR_AWARENESS_H_
#define BIOPERA_MONITOR_AWARENESS_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/time.h"

namespace biopera::monitor {

/// The server-side awareness model (paper §3.4): everything BioOpera knows
/// about the computing environment — node capabilities, availability,
/// last-reported load, dispatch/failure history. Schedulers read this to
/// make placement decisions; the outage planner reads it for what-if
/// queries.
class AwarenessModel {
 public:
  AwarenessModel() = default;
  // Copies and moves transfer the node table but not the candidate cache:
  // cached entries point into the *source* model's node map and would
  // dangle in the destination.
  AwarenessModel(const AwarenessModel& other) : nodes_(other.nodes_) {}
  AwarenessModel(AwarenessModel&& other) noexcept
      : nodes_(std::move(other.nodes_)) {
    other.nodes_.clear();
    other.candidates_cache_.clear();
  }
  AwarenessModel& operator=(const AwarenessModel& other) {
    if (this != &other) {
      nodes_ = other.nodes_;
      candidates_cache_.clear();
    }
    return *this;
  }
  AwarenessModel& operator=(AwarenessModel&& other) noexcept {
    if (this != &other) {
      nodes_ = std::move(other.nodes_);
      other.nodes_.clear();
      other.candidates_cache_.clear();
      candidates_cache_.clear();
    }
    return *this;
  }

  struct NodeView {
    cluster::NodeConfig config;
    bool up = true;
    /// Last load report (fraction of CPUs busy, 0..1) and when it arrived.
    double reported_load = 0;
    TimePoint load_updated;
    /// Engine-side bookkeeping of jobs currently dispatched to this node.
    int running_jobs = 0;
    uint64_t total_dispatched = 0;
    uint64_t total_failures = 0;
    Duration total_downtime;
    TimePoint down_since;
  };

  // --- Updates fed by cluster notifications --------------------------------
  void RegisterNode(const cluster::NodeConfig& config, TimePoint now);
  void UnregisterNode(const std::string& name);
  void NodeDown(const std::string& name, TimePoint now);
  void NodeUp(const std::string& name, TimePoint now);
  void UpdateConfig(const cluster::NodeConfig& config);
  void UpdateLoad(const std::string& name, double load, TimePoint now);
  void JobDispatched(const std::string& name);
  void JobFinishedOrFailed(const std::string& name, bool failed);

  // --- Queries --------------------------------------------------------------
  const NodeView* Find(const std::string& name) const;
  std::vector<const NodeView*> UpNodes() const;
  /// Nodes that are up and serve the given resource class. The returned
  /// list is cached per class (allocation-free on the dispatch hot path)
  /// and invalidated whenever membership changes — registration, node
  /// up/down, or a config update. Load and job-count updates mutate the
  /// NodeViews in place, so they do not invalidate the cache. The
  /// reference stays valid until the next membership change.
  const std::vector<const NodeView*>& Candidates(
      std::string_view resource_class) const;
  /// Estimated free CPUs on a node: capacity - external load - our jobs
  /// (clamped at 0). Uses the last reported load as the external estimate.
  double EstimatedFreeCpus(const NodeView& view) const;
  size_t NumNodes() const { return nodes_.size(); }

 private:
  void InvalidateCandidates() { candidates_cache_.clear(); }

  std::map<std::string, NodeView> nodes_;
  /// resource class -> up nodes serving it (lazily built, see Candidates).
  mutable std::map<std::string, std::vector<const NodeView*>, std::less<>>
      candidates_cache_;
};

}  // namespace biopera::monitor

#endif  // BIOPERA_MONITOR_AWARENESS_H_
