#ifndef BIOPERA_MONITOR_ADAPTIVE_MONITOR_H_
#define BIOPERA_MONITOR_ADAPTIVE_MONITOR_H_

#include <functional>
#include <string>

#include "common/stats.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace biopera::monitor {

/// Parameters of the PEC's adaptive workload monitoring (paper §3.4).
/// Two cutoffs: the *sampling* cutoff widens or narrows the local probe
/// interval depending on how much the load moved since the last probe, and
/// the *report* cutoff suppresses notifications to the BioOpera server
/// unless the load moved enough since the last report.
struct AdaptiveMonitorOptions {
  Duration min_interval = Duration::Seconds(5);
  Duration max_interval = Duration::Minutes(10);
  /// Interval growth factor applied while the load is stable (and the
  /// shrink divisor when it is not).
  double growth = 1.6;
  /// First cutoff: |delta since last sample| below this widens the
  /// interval, above narrows it. Loads are fractions in [0, 1].
  double change_cutoff = 0.05;
  /// Second cutoff: |delta since last report| must exceed this for a
  /// report to be sent to the server.
  double report_cutoff = 0.05;
};

/// One per-node monitor running on the simulator. `probe` reads the true
/// instantaneous load; `report` delivers a (filtered) load report to the
/// server. The monitor keeps statistics to evaluate the paper's claim that
/// discarding ~90% of samples keeps the server's view within ~1% of truth.
class AdaptiveMonitor {
 public:
  AdaptiveMonitor(Simulator* sim, const AdaptiveMonitorOptions& options,
                  std::function<double()> probe,
                  std::function<void(double)> report);
  AdaptiveMonitor(const AdaptiveMonitor&) = delete;
  AdaptiveMonitor& operator=(const AdaptiveMonitor&) = delete;
  ~AdaptiveMonitor();

  /// Takes an immediate first sample and begins the adaptive cycle.
  void Start();
  void Stop();

  /// Mirrors the sampling statistics into `registry` as the labeled
  /// counters monitor_samples_total{node=...} / monitor_reports_total
  /// {node=...}. nullptr detaches.
  void SetMetrics(obs::Registry* registry, const std::string& node);

  uint64_t samples_taken() const { return samples_taken_; }
  uint64_t reports_sent() const { return reports_sent_; }
  /// Fraction of samples whose report was suppressed.
  double DiscardRate() const;
  /// The server-perceived load over time (step series in seconds).
  const StepSeries& ReportedSeries() const { return reported_; }
  Duration current_interval() const { return interval_; }

 private:
  void Sample();

  Simulator* sim_;
  AdaptiveMonitorOptions options_;
  std::function<double()> probe_;
  std::function<void(double)> report_;
  Duration interval_;
  double last_sample_ = 0;
  double last_reported_ = 0;
  bool has_sampled_ = false;
  bool running_ = false;
  EventId next_event_ = kInvalidEventId;
  uint64_t samples_taken_ = 0;
  uint64_t reports_sent_ = 0;
  StepSeries reported_;
  obs::Counter* samples_metric_ = nullptr;
  obs::Counter* reports_metric_ = nullptr;
};

/// Time-averaged absolute error between the true load curve and the
/// server-perceived (reported) curve over [t0, t1] (both in seconds).
/// This is the paper's "average error per sample" metric.
double MonitoringError(const StepSeries& truth, const StepSeries& reported,
                       double t0, double t1);

}  // namespace biopera::monitor

#endif  // BIOPERA_MONITOR_ADAPTIVE_MONITOR_H_
