#ifndef BIOPERA_MONITOR_LOAD_CURVE_H_
#define BIOPERA_MONITOR_LOAD_CURVE_H_

#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"

namespace biopera::monitor {

/// Shapes of synthetic node-load curves used to evaluate the adaptive
/// monitor (experiment MON1). Loads are CPU-busy fractions in [0, 1].
enum class LoadCurveKind {
  /// Long constant plateaus with occasional jumps — the "processors which
  /// display a constant workload over a long period" case of §3.4.
  kStable,
  /// Frequent random steps (random-walk between levels).
  kBursty,
  /// Diurnal sine pattern discretized into steps.
  kPeriodic,
  /// Alternating saturated/idle episodes (the shared-cluster pattern).
  kOnOff,
};

std::string_view LoadCurveKindName(LoadCurveKind kind);

/// Generates a step series of load values over [0, horizon] seconds.
StepSeries GenerateLoadCurve(LoadCurveKind kind, Duration horizon, Rng* rng);

}  // namespace biopera::monitor

#endif  // BIOPERA_MONITOR_LOAD_CURVE_H_
