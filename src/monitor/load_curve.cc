#include "monitor/load_curve.h"

#include <algorithm>
#include <cmath>

namespace biopera::monitor {

std::string_view LoadCurveKindName(LoadCurveKind kind) {
  switch (kind) {
    case LoadCurveKind::kStable:
      return "stable";
    case LoadCurveKind::kBursty:
      return "bursty";
    case LoadCurveKind::kPeriodic:
      return "periodic";
    case LoadCurveKind::kOnOff:
      return "on-off";
  }
  return "?";
}

StepSeries GenerateLoadCurve(LoadCurveKind kind, Duration horizon, Rng* rng) {
  StepSeries series;
  const double T = horizon.ToSeconds();
  double t = 0;
  switch (kind) {
    case LoadCurveKind::kStable: {
      double level = rng->Uniform(0.1, 0.9);
      series.Set(0, level);
      while (t < T) {
        t += rng->Exponential(3600 * 4);  // plateau ~4h
        level = std::clamp(level + rng->Normal(0, 0.25), 0.0, 1.0);
        series.Set(std::min(t, T), level);
      }
      break;
    }
    case LoadCurveKind::kBursty: {
      double level = rng->Uniform(0.0, 1.0);
      series.Set(0, level);
      while (t < T) {
        t += rng->Exponential(120);  // steps ~2 min apart
        level = std::clamp(level + rng->Normal(0, 0.15), 0.0, 1.0);
        series.Set(std::min(t, T), level);
      }
      break;
    }
    case LoadCurveKind::kPeriodic: {
      const double period = 86400;  // diurnal
      const double step = 600;      // 10-minute discretization
      for (t = 0; t < T; t += step) {
        double phase = 2 * M_PI * t / period;
        double level = 0.5 + 0.45 * std::sin(phase);
        series.Set(t, std::clamp(level + rng->Normal(0, 0.02), 0.0, 1.0));
      }
      break;
    }
    case LoadCurveKind::kOnOff: {
      bool on = false;
      series.Set(0, 0.0);
      while (t < T) {
        t += rng->Exponential(on ? 3600 * 6 : 3600 * 10);
        on = !on;
        series.Set(std::min(t, T), on ? 1.0 : 0.0);
      }
      break;
    }
  }
  return series;
}

}  // namespace biopera::monitor
