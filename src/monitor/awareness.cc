#include "monitor/awareness.h"

#include <algorithm>

namespace biopera::monitor {

void AwarenessModel::RegisterNode(const cluster::NodeConfig& config,
                                  TimePoint now) {
  NodeView view;
  view.config = config;
  view.load_updated = now;
  nodes_[config.name] = view;
  InvalidateCandidates();
}

void AwarenessModel::UnregisterNode(const std::string& name) {
  nodes_.erase(name);
  InvalidateCandidates();
}

void AwarenessModel::NodeDown(const std::string& name, TimePoint now) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  if (it->second.up) {
    it->second.up = false;
    it->second.down_since = now;
    it->second.running_jobs = 0;
    InvalidateCandidates();
  }
}

void AwarenessModel::NodeUp(const std::string& name, TimePoint now) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  if (!it->second.up) {
    it->second.up = true;
    it->second.total_downtime += now - it->second.down_since;
    InvalidateCandidates();
  }
}

void AwarenessModel::UpdateConfig(const cluster::NodeConfig& config) {
  auto it = nodes_.find(config.name);
  if (it == nodes_.end()) return;
  it->second.config = config;
  // Served classes may have changed with the config.
  InvalidateCandidates();
}

void AwarenessModel::UpdateLoad(const std::string& name, double load,
                                TimePoint now) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  it->second.reported_load = load;
  it->second.load_updated = now;
}

void AwarenessModel::JobDispatched(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  ++it->second.running_jobs;
  ++it->second.total_dispatched;
}

void AwarenessModel::JobFinishedOrFailed(const std::string& name,
                                         bool failed) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) return;
  it->second.running_jobs = std::max(0, it->second.running_jobs - 1);
  if (failed) ++it->second.total_failures;
}

const AwarenessModel::NodeView* AwarenessModel::Find(
    const std::string& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const AwarenessModel::NodeView*> AwarenessModel::UpNodes() const {
  std::vector<const NodeView*> out;
  for (const auto& [name, view] : nodes_) {
    if (view.up) out.push_back(&view);
  }
  return out;
}

const std::vector<const AwarenessModel::NodeView*>& AwarenessModel::Candidates(
    std::string_view resource_class) const {
  auto it = candidates_cache_.find(resource_class);
  if (it != candidates_cache_.end()) return it->second;
  std::vector<const NodeView*> out;
  for (const auto& [name, view] : nodes_) {
    if (view.up && view.config.ServesClass(resource_class)) {
      out.push_back(&view);
    }
  }
  return candidates_cache_
      .emplace(std::string(resource_class), std::move(out))
      .first->second;
}

double AwarenessModel::EstimatedFreeCpus(const NodeView& view) const {
  double external = view.reported_load * view.config.num_cpus;
  return std::max(0.0, view.config.num_cpus - external - view.running_jobs);
}

}  // namespace biopera::monitor
