#ifndef BIOPERA_COMMS_CHANNEL_H_
#define BIOPERA_COMMS_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace biopera::comms {

/// The engine <-> PEC wire protocol: commands flow from the server to a
/// node, reports flow back. Each direction uses its own (asymmetric)
/// link, mirroring how a real grid node can receive commands while its
/// replies are blackholed — the failure mode the lease-based detector
/// exists for.
enum class MessageType {
  // Commands (server -> node).
  kLaunch,     // start a job: job, fence, work
  kKill,       // stop a job: job, fence
  kProbe,      // "are you there?" — a reachable PEC answers with kHeartbeat
  // Reports (node -> server).
  kHeartbeat,  // periodic lease renewal
  kCompletion, // job finished: job, fence
  kFailure,    // job failed: job, fence, reason
  kLoad,       // external-load sample: load
};

std::string_view MessageTypeName(MessageType type);
bool IsCommand(MessageType type);

/// The fault-point name of a message type: "cmd.launch", "rpt.completion",
/// ... — the granularity at which FaultChannel arms and counts faults
/// (mirroring FaultFs's "<class>.<op>" points).
std::string_view FaultPointName(MessageType type);

/// One message on the control plane. Unused fields stay at their
/// defaults; `node` is the destination of a command and the origin of a
/// report.
struct Message {
  MessageType type = MessageType::kProbe;
  std::string node;
  uint64_t job = 0;
  /// Attempt-epoch fencing token stamped by the engine at launch and
  /// echoed in every report about the job: writer_epoch << 20 | counter.
  /// 0 means "no fence" (legacy direct calls), which opts the message out
  /// of the exactly-once dedup memory.
  uint64_t fence = 0;
  Duration work;       // kLaunch: estimated reference-CPU cost
  std::string reason;  // kFailure: why
  double load = 0;     // kLoad: external busy fraction (0..1)
};

/// Receiver of commands (implemented by ClusterSim): the PEC side.
class CommandHandler {
 public:
  virtual ~CommandHandler() = default;
  /// Handles a command addressed to `msg.node`. The returned status
  /// reaches the sender only when the channel delivered synchronously;
  /// async (delayed) deliveries discard it.
  virtual Status HandleCommand(const Message& msg) = 0;
};

/// Receiver of reports (implemented by the engine): the server side.
class ReportHandler {
 public:
  virtual ~ReportHandler() = default;
  virtual void HandleReport(const Message& msg) = 0;
};

/// Virtual-time message channel between the engine and the PECs. The
/// default implementation delivers synchronously in the caller's stack —
/// byte-identical to the direct calls it replaced — but owns per-link,
/// per-direction connectivity: a down command link fails sends with
/// Unavailable (the sender sees the connect refusal), a down report link
/// makes SendReport return false (the PEC queues and retries on
/// reconnect). FaultChannel subclasses this to inject in-flight loss.
class Channel {
 public:
  Channel() = default;
  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Needed only by decorators that schedule deliveries (delays,
  /// reorders); the plain channel never consults it.
  void BindSimulator(Simulator* sim) { sim_ = sim; }
  Simulator* sim() const { return sim_; }

  void SetCommandHandler(CommandHandler* handler) { commands_ = handler; }
  void SetReportHandler(ReportHandler* handler) { reports_ = handler; }
  CommandHandler* command_handler() const { return commands_; }
  ReportHandler* report_handler() const { return reports_; }

  /// Called (synchronously) whenever either link of `node` changes state.
  void SetLinkObserver(std::function<void(const std::string&)> observer) {
    link_observer_ = std::move(observer);
  }

  // --- Per-link asymmetric connectivity (absent = up) ----------------------
  void SetCommandLink(const std::string& node, bool up);
  void SetReportLink(const std::string& node, bool up);
  /// Both directions at once (the symmetric SetConnected of old).
  void SetConnected(const std::string& node, bool up);
  bool CommandLinkUp(const std::string& node) const {
    return !command_down_.contains(node);
  }
  bool ReportLinkUp(const std::string& node) const {
    return !report_down_.contains(node);
  }

  // --- Transfer ------------------------------------------------------------
  /// Sends a command to `msg.node`. Unavailable when the command link is
  /// down (never silently applied); otherwise the handler's status.
  virtual Status SendCommand(const Message& msg);
  /// Sends a report from `msg.node`. False when the report link is down —
  /// the caller still owns the message and queues it for reconnect.
  virtual bool SendReport(const Message& msg);

 protected:
  /// Link-checked delivery used by subclasses for re-sends of messages
  /// they held back (delays, reorders).
  Status DeliverCommand(const Message& msg);
  bool DeliverReport(const Message& msg);

 private:
  void NotifyLink(const std::string& node) {
    if (link_observer_) link_observer_(node);
  }

  Simulator* sim_ = nullptr;
  CommandHandler* commands_ = nullptr;
  ReportHandler* reports_ = nullptr;
  std::function<void(const std::string&)> link_observer_;
  std::set<std::string> command_down_;
  std::set<std::string> report_down_;
};

/// Probability profile for SetRandomFaults. Probabilities are evaluated
/// in the order drop, dup, delay, reorder against a single uniform draw
/// per message, so they must sum to <= 1.
struct FaultProfile {
  double drop = 0;
  double dup = 0;
  double delay = 0;
  double reorder = 0;
  Duration delay_min = Duration::Seconds(1);
  Duration delay_max = Duration::Minutes(5);
};

/// Channel decorator injecting message-level faults at named, counted
/// fault points (one per message type: see FaultPointName), mirroring
/// FaultFs. Faults model in-flight loss: the sender is told the send
/// succeeded (a dropped command returns OK, a dropped report returns
/// true) because a real network gives no such receipt — recovery is the
/// job of the lease detector, the watchdog and the fencing protocol, and
/// the chaos tests assert exactly that.
class FaultChannel : public Channel {
 public:
  FaultChannel() = default;

  /// One-shot scripted faults at the `at_hit`-th hit (1-based) of `point`.
  void ArmDrop(const std::string& point, uint64_t at_hit);
  void ArmDup(const std::string& point, uint64_t at_hit);
  void ArmDelay(const std::string& point, uint64_t at_hit, Duration delay);
  void ArmReorder(const std::string& point, uint64_t at_hit);
  void Disarm() { armed_.reset(); }

  /// Seeded random faults on every message. The rng must outlive the
  /// channel; draws happen in message-send order, so a given seed yields
  /// the same fault history on every run.
  void SetRandomFaults(const FaultProfile& profile, Rng* rng);
  void StopRandomFaults() { rng_ = nullptr; }

  /// Hit counts per fault point, armed or not.
  const std::map<std::string, uint64_t>& Hits() const { return hits_; }
  void ResetHits() { hits_.clear(); }
  uint64_t faults_injected() const { return faults_injected_; }

  Status SendCommand(const Message& msg) override;
  bool SendReport(const Message& msg) override;

 private:
  enum class FaultKind { kNone, kDrop, kDup, kDelay, kReorder };
  struct Armed {
    std::string point;
    uint64_t at_hit = 0;
    FaultKind kind = FaultKind::kNone;
    Duration delay;
  };

  /// Counts the hit and decides this message's fate (consuming the armed
  /// fault or the rng draws).
  FaultKind Account(std::string_view point, Duration* delay_out);
  /// Delivers `msg` after `delay` on the bound simulator (a regular
  /// event: an in-flight message keeps the run alive until it lands).
  /// Links are re-checked at delivery time; a launch that can no longer
  /// be applied is NACKed with a synthesized kFailure report.
  void DeliverLater(Message msg, Duration delay);
  void DeliverHeld(const std::string& node);
  void Deliver(const Message& msg);

  std::map<std::string, uint64_t> hits_;
  std::optional<Armed> armed_;
  FaultProfile profile_;
  Rng* rng_ = nullptr;
  uint64_t faults_injected_ = 0;
  /// Reorder holding cells, per destination/origin node: a held message
  /// is released right after the next message touching the same node (or
  /// by a fallback timer, so it is never held forever).
  std::map<std::string, std::vector<Message>> held_;
};

/// Deterministic retry backoff: base * 2^attempt plus a jitter in
/// [0, base) derived by FNV-1a hashing (seed, node, job, attempt) — two
/// engines with the same seed retry on identical schedules, while
/// distinct jobs decorrelate (no retry storms in lockstep).
Duration RetryBackoff(Duration base, Duration max, uint64_t seed,
                      std::string_view node, uint64_t job, int attempt);

}  // namespace biopera::comms

#endif  // BIOPERA_COMMS_CHANNEL_H_
