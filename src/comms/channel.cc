#include "comms/channel.h"

#include <algorithm>

namespace biopera::comms {

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kLaunch: return "launch";
    case MessageType::kKill: return "kill";
    case MessageType::kProbe: return "probe";
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kCompletion: return "completion";
    case MessageType::kFailure: return "failure";
    case MessageType::kLoad: return "load";
  }
  return "unknown";
}

bool IsCommand(MessageType type) {
  switch (type) {
    case MessageType::kLaunch:
    case MessageType::kKill:
    case MessageType::kProbe:
      return true;
    default:
      return false;
  }
}

std::string_view FaultPointName(MessageType type) {
  switch (type) {
    case MessageType::kLaunch: return "cmd.launch";
    case MessageType::kKill: return "cmd.kill";
    case MessageType::kProbe: return "cmd.probe";
    case MessageType::kHeartbeat: return "rpt.heartbeat";
    case MessageType::kCompletion: return "rpt.completion";
    case MessageType::kFailure: return "rpt.failure";
    case MessageType::kLoad: return "rpt.load";
  }
  return "unknown";
}

void Channel::SetCommandLink(const std::string& node, bool up) {
  bool changed = up ? command_down_.erase(node) > 0
                    : command_down_.insert(node).second;
  if (changed) NotifyLink(node);
}

void Channel::SetReportLink(const std::string& node, bool up) {
  bool changed =
      up ? report_down_.erase(node) > 0 : report_down_.insert(node).second;
  if (changed) NotifyLink(node);
}

void Channel::SetConnected(const std::string& node, bool up) {
  bool changed = up ? command_down_.erase(node) > 0
                    : command_down_.insert(node).second;
  changed |=
      up ? report_down_.erase(node) > 0 : report_down_.insert(node).second;
  if (changed) NotifyLink(node);
}

Status Channel::DeliverCommand(const Message& msg) {
  if (!CommandLinkUp(msg.node)) {
    return Status::Unavailable("command link to " + msg.node + " is down");
  }
  if (commands_ == nullptr) return Status::OK();
  return commands_->HandleCommand(msg);
}

bool Channel::DeliverReport(const Message& msg) {
  if (!ReportLinkUp(msg.node)) return false;
  if (reports_ != nullptr) reports_->HandleReport(msg);
  return true;
}

Status Channel::SendCommand(const Message& msg) { return DeliverCommand(msg); }

bool Channel::SendReport(const Message& msg) { return DeliverReport(msg); }

// ---------------------------------------------------------------------------
// FaultChannel
// ---------------------------------------------------------------------------

void FaultChannel::ArmDrop(const std::string& point, uint64_t at_hit) {
  armed_ = Armed{point, at_hit, FaultKind::kDrop, Duration::Zero()};
}

void FaultChannel::ArmDup(const std::string& point, uint64_t at_hit) {
  armed_ = Armed{point, at_hit, FaultKind::kDup, Duration::Zero()};
}

void FaultChannel::ArmDelay(const std::string& point, uint64_t at_hit,
                            Duration delay) {
  armed_ = Armed{point, at_hit, FaultKind::kDelay, delay};
}

void FaultChannel::ArmReorder(const std::string& point, uint64_t at_hit) {
  armed_ = Armed{point, at_hit, FaultKind::kReorder, Duration::Zero()};
}

void FaultChannel::SetRandomFaults(const FaultProfile& profile, Rng* rng) {
  profile_ = profile;
  rng_ = rng;
}

FaultChannel::FaultKind FaultChannel::Account(std::string_view point,
                                              Duration* delay_out) {
  uint64_t hit = ++hits_[std::string(point)];
  if (armed_.has_value() && armed_->point == point && hit == armed_->at_hit) {
    FaultKind kind = armed_->kind;
    *delay_out = armed_->delay;
    armed_.reset();  // one-shot, like FaultFs::ArmError
    ++faults_injected_;
    return kind;
  }
  if (rng_ != nullptr) {
    double r = rng_->NextDouble();
    double edge = profile_.drop;
    if (r < edge) {
      ++faults_injected_;
      return FaultKind::kDrop;
    }
    if (r < (edge += profile_.dup)) {
      ++faults_injected_;
      return FaultKind::kDup;
    }
    if (r < (edge += profile_.delay)) {
      *delay_out =
          profile_.delay_min + (profile_.delay_max - profile_.delay_min) *
                                   rng_->NextDouble();
      ++faults_injected_;
      return FaultKind::kDelay;
    }
    if (r < edge + profile_.reorder) {
      ++faults_injected_;
      return FaultKind::kReorder;
    }
  }
  return FaultKind::kNone;
}

void FaultChannel::Deliver(const Message& msg) {
  if (IsCommand(msg.type)) {
    Status st = DeliverCommand(msg);
    // An async-applied launch that bounced (node gone, link cut while the
    // message was in flight) is NACKed back as a failure report, the way
    // a PEC-side connect error would surface; the engine's normal retry
    // path takes it from there. AlreadyExists means a benign duplicate.
    if (msg.type == MessageType::kLaunch && !st.ok() &&
        st.code() != StatusCode::kAlreadyExists) {
      Message nack;
      nack.type = MessageType::kFailure;
      nack.node = msg.node;
      nack.job = msg.job;
      nack.fence = msg.fence;
      nack.reason = "launch undeliverable: " + st.ToString();
      DeliverReport(nack);
    }
  } else {
    DeliverReport(msg);
  }
}

void FaultChannel::DeliverLater(Message msg, Duration delay) {
  if (sim() == nullptr) {  // nothing to schedule on: degrade to in-order
    Deliver(msg);
    return;
  }
  sim()->Schedule(delay, [this, msg = std::move(msg)] { Deliver(msg); });
}

void FaultChannel::DeliverHeld(const std::string& node) {
  auto it = held_.find(node);
  if (it == held_.end()) return;
  std::vector<Message> batch = std::move(it->second);
  held_.erase(it);
  for (const Message& held : batch) Deliver(held);
}

Status FaultChannel::SendCommand(const Message& msg) {
  Duration delay;
  switch (Account(FaultPointName(msg.type), &delay)) {
    case FaultKind::kDrop:
      // Lost in flight; the sender has no receipt to miss.
      return Status::OK();
    case FaultKind::kDup: {
      Status st = Channel::SendCommand(msg);
      Channel::SendCommand(msg);  // the duplicate's outcome is unobserved
      DeliverHeld(msg.node);
      return st;
    }
    case FaultKind::kDelay:
      DeliverLater(msg, delay);
      return Status::OK();
    case FaultKind::kReorder:
      if (sim() == nullptr) return Channel::SendCommand(msg);
      held_[msg.node].push_back(msg);
      // Fallback so a held message is never stranded by silence.
      sim()->Schedule(Duration::Seconds(1),
                      [this, node = msg.node] { DeliverHeld(node); });
      return Status::OK();
    case FaultKind::kNone:
      break;
  }
  Status st = Channel::SendCommand(msg);
  DeliverHeld(msg.node);
  return st;
}

bool FaultChannel::SendReport(const Message& msg) {
  Duration delay;
  switch (Account(FaultPointName(msg.type), &delay)) {
    case FaultKind::kDrop:
      return true;  // lost in flight, not a visible link failure
    case FaultKind::kDup: {
      bool delivered = Channel::SendReport(msg);
      if (delivered) Channel::SendReport(msg);
      DeliverHeld(msg.node);
      return delivered;
    }
    case FaultKind::kDelay:
      DeliverLater(msg, delay);
      return true;
    case FaultKind::kReorder:
      if (sim() == nullptr) return Channel::SendReport(msg);
      held_[msg.node].push_back(msg);
      sim()->Schedule(Duration::Seconds(1),
                      [this, node = msg.node] { DeliverHeld(node); });
      return true;
    case FaultKind::kNone:
      break;
  }
  bool delivered = Channel::SendReport(msg);
  DeliverHeld(msg.node);
  return delivered;
}

Duration RetryBackoff(Duration base, Duration max, uint64_t seed,
                      std::string_view node, uint64_t job, int attempt) {
  Duration backoff = base;
  for (int i = 0; i < attempt && backoff < max; ++i) backoff = backoff * 2.0;
  backoff = std::min(backoff, max);
  // FNV-1a over the retry identity; cheap, stable across platforms.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(seed);
  for (char c : node) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  mix(job);
  mix(static_cast<uint64_t>(attempt));
  int64_t span = std::max<int64_t>(base.micros(), 1);
  return backoff + Duration::Micros(static_cast<int64_t>(h % span));
}

}  // namespace biopera::comms
