#ifndef BIOPERA_CLUSTER_CLUSTER_H_
#define BIOPERA_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/time.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace biopera::cluster {

using JobId = uint64_t;

/// Static description of one cluster node, as kept in BioOpera's
/// configuration space (paper §3.2): hardware and OS characteristics used
/// for placement decisions.
struct NodeConfig {
  std::string name;
  int num_cpus = 1;
  /// Speed relative to the reference CPU of the Darwin cost model.
  double speed = 1.0;
  std::string os = "linux";
  /// Comma-separated resource classes this node serves; empty = any.
  /// (The paper dedicates the slower ik-sun machines to refinement.)
  std::string resource_classes;

  /// True if this node may run activities of `cls` ("" matches any node).
  bool ServesClass(std::string_view cls) const;
};

/// Engine-facing notifications from the simulated cluster. Mirrors what
/// the paper's Program Execution Clients report to the BioOpera server:
/// job completions and failures, node availability changes, and load.
class ClusterListener {
 public:
  virtual ~ClusterListener() = default;
  virtual void OnJobFinished(JobId id, const std::string& node) = 0;
  virtual void OnJobFailed(JobId id, const std::string& node,
                           const std::string& reason) = 0;
  virtual void OnNodeDown(const std::string& node) = 0;
  virtual void OnNodeUp(const std::string& node) = 0;
  /// Periodic load report (fraction of CPUs busy, 0..1), already filtered
  /// by the PEC's adaptive monitor.
  virtual void OnLoadReport(const std::string& node, double load) = 0;
  virtual void OnConfigChanged(const NodeConfig& config) = 0;
};

/// A timestamped annotation on the experiment timeline (the numbered
/// events of Figures 5 and 6).
struct TraceEvent {
  TimePoint time;
  std::string label;
};

/// Discrete-event model of a compute cluster running BioOpera jobs
/// "nice" (lowest priority): external (other users') load takes CPUs
/// first, the remaining capacity is shared equally among BioOpera jobs on
/// the node. Job progress integrates node speed x share over time, so
/// completions respond to failures, external load changes, and mid-run
/// hardware upgrades exactly as the engine would observe on real hardware.
class ClusterSim {
 public:
  explicit ClusterSim(Simulator* sim);
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  void SetListener(ClusterListener* listener) { listener_ = listener; }
  ClusterListener* listener() const { return listener_; }

  /// Attaches an observability context: node up/down transitions and
  /// Annotate() marks are mirrored into its trace sink (stamped with this
  /// cluster's virtual clock). nullptr detaches.
  void SetObservability(obs::Observability* obs);
  obs::Observability* observability() const { return obs_; }

  // --- Topology -----------------------------------------------------------
  Status AddNode(const NodeConfig& config);
  Status RemoveNode(const std::string& name);
  std::vector<NodeConfig> Nodes() const;
  Result<NodeConfig> GetNode(const std::string& name) const;
  bool IsUp(const std::string& name) const;
  /// Total CPUs across nodes that are up.
  int AvailableCpus() const;

  // --- Job control (called by the dispatcher) -----------------------------
  /// Starts a job of `work` CPU-time (at reference speed 1.0) on `node`.
  /// Fails if the node is down or unknown.
  Status StartJob(JobId id, const std::string& node, Duration work);
  /// Kills a running job without any report (used when the server aborts
  /// or migrates it). Returns NotFound if not running.
  Status KillJob(JobId id);
  /// Kills every running job (server crash semantics: ongoing processes
  /// are stopped; the recovered server re-dispatches from the store).
  void KillAllJobs();
  size_t NumRunningJobs() const;
  /// Node a job currently runs on; NotFound if not running.
  Result<std::string> JobNode(JobId id) const;
  /// Remaining reference-CPU work of a running job.
  Result<Duration> JobRemaining(JobId id) const;

  // --- Environment changes (failure injector / load generator) ------------
  /// Crashes a node: running jobs are lost and reported failed (the server
  /// learns of the crash via OnNodeDown as its PEC heartbeat dies).
  Status CrashNode(const std::string& name);
  Status RepairNode(const std::string& name);
  /// Changes the number of CPUs (the ik-linux mid-run upgrade of Fig. 6).
  Status SetNodeCpus(const std::string& name, int num_cpus);
  /// Sets how many CPUs external users occupy on the node (may be
  /// fractional; clamped to [0, num_cpus]).
  Status SetExternalLoad(const std::string& name, double busy_cpus);
  double ExternalLoad(const std::string& name) const;
  /// Disconnects / reconnects a node from the network: completion and
  /// failure reports queue at the node and flush on reconnect.
  Status SetConnected(const std::string& name, bool connected);
  /// Convenience: network outage over the whole cluster.
  void SetAllConnected(bool connected);

  // --- Tracing (Figures 5 and 6) -------------------------------------------
  /// Availability: CPUs on nodes that are up, over time (days).
  const StepSeries& AvailabilitySeries() const { return availability_; }
  /// Utilization: CPUs effectively computing BioOpera jobs, over time.
  const StepSeries& UtilizationSeries() const { return utilization_; }
  void Annotate(std::string label);
  const std::vector<TraceEvent>& Events() const { return events_; }

  /// Total reference-CPU work consumed by jobs that were killed or lost to
  /// crashes before completing — the work a re-execution has to redo.
  /// Measures the §3.3 checkpoint-granularity effect ("smaller activities
  /// result in less work lost when failures occur").
  Duration WastedWork() const { return Duration::Seconds(wasted_seconds_); }

  Simulator* sim() { return sim_; }

 private:
  struct Job {
    JobId id;
    double remaining_seconds;  // at reference speed 1.0
    double initial_seconds;
    EventId completion = kInvalidEventId;
  };
  struct Node {
    NodeConfig config;
    bool up = true;
    bool connected = true;
    double external_busy = 0;
    std::vector<Job> jobs;
    TimePoint last_update;
    /// Reports queued while disconnected: (job, success, reason).
    struct PendingReport {
      JobId id;
      bool success;
      std::string reason;
    };
    std::deque<PendingReport> pending_reports;

    double RatePerJob() const;
    double EffectiveBusyCpus() const;
  };

  Node* Find(const std::string& name);
  const Node* Find(const std::string& name) const;
  /// Folds elapsed progress into `remaining_seconds` of each job.
  void Advance(Node* node);
  /// Re-schedules completion events after any rate change.
  void Reschedule(Node* node);
  void CompleteJob(Node* node, JobId id);
  void Report(Node* node, JobId id, bool success, const std::string& reason);
  void FlushReports(Node* node);
  void UpdateTrace();

  Simulator* sim_;
  ClusterListener* listener_ = nullptr;
  obs::Observability* obs_ = nullptr;
  std::map<std::string, Node> nodes_;
  std::map<JobId, std::string> job_locations_;
  StepSeries availability_;
  StepSeries utilization_;
  std::vector<TraceEvent> events_;
  double wasted_seconds_ = 0;
};

}  // namespace biopera::cluster

#endif  // BIOPERA_CLUSTER_CLUSTER_H_
