#ifndef BIOPERA_CLUSTER_CLUSTER_H_
#define BIOPERA_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comms/channel.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/time.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace biopera::cluster {

using JobId = uint64_t;

/// Static description of one cluster node, as kept in BioOpera's
/// configuration space (paper §3.2): hardware and OS characteristics used
/// for placement decisions.
struct NodeConfig {
  std::string name;
  int num_cpus = 1;
  /// Speed relative to the reference CPU of the Darwin cost model.
  double speed = 1.0;
  std::string os = "linux";
  /// Comma-separated resource classes this node serves; empty = any.
  /// (The paper dedicates the slower ik-sun machines to refinement.)
  std::string resource_classes;

  /// True if this node may run activities of `cls` ("" matches any node).
  bool ServesClass(std::string_view cls) const;
};

/// Engine-facing notifications from the simulated cluster. Mirrors what
/// the paper's Program Execution Clients report to the BioOpera server:
/// job completions and failures, node availability changes, and load.
class ClusterListener {
 public:
  virtual ~ClusterListener() = default;
  virtual void OnJobFinished(JobId id, const std::string& node) = 0;
  virtual void OnJobFailed(JobId id, const std::string& node,
                           const std::string& reason) = 0;
  virtual void OnNodeDown(const std::string& node) = 0;
  virtual void OnNodeUp(const std::string& node) = 0;
  /// Periodic load report (fraction of CPUs busy, 0..1), already filtered
  /// by the PEC's adaptive monitor.
  virtual void OnLoadReport(const std::string& node, double load) = 0;
  virtual void OnConfigChanged(const NodeConfig& config) = 0;
  /// Either channel link of `node` changed state (only fired when a
  /// comms::Channel is attached). Default no-op so legacy listeners keep
  /// compiling; the engine uses it to flush queued kills and re-pump.
  virtual void OnLinkChanged(const std::string& node) { (void)node; }
};

/// A timestamped annotation on the experiment timeline (the numbered
/// events of Figures 5 and 6).
struct TraceEvent {
  TimePoint time;
  std::string label;
};

/// Discrete-event model of a compute cluster running BioOpera jobs
/// "nice" (lowest priority): external (other users') load takes CPUs
/// first, the remaining capacity is shared equally among BioOpera jobs on
/// the node. Job progress integrates node speed x share over time, so
/// completions respond to failures, external load changes, and mid-run
/// hardware upgrades exactly as the engine would observe on real hardware.
class ClusterSim : public comms::CommandHandler {
 public:
  explicit ClusterSim(Simulator* sim);
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  void SetListener(ClusterListener* listener) { listener_ = listener; }
  ClusterListener* listener() const { return listener_; }

  // --- Message channel -----------------------------------------------------
  /// Routes this cluster's control plane through `channel`: the cluster
  /// becomes the channel's command handler, completion/failure/load
  /// reports travel as messages (gated by the per-node report link), and
  /// SetConnected maps onto the channel's links. The channel must outlive
  /// the attachment. Replaces any previously attached channel.
  void AttachChannel(comms::Channel* channel);
  /// Detaches `channel` if it is the attached one (engine teardown).
  void DetachChannel(comms::Channel* channel);
  comms::Channel* channel() const { return channel_; }
  /// PEC side of the protocol: launch / kill / probe, with the
  /// exactly-once dedup memory (fence-keyed finished-job and tombstone
  /// tables) absorbing duplicated, delayed and reordered commands.
  Status HandleCommand(const comms::Message& msg) override;

  /// Starts per-node heartbeat daemons on the attached channel (lease
  /// mode): every `interval` each up node emits a kHeartbeat report.
  /// Heartbeats are ephemeral — a down report link drops them (that is
  /// the signal the engine's failure detector feeds on).
  void EnableHeartbeats(Duration interval);
  /// Lease mode: CrashNode/RepairNode stop notifying the listener
  /// directly — the server must detect death via missed leases and
  /// rebirth via resumed heartbeats, as on a real network.
  void SetSilentCrashes(bool silent) { silent_crashes_ = silent; }

  /// Attaches an observability context: node up/down transitions and
  /// Annotate() marks are mirrored into its trace sink (stamped with this
  /// cluster's virtual clock). nullptr detaches.
  void SetObservability(obs::Observability* obs);
  obs::Observability* observability() const { return obs_; }

  // --- Topology -----------------------------------------------------------
  Status AddNode(const NodeConfig& config);
  Status RemoveNode(const std::string& name);
  std::vector<NodeConfig> Nodes() const;
  Result<NodeConfig> GetNode(const std::string& name) const;
  bool IsUp(const std::string& name) const;
  /// Total CPUs across nodes that are up.
  int AvailableCpus() const;

  // --- Job control (called by the dispatcher) -----------------------------
  /// Starts a job of `work` CPU-time (at reference speed 1.0) on `node`.
  /// Fails if the node is down, unknown, or — defined semantics, never a
  /// silent apply — unreachable (Unavailable when the command link / the
  /// legacy connected flag is down).
  Status StartJob(JobId id, const std::string& node, Duration work);
  /// Kills a running job without any report (used when the server aborts
  /// or migrates it). Returns NotFound if not running, Unavailable (and
  /// does nothing) if the node is unreachable.
  Status KillJob(JobId id);
  /// Kills every running job (server crash semantics: ongoing processes
  /// are stopped; the recovered server re-dispatches from the store).
  void KillAllJobs();
  size_t NumRunningJobs() const;
  /// Node a job currently runs on; NotFound if not running.
  Result<std::string> JobNode(JobId id) const;
  /// Remaining reference-CPU work of a running job.
  Result<Duration> JobRemaining(JobId id) const;

  // --- Environment changes (failure injector / load generator) ------------
  /// Crashes a node: running jobs are lost and reported failed (the server
  /// learns of the crash via OnNodeDown as its PEC heartbeat dies).
  Status CrashNode(const std::string& name);
  Status RepairNode(const std::string& name);
  /// Changes the number of CPUs (the ik-linux mid-run upgrade of Fig. 6).
  Status SetNodeCpus(const std::string& name, int num_cpus);
  /// Sets how many CPUs external users occupy on the node (may be
  /// fractional; clamped to [0, num_cpus]).
  Status SetExternalLoad(const std::string& name, double busy_cpus);
  double ExternalLoad(const std::string& name) const;
  /// Disconnects / reconnects a node from the network: completion and
  /// failure reports queue at the node and flush on reconnect.
  Status SetConnected(const std::string& name, bool connected);
  /// Convenience: network outage over the whole cluster.
  void SetAllConnected(bool connected);

  // --- Tracing (Figures 5 and 6) -------------------------------------------
  /// Availability: CPUs on nodes that are up, over time (days).
  const StepSeries& AvailabilitySeries() const { return availability_; }
  /// Utilization: CPUs effectively computing BioOpera jobs, over time.
  const StepSeries& UtilizationSeries() const { return utilization_; }
  void Annotate(std::string label);
  const std::vector<TraceEvent>& Events() const { return events_; }

  /// Total reference-CPU work consumed by jobs that were killed or lost to
  /// crashes before completing — the work a re-execution has to redo.
  /// Measures the §3.3 checkpoint-granularity effect ("smaller activities
  /// result in less work lost when failures occur").
  Duration WastedWork() const { return Duration::Seconds(wasted_seconds_); }

  Simulator* sim() { return sim_; }

 private:
  struct Job {
    JobId id;
    double remaining_seconds;  // at reference speed 1.0
    double initial_seconds;
    /// Fencing token of the launch that started this attempt (0 for
    /// legacy direct StartJob calls); echoed in every report.
    uint64_t fence = 0;
    EventId completion = kInvalidEventId;
  };
  struct Node {
    NodeConfig config;
    bool up = true;
    bool connected = true;
    double external_busy = 0;
    std::vector<Job> jobs;
    TimePoint last_update;
    /// Reports queued while disconnected, flushed strictly in enqueue
    /// (FIFO) order on reconnect — locked by a cluster_test regression.
    struct PendingReport {
      JobId id;
      uint64_t fence;
      bool success;
      std::string reason;
    };
    std::deque<PendingReport> pending_reports;
    /// Lease-mode heartbeat daemon (kInvalidEventId when disabled/down).
    EventId heartbeat = kInvalidEventId;

    double RatePerJob() const;
    double EffectiveBusyCpus() const;
  };

  Node* Find(const std::string& name);
  const Node* Find(const std::string& name) const;
  /// Folds elapsed progress into `remaining_seconds` of each job.
  void Advance(Node* node);
  /// Re-schedules completion events after any rate change.
  void Reschedule(Node* node);
  void CompleteJob(Node* node, JobId id);
  void Report(Node* node, JobId id, uint64_t fence, bool success,
              const std::string& reason);
  void FlushReports(Node* node);
  void UpdateTrace();

  // -- Channel protocol --
  Status HandleLaunch(const comms::Message& msg);
  Status HandleKill(const comms::Message& msg);
  Status HandleProbe(const comms::Message& msg);
  Status StartJobInternal(JobId id, Node* node, Duration work,
                          uint64_t fence);
  /// A command can reach `node` (channel command link, or the legacy
  /// connected flag when no channel is attached).
  bool CommandReachable(const Node& node) const;
  bool ReportReachable(const Node& node) const;
  /// The channel told us a link of `name` changed: mirror the report link
  /// into `connected`, flush queued reports on reconnect, notify the
  /// listener.
  void OnChannelLink(const std::string& name);
  void ArmHeartbeat(Node* node);
  void CancelHeartbeat(Node* node);
  void SendHeartbeat(Node* node);

  Simulator* sim_;
  ClusterListener* listener_ = nullptr;
  obs::Observability* obs_ = nullptr;
  comms::Channel* channel_ = nullptr;
  Duration heartbeat_interval_ = Duration::Zero();
  bool silent_crashes_ = false;
  std::map<std::string, Node> nodes_;
  std::map<JobId, std::string> job_locations_;
  /// Exactly-once memory (fence-keyed, so a new engine epoch reusing job
  /// ids is unaffected). finished_jobs_: last outcome per completed
  /// attempt — a duplicated launch re-sends the report instead of
  /// re-running. dead_jobs_: attempts killed (or killed-in-flight) — a
  /// delayed duplicate launch cannot resurrect them. Only fence != 0
  /// (protocol-mode) attempts are remembered.
  struct FinishedJob {
    uint64_t fence;
    bool success;
    std::string reason;
  };
  std::map<JobId, FinishedJob> finished_jobs_;
  std::map<JobId, uint64_t> dead_jobs_;
  StepSeries availability_;
  StepSeries utilization_;
  std::vector<TraceEvent> events_;
  double wasted_seconds_ = 0;
};

}  // namespace biopera::cluster

#endif  // BIOPERA_CLUSTER_CLUSTER_H_
