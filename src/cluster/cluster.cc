#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/strings.h"

namespace biopera::cluster {

bool NodeConfig::ServesClass(std::string_view cls) const {
  if (cls.empty() || resource_classes.empty()) return true;
  for (const std::string& c : StrSplit(resource_classes, ',')) {
    if (StripWhitespace(c) == cls) return true;
  }
  return false;
}

double ClusterSim::Node::RatePerJob() const {
  if (!up || jobs.empty()) return 0;
  double free = std::max(
      0.0, static_cast<double>(config.num_cpus) - external_busy);
  double share = std::min(1.0, free / static_cast<double>(jobs.size()));
  return config.speed * share;
}

double ClusterSim::Node::EffectiveBusyCpus() const {
  if (!up || jobs.empty()) return 0;
  double free = std::max(
      0.0, static_cast<double>(config.num_cpus) - external_busy);
  return std::min(static_cast<double>(jobs.size()), free);
}

ClusterSim::ClusterSim(Simulator* sim) : sim_(sim) {
  UpdateTrace();
}

void ClusterSim::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ != nullptr && !obs_->trace.has_clock()) obs_->SetClock(sim_);
}

Status ClusterSim::AddNode(const NodeConfig& config) {
  if (config.num_cpus <= 0 || config.speed <= 0) {
    return Status::InvalidArgument("node " + config.name +
                                   ": cpus and speed must be positive");
  }
  if (nodes_.contains(config.name)) {
    return Status::AlreadyExists("node " + config.name);
  }
  Node node;
  node.config = config;
  node.last_update = sim_->Now();
  nodes_.emplace(config.name, std::move(node));
  UpdateTrace();
  return Status::OK();
}

Status ClusterSim::RemoveNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  // Treat as a crash first so running jobs are reported lost.
  if (node->up) BIOPERA_RETURN_IF_ERROR(CrashNode(name));
  nodes_.erase(name);
  UpdateTrace();
  return Status::OK();
}

std::vector<NodeConfig> ClusterSim::Nodes() const {
  std::vector<NodeConfig> out;
  for (const auto& [name, node] : nodes_) out.push_back(node.config);
  return out;
}

Result<NodeConfig> ClusterSim::GetNode(const std::string& name) const {
  const Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  return node->config;
}

bool ClusterSim::IsUp(const std::string& name) const {
  const Node* node = Find(name);
  return node != nullptr && node->up;
}

int ClusterSim::AvailableCpus() const {
  int total = 0;
  for (const auto& [name, node] : nodes_) {
    if (node.up) total += node.config.num_cpus;
  }
  return total;
}

ClusterSim::Node* ClusterSim::Find(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const ClusterSim::Node* ClusterSim::Find(const std::string& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

void ClusterSim::Advance(Node* node) {
  TimePoint now = sim_->Now();
  double elapsed = (now - node->last_update).ToSeconds();
  if (elapsed > 0) {
    double rate = node->RatePerJob();
    if (rate > 0) {
      for (Job& job : node->jobs) {
        job.remaining_seconds =
            std::max(0.0, job.remaining_seconds - elapsed * rate);
      }
    }
  }
  node->last_update = now;
}

void ClusterSim::Reschedule(Node* node) {
  double rate = node->RatePerJob();
  for (Job& job : node->jobs) {
    if (job.completion != kInvalidEventId) {
      sim_->Cancel(job.completion);
      job.completion = kInvalidEventId;
    }
    if (rate > 0) {
      Duration eta = Duration::Seconds(job.remaining_seconds / rate);
      JobId id = job.id;
      std::string name = node->config.name;
      job.completion = sim_->Schedule(eta, [this, name, id] {
        Node* n = Find(name);
        if (n != nullptr) CompleteJob(n, id);
      });
    }
  }
}

Status ClusterSim::StartJob(JobId id, const std::string& node_name,
                            Duration work) {
  Node* node = Find(node_name);
  if (node == nullptr) return Status::NotFound("node " + node_name);
  if (!node->up) return Status::Unavailable("node " + node_name + " is down");
  if (job_locations_.contains(id)) {
    return Status::AlreadyExists(StrFormat("job %llu already running",
                                           static_cast<unsigned long long>(id)));
  }
  Advance(node);
  node->jobs.push_back(
      Job{id, work.ToSeconds(), work.ToSeconds(), kInvalidEventId});
  job_locations_[id] = node_name;
  Reschedule(node);
  UpdateTrace();
  return Status::OK();
}

Status ClusterSim::KillJob(JobId id) {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound(StrFormat("job %llu not running",
                                      static_cast<unsigned long long>(id)));
  }
  Node* node = Find(it->second);
  assert(node != nullptr);
  Advance(node);
  auto job = std::find_if(node->jobs.begin(), node->jobs.end(),
                          [&](const Job& j) { return j.id == id; });
  assert(job != node->jobs.end());
  if (job->completion != kInvalidEventId) sim_->Cancel(job->completion);
  wasted_seconds_ += job->initial_seconds - job->remaining_seconds;
  node->jobs.erase(job);
  job_locations_.erase(it);
  Reschedule(node);
  UpdateTrace();
  return Status::OK();
}

void ClusterSim::KillAllJobs() {
  for (auto& [name, node] : nodes_) {
    Advance(&node);
    for (Job& job : node.jobs) {
      if (job.completion != kInvalidEventId) sim_->Cancel(job.completion);
      wasted_seconds_ += job.initial_seconds - job.remaining_seconds;
    }
    node.jobs.clear();
  }
  job_locations_.clear();
  UpdateTrace();
}

size_t ClusterSim::NumRunningJobs() const { return job_locations_.size(); }

Result<std::string> ClusterSim::JobNode(JobId id) const {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound("job not running");
  }
  return it->second;
}

Result<Duration> ClusterSim::JobRemaining(JobId id) const {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound("job not running");
  }
  const Node* node = Find(it->second);
  for (const Job& job : node->jobs) {
    if (job.id == id) {
      // Account for progress since the node's last bookkeeping update.
      double elapsed = (sim_->Now() - node->last_update).ToSeconds();
      double remaining =
          std::max(0.0, job.remaining_seconds - elapsed * node->RatePerJob());
      return Duration::Seconds(remaining);
    }
  }
  return Status::Internal("job location desync");
}

void ClusterSim::CompleteJob(Node* node, JobId id) {
  Advance(node);
  auto job = std::find_if(node->jobs.begin(), node->jobs.end(),
                          [&](const Job& j) { return j.id == id; });
  if (job == node->jobs.end()) return;  // raced with a kill
  node->jobs.erase(job);
  job_locations_.erase(id);
  Report(node, id, /*success=*/true, "");
  Reschedule(node);  // survivors get a bigger share
  UpdateTrace();
}

void ClusterSim::Report(Node* node, JobId id, bool success,
                        const std::string& reason) {
  if (!node->connected) {
    node->pending_reports.push_back({id, success, reason});
    return;
  }
  if (listener_ == nullptr) return;
  if (success) {
    listener_->OnJobFinished(id, node->config.name);
  } else {
    listener_->OnJobFailed(id, node->config.name, reason);
  }
}

void ClusterSim::FlushReports(Node* node) {
  while (!node->pending_reports.empty() && node->connected) {
    auto report = node->pending_reports.front();
    node->pending_reports.pop_front();
    if (listener_ != nullptr) {
      if (report.success) {
        listener_->OnJobFinished(report.id, node->config.name);
      } else {
        listener_->OnJobFailed(report.id, node->config.name, report.reason);
      }
    }
  }
}

Status ClusterSim::CrashNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (!node->up) return Status::OK();
  Advance(node);
  node->up = false;
  // Running jobs die with the node; queued reports die with the PEC.
  std::vector<JobId> lost;
  for (Job& job : node->jobs) {
    if (job.completion != kInvalidEventId) sim_->Cancel(job.completion);
    wasted_seconds_ += job.initial_seconds - job.remaining_seconds;
    lost.push_back(job.id);
  }
  node->jobs.clear();
  node->pending_reports.clear();
  for (JobId id : lost) job_locations_.erase(id);
  UpdateTrace();
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kNodeDown, "", "", name,
                     {{"jobs_lost", StrFormat("%zu", lost.size())}});
    obs_->spans.Begin(obs::SpanKind::kNodeOutage, "node down", /*parent=*/0,
                      /*link=*/0, /*instance=*/"", /*task=*/"", name,
                      {{"jobs_lost", StrFormat("%zu", lost.size())}});
  }
  // The server detects the dead PEC (heartbeat timeout) and classifies the
  // node's active jobs as failed (paper §5.4 events 3 and 7).
  if (listener_ != nullptr) {
    listener_->OnNodeDown(name);
    for (JobId id : lost) {
      listener_->OnJobFailed(id, name, "node crash");
    }
  }
  return Status::OK();
}

Status ClusterSim::RepairNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (node->up) return Status::OK();
  node->up = true;
  node->last_update = sim_->Now();
  UpdateTrace();
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kNodeUp, "", "", name);
    obs_->spans.End(
        obs_->spans.FindOpen(obs::SpanKind::kNodeOutage, "", name),
        "repaired");
  }
  if (listener_ != nullptr) listener_->OnNodeUp(name);
  return Status::OK();
}

Status ClusterSim::SetNodeCpus(const std::string& name, int num_cpus) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (num_cpus <= 0) return Status::InvalidArgument("num_cpus must be > 0");
  Advance(node);
  node->config.num_cpus = num_cpus;
  Reschedule(node);
  UpdateTrace();
  if (listener_ != nullptr) listener_->OnConfigChanged(node->config);
  return Status::OK();
}

Status ClusterSim::SetExternalLoad(const std::string& name,
                                   double busy_cpus) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  busy_cpus = std::clamp(busy_cpus, 0.0,
                         static_cast<double>(node->config.num_cpus));
  Advance(node);
  node->external_busy = busy_cpus;
  Reschedule(node);
  UpdateTrace();
  // Raw load change; the PEC's adaptive monitor decides whether to
  // propagate a report (wired externally via the monitor module). The PEC
  // reports the *external* load fraction — it can tell its own jobs apart.
  if (listener_ != nullptr && node->connected && node->up) {
    listener_->OnLoadReport(name,
                            node->external_busy / node->config.num_cpus);
  }
  return Status::OK();
}

double ClusterSim::ExternalLoad(const std::string& name) const {
  const Node* node = Find(name);
  return node == nullptr ? 0 : node->external_busy;
}

Status ClusterSim::SetConnected(const std::string& name, bool connected) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (node->connected == connected) return Status::OK();
  node->connected = connected;
  if (connected) FlushReports(node);
  return Status::OK();
}

void ClusterSim::SetAllConnected(bool connected) {
  for (auto& [name, node] : nodes_) {
    node.connected = connected;
    if (connected) FlushReports(&node);
  }
}

void ClusterSim::Annotate(std::string label) {
  // The legacy figure annotations and the structured sink carry the same
  // marks; benches keep reading Events() while exports read the trace.
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kAnnotation, "", "", "",
                     {{"label", label}});
  }
  events_.push_back({sim_->Now(), std::move(label)});
}

void ClusterSim::UpdateTrace() {
  double t_days = sim_->Now().SinceEpoch().ToDays();
  double avail = 0, util = 0;
  for (const auto& [name, node] : nodes_) {
    if (!node.up) continue;
    avail += node.config.num_cpus;
    util += node.EffectiveBusyCpus();
  }
  availability_.Set(t_days, avail);
  utilization_.Set(t_days, util);
}

}  // namespace biopera::cluster
