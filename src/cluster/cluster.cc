#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/strings.h"

namespace biopera::cluster {

bool NodeConfig::ServesClass(std::string_view cls) const {
  if (cls.empty() || resource_classes.empty()) return true;
  for (const std::string& c : StrSplit(resource_classes, ',')) {
    if (StripWhitespace(c) == cls) return true;
  }
  return false;
}

double ClusterSim::Node::RatePerJob() const {
  if (!up || jobs.empty()) return 0;
  double free = std::max(
      0.0, static_cast<double>(config.num_cpus) - external_busy);
  double share = std::min(1.0, free / static_cast<double>(jobs.size()));
  return config.speed * share;
}

double ClusterSim::Node::EffectiveBusyCpus() const {
  if (!up || jobs.empty()) return 0;
  double free = std::max(
      0.0, static_cast<double>(config.num_cpus) - external_busy);
  return std::min(static_cast<double>(jobs.size()), free);
}

ClusterSim::ClusterSim(Simulator* sim) : sim_(sim) {
  UpdateTrace();
}

void ClusterSim::SetObservability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ != nullptr && !obs_->trace.has_clock()) obs_->SetClock(sim_);
}

Status ClusterSim::AddNode(const NodeConfig& config) {
  if (config.num_cpus <= 0 || config.speed <= 0) {
    return Status::InvalidArgument("node " + config.name +
                                   ": cpus and speed must be positive");
  }
  if (nodes_.contains(config.name)) {
    return Status::AlreadyExists("node " + config.name);
  }
  Node node;
  node.config = config;
  node.last_update = sim_->Now();
  auto [it, inserted] = nodes_.emplace(config.name, std::move(node));
  (void)inserted;
  ArmHeartbeat(&it->second);  // no-op unless heartbeats are enabled
  UpdateTrace();
  return Status::OK();
}

Status ClusterSim::RemoveNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  // Treat as a crash first so running jobs are reported lost.
  if (node->up) BIOPERA_RETURN_IF_ERROR(CrashNode(name));
  nodes_.erase(name);
  UpdateTrace();
  return Status::OK();
}

std::vector<NodeConfig> ClusterSim::Nodes() const {
  std::vector<NodeConfig> out;
  for (const auto& [name, node] : nodes_) out.push_back(node.config);
  return out;
}

Result<NodeConfig> ClusterSim::GetNode(const std::string& name) const {
  const Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  return node->config;
}

bool ClusterSim::IsUp(const std::string& name) const {
  const Node* node = Find(name);
  return node != nullptr && node->up;
}

int ClusterSim::AvailableCpus() const {
  int total = 0;
  for (const auto& [name, node] : nodes_) {
    if (node.up) total += node.config.num_cpus;
  }
  return total;
}

ClusterSim::Node* ClusterSim::Find(const std::string& name) {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

const ClusterSim::Node* ClusterSim::Find(const std::string& name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? nullptr : &it->second;
}

void ClusterSim::Advance(Node* node) {
  TimePoint now = sim_->Now();
  double elapsed = (now - node->last_update).ToSeconds();
  if (elapsed > 0) {
    double rate = node->RatePerJob();
    if (rate > 0) {
      for (Job& job : node->jobs) {
        job.remaining_seconds =
            std::max(0.0, job.remaining_seconds - elapsed * rate);
      }
    }
  }
  node->last_update = now;
}

void ClusterSim::Reschedule(Node* node) {
  double rate = node->RatePerJob();
  for (Job& job : node->jobs) {
    if (job.completion != kInvalidEventId) {
      sim_->Cancel(job.completion);
      job.completion = kInvalidEventId;
    }
    if (rate > 0) {
      Duration eta = Duration::Seconds(job.remaining_seconds / rate);
      JobId id = job.id;
      std::string name = node->config.name;
      job.completion = sim_->Schedule(eta, [this, name, id] {
        Node* n = Find(name);
        if (n != nullptr) CompleteJob(n, id);
      });
    }
  }
}

bool ClusterSim::CommandReachable(const Node& node) const {
  if (channel_ != nullptr) return channel_->CommandLinkUp(node.config.name);
  return node.connected;
}

bool ClusterSim::ReportReachable(const Node& node) const {
  if (channel_ != nullptr) return channel_->ReportLinkUp(node.config.name);
  return node.connected;
}

Status ClusterSim::StartJobInternal(JobId id, Node* node, Duration work,
                                    uint64_t fence) {
  if (!node->up) {
    return Status::Unavailable("node " + node->config.name + " is down");
  }
  if (job_locations_.contains(id)) {
    return Status::AlreadyExists(StrFormat("job %llu already running",
                                           static_cast<unsigned long long>(id)));
  }
  Advance(node);
  node->jobs.push_back(
      Job{id, work.ToSeconds(), work.ToSeconds(), fence, kInvalidEventId});
  job_locations_[id] = node->config.name;
  Reschedule(node);
  UpdateTrace();
  return Status::OK();
}

Status ClusterSim::StartJob(JobId id, const std::string& node_name,
                            Duration work) {
  Node* node = Find(node_name);
  if (node == nullptr) return Status::NotFound("node " + node_name);
  // Defined disconnected semantics: a command to an unreachable node
  // fails loudly instead of silently applying.
  if (!CommandReachable(*node)) {
    return Status::Unavailable("node " + node_name + " is unreachable");
  }
  return StartJobInternal(id, node, work, /*fence=*/0);
}

Status ClusterSim::KillJob(JobId id) {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound(StrFormat("job %llu not running",
                                      static_cast<unsigned long long>(id)));
  }
  Node* node = Find(it->second);
  assert(node != nullptr);
  if (!CommandReachable(*node)) {
    return Status::Unavailable("node " + it->second + " is unreachable");
  }
  comms::Message msg;
  msg.type = comms::MessageType::kKill;
  msg.node = it->second;
  msg.job = id;
  return HandleKill(msg);
}

void ClusterSim::KillAllJobs() {
  for (auto& [name, node] : nodes_) {
    Advance(&node);
    for (Job& job : node.jobs) {
      if (job.completion != kInvalidEventId) sim_->Cancel(job.completion);
      wasted_seconds_ += job.initial_seconds - job.remaining_seconds;
    }
    node.jobs.clear();
  }
  job_locations_.clear();
  UpdateTrace();
}

size_t ClusterSim::NumRunningJobs() const { return job_locations_.size(); }

Result<std::string> ClusterSim::JobNode(JobId id) const {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound("job not running");
  }
  return it->second;
}

Result<Duration> ClusterSim::JobRemaining(JobId id) const {
  auto it = job_locations_.find(id);
  if (it == job_locations_.end()) {
    return Status::NotFound("job not running");
  }
  const Node* node = Find(it->second);
  for (const Job& job : node->jobs) {
    if (job.id == id) {
      // Account for progress since the node's last bookkeeping update.
      double elapsed = (sim_->Now() - node->last_update).ToSeconds();
      double remaining =
          std::max(0.0, job.remaining_seconds - elapsed * node->RatePerJob());
      return Duration::Seconds(remaining);
    }
  }
  return Status::Internal("job location desync");
}

void ClusterSim::CompleteJob(Node* node, JobId id) {
  Advance(node);
  auto job = std::find_if(node->jobs.begin(), node->jobs.end(),
                          [&](const Job& j) { return j.id == id; });
  if (job == node->jobs.end()) return;  // raced with a kill
  uint64_t fence = job->fence;
  node->jobs.erase(job);
  job_locations_.erase(id);
  // Remember the outcome so a duplicated launch of this attempt re-sends
  // the report instead of re-running the work.
  if (fence != 0) finished_jobs_[id] = FinishedJob{fence, true, ""};
  Report(node, id, fence, /*success=*/true, "");
  Reschedule(node);  // survivors get a bigger share
  UpdateTrace();
}

void ClusterSim::Report(Node* node, JobId id, uint64_t fence, bool success,
                        const std::string& reason) {
  if (channel_ != nullptr) {
    comms::Message msg;
    msg.type = success ? comms::MessageType::kCompletion
                       : comms::MessageType::kFailure;
    msg.node = node->config.name;
    msg.job = id;
    msg.fence = fence;
    msg.reason = reason;
    if (!channel_->SendReport(msg)) {
      node->pending_reports.push_back({id, fence, success, reason});
    }
    return;
  }
  if (!node->connected) {
    node->pending_reports.push_back({id, fence, success, reason});
    return;
  }
  if (listener_ == nullptr) return;
  if (success) {
    listener_->OnJobFinished(id, node->config.name);
  } else {
    listener_->OnJobFailed(id, node->config.name, reason);
  }
}

void ClusterSim::FlushReports(Node* node) {
  // Strictly enqueue (FIFO) order: the deque is drained front-first and
  // every path that queues appends at the back, so a reconnect replays
  // the outage's reports in exactly the order the node produced them.
  while (!node->pending_reports.empty() && ReportReachable(*node) &&
         node->connected) {
    auto report = node->pending_reports.front();
    node->pending_reports.pop_front();
    if (channel_ != nullptr) {
      comms::Message msg;
      msg.type = report.success ? comms::MessageType::kCompletion
                                : comms::MessageType::kFailure;
      msg.node = node->config.name;
      msg.job = report.id;
      msg.fence = report.fence;
      msg.reason = report.reason;
      channel_->SendReport(msg);
      continue;
    }
    if (listener_ != nullptr) {
      if (report.success) {
        listener_->OnJobFinished(report.id, node->config.name);
      } else {
        listener_->OnJobFailed(report.id, node->config.name, report.reason);
      }
    }
  }
}

Status ClusterSim::CrashNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (!node->up) return Status::OK();
  Advance(node);
  node->up = false;
  CancelHeartbeat(node);
  // Running jobs die with the node; queued reports die with the PEC.
  std::vector<JobId> lost;
  for (Job& job : node->jobs) {
    if (job.completion != kInvalidEventId) sim_->Cancel(job.completion);
    wasted_seconds_ += job.initial_seconds - job.remaining_seconds;
    lost.push_back(job.id);
  }
  node->jobs.clear();
  node->pending_reports.clear();
  for (JobId id : lost) job_locations_.erase(id);
  UpdateTrace();
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kNodeDown, "", "", name,
                     {{"jobs_lost", StrFormat("%zu", lost.size())}});
    obs_->spans.Begin(obs::SpanKind::kNodeOutage, "node down", /*parent=*/0,
                      /*link=*/0, /*instance=*/"", /*task=*/"", name,
                      {{"jobs_lost", StrFormat("%zu", lost.size())}});
  }
  // The server detects the dead PEC (heartbeat timeout) and classifies the
  // node's active jobs as failed (paper §5.4 events 3 and 7). In silent
  // mode there is no such modelling shortcut: the crash only shows up as
  // missed leases and the engine's suspicion machinery takes over.
  if (listener_ != nullptr && !silent_crashes_) {
    listener_->OnNodeDown(name);
    for (JobId id : lost) {
      listener_->OnJobFailed(id, name, "node crash");
    }
  }
  return Status::OK();
}

Status ClusterSim::RepairNode(const std::string& name) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (node->up) return Status::OK();
  node->up = true;
  node->last_update = sim_->Now();
  ArmHeartbeat(node);
  UpdateTrace();
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kNodeUp, "", "", name);
    obs_->spans.End(
        obs_->spans.FindOpen(obs::SpanKind::kNodeOutage, "", name),
        "repaired");
  }
  if (listener_ != nullptr && !silent_crashes_) listener_->OnNodeUp(name);
  return Status::OK();
}

Status ClusterSim::SetNodeCpus(const std::string& name, int num_cpus) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (num_cpus <= 0) return Status::InvalidArgument("num_cpus must be > 0");
  Advance(node);
  node->config.num_cpus = num_cpus;
  Reschedule(node);
  UpdateTrace();
  if (listener_ != nullptr) listener_->OnConfigChanged(node->config);
  return Status::OK();
}

Status ClusterSim::SetExternalLoad(const std::string& name,
                                   double busy_cpus) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  busy_cpus = std::clamp(busy_cpus, 0.0,
                         static_cast<double>(node->config.num_cpus));
  Advance(node);
  node->external_busy = busy_cpus;
  Reschedule(node);
  UpdateTrace();
  // Raw load change; the PEC's adaptive monitor decides whether to
  // propagate a report (wired externally via the monitor module). The PEC
  // reports the *external* load fraction — it can tell its own jobs apart.
  if (node->up && channel_ != nullptr) {
    comms::Message msg;
    msg.type = comms::MessageType::kLoad;
    msg.node = name;
    msg.load = node->external_busy / node->config.num_cpus;
    channel_->SendReport(msg);  // ephemeral: not queued when the link is down
  } else if (listener_ != nullptr && node->connected && node->up) {
    listener_->OnLoadReport(name,
                            node->external_busy / node->config.num_cpus);
  }
  return Status::OK();
}

double ClusterSim::ExternalLoad(const std::string& name) const {
  const Node* node = Find(name);
  return node == nullptr ? 0 : node->external_busy;
}

Status ClusterSim::SetConnected(const std::string& name, bool connected) {
  Node* node = Find(name);
  if (node == nullptr) return Status::NotFound("node " + name);
  if (channel_ != nullptr) {
    // Symmetric outage on the channel; OnChannelLink mirrors the report
    // link into `connected` and flushes.
    channel_->SetConnected(name, connected);
    return Status::OK();
  }
  if (node->connected == connected) return Status::OK();
  node->connected = connected;
  if (connected) FlushReports(node);
  return Status::OK();
}

void ClusterSim::SetAllConnected(bool connected) {
  for (auto& [name, node] : nodes_) {
    if (channel_ != nullptr) {
      channel_->SetConnected(name, connected);
      continue;
    }
    node.connected = connected;
    if (connected) FlushReports(&node);
  }
}

// ---------------------------------------------------------------------------
// Message channel (the engine <-> PEC seam)
// ---------------------------------------------------------------------------

void ClusterSim::AttachChannel(comms::Channel* channel) {
  channel_ = channel;
  if (channel_ == nullptr) return;
  channel_->BindSimulator(sim_);
  channel_->SetCommandHandler(this);
  channel_->SetLinkObserver(
      [this](const std::string& name) { OnChannelLink(name); });
}

void ClusterSim::DetachChannel(comms::Channel* channel) {
  if (channel_ != channel || channel_ == nullptr) return;
  channel_->SetCommandHandler(nullptr);
  channel_->SetLinkObserver(nullptr);
  channel_ = nullptr;
}

void ClusterSim::OnChannelLink(const std::string& name) {
  Node* node = Find(name);
  if (node != nullptr) {
    node->connected = channel_->ReportLinkUp(name);
    if (node->connected) FlushReports(node);
  }
  if (listener_ != nullptr) listener_->OnLinkChanged(name);
}

Status ClusterSim::HandleCommand(const comms::Message& msg) {
  switch (msg.type) {
    case comms::MessageType::kLaunch:
      return HandleLaunch(msg);
    case comms::MessageType::kKill:
      return HandleKill(msg);
    case comms::MessageType::kProbe:
      return HandleProbe(msg);
    default:
      return Status::InvalidArgument("not a command");
  }
}

Status ClusterSim::HandleLaunch(const comms::Message& msg) {
  Node* node = Find(msg.node);
  if (node == nullptr) return Status::NotFound("node " + msg.node);
  if (msg.fence != 0) {
    // Exactly-once dedup. A tombstoned attempt was killed — a late
    // duplicate of its launch must not resurrect it.
    if (auto dead = dead_jobs_.find(msg.job);
        dead != dead_jobs_.end() && dead->second == msg.fence) {
      return Status::OK();
    }
    // A finished attempt re-sends its report (maybe the first was lost)
    // instead of burning CPU on a rerun.
    if (auto fin = finished_jobs_.find(msg.job);
        fin != finished_jobs_.end() && fin->second.fence == msg.fence) {
      if (node->up) {
        Report(node, msg.job, fin->second.fence, fin->second.success,
               fin->second.reason);
      }
      return Status::OK();
    }
    // Already running with the same fence: benign duplicate, idempotent.
    if (auto loc = job_locations_.find(msg.job);
        loc != job_locations_.end()) {
      Node* running_on = Find(loc->second);
      for (const Job& job : running_on->jobs) {
        if (job.id == msg.job && job.fence == msg.fence) {
          return Status::OK();
        }
      }
      return Status::AlreadyExists(
          StrFormat("job %llu already running under another fence",
                    static_cast<unsigned long long>(msg.job)));
    }
  }
  return StartJobInternal(msg.job, node, msg.work, msg.fence);
}

Status ClusterSim::HandleKill(const comms::Message& msg) {
  auto it = job_locations_.find(msg.job);
  if (it == job_locations_.end()) {
    // The launch may still be in flight (delayed or reordered past this
    // kill): tombstone the attempt so it can never start afterwards.
    if (msg.fence != 0 && !finished_jobs_.contains(msg.job)) {
      dead_jobs_[msg.job] = msg.fence;
    }
    return Status::NotFound(StrFormat(
        "job %llu not running", static_cast<unsigned long long>(msg.job)));
  }
  Node* node = Find(it->second);
  assert(node != nullptr);
  Advance(node);
  auto job = std::find_if(node->jobs.begin(), node->jobs.end(),
                          [&](const Job& j) { return j.id == msg.job; });
  assert(job != node->jobs.end());
  if (job->completion != kInvalidEventId) sim_->Cancel(job->completion);
  wasted_seconds_ += job->initial_seconds - job->remaining_seconds;
  // Tombstone the killed attempt against delayed duplicates of its
  // launch (fence 0 = legacy caller, outside the protocol).
  if (job->fence != 0) dead_jobs_[msg.job] = job->fence;
  node->jobs.erase(job);
  job_locations_.erase(it);
  Reschedule(node);
  UpdateTrace();
  return Status::OK();
}

Status ClusterSim::HandleProbe(const comms::Message& msg) {
  Node* node = Find(msg.node);
  if (node == nullptr) return Status::NotFound("node " + msg.node);
  if (!node->up) return Status::Unavailable("node " + msg.node + " is down");
  // A reachable PEC answers immediately — this is how a falsely suspected
  // node reconciles without waiting a full heartbeat interval.
  SendHeartbeat(node);
  return Status::OK();
}

void ClusterSim::EnableHeartbeats(Duration interval) {
  heartbeat_interval_ = interval;
  for (auto& [name, node] : nodes_) ArmHeartbeat(&node);
}

void ClusterSim::ArmHeartbeat(Node* node) {
  if (heartbeat_interval_ <= Duration::Zero() || !node->up ||
      node->heartbeat != kInvalidEventId) {
    return;
  }
  // A daemon: heartbeats alone never keep the simulation alive.
  std::string name = node->config.name;
  node->heartbeat = sim_->ScheduleDaemon(heartbeat_interval_, [this, name] {
    Node* n = Find(name);
    if (n == nullptr) return;
    n->heartbeat = kInvalidEventId;
    if (!n->up) return;
    SendHeartbeat(n);
    ArmHeartbeat(n);
  });
}

void ClusterSim::CancelHeartbeat(Node* node) {
  if (node->heartbeat != kInvalidEventId) {
    sim_->Cancel(node->heartbeat);
    node->heartbeat = kInvalidEventId;
  }
}

void ClusterSim::SendHeartbeat(Node* node) {
  if (channel_ == nullptr) return;
  comms::Message msg;
  msg.type = comms::MessageType::kHeartbeat;
  msg.node = node->config.name;
  channel_->SendReport(msg);  // ephemeral: lost when the report link is down
}

void ClusterSim::Annotate(std::string label) {
  // The legacy figure annotations and the structured sink carry the same
  // marks; benches keep reading Events() while exports read the trace.
  if (obs_ != nullptr) {
    obs_->trace.Emit(obs::EventType::kAnnotation, "", "", "",
                     {{"label", label}});
  }
  events_.push_back({sim_->Now(), std::move(label)});
}

void ClusterSim::UpdateTrace() {
  double t_days = sim_->Now().SinceEpoch().ToDays();
  double avail = 0, util = 0;
  for (const auto& [name, node] : nodes_) {
    if (!node.up) continue;
    avail += node.config.num_cpus;
    util += node.EffectiveBusyCpus();
  }
  availability_.Set(t_days, avail);
  utilization_.Set(t_days, util);
}

}  // namespace biopera::cluster
