#include "cluster/failure.h"

#include "common/logging.h"
#include "store/fs.h"

namespace biopera::cluster {

FailureInjector::FailureInjector(ClusterSim* cluster) : cluster_(cluster) {}

void FailureInjector::ScheduleNodeOutage(TimePoint at, Duration downtime,
                                         const std::string& node,
                                         const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, node, label] {
    cluster_->Annotate(label);
    cluster_->CrashNode(node);
  });
  sim->ScheduleAt(at + downtime, [this, node] {
    cluster_->RepairNode(node);
  });
}

void FailureInjector::ScheduleClusterOutage(TimePoint at, Duration downtime,
                                            const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, label] {
    cluster_->Annotate(label);
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->CrashNode(node.name);
    }
  });
  sim->ScheduleAt(at + downtime, [this] {
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->RepairNode(node.name);
    }
  });
}

void FailureInjector::ScheduleNetworkOutage(TimePoint at, Duration downtime,
                                            const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, label] {
    cluster_->Annotate(label);
    cluster_->SetAllConnected(false);
  });
  sim->ScheduleAt(at + downtime, [this] {
    cluster_->SetAllConnected(true);
  });
}

void FailureInjector::ScheduleCpuUpgrade(TimePoint at, int new_cpus,
                                         const std::string& label) {
  cluster_->sim()->ScheduleAt(at, [this, new_cpus, label] {
    cluster_->Annotate(label);
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->SetNodeCpus(node.name, new_cpus);
    }
  });
}

void FailureInjector::ScheduleAction(TimePoint at, const std::string& label,
                                     std::function<void()> action) {
  cluster_->sim()->ScheduleAt(at, [this, label, action = std::move(action)] {
    cluster_->Annotate(label);
    action();
  });
}

void FailureInjector::ScheduleDiskFullWindow(TimePoint at, Duration duration,
                                             FaultFs* fault_fs,
                                             const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, fault_fs, label] {
    cluster_->Annotate(label);
    fault_fs->SetDiskFull(true);
  });
  sim->ScheduleAt(at + duration, [this, fault_fs] {
    fault_fs->SetDiskFull(false);
  });
}

void FailureInjector::StartRandomNodeFailures(Duration mtbf,
                                              Duration mean_downtime,
                                              Rng* rng) {
  random_active_ = true;
  mtbf_ = mtbf;
  mean_downtime_ = mean_downtime;
  rng_ = rng;
  ScheduleNextRandomFailure();
}

void FailureInjector::StopRandomFailures() {
  random_active_ = false;
  if (random_event_ != kInvalidEventId) {
    cluster_->sim()->Cancel(random_event_);
    random_event_ = kInvalidEventId;
  }
}

void FailureInjector::StartRandomPartitions(comms::Channel* channel,
                                            Duration mtbf,
                                            Duration mean_duration, Rng* rng) {
  partition_channel_ = channel;
  partitions_active_ = true;
  partition_mtbf_ = mtbf;
  partition_mean_duration_ = mean_duration;
  partition_rng_ = rng;
  ScheduleNextRandomPartition();
}

void FailureInjector::StopRandomPartitions() {
  partitions_active_ = false;
  if (partition_event_ != kInvalidEventId) {
    cluster_->sim()->Cancel(partition_event_);
    partition_event_ = kInvalidEventId;
  }
}

void FailureInjector::ScheduleNextRandomPartition() {
  if (!partitions_active_) return;
  Duration gap = Duration::Seconds(
      partition_rng_->Exponential(partition_mtbf_.ToSeconds()));
  partition_event_ = cluster_->sim()->ScheduleDaemon(gap, [this] {
    partition_event_ = kInvalidEventId;
    if (!partitions_active_) return;
    auto nodes = cluster_->Nodes();
    if (!nodes.empty()) {
      const std::string victim =
          nodes[partition_rng_->NextUint64(nodes.size())].name;
      // 0: commands blackholed, 1: reports blackholed, 2: full partition.
      const uint64_t direction = partition_rng_->NextUint64(3);
      Duration duration = Duration::Seconds(
          partition_rng_->Exponential(partition_mean_duration_.ToSeconds()));
      const char* kind = direction == 0   ? "cmd"
                         : direction == 1 ? "rpt"
                                          : "both";
      cluster_->Annotate("partition(" + std::string(kind) + "): " + victim);
      if (direction == 0 || direction == 2) {
        partition_channel_->SetCommandLink(victim, false);
      }
      if (direction == 1 || direction == 2) {
        partition_channel_->SetReportLink(victim, false);
      }
      cluster_->sim()->Schedule(duration, [this, victim, direction] {
        if (direction == 0 || direction == 2) {
          partition_channel_->SetCommandLink(victim, true);
        }
        if (direction == 1 || direction == 2) {
          partition_channel_->SetReportLink(victim, true);
        }
      });
    }
    ScheduleNextRandomPartition();
  });
}

void FailureInjector::StartRandomFlaps(comms::Channel* channel, Duration mtbf,
                                       Duration mean_flap, Rng* rng) {
  flap_channel_ = channel;
  flaps_active_ = true;
  flap_mtbf_ = mtbf;
  flap_mean_ = mean_flap;
  flap_rng_ = rng;
  ScheduleNextRandomFlap();
}

void FailureInjector::StopRandomFlaps() {
  flaps_active_ = false;
  if (flap_event_ != kInvalidEventId) {
    cluster_->sim()->Cancel(flap_event_);
    flap_event_ = kInvalidEventId;
  }
}

void FailureInjector::ScheduleNextRandomFlap() {
  if (!flaps_active_) return;
  Duration gap =
      Duration::Seconds(flap_rng_->Exponential(flap_mtbf_.ToSeconds()));
  flap_event_ = cluster_->sim()->ScheduleDaemon(gap, [this] {
    flap_event_ = kInvalidEventId;
    if (!flaps_active_) return;
    auto nodes = cluster_->Nodes();
    if (!nodes.empty()) {
      const std::string victim =
          nodes[flap_rng_->NextUint64(nodes.size())].name;
      // 2-5 down/up bounces; legs drawn now so the storm's shape is fixed
      // at scheduling time (deterministic under any later rng consumers).
      const int bounces = 2 + static_cast<int>(flap_rng_->NextUint64(4));
      cluster_->Annotate("link flap: " + victim);
      Duration at = Duration::Zero();
      for (int i = 0; i < bounces; ++i) {
        Duration down_leg =
            Duration::Seconds(flap_rng_->Exponential(flap_mean_.ToSeconds()));
        cluster_->sim()->Schedule(at, [this, victim] {
          flap_channel_->SetConnected(victim, false);
        });
        cluster_->sim()->Schedule(at + down_leg, [this, victim] {
          flap_channel_->SetConnected(victim, true);
        });
        Duration up_leg =
            Duration::Seconds(flap_rng_->Exponential(flap_mean_.ToSeconds()));
        at = at + down_leg + up_leg;
      }
    }
    ScheduleNextRandomFlap();
  });
}

void FailureInjector::ScheduleNextRandomFailure() {
  if (!random_active_) return;
  Duration gap = Duration::Seconds(rng_->Exponential(mtbf_.ToSeconds()));
  random_event_ = cluster_->sim()->ScheduleDaemon(gap, [this] {
    random_event_ = kInvalidEventId;
    if (!random_active_) return;
    auto nodes = cluster_->Nodes();
    if (!nodes.empty()) {
      const std::string victim =
          nodes[rng_->NextUint64(nodes.size())].name;
      if (cluster_->IsUp(victim)) {
        Duration downtime =
            Duration::Seconds(rng_->Exponential(mean_downtime_.ToSeconds()));
        cluster_->Annotate("random crash: " + victim);
        cluster_->CrashNode(victim);
        cluster_->sim()->Schedule(downtime, [this, victim] {
          cluster_->RepairNode(victim);
        });
      }
    }
    ScheduleNextRandomFailure();
  });
}

}  // namespace biopera::cluster
