#include "cluster/failure.h"

#include "common/logging.h"
#include "store/fs.h"

namespace biopera::cluster {

FailureInjector::FailureInjector(ClusterSim* cluster) : cluster_(cluster) {}

void FailureInjector::ScheduleNodeOutage(TimePoint at, Duration downtime,
                                         const std::string& node,
                                         const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, node, label] {
    cluster_->Annotate(label);
    cluster_->CrashNode(node);
  });
  sim->ScheduleAt(at + downtime, [this, node] {
    cluster_->RepairNode(node);
  });
}

void FailureInjector::ScheduleClusterOutage(TimePoint at, Duration downtime,
                                            const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, label] {
    cluster_->Annotate(label);
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->CrashNode(node.name);
    }
  });
  sim->ScheduleAt(at + downtime, [this] {
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->RepairNode(node.name);
    }
  });
}

void FailureInjector::ScheduleNetworkOutage(TimePoint at, Duration downtime,
                                            const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, label] {
    cluster_->Annotate(label);
    cluster_->SetAllConnected(false);
  });
  sim->ScheduleAt(at + downtime, [this] {
    cluster_->SetAllConnected(true);
  });
}

void FailureInjector::ScheduleCpuUpgrade(TimePoint at, int new_cpus,
                                         const std::string& label) {
  cluster_->sim()->ScheduleAt(at, [this, new_cpus, label] {
    cluster_->Annotate(label);
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->SetNodeCpus(node.name, new_cpus);
    }
  });
}

void FailureInjector::ScheduleAction(TimePoint at, const std::string& label,
                                     std::function<void()> action) {
  cluster_->sim()->ScheduleAt(at, [this, label, action = std::move(action)] {
    cluster_->Annotate(label);
    action();
  });
}

void FailureInjector::ScheduleDiskFullWindow(TimePoint at, Duration duration,
                                             FaultFs* fault_fs,
                                             const std::string& label) {
  Simulator* sim = cluster_->sim();
  sim->ScheduleAt(at, [this, fault_fs, label] {
    cluster_->Annotate(label);
    fault_fs->SetDiskFull(true);
  });
  sim->ScheduleAt(at + duration, [this, fault_fs] {
    fault_fs->SetDiskFull(false);
  });
}

void FailureInjector::StartRandomNodeFailures(Duration mtbf,
                                              Duration mean_downtime,
                                              Rng* rng) {
  random_active_ = true;
  mtbf_ = mtbf;
  mean_downtime_ = mean_downtime;
  rng_ = rng;
  ScheduleNextRandomFailure();
}

void FailureInjector::StopRandomFailures() {
  random_active_ = false;
  if (random_event_ != kInvalidEventId) {
    cluster_->sim()->Cancel(random_event_);
    random_event_ = kInvalidEventId;
  }
}

void FailureInjector::ScheduleNextRandomFailure() {
  if (!random_active_) return;
  Duration gap = Duration::Seconds(rng_->Exponential(mtbf_.ToSeconds()));
  random_event_ = cluster_->sim()->ScheduleDaemon(gap, [this] {
    random_event_ = kInvalidEventId;
    if (!random_active_) return;
    auto nodes = cluster_->Nodes();
    if (!nodes.empty()) {
      const std::string victim =
          nodes[rng_->NextUint64(nodes.size())].name;
      if (cluster_->IsUp(victim)) {
        Duration downtime =
            Duration::Seconds(rng_->Exponential(mean_downtime_.ToSeconds()));
        cluster_->Annotate("random crash: " + victim);
        cluster_->CrashNode(victim);
        cluster_->sim()->Schedule(downtime, [this, victim] {
          cluster_->RepairNode(victim);
        });
      }
    }
    ScheduleNextRandomFailure();
  });
}

}  // namespace biopera::cluster
