#include "cluster/external_load.h"

namespace biopera::cluster {

ExternalLoadGenerator::ExternalLoadGenerator(
    ClusterSim* cluster, const ExternalLoadOptions& options, Rng* rng)
    : cluster_(cluster), options_(options), rng_(rng) {}

void ExternalLoadGenerator::Start() {
  for (const NodeConfig& node : cluster_->Nodes()) {
    if (rng_->Bernoulli(options_.node_coverage)) {
      covered_.push_back(node.name);
      ScheduleEpisode(node.name);
    }
  }
}

void ExternalLoadGenerator::ScheduleEpisode(const std::string& node) {
  // Idle gap, then a busy episode, then recurse.
  Duration idle =
      Duration::Seconds(rng_->Exponential(options_.mean_idle.ToSeconds()));
  cluster_->sim()->ScheduleDaemon(idle, [this, node] {
    if (heavy_depth_ == 0) {
      Result<NodeConfig> config = cluster_->GetNode(node);
      if (!config.ok()) return;  // node removed
      double busy_cpus;
      if (rng_->Bernoulli(options_.fill_all_probability)) {
        busy_cpus = config->num_cpus;
      } else {
        busy_cpus = rng_->Uniform(0.3, 0.9) * config->num_cpus;
      }
      cluster_->SetExternalLoad(node, busy_cpus);
    }
    Duration busy =
        Duration::Seconds(rng_->Exponential(options_.mean_busy.ToSeconds()));
    cluster_->sim()->ScheduleDaemon(busy, [this, node] {
      if (heavy_depth_ == 0) cluster_->SetExternalLoad(node, 0);
      ScheduleEpisode(node);
    });
  });
}

void ExternalLoadGenerator::ScheduleHeavyPeriod(TimePoint at, Duration length,
                                                const std::string& label) {
  cluster_->sim()->ScheduleAt(at, [this, label] {
    cluster_->Annotate(label);
    ++heavy_depth_;
    for (const NodeConfig& node : cluster_->Nodes()) {
      cluster_->SetExternalLoad(node.name, node.num_cpus);
    }
  });
  cluster_->sim()->ScheduleAt(at + length, [this] {
    --heavy_depth_;
    if (heavy_depth_ == 0) {
      for (const NodeConfig& node : cluster_->Nodes()) {
        cluster_->SetExternalLoad(node.name, 0);
      }
    }
  });
}

}  // namespace biopera::cluster
