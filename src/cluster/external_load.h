#ifndef BIOPERA_CLUSTER_EXTERNAL_LOAD_H_
#define BIOPERA_CLUSTER_EXTERNAL_LOAD_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/time.h"

namespace biopera::cluster {

/// How other users of a shared cluster occupy CPUs (paper §5.4: BioOpera
/// runs nice, so external jobs preempt it; the discussion distinguishes
/// users who "tend to fill all machines" from users who use a subset).
struct ExternalLoadOptions {
  /// Mean duration of an external busy episode on a node.
  Duration mean_busy = Duration::Hours(6);
  /// Mean idle gap between episodes on a node.
  Duration mean_idle = Duration::Hours(10);
  /// During a busy episode, probability the user fills ALL CPUs of the
  /// node (vs. a uniform fraction of them).
  double fill_all_probability = 0.6;
  /// Fraction of nodes that external users ever touch (1.0 = any node).
  double node_coverage = 1.0;
};

/// Drives per-node external load episodes on a ClusterSim. Each covered
/// node alternates idle and busy episodes independently; episode lengths
/// are exponential, intensities follow `fill_all_probability`.
class ExternalLoadGenerator {
 public:
  ExternalLoadGenerator(ClusterSim* cluster, const ExternalLoadOptions& options,
                        Rng* rng);

  /// Starts episodes on all (covered) current nodes. Call once after the
  /// topology is set up.
  void Start();

  /// Additionally schedules a cluster-wide "heavy period" during which all
  /// covered nodes are saturated (Fig. 5 events 1 and 8).
  void ScheduleHeavyPeriod(TimePoint at, Duration length,
                           const std::string& label);

 private:
  void ScheduleEpisode(const std::string& node);

  ClusterSim* cluster_;
  ExternalLoadOptions options_;
  Rng* rng_;
  std::vector<std::string> covered_;
  /// During a heavy period the per-node episodes are overridden.
  int heavy_depth_ = 0;
};

}  // namespace biopera::cluster

#endif  // BIOPERA_CLUSTER_EXTERNAL_LOAD_H_
