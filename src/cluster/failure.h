#ifndef BIOPERA_CLUSTER_FAILURE_H_
#define BIOPERA_CLUSTER_FAILURE_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace biopera {
class FaultFs;
}

namespace biopera::cluster {

/// Schedules environment events against a ClusterSim: scripted (exact
/// times, for reproducing the numbered events of Figures 5 and 6) or
/// random (rates, for robustness tests). The paper stresses that its
/// failures "were not injected but part of the everyday operation"; here
/// the injector plays the role of that everyday operation.
class FailureInjector {
 public:
  explicit FailureInjector(ClusterSim* cluster);

  // --- Scripted events ------------------------------------------------------
  /// Node crash at `at`, repaired `downtime` later. Annotates the trace.
  void ScheduleNodeOutage(TimePoint at, Duration downtime,
                          const std::string& node, const std::string& label);
  /// Crash + repair of every node (cluster-wide failure).
  void ScheduleClusterOutage(TimePoint at, Duration downtime,
                             const std::string& label);
  /// Network partition of the whole cluster.
  void ScheduleNetworkOutage(TimePoint at, Duration downtime,
                             const std::string& label);
  /// CPU upgrade on all nodes at `at` (Fig. 6: one to two processors).
  void ScheduleCpuUpgrade(TimePoint at, int new_cpus,
                          const std::string& label);
  /// Arbitrary scripted action with a trace annotation.
  void ScheduleAction(TimePoint at, const std::string& label,
                      std::function<void()> action);
  /// Storage outage: the fault filesystem reports ENOSPC for every
  /// space-consuming operation during [at, at + duration). Models the
  /// paper's month-long run losing its database disk without losing the
  /// computation — the engine rides it out in degraded mode.
  void ScheduleDiskFullWindow(TimePoint at, Duration duration,
                              FaultFs* fault_fs, const std::string& label);

  // --- Random failures ------------------------------------------------------
  /// Starts a Poisson process of node crashes: mean time between failures
  /// across the cluster `mtbf`, each down for Exponential(`mean_downtime`).
  /// Runs until the simulator drains or `StopRandomFailures` is called.
  void StartRandomNodeFailures(Duration mtbf, Duration mean_downtime,
                               Rng* rng);
  void StopRandomFailures();

  /// Starts a Poisson process of *link* partitions on the control-plane
  /// channel: every Exponential(`mtbf`) a random node loses a random
  /// direction — its command link, its report link, or both — for
  /// Exponential(`mean_duration`). Asymmetric partitions are the failure
  /// mode the lease detector exists for: a node that can receive commands
  /// but whose reports are blackholed looks exactly like a dead one.
  void StartRandomPartitions(comms::Channel* channel, Duration mtbf,
                             Duration mean_duration, Rng* rng);
  void StopRandomPartitions();

  /// Starts a Poisson process of link *flaps*: every Exponential(`mtbf`)
  /// a random node's links bounce down/up several times in quick
  /// succession (each leg Exponential(`mean_flap`) long) — the reconnect
  /// storm that shakes out report-flush-order and duplicate-suppression
  /// bugs.
  void StartRandomFlaps(comms::Channel* channel, Duration mtbf,
                        Duration mean_flap, Rng* rng);
  void StopRandomFlaps();

 private:
  void ScheduleNextRandomFailure();
  void ScheduleNextRandomPartition();
  void ScheduleNextRandomFlap();

  ClusterSim* cluster_;
  bool random_active_ = false;
  Duration mtbf_;
  Duration mean_downtime_;
  Rng* rng_ = nullptr;
  EventId random_event_ = kInvalidEventId;

  comms::Channel* partition_channel_ = nullptr;
  bool partitions_active_ = false;
  Duration partition_mtbf_;
  Duration partition_mean_duration_;
  Rng* partition_rng_ = nullptr;
  EventId partition_event_ = kInvalidEventId;

  comms::Channel* flap_channel_ = nullptr;
  bool flaps_active_ = false;
  Duration flap_mtbf_;
  Duration flap_mean_;
  Rng* flap_rng_ = nullptr;
  EventId flap_event_ = kInvalidEventId;
};

}  // namespace biopera::cluster

#endif  // BIOPERA_CLUSTER_FAILURE_H_
