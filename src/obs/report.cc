#include "obs/report.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace biopera::obs {

namespace {

struct NodeUsage {
  Duration busy;
  uint64_t completed = 0;
  uint64_t lost = 0;  // failed / timed out / migrated / killed / node_down
  uint64_t open = 0;
};

}  // namespace

std::string BuildRunReport(const ReportInput& input, const Observability& obs,
                           size_t top_k) {
  std::string out =
      StrFormat("== run report: %s ==\n", input.instance.c_str());
  out += StrFormat("state:      %s\n", input.state.c_str());
  if (input.activities_total > 0) {
    out += StrFormat(
        "progress:   %llu/%llu activities (%.1f%%)\n",
        static_cast<unsigned long long>(input.activities_done),
        static_cast<unsigned long long>(input.activities_total),
        100.0 * static_cast<double>(input.activities_done) /
            static_cast<double>(input.activities_total));
  }

  CriticalPathReport path = AnalyzeCriticalPath(obs.spans, input.instance);
  TimePoint run_start = path.found ? path.start : TimePoint::Zero();
  Duration elapsed = input.now - run_start;
  out += StrFormat("elapsed:    %s (virtual)\n", elapsed.ToString().c_str());

  // Historical effective compute rate: reference-CPU seconds delivered to
  // this instance per elapsed second (i.e. mean busy CPUs). The ETA is
  // the planner's remaining-work estimate divided by that rate.
  double compute_seconds = 0;
  obs.spans.ForEach([&](const Span& span) {
    if (span.kind == SpanKind::kJob && !span.open &&
        span.instance == input.instance) {
      compute_seconds += span.duration().ToSeconds();
    }
  });
  if (input.state == "Done" || input.state == "done") {
    out += "eta:        - (run complete)\n";
  } else {
    double rate = elapsed.ToSeconds() > 0
                      ? compute_seconds / elapsed.ToSeconds()
                      : 0;
    if (rate > 0 && input.remaining_work_seconds > 0) {
      Duration eta = Duration::Seconds(input.remaining_work_seconds / rate);
      out += StrFormat("eta:        ~%s (%.0fs work left / %.2f effective "
                       "CPUs)\n",
                       eta.ToString().c_str(), input.remaining_work_seconds,
                       rate);
    } else {
      out += "eta:        n/a (no compute history yet)\n";
    }
  }
  out += "\n";
  out += path.ToText(top_k);

  // Per-node utilization (Table 1 view), reconstructed from the trace:
  // busy time on each node, its share of elapsed time (nodes with
  // several CPUs can exceed 100%), and how executions ended there.
  std::map<std::string, NodeUsage> nodes;
  for (const TimelineInterval& iv : BuildTimeline(obs.trace)) {
    if (iv.node.empty()) continue;
    NodeUsage& usage = nodes[iv.node];
    usage.busy += iv.end - iv.start;
    if (iv.outcome == "completed") {
      ++usage.completed;
    } else if (iv.outcome == "open") {
      ++usage.open;
    } else {
      ++usage.lost;
    }
  }
  if (!nodes.empty()) {
    out += "\nper-node utilization:\n";
    out += StrFormat("  %-12s %14s %7s %10s %6s %5s\n", "node", "busy",
                     "util%", "completed", "lost", "open");
    for (const auto& [node, usage] : nodes) {
      double pct = elapsed.ToSeconds() > 0
                       ? 100.0 * (usage.busy / elapsed)
                       : 0;
      out += StrFormat("  %-12s %14s %6.1f%% %10llu %6llu %5llu\n",
                       node.c_str(), usage.busy.ToString().c_str(), pct,
                       static_cast<unsigned long long>(usage.completed),
                       static_cast<unsigned long long>(usage.lost),
                       static_cast<unsigned long long>(usage.open));
    }
  }

  if (obs.trace.dropped() > 0 || obs.spans.dropped() > 0) {
    out += StrFormat(
        "\nwarning: history truncated (%llu trace events, %llu spans "
        "dropped); early intervals may be missing\n",
        static_cast<unsigned long long>(obs.trace.dropped()),
        static_cast<unsigned long long>(obs.spans.dropped()));
  }
  return out;
}

std::string BuildRunReportJson(const ReportInput& input,
                               const Observability& obs, size_t top_k) {
  CriticalPathReport path = AnalyzeCriticalPath(obs.spans, input.instance);
  TimePoint run_start = path.found ? path.start : TimePoint::Zero();
  Duration elapsed = input.now - run_start;

  double compute_seconds = 0;
  obs.spans.ForEach([&](const Span& span) {
    if (span.kind == SpanKind::kJob && !span.open &&
        span.instance == input.instance) {
      compute_seconds += span.duration().ToSeconds();
    }
  });
  double rate =
      elapsed.ToSeconds() > 0 ? compute_seconds / elapsed.ToSeconds() : 0;
  const bool done = input.state == "Done" || input.state == "done";

  std::string out = "{\"report_version\":1";
  out += ",\"instance\":" + JsonQuote(input.instance);
  out += ",\"state\":" + JsonQuote(input.state);
  out += StrFormat(",\"activities_done\":%llu,\"activities_total\":%llu",
                   static_cast<unsigned long long>(input.activities_done),
                   static_cast<unsigned long long>(input.activities_total));
  if (input.activities_total > 0) {
    out += StrFormat(",\"progress_pct\":%.4f",
                     100.0 * static_cast<double>(input.activities_done) /
                         static_cast<double>(input.activities_total));
  }
  out += StrFormat(",\"elapsed_us\":%lld",
                   static_cast<long long>(elapsed.micros()));
  out += StrFormat(",\"compute_seconds\":%.3f,\"effective_cpus\":%.4f",
                   compute_seconds, rate);
  out += StrFormat(",\"remaining_work_seconds\":%.3f",
                   input.remaining_work_seconds);
  if (!done && rate > 0 && input.remaining_work_seconds > 0) {
    out += StrFormat(",\"eta_seconds\":%.3f",
                     input.remaining_work_seconds / rate);
  }

  out += ",\"critical_path\":{";
  out += StrFormat("\"found\":%s", path.found ? "true" : "false");
  if (path.found) {
    out += StrFormat(",\"makespan_us\":%lld",
                     static_cast<long long>(path.makespan().micros()));
    out += ",\"totals\":{";
    bool first = true;
    for (const auto& [category, total] : path.totals) {
      if (!first) out += ",";
      first = false;
      out += JsonQuote(category) +
             StrFormat(":%lld", static_cast<long long>(total.micros()));
    }
    out += "}";
    // The top_k longest segments, mirroring the text view's table.
    std::vector<const CriticalPathSegment*> longest;
    longest.reserve(path.segments.size());
    for (const auto& segment : path.segments) longest.push_back(&segment);
    std::stable_sort(longest.begin(), longest.end(),
                     [](const CriticalPathSegment* a,
                        const CriticalPathSegment* b) {
                       return a->duration() > b->duration();
                     });
    if (longest.size() > top_k) longest.resize(top_k);
    out += ",\"top_segments\":[";
    for (size_t i = 0; i < longest.size(); ++i) {
      const CriticalPathSegment& segment = *longest[i];
      if (i > 0) out += ",";
      out += "{\"category\":" + JsonQuote(segment.category) +
             StrFormat(",\"start_us\":%lld,\"dur_us\":%lld",
                       static_cast<long long>(segment.start.micros()),
                       static_cast<long long>(segment.duration().micros()));
      if (!segment.task.empty()) out += ",\"task\":" + JsonQuote(segment.task);
      if (!segment.node.empty()) out += ",\"node\":" + JsonQuote(segment.node);
      out += "}";
    }
    out += "]";
  }
  out += "}";

  std::map<std::string, NodeUsage> nodes;
  for (const TimelineInterval& iv : BuildTimeline(obs.trace)) {
    if (iv.node.empty()) continue;
    NodeUsage& usage = nodes[iv.node];
    usage.busy += iv.end - iv.start;
    if (iv.outcome == "completed") {
      ++usage.completed;
    } else if (iv.outcome == "open") {
      ++usage.open;
    } else {
      ++usage.lost;
    }
  }
  out += ",\"nodes\":[";
  bool first_node = true;
  for (const auto& [node, usage] : nodes) {
    if (!first_node) out += ",";
    first_node = false;
    double pct =
        elapsed.ToSeconds() > 0 ? 100.0 * (usage.busy / elapsed) : 0;
    out += "{\"node\":" + JsonQuote(node) +
           StrFormat(",\"busy_us\":%lld,\"util_pct\":%.4f,"
                     "\"completed\":%llu,\"lost\":%llu,\"open\":%llu}",
                     static_cast<long long>(usage.busy.micros()), pct,
                     static_cast<unsigned long long>(usage.completed),
                     static_cast<unsigned long long>(usage.lost),
                     static_cast<unsigned long long>(usage.open));
  }
  out += "]";
  out += StrFormat(
      ",\"trace_events_dropped\":%llu,\"spans_dropped\":%llu}",
      static_cast<unsigned long long>(obs.trace.dropped()),
      static_cast<unsigned long long>(obs.spans.dropped()));
  return out;
}

}  // namespace biopera::obs
