#include "obs/rundiff.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

namespace {

/// One parsed field of a flat JSON object line: the key, the value's
/// text (strings unescaped, numbers/booleans verbatim), and whether the
/// value was a string literal.
struct FlatField {
  std::string key;
  std::string value;
  bool is_string = false;
};

void SkipWs(std::string_view line, size_t* i) {
  while (*i < line.size() &&
         (line[*i] == ' ' || line[*i] == '\t')) {
    ++*i;
  }
}

/// Scans a JSON string literal starting at the opening quote; returns
/// the unescaped contents and advances `*i` past the closing quote.
Result<std::string> ScanString(std::string_view line, size_t* i) {
  if (*i >= line.size() || line[*i] != '"') {
    return Status::InvalidArgument("expected string");
  }
  size_t start = ++*i;
  while (*i < line.size()) {
    if (line[*i] == '\\') {
      *i += 2;
      continue;
    }
    if (line[*i] == '"') {
      Result<std::string> out = JsonUnescape(line.substr(start, *i - start));
      ++*i;
      return out;
    }
    ++*i;
  }
  return Status::InvalidArgument("unterminated string");
}

/// Parses one flat JSON object line (no nested objects or arrays — all
/// the exports this consumes are flat) into its fields, in order.
Result<std::vector<FlatField>> ParseFlatJsonLine(std::string_view line) {
  std::vector<FlatField> fields;
  size_t i = 0;
  SkipWs(line, &i);
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("expected object");
  }
  ++i;
  SkipWs(line, &i);
  if (i < line.size() && line[i] == '}') return fields;
  while (true) {
    SkipWs(line, &i);
    BIOPERA_ASSIGN_OR_RETURN(std::string key, ScanString(line, &i));
    SkipWs(line, &i);
    if (i >= line.size() || line[i] != ':') {
      return Status::InvalidArgument("expected ':' after key");
    }
    ++i;
    SkipWs(line, &i);
    FlatField field;
    field.key = std::move(key);
    if (i < line.size() && line[i] == '"') {
      BIOPERA_ASSIGN_OR_RETURN(field.value, ScanString(line, &i));
      field.is_string = true;
    } else {
      size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      field.value = std::string(StripWhitespace(line.substr(start, i - start)));
      if (field.value.empty()) {
        return Status::InvalidArgument("empty value for key " + field.key);
      }
    }
    fields.push_back(std::move(field));
    SkipWs(line, &i);
    if (i >= line.size()) return Status::InvalidArgument("unterminated object");
    if (line[i] == '}') return fields;
    if (line[i] != ',') return Status::InvalidArgument("expected ',' or '}'");
    ++i;
  }
}

const FlatField* FindField(const std::vector<FlatField>& fields,
                           std::string_view key) {
  for (const auto& field : fields) {
    if (field.key == key) return &field;
  }
  return nullptr;
}

int64_t FieldInt(const std::vector<FlatField>& fields, std::string_view key,
                 int64_t fallback) {
  const FlatField* field = FindField(fields, key);
  if (field == nullptr) return fallback;
  long long value = 0;
  if (!ParseInt64(field->value, &value)) return fallback;
  return value;
}

std::string FieldString(const std::vector<FlatField>& fields,
                        std::string_view key) {
  const FlatField* field = FindField(fields, key);
  return field == nullptr ? "" : field->value;
}

constexpr std::string_view kOutageKinds[] = {"node_outage", "server_down",
                                             "store_degraded"};

bool IsOutageKind(std::string_view kind) {
  for (std::string_view k : kOutageKinds) {
    if (k == kind) return true;
  }
  return false;
}

using DescriptorMap = std::map<std::string, std::string>;

DescriptorMap ToMap(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  return DescriptorMap(pairs.begin(), pairs.end());
}

/// First difference between two descriptor maps, or nullopt when equal.
std::optional<std::string> DiffDescriptors(const DescriptorMap& a,
                                           const DescriptorMap& b,
                                           std::string_view label_a,
                                           std::string_view label_b) {
  for (const auto& [key, value] : a) {
    auto it = b.find(key);
    if (it == b.end()) {
      return StrFormat("%s only in %s (=%s)", key.c_str(),
                       std::string(label_a).c_str(), value.c_str());
    }
    if (it->second != value) {
      return StrFormat("%s: %s vs %s", key.c_str(), value.c_str(),
                       it->second.c_str());
    }
  }
  for (const auto& [key, value] : b) {
    if (a.find(key) == a.end()) {
      return StrFormat("%s only in %s (=%s)", key.c_str(),
                       std::string(label_b).c_str(), value.c_str());
    }
  }
  return std::nullopt;
}

/// Compact retry signature of one task: "a1=failed a2=completed".
std::string RetrySignature(const std::map<int, const LineageRecord*>& attempts) {
  std::string out;
  for (const auto& [attempt, record] : attempts) {
    if (!out.empty()) out += " ";
    out += StrFormat(
        "a%d=%s", attempt,
        record->outcome.empty() ? "in_flight" : record->outcome.c_str());
  }
  return out;
}

}  // namespace

std::string OutageWindow::ToText() const {
  std::string out = kind;
  if (!node.empty()) out += " " + node;
  out += StrFormat(" [%lld,", static_cast<long long>(start_us));
  out += end_us < 0 ? "open)" : StrFormat("%lld)",
                                          static_cast<long long>(end_us));
  return out;
}

std::string_view DivergenceCategoryName(DivergenceCategory category) {
  switch (category) {
    case DivergenceCategory::kSeed: return "seed";
    case DivergenceCategory::kConfigVersion: return "config_version";
    case DivergenceCategory::kInput: return "input";
    case DivergenceCategory::kOutageSchedule: return "outage_schedule";
    case DivergenceCategory::kRetryHistory: return "retry_history";
    case DivergenceCategory::kPlacement: return "placement";
    case DivergenceCategory::kOutput: return "output";
  }
  return "unknown";
}

std::string RunDiffReport::RootCause() const {
  if (divergences.empty()) return "none";
  return std::string(DivergenceCategoryName(divergences.front().category));
}

std::string RunDiffReport::ToText() const {
  std::string out =
      StrFormat("run diff: %s vs %s\n", label_a.c_str(), label_b.c_str());
  if (divergences.empty()) {
    out += "no divergences: runs are equivalent\n";
    return out;
  }
  out += StrFormat("%zu divergence(s); root cause: %s\n", divergences.size(),
                   RootCause().c_str());
  for (const auto& d : divergences) {
    out += StrFormat("  [%s]", std::string(DivergenceCategoryName(d.category))
                                   .c_str());
    if (!d.path.empty()) out += " " + d.path + ":";
    out += " " + d.detail + "\n";
  }
  return out;
}

std::string RunDiffReport::ToJson() const {
  std::string out = "{\"run_a\":" + JsonQuote(label_a) +
                    ",\"run_b\":" + JsonQuote(label_b) +
                    ",\"root_cause\":" + JsonQuote(RootCause()) +
                    StrFormat(",\"divergence_count\":%zu", divergences.size()) +
                    ",\"divergences\":[";
  bool first = true;
  for (const auto& d : divergences) {
    if (!first) out += ",";
    first = false;
    out += "{\"category\":" + JsonQuote(DivergenceCategoryName(d.category)) +
           ",\"path\":" + JsonQuote(d.path) +
           ",\"detail\":" + JsonQuote(d.detail) + "}";
  }
  out += "]}";
  return out;
}

RunDiffReport DiffRuns(const RunLineage& a, const RunLineage& b) {
  RunDiffReport report;
  report.label_a = a.label;
  report.label_b = b.label;
  auto add = [&report](DivergenceCategory category, std::string path,
                       std::string detail) {
    report.divergences.push_back(
        {category, std::move(path), std::move(detail)});
  };

  if (a.header.seed != b.header.seed) {
    add(DivergenceCategory::kSeed, "",
        StrFormat("run seed differs: %llu vs %llu",
                  static_cast<unsigned long long>(a.header.seed),
                  static_cast<unsigned long long>(b.header.seed)));
  }
  if (a.header.config_version != b.header.config_version) {
    add(DivergenceCategory::kConfigVersion, "",
        StrFormat("config-space version differs: %s vs %s",
                  a.header.config_version.c_str(),
                  b.header.config_version.c_str()));
  }

  // Outage schedule: order-insensitive window comparison.
  auto sort_windows = [](std::vector<OutageWindow> windows) {
    std::sort(windows.begin(), windows.end(),
              [](const OutageWindow& x, const OutageWindow& y) {
                return std::tie(x.kind, x.node, x.start_us, x.end_us) <
                       std::tie(y.kind, y.node, y.start_us, y.end_us);
              });
    return windows;
  };
  std::vector<OutageWindow> wa = sort_windows(a.outages);
  std::vector<OutageWindow> wb = sort_windows(b.outages);
  for (const auto& w : wa) {
    if (std::find(wb.begin(), wb.end(), w) == wb.end()) {
      add(DivergenceCategory::kOutageSchedule, "",
          StrFormat("window only in %s: %s", a.label.c_str(),
                    w.ToText().c_str()));
    }
  }
  for (const auto& w : wb) {
    if (std::find(wa.begin(), wa.end(), w) == wa.end()) {
      add(DivergenceCategory::kOutageSchedule, "",
          StrFormat("window only in %s: %s", b.label.c_str(),
                    w.ToText().c_str()));
    }
  }

  // Align tasks by stable path identity, then attempts by number.
  using AttemptMap = std::map<int, const LineageRecord*>;
  std::map<std::string, AttemptMap> tasks_a, tasks_b;
  for (const auto& r : a.records) tasks_a[r.task][r.attempt] = &r;
  for (const auto& r : b.records) tasks_b[r.task][r.attempt] = &r;

  for (const auto& [path, attempts_a] : tasks_a) {
    auto it = tasks_b.find(path);
    if (it == tasks_b.end()) {
      add(DivergenceCategory::kRetryHistory, path,
          StrFormat("task ran only in %s", a.label.c_str()));
      continue;
    }
    const AttemptMap& attempts_b = it->second;
    std::string sig_a = RetrySignature(attempts_a);
    std::string sig_b = RetrySignature(attempts_b);
    if (sig_a != sig_b) {
      add(DivergenceCategory::kRetryHistory, path,
          StrFormat("attempt history differs: {%s} vs {%s}", sig_a.c_str(),
                    sig_b.c_str()));
    }
    for (const auto& [attempt, ra] : attempts_a) {
      auto bt = attempts_b.find(attempt);
      if (bt == attempts_b.end()) continue;  // covered by the signature
      const LineageRecord* rb = bt->second;
      DescriptorMap in_a = ToMap(ra->inputs), in_b = ToMap(rb->inputs);
      for (const auto& p : ra->params) in_a.insert(p);
      for (const auto& p : rb->params) in_b.insert(p);
      if (auto d = DiffDescriptors(in_a, in_b, a.label, b.label)) {
        add(DivergenceCategory::kInput, path,
            StrFormat("attempt %d input %s", attempt, d->c_str()));
      }
      if (ra->node != rb->node) {
        add(DivergenceCategory::kPlacement, path,
            StrFormat("attempt %d ran on %s vs %s", attempt,
                      ra->node.c_str(), rb->node.c_str()));
      }
      if (auto d = DiffDescriptors(ToMap(ra->outputs), ToMap(rb->outputs),
                                   a.label, b.label)) {
        add(DivergenceCategory::kOutput, path,
            StrFormat("attempt %d output %s", attempt, d->c_str()));
      }
    }
  }
  for (const auto& [path, attempts_b] : tasks_b) {
    if (tasks_a.find(path) == tasks_a.end()) {
      add(DivergenceCategory::kRetryHistory, path,
          StrFormat("task ran only in %s", b.label.c_str()));
    }
  }

  std::stable_sort(report.divergences.begin(), report.divergences.end(),
                   [](const Divergence& x, const Divergence& y) {
                     return std::tie(x.category, x.path, x.detail) <
                            std::tie(y.category, y.path, y.detail);
                   });
  return report;
}

Result<RunLineage> ParseRunExports(std::string_view lineage_jsonl,
                                   std::string_view spans_jsonl,
                                   std::string label) {
  RunLineage run;
  run.label = std::move(label);
  bool saw_header = false;
  for (std::string_view line_raw : StrSplit(lineage_jsonl, '\n')) {
    std::string_view line = StripWhitespace(line_raw);
    if (line.empty()) continue;
    BIOPERA_ASSIGN_OR_RETURN(std::vector<FlatField> fields,
                             ParseFlatJsonLine(line));
    if (FindField(fields, "truncated") != nullptr) continue;
    if (!saw_header) {
      if (FindField(fields, "lineage_version") == nullptr) {
        return Status::InvalidArgument(
            "lineage export does not start with a header line");
      }
      run.header.instance = FieldString(fields, "instance");
      run.header.template_name = FieldString(fields, "template");
      run.header.state = FieldString(fields, "state");
      run.header.seed =
          static_cast<uint64_t>(FieldInt(fields, "seed", 0));
      run.header.config_version = FieldString(fields, "config_version");
      saw_header = true;
      continue;
    }
    LineageRecord record;
    record.instance = run.header.instance;
    record.task = FieldString(fields, "task");
    record.attempt = static_cast<int>(FieldInt(fields, "attempt", 0));
    record.binding = FieldString(fields, "binding");
    record.node = FieldString(fields, "node");
    record.outcome = FieldString(fields, "outcome");
    record.dispatch_us = FieldInt(fields, "t_dispatch_us", 0);
    record.finish_us = FieldInt(fields, "t_finish_us", -1);
    record.cost_us = FieldInt(fields, "cost_us", -1);
    for (const auto& field : fields) {
      if (StartsWith(field.key, "in.")) {
        record.inputs.emplace_back(field.key.substr(3), field.value);
      } else if (StartsWith(field.key, "param.")) {
        record.params.emplace_back(field.key.substr(6), field.value);
      } else if (StartsWith(field.key, "out.")) {
        record.outputs.emplace_back(field.key.substr(4), field.value);
      }
    }
    run.records.push_back(std::move(record));
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty lineage export");
  }

  for (std::string_view line_raw : StrSplit(spans_jsonl, '\n')) {
    std::string_view line = StripWhitespace(line_raw);
    if (line.empty()) continue;
    Result<std::vector<FlatField>> fields = ParseFlatJsonLine(line);
    if (!fields.ok()) continue;  // Chrome-trace brackets etc.
    if (FindField(*fields, "truncated") != nullptr) continue;
    std::string kind = FieldString(*fields, "kind");
    if (!IsOutageKind(kind)) continue;
    OutageWindow window;
    window.kind = std::move(kind);
    window.node = FieldString(*fields, "node");
    window.start_us = FieldInt(*fields, "start_us", 0);
    window.end_us = FieldInt(*fields, "end_us", -1);
    run.outages.push_back(std::move(window));
  }
  return run;
}

}  // namespace biopera::obs
