#include "obs/json.h"

#include "common/strings.h"

namespace biopera::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::string> JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= s.size()) {
      return Status::InvalidArgument("truncated escape in JSON string");
    }
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= s.size()) {
          return Status::InvalidArgument("truncated \\u escape");
        }
        int code = 0;
        for (int k = 1; k <= 4; ++k) {
          int d = HexDigit(s[i + k]);
          if (d < 0) return Status::InvalidArgument("bad \\u escape digit");
          code = code * 16 + d;
        }
        i += 4;
        if (code <= 0x7f) {
          out.push_back(static_cast<char>(code));
        } else if (code <= 0x7ff) {
          out.push_back(static_cast<char>(0xc0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          return Status::InvalidArgument(
              "\\u escape beyond U+07FF unsupported");
        }
        break;
      }
      default:
        return Status::InvalidArgument("unknown escape in JSON string");
    }
  }
  return out;
}

std::string CsvField(std::string_view s) {
  bool needs_quotes = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace biopera::obs
