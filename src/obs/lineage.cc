#include "obs/lineage.h"

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

namespace {

void AppendDescriptors(
    std::string* out, const char* prefix,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  for (const auto& [key, value] : pairs) {
    *out += ",\"";
    *out += prefix;
    *out += JsonEscape(key) + "\":" + JsonQuote(value);
  }
}

}  // namespace

std::string LineageRecord::ToJson() const {
  std::string out = "{\"task\":" + JsonQuote(task) +
                    StrFormat(",\"attempt\":%d", attempt);
  if (!binding.empty()) out += ",\"binding\":" + JsonQuote(binding);
  if (!node.empty()) out += ",\"node\":" + JsonQuote(node);
  if (!outcome.empty()) out += ",\"outcome\":" + JsonQuote(outcome);
  out += StrFormat(",\"t_dispatch_us\":%lld",
                   static_cast<long long>(dispatch_us));
  if (finish_us >= 0) {
    out += StrFormat(",\"t_finish_us\":%lld",
                     static_cast<long long>(finish_us));
  }
  if (cost_us >= 0) {
    out += StrFormat(",\"cost_us\":%lld", static_cast<long long>(cost_us));
  }
  AppendDescriptors(&out, "in.", inputs);
  AppendDescriptors(&out, "param.", params);
  AppendDescriptors(&out, "out.", outputs);
  out += "}";
  return out;
}

std::string LineageHeader::ToJson() const {
  std::string out = "{\"lineage_version\":1";
  out += ",\"instance\":" + JsonQuote(instance);
  if (!template_name.empty()) {
    out += ",\"template\":" + JsonQuote(template_name);
  }
  if (!state.empty()) out += ",\"state\":" + JsonQuote(state);
  out += StrFormat(",\"seed\":%llu", static_cast<unsigned long long>(seed));
  out += ",\"config_version\":" + JsonQuote(config_version);
  out += "}";
  return out;
}

std::string LineageExportJsonl(const LineageHeader& header,
                               const std::vector<LineageRecord>& records) {
  std::string out = header.ToJson() + "\n";
  for (const auto& record : records) out += record.ToJson() + "\n";
  return out;
}

}  // namespace biopera::obs
