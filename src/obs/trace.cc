#include "obs/trace.h"

#include <algorithm>

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

namespace {

constexpr struct {
  EventType type;
  std::string_view name;
} kEventNames[] = {
    {EventType::kTaskDispatched, "task_dispatched"},
    {EventType::kTaskCompleted, "task_completed"},
    {EventType::kTaskFailed, "task_failed"},
    {EventType::kJobTimedOut, "job_timed_out"},
    {EventType::kMigrationKilled, "migration_killed"},
    {EventType::kNodeDown, "node_down"},
    {EventType::kNodeUp, "node_up"},
    {EventType::kCheckpointTaken, "checkpoint_taken"},
    {EventType::kRecoveryReplayed, "recovery_replayed"},
    {EventType::kInstanceStateChanged, "instance_state_changed"},
    {EventType::kServerCrashed, "server_crashed"},
    {EventType::kServerStarted, "server_started"},
    {EventType::kStoreDegraded, "store_degraded"},
    {EventType::kStoreRecovered, "store_recovered"},
    {EventType::kStoreScrubbed, "store_scrubbed"},
    {EventType::kServerFenced, "server_fenced"},
    {EventType::kAnnotation, "annotation"},
    {EventType::kNodeSuspected, "node_suspected"},
    {EventType::kNodeCondemned, "node_condemned"},
    {EventType::kNodeReconciled, "node_reconciled"},
    {EventType::kSloStateChanged, "slo_state_changed"},
};

}  // namespace

std::string_view EventTypeName(EventType type) {
  for (const auto& entry : kEventNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

Result<EventType> EventTypeFromName(std::string_view name) {
  for (const auto& entry : kEventNames) {
    if (entry.name == name) return entry.type;
  }
  return Status::InvalidArgument("unknown event type " + std::string(name));
}

std::string TraceRecord::ToJson() const {
  std::string out = StrFormat(
      "{\"seq\":%llu,\"t_us\":%lld,\"type\":\"%s\"",
      static_cast<unsigned long long>(seq),
      static_cast<long long>(time.micros()),
      std::string(EventTypeName(type)).c_str());
  if (!instance.empty()) {
    out += ",\"instance\":\"" + JsonEscape(instance) + "\"";
  }
  if (!task.empty()) out += ",\"task\":\"" + JsonEscape(task) + "\"";
  if (!node.empty()) out += ",\"node\":\"" + JsonEscape(node) + "\"";
  for (const auto& [key, value] : attrs) {
    out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

TraceSink::TraceSink(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(std::min<size_t>(capacity_, 1024));
}

void TraceSink::Emit(EventType type, std::string instance, std::string task,
                     std::string node,
                     std::vector<std::pair<std::string, std::string>> attrs) {
  TraceRecord rec;
  rec.seq = next_seq_++;
  rec.time = clock_ != nullptr ? clock_->Now() : TimePoint::Zero();
  rec.type = type;
  rec.instance = std::move(instance);
  rec.task = std::move(task);
  rec.node = std::move(node);
  rec.attrs = std::move(attrs);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[static_cast<size_t>(rec.seq % capacity_)] = std::move(rec);
    if (drop_counter_ != nullptr) drop_counter_->Increment();
  }
}

size_t TraceSink::size() const { return ring_.size(); }

uint64_t TraceSink::dropped() const {
  return next_seq_ - static_cast<uint64_t>(ring_.size());
}

void TraceSink::ForEach(
    const std::function<void(const TraceRecord&)>& fn) const {
  if (ring_.empty()) return;
  // Oldest event sits at next_seq_ % capacity_ once the ring has wrapped.
  size_t start = ring_.size() < capacity_
                     ? 0
                     : static_cast<size_t>(next_seq_ % capacity_);
  for (size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(start + i) % ring_.size()]);
  }
}

std::vector<TraceRecord> TraceSink::Tail(size_t n,
                                         const std::string& instance) const {
  std::vector<TraceRecord> matched;
  ForEach([&](const TraceRecord& rec) {
    if (instance.empty() || rec.instance == instance) matched.push_back(rec);
  });
  if (matched.size() > n) {
    matched.erase(matched.begin(),
                  matched.begin() + static_cast<long>(matched.size() - n));
  }
  return matched;
}

std::string TraceSink::ExportJsonl() const {
  std::string out;
  if (dropped() > 0) {
    out += StrFormat(
        "{\"truncated\":true,\"events_dropped\":%llu,\"first_seq\":%llu}\n",
        static_cast<unsigned long long>(dropped()),
        static_cast<unsigned long long>(next_seq_ - ring_.size()));
  }
  ForEach([&](const TraceRecord& rec) {
    out += rec.ToJson();
    out += "\n";
  });
  return out;
}

void TraceSink::Clear() {
  ring_.clear();
  next_seq_ = 0;
}

}  // namespace biopera::obs
