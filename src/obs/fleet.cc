#include "obs/fleet.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

namespace {

std::string ShardLabel(int shard) {
  return shard < 0 ? "front" : StrFormat("%d", shard);
}

}  // namespace

uint64_t FleetSpanId(int shard, uint64_t local_id) {
  if (local_id == 0) return 0;  // "no span" stays "no span"
  return (static_cast<uint64_t>(shard + 1) << 40) | local_id;
}

std::vector<Span> FederateSpans(const std::vector<FleetSource>& sources) {
  std::vector<Span> out;
  size_t total = 0;
  for (const FleetSource& source : sources) {
    if (source.spans != nullptr) total += source.spans->size();
  }
  out.reserve(total);
  for (const FleetSource& source : sources) {
    if (source.spans == nullptr) continue;
    source.spans->ForEach([&](const Span& span) {
      Span copy = span;
      copy.id = FleetSpanId(source.shard, span.id);
      copy.parent = FleetSpanId(source.shard, span.parent);
      copy.link = FleetSpanId(source.shard, span.link);
      copy.attrs.insert(copy.attrs.begin(),
                        {"shard", ShardLabel(source.shard)});
      out.push_back(std::move(copy));
    });
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.id < b.id;
  });
  return out;
}

std::string FederateSpansJsonl(const std::vector<FleetSource>& sources) {
  uint64_t dropped = 0;
  for (const FleetSource& source : sources) {
    if (source.spans != nullptr) dropped += source.spans->dropped();
  }
  std::string out;
  if (dropped > 0) {
    out += StrFormat("{\"truncated\":true,\"spans_dropped\":%llu}\n",
                     static_cast<unsigned long long>(dropped));
  }
  for (const Span& span : FederateSpans(sources)) {
    out += span.ToJson();
    out += "\n";
  }
  return out;
}

std::string FederateChromeTrace(const std::vector<FleetSource>& sources) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  uint64_t dropped = 0;
  for (const FleetSource& source : sources) {
    if (source.spans == nullptr) continue;
    dropped += source.spans->dropped();
    const int pid = source.shard + 2;  // front door (-1) renders as pid 1
    const std::string process =
        source.shard < 0 ? "front door" : StrFormat("shard %d", source.shard);
    append(StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, process.c_str()));
    append(StrFormat(
        "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"sort_index\":%d}}",
        pid, pid));

    // Per-source track layout, tids by first appearance in id order —
    // identical to the single-sink export, so the federated document is
    // deterministic whenever the per-shard sinks are.
    std::map<std::string, int> track_tids;
    std::vector<std::string> tracks;
    source.spans->ForEach([&](const Span& span) {
      std::string track = ChromeTrackForSpan(span);
      if (track_tids.emplace(track, static_cast<int>(tracks.size()) + 1)
              .second) {
        tracks.push_back(std::move(track));
      }
    });
    for (size_t i = 0; i < tracks.size(); ++i) {
      append(StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"name\":\"%s\"}}",
          pid, static_cast<int>(i) + 1, JsonEscape(tracks[i]).c_str()));
    }
    source.spans->ForEach([&](const Span& span) {
      int64_t dur = span.open ? 0 : (span.end - span.start).micros();
      std::string event = StrFormat(
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
          "\"dur\":%lld,\"pid\":%d,\"tid\":%d,\"args\":{\"id\":\"%llu\"",
          JsonEscape(span.name).c_str(),
          std::string(SpanKindName(span.kind)).c_str(),
          static_cast<long long>(span.start.micros()),
          static_cast<long long>(std::max<int64_t>(0, dur)), pid,
          track_tids[ChromeTrackForSpan(span)],
          static_cast<unsigned long long>(
              FleetSpanId(source.shard, span.id)));
      if (span.parent != 0) {
        event += StrFormat(",\"parent\":\"%llu\"",
                           static_cast<unsigned long long>(
                               FleetSpanId(source.shard, span.parent)));
      }
      if (!span.instance.empty()) {
        event += ",\"instance\":\"" + JsonEscape(span.instance) + "\"";
      }
      if (!span.outcome.empty()) {
        event += ",\"outcome\":\"" + JsonEscape(span.outcome) + "\"";
      }
      if (span.open) event += ",\"open\":\"true\"";
      event += "}}";
      append(event);
    });
  }
  out += "\n]";
  if (dropped > 0) {
    out += StrFormat(
        ",\"otherData\":{\"truncated\":\"true\",\"spans_dropped\":\"%llu\"}",
        static_cast<unsigned long long>(dropped));
  }
  out += "}\n";
  return out;
}

std::string MergeJsonlByShard(
    const std::vector<std::pair<int, std::string>>& sources) {
  std::string out;
  for (const auto& [shard, jsonl] : sources) {
    const std::string prefix =
        StrFormat("{\"shard\":%d,", shard);
    size_t at = 0;
    while (at < jsonl.size()) {
      size_t end = jsonl.find('\n', at);
      if (end == std::string::npos) end = jsonl.size();
      if (end > at) {
        std::string_view line(jsonl.data() + at, end - at);
        if (line.size() >= 2 && line.front() == '{') {
          out += prefix;
          out += line.substr(1);
        } else {
          out += line;  // tolerate non-object lines verbatim
        }
        out += "\n";
      }
      at = end + 1;
    }
  }
  return out;
}

CriticalPathReport AnalyzeFleetCriticalPath(const FleetPathInput& input) {
  CriticalPathReport report =
      input.shard_spans == nullptr
          ? CriticalPathReport{}
          : AnalyzeCriticalPath(*input.shard_spans, input.instance);
  if (!report.found) return report;
  const TimePoint admitted = report.start;  // instance span opens at admit
  if (input.submitted >= admitted) return report;

  // The first lockstep barrier boundary after submission is the earliest
  // instant the backlog could have been drained; everything before it is
  // structural barrier wait, everything after is quota-induced backlog
  // wait. A submission admitted with no boundary in between waited only
  // on the barrier.
  TimePoint boundary = admitted;
  for (const TimePoint& t : input.barriers) {
    if (t > input.submitted) {
      boundary = std::min(t, admitted);
      break;
    }
  }
  std::vector<CriticalPathSegment> prefix;
  if (boundary > input.submitted) {
    CriticalPathSegment seg;
    seg.start = input.submitted;
    seg.end = boundary;
    seg.category = "barrier_wait";
    prefix.push_back(std::move(seg));
  }
  if (admitted > boundary) {
    CriticalPathSegment seg;
    seg.start = boundary;
    seg.end = admitted;
    seg.category = "backlog_wait";
    prefix.push_back(std::move(seg));
  }
  for (const CriticalPathSegment& seg : prefix) {
    report.totals[seg.category] =
        report.totals[seg.category] + (seg.end - seg.start);
  }
  report.segments.insert(report.segments.begin(), prefix.begin(),
                         prefix.end());
  report.start = input.submitted;
  return report;
}

}  // namespace biopera::obs
