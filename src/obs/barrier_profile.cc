#include "obs/barrier_profile.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace biopera::obs {

namespace {

uint64_t (*g_fake_now_ns)() = nullptr;

const char* const kBucketNames[WallProfile::kNumBuckets] = {"pump", "kernel",
                                                            "store"};
const char* const kCauseNames[BarrierProfiler::kNumCauses] = {
    "pump", "kernel", "store", "idle", "wait"};

/// Nanoseconds formatted as fractional Chrome-trace microseconds: the
/// division is exact in text, so segment boundaries keep tiling exactly
/// in the exported document.
std::string TsMicros(uint64_t ns) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(ns / 1000),
                   static_cast<unsigned long long>(ns % 1000));
}

}  // namespace

const char* WallProfile::BucketName(int bucket) {
  return bucket >= 0 && bucket < kNumBuckets ? kBucketNames[bucket] : "?";
}

uint64_t WallProfile::NowNs() {
  if (g_fake_now_ns != nullptr) return g_fake_now_ns();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WallProfile::SetClockForTest(uint64_t (*now_ns)()) {
  g_fake_now_ns = now_ns;
}

WallProfile::Scope::Scope(WallProfile* profile, Bucket bucket)
    : profile_(profile), bucket_(bucket) {
  if (profile_ == nullptr) return;
  saved_child_ns_ = profile_->open_child_ns_;
  profile_->open_child_ns_ = 0;
  start_ns_ = NowNs();
}

WallProfile::Scope::~Scope() {
  if (profile_ == nullptr) return;
  const uint64_t elapsed = NowNs() - start_ns_;
  const uint64_t child = profile_->open_child_ns_;
  profile_->bucket_ns_[bucket_] += elapsed > child ? elapsed - child : 0;
  // The parent scope sees this whole scope (self + children) as one
  // closed child.
  profile_->open_child_ns_ = saved_child_ns_ + elapsed;
}

void WallProfile::Drain(uint64_t out[kNumBuckets]) {
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = bucket_ns_[b];
    bucket_ns_[b] = 0;
  }
  open_child_ns_ = 0;
}

const char* BarrierProfiler::CauseName(int cause) {
  return cause >= 0 && cause < kNumCauses ? kCauseNames[cause] : "?";
}

BarrierProfiler::BarrierProfiler(int shards, Registry* registry,
                                 size_t max_records)
    : shards_(std::max(shards, 1)),
      max_records_(max_records),
      totals_(static_cast<size_t>(shards_)) {
  stall_hist_.resize(static_cast<size_t>(shards_));
  slowest_counter_.resize(static_cast<size_t>(shards_), nullptr);
  if (registry == nullptr) return;
  // Register every family member now: snapshot *keys* stay deterministic
  // across same-seed runs even though wall-clock values differ.
  HistogramOptions stall_buckets;
  stall_buckets.first_bound = 1e-6;  // 1us .. ~17min in 16 x4 buckets
  for (int s = 0; s < shards_; ++s) {
    const std::string shard_label = StrFormat("%d", s);
    stall_hist_[s].resize(kNumCauses, nullptr);
    for (int c = 0; c < kNumCauses; ++c) {
      stall_hist_[s][c] = registry->GetHistogram(
          "service_barrier_stall_seconds",
          {{"cause", kCauseNames[c]}, {"shard", shard_label}}, stall_buckets);
    }
    slowest_counter_[s] = registry->GetCounter(
        "service_barrier_slowest_total", {{"shard", shard_label}});
  }
}

void BarrierProfiler::Record(uint64_t wall_ns, TimePoint virtual_start,
                             TimePoint virtual_end,
                             const std::vector<RawSample>& raw) {
  BarrierRecord rec;
  rec.seq = ++barriers_;
  rec.virtual_start = virtual_start;
  rec.virtual_end = virtual_end;
  rec.wall_ns = wall_ns;
  rec.shards.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    // Sequential clamping makes the five segments tile [0, wall_ns]
    // exactly no matter how noisy the raw measurements are: step is
    // capped by the barrier wall, then pump/kernel/store each take at
    // most what remains of the step, idle is the step remainder and wait
    // the barrier remainder. Work done *between* barriers (admission
    // store commits during Submit) accumulates in the profile and is
    // absorbed into the next barrier by the same clamps.
    BarrierShardSample& s = rec.shards[i];
    s.step_ns = std::min(raw[i].step_ns, wall_ns);
    s.pump_ns = std::min(raw[i].pump_ns, s.step_ns);
    s.kernel_ns = std::min(raw[i].kernel_ns, s.step_ns - s.pump_ns);
    s.store_ns =
        std::min(raw[i].store_ns, s.step_ns - s.pump_ns - s.kernel_ns);
    s.idle_ns = s.step_ns - s.pump_ns - s.kernel_ns - s.store_ns;
    s.wait_ns = wall_ns - s.step_ns;
    if (rec.slowest < 0 ||
        s.step_ns > rec.shards[rec.slowest].step_ns) {
      rec.slowest = static_cast<int>(i);
    }
  }

  for (size_t i = 0; i < rec.shards.size() && i < totals_.size(); ++i) {
    const BarrierShardSample& s = rec.shards[i];
    ShardTotals& t = totals_[i];
    t.pump_ns += s.pump_ns;
    t.kernel_ns += s.kernel_ns;
    t.store_ns += s.store_ns;
    t.idle_ns += s.idle_ns;
    t.wait_ns += s.wait_ns;
    t.step_ns += s.step_ns;
    if (!stall_hist_[i].empty()) {
      const uint64_t ns[kNumCauses] = {s.pump_ns, s.kernel_ns, s.store_ns,
                                       s.idle_ns, s.wait_ns};
      for (int c = 0; c < kNumCauses; ++c) {
        stall_hist_[i][c]->Observe(static_cast<double>(ns[c]) / 1e9);
      }
    }
  }
  if (rec.slowest >= 0 &&
      rec.slowest < static_cast<int>(totals_.size())) {
    ++totals_[rec.slowest].slowest;
    if (slowest_counter_[rec.slowest] != nullptr) {
      slowest_counter_[rec.slowest]->Increment();
    }
  }
  if (records_.size() < max_records_) records_.push_back(std::move(rec));
}

bool BarrierProfiler::CheckTiling(std::string* error) const {
  for (const BarrierRecord& rec : records_) {
    for (size_t i = 0; i < rec.shards.size(); ++i) {
      const BarrierShardSample& s = rec.shards[i];
      const uint64_t sum =
          s.pump_ns + s.kernel_ns + s.store_ns + s.idle_ns + s.wait_ns;
      if (sum != rec.wall_ns ||
          s.step_ns != s.pump_ns + s.kernel_ns + s.store_ns + s.idle_ns) {
        if (error != nullptr) {
          *error = StrFormat(
              "barrier %llu shard %zu: segments sum to %llu ns, wall %llu ns",
              static_cast<unsigned long long>(rec.seq), i,
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(rec.wall_ns));
        }
        return false;
      }
    }
  }
  for (size_t i = 0; i < totals_.size(); ++i) {
    const ShardTotals& t = totals_[i];
    if (t.step_ns != t.pump_ns + t.kernel_ns + t.store_ns + t.idle_ns) {
      if (error != nullptr) {
        *error = StrFormat("shard %zu totals do not tile", i);
      }
      return false;
    }
  }
  return true;
}

std::string BarrierProfiler::ToText() const {
  std::string out = StrFormat(
      "barrier stalls over %llu barrier(s), wall-clock ms per shard "
      "(pump+kernel+store+idle+wait == step+wait):\n",
      static_cast<unsigned long long>(barriers_));
  out +=
      "shard      pump    kernel     store      idle      wait   slowest\n";
  for (size_t i = 0; i < totals_.size(); ++i) {
    const ShardTotals& t = totals_[i];
    out += StrFormat("%5zu %9.2f %9.2f %9.2f %9.2f %9.2f %9llu\n", i,
                     static_cast<double>(t.pump_ns) / 1e6,
                     static_cast<double>(t.kernel_ns) / 1e6,
                     static_cast<double>(t.store_ns) / 1e6,
                     static_cast<double>(t.idle_ns) / 1e6,
                     static_cast<double>(t.wait_ns) / 1e6,
                     static_cast<unsigned long long>(t.slowest));
  }
  return out;
}

std::string BarrierProfiler::ExportChromeTrace() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };
  for (int s = 0; s < shards_; ++s) {
    append(StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"shard %d\"}}",
        s + 1, s));
    append(StrFormat(
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"sort_index\":%d}}",
        s + 1, s + 1));
  }
  // Barriers laid end to end on a cumulative wall-clock axis: barrier k
  // occupies [offset, offset + wall_ns) on every shard's track, and the
  // five segments tile that window exactly.
  uint64_t offset_ns = 0;
  for (const BarrierRecord& rec : records_) {
    for (size_t i = 0; i < rec.shards.size(); ++i) {
      const BarrierShardSample& sh = rec.shards[i];
      const uint64_t segs[kNumCauses] = {sh.pump_ns, sh.kernel_ns,
                                         sh.store_ns, sh.idle_ns, sh.wait_ns};
      uint64_t at = offset_ns;
      for (int c = 0; c < kNumCauses; ++c) {
        if (segs[c] == 0) continue;
        append(StrFormat(
            "{\"name\":\"%s\",\"cat\":\"barrier\",\"ph\":\"X\",\"ts\":%s,"
            "\"dur\":%s,\"pid\":1,\"tid\":%d,\"args\":{\"barrier\":\"%llu\","
            "\"slowest\":\"%s\"}}",
            kCauseNames[c], TsMicros(at).c_str(), TsMicros(segs[c]).c_str(),
            static_cast<int>(i) + 1,
            static_cast<unsigned long long>(rec.seq),
            static_cast<int>(i) == rec.slowest ? "true" : "false"));
        at += segs[c];
      }
    }
    offset_ns += rec.wall_ns;
  }
  out += "\n]";
  if (records_truncated()) {
    out += StrFormat(
        ",\"otherData\":{\"truncated\":\"true\",\"barriers_dropped\":"
        "\"%llu\"}",
        static_cast<unsigned long long>(barriers_ - records_.size()));
  }
  out += "}\n";
  return out;
}

}  // namespace biopera::obs
