#ifndef BIOPERA_OBS_SPAN_H_
#define BIOPERA_OBS_SPAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time.h"

namespace biopera::obs {

/// What a span measures. Instance / attempt / job spans form the causal
/// tree of one process run (attempt→instance, job→attempt, and a retry
/// links back to the attempt it replaces); the remaining kinds are
/// overlay windows and store activity used to classify waiting time.
enum class SpanKind {
  kInstance,       // whole process instance: start -> done
  kAttempt,        // one task attempt: ready-queue entry -> terminal outcome
  kJob,            // the execution slice of an attempt on a node
  kRecovery,       // one recovery replay of an instance
  kCommitBatch,    // one flushed store commit group
  kCheckpoint,     // one store checkpoint
  kServerDown,     // server crash -> next startup
  kStoreDegraded,  // store degraded window (failed flush -> healthy retry)
  kNodeOutage,     // one node's down -> up window
  kSuspicion,      // lease detector: node suspected -> reconciled/condemned
  kAdmission,      // service front door: submission -> admitted/rejected
  kBarrier,        // one lockstep barrier of the sharded service
};

std::string_view SpanKindName(SpanKind kind);
/// Inverse of SpanKindName: true and sets `*kind` for a known name.
bool SpanKindFromName(std::string_view name, SpanKind* kind);

/// One interval on the causal timeline, stamped in virtual time. The id
/// fields are 0 when not applicable; `attrs` carries span-specific detail
/// in insertion order (kept as a vector so exports stay byte-stable).
struct Span {
  uint64_t id = 0;      // 1-based; 0 means "no span"
  uint64_t parent = 0;  // enclosing span (attempt->instance, job->attempt)
  uint64_t link = 0;    // causal predecessor (retry -> the attempt it replaces)
  SpanKind kind = SpanKind::kInstance;
  TimePoint start;
  TimePoint end;
  bool open = true;
  std::string name;  // task path / instance id / node name
  std::string instance;
  std::string task;
  std::string node;
  std::string outcome;  // terminal outcome ("completed", "failed", ...)
  std::vector<std::pair<std::string, std::string>> attrs;

  Duration duration() const { return end - start; }
  /// Single-line JSON object (one JSONL row).
  std::string ToJson() const;
};

/// The Chrome-trace track a span renders on (execution slices on the
/// node's track, causal spans on the instance's, store/server windows on
/// shared tracks). Deterministic, shared by the per-sink export and the
/// fleet federation (obs/fleet.h).
std::string ChromeTrackForSpan(const Span& span);

/// Bounded append-only span store. Ids are sequential and dense (span k
/// lives at index k-1), so lookups are O(1); once `capacity` spans have
/// been started, further Begin() calls are counted in `dropped()` and
/// return id 0 — End()/Annotate() on id 0 are no-ops, so instrumentation
/// never has to branch on a full sink.
class SpanSink {
 public:
  explicit SpanSink(size_t capacity = 1 << 20);
  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  /// Spans are stamped with `clock->Now()` (virtual time when the clock
  /// is a Simulator); TimePoint::Zero() until a clock is registered.
  void SetClock(const Clock* clock) { clock_ = clock; }
  bool has_clock() const { return clock_ != nullptr; }
  TimePoint Now() const;

  /// Opens a span at the current time; returns its id (0 if dropped).
  uint64_t Begin(SpanKind kind, std::string name, uint64_t parent = 0,
                 uint64_t link = 0, std::string instance = "",
                 std::string task = "", std::string node = "",
                 std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Closes an open span at the current time, recording its outcome and
  /// appending any extra attributes. No-op for id 0 or already-closed
  /// spans.
  void End(uint64_t id, std::string outcome = "",
           std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Appends one attribute to a live span (no-op for id 0).
  void Annotate(uint64_t id, std::string key, std::string value);

  /// A zero-duration span opened and closed at the current time (store
  /// commit batches, checkpoints). Returns its id (0 if dropped).
  uint64_t EmitInstant(
      SpanKind kind, std::string name, uint64_t parent = 0,
      std::string instance = "", std::string task = "", std::string node = "",
      std::vector<std::pair<std::string, std::string>> attrs = {},
      std::string outcome = "done");

  /// nullptr for id 0 / unknown ids.
  const Span* Find(uint64_t id) const;

  /// Most recently started span of `kind` that is still open and matches
  /// the given instance and node ("" matches any value); 0 if none. Used
  /// to reattach long-lived spans (instance, server-down) after an engine
  /// crash discarded the in-memory handle.
  uint64_t FindOpen(SpanKind kind, std::string_view instance,
                    std::string_view node = "") const;

  size_t size() const { return spans_.size(); }
  size_t capacity() const { return capacity_; }
  /// Spans started since construction (including dropped ones).
  uint64_t total_started() const { return spans_.size() + dropped_; }
  /// Spans lost because the sink reached capacity.
  uint64_t dropped() const { return dropped_; }
  bool truncated() const { return dropped_ > 0; }

  /// Visits stored spans in id order.
  void ForEach(const std::function<void(const Span&)>& fn) const;
  /// The most recent `n` spans (oldest of those first), optionally
  /// filtered by instance id and/or span kind name ("" matches all) —
  /// the console's `SPANS <id|*> [n] [kind]` filters.
  std::vector<Span> Tail(size_t n, const std::string& instance = "",
                         const std::string& kind = "") const;

  /// One JSON object per line, id order. When spans were dropped, the
  /// first line is a truncation marker.
  std::string ExportJsonl() const;

  /// The whole span store as a `chrome://tracing` / Perfetto JSON
  /// document: one complete ("X") event per span on deterministic
  /// per-track tids, with thread-name metadata first. When spans were
  /// dropped, `otherData.truncated` records it.
  std::string ExportChromeTrace() const;

  void Clear();

 private:
  const Clock* clock_ = nullptr;
  size_t capacity_;
  std::vector<Span> spans_;
  uint64_t dropped_ = 0;
};

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_SPAN_H_
