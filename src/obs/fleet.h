#ifndef BIOPERA_OBS_FLEET_H_
#define BIOPERA_OBS_FLEET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/critical_path.h"
#include "obs/span.h"

namespace biopera::obs {

/// Cross-shard span federation (docs/OBSERVABILITY.md): the sharded
/// service keeps one span sink per engine shard plus a front-door sink of
/// its own; federation merges them into a single fleet timeline without
/// touching the per-shard sinks (whose exports stay the byte-identity
/// ground truth).

/// Stable fleet-global span id. Per-sink ids are dense and 1-based, so
/// packing (shard, local id) keeps ids stable across re-federation and
/// across runs: shard -1 (the service front door) gets prefix 0, shard k
/// prefix k+1. Local ids stay below 2^40 (sink capacity is ~2^20).
uint64_t FleetSpanId(int shard, uint64_t local_id);

/// One source sink of a federation.
struct FleetSource {
  int shard = -1;  // -1 = the service front door
  const SpanSink* spans = nullptr;
};

/// Merges the sources into one fleet timeline: ids, parents and links are
/// rewritten to fleet-global ids (parents/links are intra-sink, so they
/// stay consistent), every span gains a leading `shard` attribute, and
/// rows are ordered by (start time, global id) — deterministic for
/// same-seed runs.
std::vector<Span> FederateSpans(const std::vector<FleetSource>& sources);

/// The federated timeline as JSONL. When any source sink dropped spans,
/// the first line is a truncation marker with the fleet-wide total.
std::string FederateSpansJsonl(const std::vector<FleetSource>& sources);

/// The federated timeline as one Chrome/Perfetto document: one process
/// per source (pid 1 = front door, pid k+2 = shard k) with the source's
/// own deterministic track layout inside.
std::string FederateChromeTrace(const std::vector<FleetSource>& sources);

/// Generic JSONL fan-in for per-shard line exports (lineage, traces):
/// each non-empty line gains a leading `"shard":<k>` field; sources are
/// concatenated in the order given, preserving each source's internal
/// line order.
std::string MergeJsonlByShard(
    const std::vector<std::pair<int, std::string>>& sources);

/// Input to the fleet critical path of one instance: its shard-local
/// spans plus what only the front door knows — when the submission
/// arrived and the lockstep barrier boundaries that gate admission.
struct FleetPathInput {
  const SpanSink* shard_spans = nullptr;
  int shard = 0;
  std::string instance;  // engine-local instance id
  TimePoint submitted;   // front-door Submit() time
  /// Virtual end time of every lockstep barrier so far, ascending.
  std::vector<TimePoint> barriers;
};

/// Runs the per-shard critical-path analyzer, then extends the report
/// back to submission time with the waits only the fleet can attribute:
/// [submitted, first barrier boundary after it] is `barrier_wait` (a
/// backlogged submission cannot even be considered until the next
/// lockstep barrier drains the backlog) and [that boundary, admission]
/// is `backlog_wait` (admission quotas held it). The segments still tile
/// [submitted, end] exactly — the fleet path inherits the per-instance
/// invariant.
CriticalPathReport AnalyzeFleetCriticalPath(const FleetPathInput& input);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_FLEET_H_
