#ifndef BIOPERA_OBS_LINEAGE_H_
#define BIOPERA_OBS_LINEAGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace biopera::obs {

/// One attempt's provenance: which inputs a task execution consumed,
/// where it ran, and what it produced. The engine emits these at the
/// span instrumentation sites (dispatch / completion) and persists them
/// in the store's provenance space, so a record survives crashes along
/// with the instance it describes.
///
/// Descriptors are flat (key, value) string pairs:
///  - `inputs`  — the activity's bound input parameters, summarized
///    (sequence ranges as "[first,last)", large values by digest);
///  - `params`  — execution parameters the activity itself declares
///    (PAM matrix id/version, noise seed, thresholds);
///  - `outputs` — result summaries (match counts, content digests).
/// Pairs are kept in insertion order so exports are byte-deterministic.
struct LineageRecord {
  std::string instance;
  std::string task;  // stable tree path, e.g. "alignment[3]/fixed_pam"
  int attempt = 0;   // 1-based, matches the attempt span's attr
  std::string binding;
  std::string node;
  /// "completed", "failed", "timed_out", "migrated"; empty while the
  /// attempt is still in flight (dispatch recorded, no outcome yet).
  std::string outcome;
  int64_t dispatch_us = 0;
  int64_t finish_us = -1;  // -1 = still in flight
  int64_t cost_us = -1;    // CPU cost charged by the activity
  std::vector<std::pair<std::string, std::string>> inputs;
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<std::pair<std::string, std::string>> outputs;

  /// Single-line JSON object (one JSONL row). Descriptor keys are
  /// prefixed "in.", "param.", "out." so the flat line remains
  /// loss-free.
  std::string ToJson() const;
};

/// Run-level facts heading a lineage export: one line identifying the
/// instance and the inputs every task shares — the RNG seed and the
/// configuration-space version. These are what run differencing checks
/// first.
struct LineageHeader {
  std::string instance;
  std::string template_name;
  std::string state;
  uint64_t seed = 0;
  std::string config_version;

  std::string ToJson() const;
};

/// Full lineage export: the header line followed by one line per
/// record, in the caller's (store key) order.
std::string LineageExportJsonl(const LineageHeader& header,
                               const std::vector<LineageRecord>& records);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_LINEAGE_H_
