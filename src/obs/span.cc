#include "obs/span.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

namespace {

constexpr struct {
  SpanKind kind;
  std::string_view name;
} kSpanKindNames[] = {
    {SpanKind::kInstance, "instance"},
    {SpanKind::kAttempt, "attempt"},
    {SpanKind::kJob, "job"},
    {SpanKind::kRecovery, "recovery"},
    {SpanKind::kCommitBatch, "commit_batch"},
    {SpanKind::kCheckpoint, "checkpoint"},
    {SpanKind::kServerDown, "server_down"},
    {SpanKind::kStoreDegraded, "store_degraded"},
    {SpanKind::kNodeOutage, "node_outage"},
    {SpanKind::kSuspicion, "suspicion"},
    {SpanKind::kAdmission, "admission"},
    {SpanKind::kBarrier, "barrier"},
};

}  // namespace

std::string ChromeTrackForSpan(const Span& span) {
  switch (span.kind) {
    case SpanKind::kJob:
    case SpanKind::kNodeOutage:
    case SpanKind::kSuspicion:
      return "node " + span.node;
    case SpanKind::kCommitBatch:
    case SpanKind::kCheckpoint:
    case SpanKind::kStoreDegraded:
      return "store";
    case SpanKind::kServerDown:
      return "server";
    case SpanKind::kAdmission:
      return "front door";
    case SpanKind::kBarrier:
      return "barriers";
    case SpanKind::kInstance:
    case SpanKind::kAttempt:
    case SpanKind::kRecovery:
      return "instance " + span.instance;
  }
  return "other";
}

std::string_view SpanKindName(SpanKind kind) {
  for (const auto& entry : kSpanKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool SpanKindFromName(std::string_view name, SpanKind* kind) {
  for (const auto& entry : kSpanKindNames) {
    if (entry.name == name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

std::string Span::ToJson() const {
  std::string out = StrFormat(
      "{\"id\":%llu,\"kind\":\"%s\",\"start_us\":%lld",
      static_cast<unsigned long long>(id),
      std::string(SpanKindName(kind)).c_str(),
      static_cast<long long>(start.micros()));
  if (open) {
    out += ",\"open\":true";
  } else {
    out += StrFormat(",\"end_us\":%lld,\"dur_us\":%lld",
                     static_cast<long long>(end.micros()),
                     static_cast<long long>((end - start).micros()));
  }
  if (parent != 0) {
    out += StrFormat(",\"parent\":%llu",
                     static_cast<unsigned long long>(parent));
  }
  if (link != 0) {
    out += StrFormat(",\"link\":%llu", static_cast<unsigned long long>(link));
  }
  if (!name.empty()) out += ",\"name\":\"" + JsonEscape(name) + "\"";
  if (!instance.empty()) {
    out += ",\"instance\":\"" + JsonEscape(instance) + "\"";
  }
  if (!task.empty()) out += ",\"task\":\"" + JsonEscape(task) + "\"";
  if (!node.empty()) out += ",\"node\":\"" + JsonEscape(node) + "\"";
  if (!outcome.empty()) out += ",\"outcome\":\"" + JsonEscape(outcome) + "\"";
  for (const auto& [key, value] : attrs) {
    out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

SpanSink::SpanSink(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

TimePoint SpanSink::Now() const {
  return clock_ != nullptr ? clock_->Now() : TimePoint::Zero();
}

uint64_t SpanSink::Begin(
    SpanKind kind, std::string name, uint64_t parent, uint64_t link,
    std::string instance, std::string task, std::string node,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.link = link;
  span.kind = kind;
  span.start = Now();
  span.end = span.start;
  span.name = std::move(name);
  span.instance = std::move(instance);
  span.task = std::move(task);
  span.node = std::move(node);
  span.attrs = std::move(attrs);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanSink::End(uint64_t id, std::string outcome,
                   std::vector<std::pair<std::string, std::string>> attrs) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.open) return;
  span.open = false;
  span.end = Now();
  span.outcome = std::move(outcome);
  for (auto& attr : attrs) span.attrs.push_back(std::move(attr));
}

void SpanSink::Annotate(uint64_t id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

uint64_t SpanSink::EmitInstant(
    SpanKind kind, std::string name, uint64_t parent, std::string instance,
    std::string task, std::string node,
    std::vector<std::pair<std::string, std::string>> attrs,
    std::string outcome) {
  uint64_t id = Begin(kind, std::move(name), parent, 0, std::move(instance),
                      std::move(task), std::move(node), std::move(attrs));
  End(id, std::move(outcome));
  return id;
}

const Span* SpanSink::Find(uint64_t id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

uint64_t SpanSink::FindOpen(SpanKind kind, std::string_view instance,
                            std::string_view node) const {
  for (size_t i = spans_.size(); i > 0; --i) {
    const Span& span = spans_[i - 1];
    if (span.kind != kind || !span.open) continue;
    if (!instance.empty() && span.instance != instance) continue;
    if (!node.empty() && span.node != node) continue;
    return span.id;
  }
  return 0;
}

void SpanSink::ForEach(const std::function<void(const Span&)>& fn) const {
  for (const Span& span : spans_) fn(span);
}

std::vector<Span> SpanSink::Tail(size_t n, const std::string& instance,
                                 const std::string& kind) const {
  SpanKind want = SpanKind::kInstance;
  const bool filter_kind = !kind.empty() && SpanKindFromName(kind, &want);
  std::vector<Span> matched;
  for (const Span& span : spans_) {
    if (!instance.empty() && span.instance != instance) continue;
    if (filter_kind && span.kind != want) continue;
    matched.push_back(span);
  }
  if (matched.size() > n) {
    matched.erase(matched.begin(),
                  matched.begin() + static_cast<long>(matched.size() - n));
  }
  return matched;
}

std::string SpanSink::ExportJsonl() const {
  std::string out;
  if (truncated()) {
    out += StrFormat("{\"truncated\":true,\"spans_dropped\":%llu}\n",
                     static_cast<unsigned long long>(dropped_));
  }
  for (const Span& span : spans_) {
    out += span.ToJson();
    out += "\n";
  }
  return out;
}

std::string SpanSink::ExportChromeTrace() const {
  // Assign tids by first appearance in id order: deterministic across
  // same-seed runs.
  std::map<std::string, int> track_tids;
  std::vector<std::string> tracks;
  for (const Span& span : spans_) {
    std::string track = ChromeTrackForSpan(span);
    if (track_tids.emplace(track, static_cast<int>(tracks.size()) + 1).second) {
      tracks.push_back(std::move(track));
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };
  for (size_t i = 0; i < tracks.size(); ++i) {
    append(StrFormat(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        static_cast<int>(i) + 1, JsonEscape(tracks[i]).c_str()));
    append(StrFormat(
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
        "\"args\":{\"sort_index\":%d}}",
        static_cast<int>(i) + 1, static_cast<int>(i) + 1));
  }
  for (const Span& span : spans_) {
    int64_t dur = span.open ? 0 : (span.end - span.start).micros();
    std::string event = StrFormat(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":1,\"tid\":%d,\"args\":{\"id\":\"%llu\"",
        JsonEscape(span.name).c_str(),
        std::string(SpanKindName(span.kind)).c_str(),
        static_cast<long long>(span.start.micros()),
        static_cast<long long>(std::max<int64_t>(0, dur)),
        track_tids[ChromeTrackForSpan(span)],
        static_cast<unsigned long long>(span.id));
    if (span.parent != 0) {
      event += StrFormat(",\"parent\":\"%llu\"",
                         static_cast<unsigned long long>(span.parent));
    }
    if (span.link != 0) {
      event += StrFormat(",\"link\":\"%llu\"",
                         static_cast<unsigned long long>(span.link));
    }
    if (!span.instance.empty()) {
      event += ",\"instance\":\"" + JsonEscape(span.instance) + "\"";
    }
    if (!span.task.empty()) {
      event += ",\"task\":\"" + JsonEscape(span.task) + "\"";
    }
    if (!span.outcome.empty()) {
      event += ",\"outcome\":\"" + JsonEscape(span.outcome) + "\"";
    }
    if (span.open) event += ",\"open\":\"true\"";
    for (const auto& [key, value] : span.attrs) {
      event += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    event += "}}";
    append(event);
  }
  out += "\n]";
  if (truncated()) {
    out += StrFormat(
        ",\"otherData\":{\"truncated\":\"true\",\"spans_dropped\":\"%llu\"}",
        static_cast<unsigned long long>(dropped_));
  }
  out += "}\n";
  return out;
}

void SpanSink::Clear() {
  spans_.clear();
  dropped_ = 0;
}

}  // namespace biopera::obs
