#ifndef BIOPERA_OBS_CRITICAL_PATH_H_
#define BIOPERA_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/span.h"

namespace biopera::obs {

/// One slice of an instance's makespan on the critical path, tagged with
/// where that time went.
struct CriticalPathSegment {
  TimePoint start;
  TimePoint end;
  /// "compute", "queue", "recovery", "migration" or "store_stall".
  std::string category;
  uint64_t span_id = 0;  // contributing attempt/job span (0 for a gap)
  std::string task;
  std::string node;

  Duration duration() const { return end - start; }
};

/// The critical path of one completed (or still-running) process
/// instance: a gap-free partition of [start, end] into categorized
/// segments. Because the segments tile the makespan exactly, the
/// category totals always sum to `makespan()` — attribution can never
/// silently lose time.
struct CriticalPathReport {
  bool found = false;
  std::string instance;
  TimePoint start;
  TimePoint end;
  std::vector<CriticalPathSegment> segments;  // ordered by start
  std::map<std::string, Duration> totals;     // per category

  Duration makespan() const { return end - start; }
  /// Sum over all segments; equals makespan() by construction.
  Duration attributed() const;
  /// Human-readable summary: totals plus the `top_k` longest segments.
  std::string ToText(size_t top_k = 5) const;
};

/// Walks the span DAG of `instance` backwards from its end: at every
/// point the blocking span is the latest-finishing task attempt, whose
/// execution slice (the child job span) counts as compute and whose
/// pre-dispatch wait is classified by cause — a retry linked to a
/// migration-killed attempt waits on "migration"; time under a
/// server-down window is "recovery"; time under a store-degraded window
/// is "store_stall"; everything else is "queue". Gaps between blocking
/// attempts are classified by the same overlay windows.
CriticalPathReport AnalyzeCriticalPath(const SpanSink& spans,
                                       const std::string& instance);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_CRITICAL_PATH_H_
