#ifndef BIOPERA_OBS_QUANTILE_H_
#define BIOPERA_OBS_QUANTILE_H_

#include <cstdint>
#include <string>

namespace biopera::obs {

/// Online single-quantile estimator (the P-square algorithm of Jain &
/// Chlamtac): five markers track one running quantile in O(1) memory and
/// O(1) work per observation, with no sample buffer — the streaming
/// straggler sensor ROADMAP item 2's adaptive planner consumes. Exact
/// while count() <= 5; afterwards the middle markers move by parabolic
/// (falling back to linear) interpolation. The estimate is a pure
/// function of the observation sequence, so same-seed virtual-time runs
/// export byte-identical values.
class StreamingQuantile {
 public:
  explicit StreamingQuantile(double quantile = 0.5);

  void Observe(double value);

  /// Current estimate: exact order statistic while count() <= 5, the
  /// P-square middle-marker height afterwards; 0 when empty.
  double Estimate() const;

  double quantile() const { return q_; }
  uint64_t count() const { return count_; }
  double min() const;
  double max() const;

 private:
  double q_;
  uint64_t count_ = 0;
  double height_[5] = {0, 0, 0, 0, 0};   // marker heights (sorted)
  double pos_[5] = {1, 2, 3, 4, 5};      // actual marker positions
  double desired_[5] = {0, 0, 0, 0, 0};  // desired marker positions
  double rate_[5] = {0, 0, 0, 0, 0};     // desired-position increments
};

/// One named streaming sensor: p50/p90/p99 estimators plus exact
/// count/sum/extrema. Fed with per-barrier shard step times and per-job
/// compute costs (virtual seconds); `ToRow` prints one deterministic
/// fixed-format report line.
struct QuantileSensor {
  StreamingQuantile p50{0.50};
  StreamingQuantile p90{0.90};
  StreamingQuantile p99{0.99};
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Observe(double value);
  double mean() const { return count == 0 ? 0 : sum / count; }
  /// "<label>  n=..  mean=..  p50=..  p90=..  p99=..  max=.." — values in
  /// the unit the sensor was fed with.
  std::string ToRow(const std::string& label) const;
};

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_QUANTILE_H_
