#include "obs/invariants.h"

#include <map>
#include <utility>

#include "common/strings.h"

namespace biopera::obs {

std::string InvariantViolation::ToText() const {
  return instance + "/" + task + ": " + what;
}

std::vector<InvariantViolation> CheckExactlyOnce(
    const SpanSink& spans, const std::string& instance) {
  // (instance, task) -> completed counts per kind.
  struct Counts {
    int jobs = 0;
    int attempts = 0;
  };
  std::map<std::pair<std::string, std::string>, Counts> per_task;
  spans.ForEach([&](const Span& span) {
    if (span.open || span.outcome != "completed") return;
    if (!instance.empty() && span.instance != instance) return;
    if (span.task.empty()) return;
    Counts& counts = per_task[{span.instance, span.task}];
    if (span.kind == SpanKind::kJob) ++counts.jobs;
    if (span.kind == SpanKind::kAttempt) ++counts.attempts;
  });
  std::vector<InvariantViolation> violations;
  for (const auto& [key, counts] : per_task) {
    if (counts.jobs > 1) {
      violations.push_back(
          {key.first, key.second,
           StrFormat("completed %d times at job level (exactly-once "
                     "violated)", counts.jobs)});
    }
    if (counts.attempts > 1) {
      violations.push_back(
          {key.first, key.second,
           StrFormat("%d attempts reached the completed outcome "
                     "(double-applied output)", counts.attempts)});
    }
  }
  return violations;
}

}  // namespace biopera::obs
