#ifndef BIOPERA_OBS_INVARIANTS_H_
#define BIOPERA_OBS_INVARIANTS_H_

#include <string>
#include <vector>

#include "obs/span.h"

namespace biopera::obs {

/// One violated run-level invariant, anchored to the (instance, task) it
/// concerns.
struct InvariantViolation {
  std::string instance;
  std::string task;
  std::string what;

  std::string ToText() const;
};

/// Checks the exactly-once property over a run's span export: for every
/// (instance, task), at most one completed kJob span and at most one
/// completed kAttempt span — i.e. no task's output was applied twice, no
/// matter how many duplicated, reordered or zombie reports the control
/// plane produced. `instance` restricts the check ("" = all instances).
///
/// Caveat: Invalidate() and sphere-of-atomicity compensation legitimately
/// re-complete tasks; apply the checker to runs without them (the chaos
/// and fuzz harnesses, the partition-storm bench).
std::vector<InvariantViolation> CheckExactlyOnce(
    const SpanSink& spans, const std::string& instance = "");

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_INVARIANTS_H_
