#ifndef BIOPERA_OBS_BARRIER_PROFILE_H_
#define BIOPERA_OBS_BARRIER_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/metrics.h"

namespace biopera::obs {

/// Wall-clock self-time buckets for one engine shard: where real time
/// goes while the shard's simulator advances inside a lockstep barrier.
/// Scopes nest, and a scope accounts only its *self* time (elapsed minus
/// enclosed child scopes), so the buckets never double-count — a store
/// flush inside a dispatch pump lands in kStore, not kPump.
///
/// Wall time is inherently nondeterministic. WallProfile values feed only
/// the barrier-stall profiler (histograms, text breakdowns and the Chrome
/// export), never virtual time or any byte-identity-bearing export. Not
/// thread-safe by design: one profile belongs to one shard, and a shard
/// is pumped by exactly one thread per barrier.
class WallProfile {
 public:
  enum Bucket { kPump = 0, kKernel = 1, kStore = 2 };
  static constexpr int kNumBuckets = 3;
  static const char* BucketName(int bucket);

  /// RAII self-time scope. A null profile reduces both constructor and
  /// destructor to a single branch — the null-check-only detached path
  /// gated by bench/micro_obs.cc.
  class Scope {
   public:
    Scope(WallProfile* profile, Bucket bucket);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    WallProfile* profile_;
    Bucket bucket_;
    uint64_t start_ns_ = 0;
    uint64_t saved_child_ns_ = 0;
  };

  /// Copies the per-bucket totals into `out[kNumBuckets]` and resets
  /// them: the service drains one barrier's worth of attribution at each
  /// barrier boundary (after the pumping thread has joined).
  void Drain(uint64_t out[kNumBuckets]);

  uint64_t bucket_ns(int bucket) const { return bucket_ns_[bucket]; }

  /// Test hook: replaces the steady clock with a fake nanosecond source
  /// (nullptr restores the real clock). Affects every profile.
  static void SetClockForTest(uint64_t (*now_ns)());

 private:
  static uint64_t NowNs();

  uint64_t bucket_ns_[kNumBuckets] = {0, 0, 0};
  /// Elapsed wall time of already-closed children of the innermost open
  /// scope — what that scope subtracts to get its self time.
  uint64_t open_child_ns_ = 0;
};

/// Per-shard attribution of the lockstep barriers (ShardedService::
/// StepBarrier). For every barrier each shard's wall time is partitioned
/// into five segments that tile [0, wall_ns] *exactly*, the same
/// invariant the per-instance critical path keeps in virtual time:
///
///   pump    dispatcher scan / navigation self-time
///   kernel  activity kernel execution (inline or thread-pool batch)
///   store   WAL appends, group-commit flushes, checkpoints
///   idle    simulator bookkeeping and the idle tail of the quantum
///   wait    barrier wait on the slowest sibling shard
///
/// pump + kernel + store + idle + wait == wall_ns for every shard of
/// every barrier, by construction (raw profile buckets are clamped in
/// that priority order against the shard's measured step time). The
/// slowest shard of each barrier (idle included, wait zero) is the one
/// the whole fleet stalled on.
struct BarrierShardSample {
  uint64_t pump_ns = 0;
  uint64_t kernel_ns = 0;
  uint64_t store_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t wait_ns = 0;
  uint64_t step_ns = 0;  // this shard's RunUntil wall time (sum of first 4)
};

struct BarrierRecord {
  uint64_t seq = 0;  // 1-based barrier number
  TimePoint virtual_start;
  TimePoint virtual_end;
  uint64_t wall_ns = 0;  // wall time of the whole barrier advance
  int slowest = -1;      // argmax step_ns (ties -> lowest shard)
  std::vector<BarrierShardSample> shards;
};

class BarrierProfiler {
 public:
  static const char* CauseName(int cause);  // 0..4: pump..wait
  static constexpr int kNumCauses = 5;

  /// Registers per-shard/per-cause stall histograms
  /// (`service_barrier_stall_seconds{cause=..,shard=..}`) and slowest-
  /// shard counters (`service_barrier_slowest_total{shard=..}`) up front,
  /// so the *keys* in a METRICS snapshot are deterministic even though
  /// the wall-clock values are not. `registry` may be null (recording
  /// still works; only the metric mirror is skipped). Per-barrier records
  /// are kept up to `max_records`; totals accumulate forever.
  BarrierProfiler(int shards, Registry* registry, size_t max_records = 4096);

  struct RawSample {
    uint64_t step_ns = 0;
    uint64_t pump_ns = 0;
    uint64_t kernel_ns = 0;
    uint64_t store_ns = 0;
  };

  /// Folds one barrier: clamps every shard's raw buckets into tiling
  /// segments, picks the slowest shard and feeds the histograms.
  void Record(uint64_t wall_ns, TimePoint virtual_start,
              TimePoint virtual_end, const std::vector<RawSample>& raw);

  uint64_t barriers() const { return barriers_; }
  const std::vector<BarrierRecord>& records() const { return records_; }
  bool records_truncated() const { return barriers_ > records_.size(); }

  struct ShardTotals {
    uint64_t pump_ns = 0;
    uint64_t kernel_ns = 0;
    uint64_t store_ns = 0;
    uint64_t idle_ns = 0;
    uint64_t wait_ns = 0;
    uint64_t step_ns = 0;
    uint64_t slowest = 0;  // barriers this shard was the straggler of
  };
  const std::vector<ShardTotals>& totals() const { return totals_; }

  /// Verifies the tiling invariant over every stored record and the
  /// accumulated totals; on failure describes the first violation.
  /// Asserted by tests/fleet_test.cc and the shard_saturation self-check.
  bool CheckTiling(std::string* error = nullptr) const;

  /// Aligned per-shard stall breakdown (FLEETREPORT's wall section).
  std::string ToText() const;

  /// Chrome/Perfetto document: one track per shard on the cumulative
  /// barrier wall-clock timeline; every recorded barrier contributes
  /// segments tiling its [t, t + wall_ns) window exactly on every track.
  std::string ExportChromeTrace() const;

 private:
  int shards_;
  size_t max_records_;
  uint64_t barriers_ = 0;
  std::vector<BarrierRecord> records_;
  std::vector<ShardTotals> totals_;
  // [shard][cause]; null when no registry was given.
  std::vector<std::vector<Histogram*>> stall_hist_;
  std::vector<Counter*> slowest_counter_;
};

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_BARRIER_PROFILE_H_
