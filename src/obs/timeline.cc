#include "obs/timeline.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "obs/json.h"

namespace biopera::obs {

std::vector<TimelineInterval> BuildTimeline(const TraceSink& trace,
                                            const std::string& node) {
  std::vector<TimelineInterval> intervals;
  // A task occupies at most one node at a time, so (instance, task) keys
  // the currently open interval.
  std::map<std::pair<std::string, std::string>, size_t> open;
  TimePoint last_time;

  auto close = [&](size_t index, TimePoint when, std::string_view outcome) {
    intervals[index].end = when;
    intervals[index].outcome = outcome;
  };

  trace.ForEach([&](const TraceRecord& rec) {
    last_time = rec.time;
    switch (rec.type) {
      case EventType::kTaskDispatched: {
        auto key = std::make_pair(rec.instance, rec.task);
        auto it = open.find(key);
        // A re-dispatch without a terminal event (lost report replayed
        // from recovery): close the stale bar at the new dispatch time.
        if (it != open.end()) close(it->second, rec.time, "open");
        TimelineInterval iv;
        iv.node = rec.node;
        iv.instance = rec.instance;
        iv.task = rec.task;
        iv.start = rec.time;
        iv.end = rec.time;
        iv.outcome = "open";
        open[key] = intervals.size();
        intervals.push_back(std::move(iv));
        break;
      }
      case EventType::kTaskCompleted:
      case EventType::kTaskFailed:
      case EventType::kJobTimedOut:
      case EventType::kMigrationKilled: {
        auto it = open.find(std::make_pair(rec.instance, rec.task));
        if (it == open.end()) break;  // dispatch fell off the ring
        std::string_view outcome =
            rec.type == EventType::kTaskCompleted    ? "completed"
            : rec.type == EventType::kTaskFailed     ? "failed"
            : rec.type == EventType::kJobTimedOut    ? "timed_out"
                                                     : "migrated";
        close(it->second, rec.time, outcome);
        open.erase(it);
        break;
      }
      case EventType::kNodeDown: {
        // Jobs die with the node; their failure reports may race behind.
        for (auto it = open.begin(); it != open.end();) {
          if (intervals[it->second].node == rec.node) {
            close(it->second, rec.time, "node_down");
            it = open.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
      case EventType::kServerCrashed: {
        // The server kills every outstanding job when it goes down.
        for (const auto& [key, index] : open) {
          close(index, rec.time, "killed");
        }
        open.clear();
        break;
      }
      default:
        break;
    }
  });
  // Still-running tasks extend to the end of the observed window.
  for (const auto& [key, index] : open) {
    intervals[index].end = last_time;
  }

  if (!node.empty()) {
    std::erase_if(intervals, [&](const TimelineInterval& iv) {
      return iv.node != node;
    });
  }
  std::stable_sort(intervals.begin(), intervals.end(),
                   [](const TimelineInterval& a, const TimelineInterval& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.node < b.node;
                   });
  return intervals;
}

std::string TimelineCsv(const std::vector<TimelineInterval>& intervals,
                        uint64_t dropped_events) {
  std::string out = "node,instance,task,start_us,end_us,outcome\n";
  if (dropped_events > 0) {
    out += StrFormat("# truncated: %llu trace events dropped before this "
                     "window\n",
                     static_cast<unsigned long long>(dropped_events));
  }
  for (const TimelineInterval& iv : intervals) {
    // Names come from user-controlled templates; CsvField keeps a
    // hostile name from breaking the column structure.
    out += StrFormat("%s,%s,%s,%lld,%lld,%s\n", CsvField(iv.node).c_str(),
                     CsvField(iv.instance).c_str(), CsvField(iv.task).c_str(),
                     static_cast<long long>(iv.start.micros()),
                     static_cast<long long>(iv.end.micros()),
                     iv.outcome.c_str());
  }
  return out;
}

StepSeries BusyCurve(const std::vector<TimelineInterval>& intervals,
                     const std::string& node) {
  std::vector<std::pair<double, int>> deltas;
  for (const TimelineInterval& iv : intervals) {
    if (!node.empty() && iv.node != node) continue;
    deltas.emplace_back(iv.start.SinceEpoch().ToSeconds(), +1);
    deltas.emplace_back(iv.end.SinceEpoch().ToSeconds(), -1);
  }
  std::sort(deltas.begin(), deltas.end());
  StepSeries series;
  int running = 0;
  for (const auto& [t, delta] : deltas) {
    running += delta;
    series.Set(t, running);
  }
  return series;
}

}  // namespace biopera::obs
