#ifndef BIOPERA_OBS_METRICS_H_
#define BIOPERA_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace biopera::obs {

/// Label set attached to one member of a metric family. A std::map keeps
/// the serialized key (and thus every export) deterministic.
using Labels = std::map<std::string, std::string>;

/// Monotonically increasing event count. Handles returned by the Registry
/// stay valid for the Registry's lifetime, so hot paths resolve a counter
/// once and then pay a single add per event.
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time scalar (queue depths, in-flight jobs).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Bucket layout of a Histogram: `num_buckets` finite buckets whose upper
/// bounds grow geometrically from `first_bound` by `growth`, plus an
/// implicit overflow bucket. Fixed at construction so merged snapshots
/// always line up.
struct HistogramOptions {
  double first_bound = 1e-3;
  double growth = 4.0;
  size_t num_buckets = 16;
};

/// Log-scale-bucketed value distribution (task costs, checkpoint sizes).
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Upper bounds of the finite buckets.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; one longer than bounds() (the overflow bucket).
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Percentile estimate (p in [0, 100]) assuming a uniform distribution
  /// within each bucket; 0 when empty.
  double Percentile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Point-in-time copy of every metric in a Registry, ordered by key so
/// that exports are byte-stable for deterministic (virtual-time) runs.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string key;  // "name" or "name{label=value,...}"
    Kind kind;
    double value = 0;  // counter / gauge reading
    // Histogram-only fields.
    uint64_t count = 0;
    double sum = 0;
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
  };
  std::vector<Entry> entries;

  const Entry* Find(const std::string& key) const;

  /// Deterministic JSON object keyed by metric name.
  std::string ToJson() const;
  /// Aligned human-readable listing (the console's METRICS command),
  /// optionally restricted to keys starting with `prefix`.
  std::string ToText(std::string_view prefix = {}) const;
};

/// Process- or experiment-wide metric registry. Families are addressed by
/// name + labels; lookups allocate on first use and afterwards return the
/// same handle, so instrumented code caches the pointer.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          const HistogramOptions& options = {});

  MetricsSnapshot Snapshot() const;

  /// Drops every metric (tests; experiment resets).
  void Clear();

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Shared default registry for code without an explicit Observability
  /// context.
  static Registry& Global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// "name{a=1,b=2}" — the canonical family-member key.
std::string MetricKey(const std::string& name, const Labels& labels);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_METRICS_H_
