#ifndef BIOPERA_OBS_RUNDIFF_H_
#define BIOPERA_OBS_RUNDIFF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/lineage.h"

namespace biopera::obs {

/// One environment-schedule window reconstructed from a run's span
/// export: a node outage, a server-down window, or a store-degraded
/// window. Two runs with different windows saw different worlds.
struct OutageWindow {
  std::string kind;  // "node_outage", "server_down", "store_degraded"
  std::string node;  // empty for server/store windows
  int64_t start_us = 0;
  int64_t end_us = -1;  // -1 = still open at export time

  std::string ToText() const;
  bool operator==(const OutageWindow&) const = default;
};

/// Everything run differencing needs from one run: the lineage header
/// (seed, config version), the per-attempt lineage records, and the
/// outage schedule from the span export.
struct RunLineage {
  std::string label;  // file name or instance id, for the report
  LineageHeader header;
  std::vector<LineageRecord> records;
  std::vector<OutageWindow> outages;
};

/// Why two runs diverged, most-root-cause first: enumerator order IS
/// the root-cause ranking. Seed, configuration and input deltas come
/// before the environment schedule, which comes before downstream
/// scheduling noise (retries, placement) and finally observed output
/// differences.
enum class DivergenceCategory {
  kSeed = 0,
  kConfigVersion,
  kInput,
  kOutageSchedule,
  kRetryHistory,
  kPlacement,
  kOutput,
};

std::string_view DivergenceCategoryName(DivergenceCategory category);

/// One classified difference between the two runs.
struct Divergence {
  DivergenceCategory category = DivergenceCategory::kOutput;
  std::string path;  // task path, or "" for run-level divergences
  std::string detail;
};

/// The structured diff of two runs. `divergences` is sorted by
/// (category rank, path, detail); the first entry's category is the
/// root cause.
struct RunDiffReport {
  std::string label_a;
  std::string label_b;
  std::vector<Divergence> divergences;

  bool identical() const { return divergences.empty(); }
  /// Category name of the top-ranked divergence, or "none".
  std::string RootCause() const;
  std::string ToText() const;
  std::string ToJson() const;
};

/// Aligns the two runs' tasks by stable path identity and classifies
/// every divergence.
RunDiffReport DiffRuns(const RunLineage& a, const RunLineage& b);

/// Rebuilds a RunLineage from a run's exports: the lineage JSONL
/// (header + records) and, optionally, the span JSONL (outage
/// schedule). Lines it cannot attribute (truncation markers,
/// non-environment spans) are skipped.
Result<RunLineage> ParseRunExports(std::string_view lineage_jsonl,
                                   std::string_view spans_jsonl,
                                   std::string label);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_RUNDIFF_H_
