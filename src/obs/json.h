#ifndef BIOPERA_OBS_JSON_H_
#define BIOPERA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace biopera::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters; non-ASCII bytes pass through as
/// UTF-8). Shared by every JSON exporter — trace JSONL, span JSONL,
/// Chrome trace, run report, lineage and run-diff — so all artifacts
/// escape identically.
std::string JsonEscape(std::string_view s);

/// `s` escaped and wrapped in double quotes — a complete JSON string
/// literal.
std::string JsonQuote(std::string_view s);

/// Inverse of JsonEscape: decodes the contents of a JSON string literal
/// (without its surrounding quotes). Fails on truncated or malformed
/// escape sequences. `\uXXXX` escapes decode to UTF-8 for XXXX <= 0x7ff
/// (controls and Latin-1 are all the exporters emit); surrogate pairs
/// are rejected.
Result<std::string> JsonUnescape(std::string_view s);

/// Escapes one CSV field per RFC 4180: returned verbatim unless it
/// contains a comma, quote or newline, in which case it is quoted with
/// internal quotes doubled. Used by the timeline exporter so hostile
/// task/node names cannot break the column structure.
std::string CsvField(std::string_view s);

/// FNV-1a 64-bit hash — the content digest used by lineage output
/// descriptors (stable across platforms, cheap, and good enough to
/// detect divergent match sets).
uint64_t Fnv1a64(std::string_view s);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_JSON_H_
