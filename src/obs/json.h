#ifndef BIOPERA_OBS_JSON_H_
#define BIOPERA_OBS_JSON_H_

#include <string>
#include <string_view>

namespace biopera::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the trace and span
/// exporters so every JSON artifact escapes identically.
std::string JsonEscape(std::string_view s);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_JSON_H_
