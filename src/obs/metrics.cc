#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace biopera::obs {

namespace {

/// Shortest round-trip-safe rendering; integers print without exponent so
/// counters read naturally in exports.
std::string FormatNumber(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

}  // namespace

std::string MetricKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ",";
    first = false;
    key += k + "=" + v;
  }
  key += "}";
  return key;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const HistogramOptions& options) {
  bounds_.reserve(options.num_buckets);
  double bound = options.first_bound;
  for (size_t i = 0; i < options.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.growth;
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  double target = (p / 100.0) * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      if (i >= bounds_.size()) {
        // Overflow bucket: it has no upper bound, so interpolation is
        // undefined. Report the largest finite bound — every sample in
        // this bucket is at least that large (0 for a bucketless layout).
        return bounds_.empty() ? 0 : bounds_.back();
      }
      double lo = i == 0 ? 0 : bounds_[i - 1];
      double hi = bounds_[i];
      double frac = (target - before) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& key) const {
  for (const Entry& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries) {
    if (!first) out += ",";
    first = false;
    out += "\"" + e.key + "\":";
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out += FormatNumber(e.value);
        break;
      case Kind::kHistogram: {
        out += "{\"count\":" + FormatNumber(static_cast<double>(e.count)) +
               ",\"sum\":" + FormatNumber(e.sum) + ",\"buckets\":[";
        for (size_t i = 0; i < e.buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += StrFormat("%llu",
                           static_cast<unsigned long long>(e.buckets[i]));
        }
        out += "],\"bounds\":[";
        for (size_t i = 0; i < e.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += FormatNumber(e.bounds[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::ToText(std::string_view prefix) const {
  std::string out;
  for (const Entry& e : entries) {
    if (!prefix.empty() &&
        std::string_view(e.key).substr(0, prefix.size()) != prefix) {
      continue;
    }
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        out += StrFormat("%-48s %s\n", e.key.c_str(),
                         FormatNumber(e.value).c_str());
        break;
      case Kind::kHistogram:
        out += StrFormat("%-48s count=%llu sum=%s\n", e.key.c_str(),
                         static_cast<unsigned long long>(e.count),
                         FormatNumber(e.sum).c_str());
        break;
    }
  }
  if (out.empty()) {
    return prefix.empty()
               ? "(no metrics)\n"
               : "(no metrics matching " + std::string(prefix) + ")\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  auto& slot = counters_[MetricKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  auto& slot = gauges_[MetricKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  const HistogramOptions& options) {
  auto& slot = histograms_[MetricKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snap;
  // One pass per kind; a final sort merges the three key ranges.
  for (const auto& [key, counter] : counters_) {
    MetricsSnapshot::Entry e;
    e.key = key;
    e.kind = MetricsSnapshot::Kind::kCounter;
    e.value = static_cast<double>(counter->value());
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricsSnapshot::Entry e;
    e.key = key;
    e.kind = MetricsSnapshot::Kind::kGauge;
    e.value = gauge->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [key, hist] : histograms_) {
    MetricsSnapshot::Entry e;
    e.key = key;
    e.kind = MetricsSnapshot::Kind::kHistogram;
    e.count = hist->count();
    e.sum = hist->sum();
    e.bounds = hist->bounds();
    e.buckets = hist->buckets();
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricsSnapshot::Entry& a,
               const MetricsSnapshot::Entry& b) { return a.key < b.key; });
  return snap;
}

void Registry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

}  // namespace biopera::obs
