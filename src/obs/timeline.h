#ifndef BIOPERA_OBS_TIMELINE_H_
#define BIOPERA_OBS_TIMELINE_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "obs/trace.h"

namespace biopera::obs {

/// One bar of a per-node Gantt chart: a task occupying a node from
/// dispatch until its terminal report (the paper's Figure 3 task view).
struct TimelineInterval {
  std::string node;
  std::string instance;
  std::string task;
  TimePoint start;
  TimePoint end;
  /// "completed", "failed", "timed_out", "migrated", "node_down",
  /// "killed" (server crash), or "open" (still running when the trace
  /// was exported).
  std::string outcome;
};

/// Reconstructs execution intervals from the buffered trace alone, by
/// pairing each task_dispatched event with the next terminal event of the
/// same instance/task on the same node. `node` filters to one node
/// ("" keeps all). Intervals are ordered by start time, then node.
std::vector<TimelineInterval> BuildTimeline(const TraceSink& trace,
                                            const std::string& node = "");

/// CSV rendering: header + one row per interval. A nonzero
/// `dropped_events` (the source sink's `dropped()`) adds a truncation
/// comment after the header, marking that early intervals may be missing.
std::string TimelineCsv(const std::vector<TimelineInterval>& intervals,
                        uint64_t dropped_events = 0);

/// Tasks concurrently running on `node` over time (seconds) — the shape
/// of the paper's Figure 5/6 utilization curves, derived from the trace.
/// Empty `node` aggregates the whole cluster.
StepSeries BusyCurve(const std::vector<TimelineInterval>& intervals,
                     const std::string& node = "");

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_TIMELINE_H_
