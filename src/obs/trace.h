#ifndef BIOPERA_OBS_TRACE_H_
#define BIOPERA_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace biopera::obs {

/// Typed events on the experiment timeline. Everything the paper's status
/// views (§3.4, Figures 3/5/6) display is reconstructible from these.
enum class EventType {
  kTaskDispatched,
  kTaskCompleted,
  kTaskFailed,
  kJobTimedOut,
  kMigrationKilled,
  kNodeDown,
  kNodeUp,
  kCheckpointTaken,
  kRecoveryReplayed,
  kInstanceStateChanged,
  kServerCrashed,
  kServerStarted,
  kStoreDegraded,
  kStoreRecovered,
  kStoreScrubbed,
  kServerFenced,
  kAnnotation,
  kNodeSuspected,   // lease detector: heartbeats went missing
  kNodeCondemned,   // suspicion grace expired; jobs re-scheduled
  kNodeReconciled,  // a suspected/condemned node heartbeated again
  kSloStateChanged,  // a declarative SLO rule crossed a health threshold
};

std::string_view EventTypeName(EventType type);
Result<EventType> EventTypeFromName(std::string_view name);

/// One structured trace event. The id fields are empty when not
/// applicable; `attrs` carries event-specific detail in insertion order
/// (kept as a vector so exports stay byte-deterministic).
struct TraceRecord {
  uint64_t seq = 0;
  TimePoint time;
  EventType type = EventType::kAnnotation;
  std::string instance;
  std::string task;
  std::string node;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Single-line JSON object (one JSONL row).
  std::string ToJson() const;
};

/// Bounded in-memory event buffer. Emission is O(1); when the ring is
/// full the oldest event is overwritten and `dropped()` grows — a
/// month-long run can trace forever at constant memory.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 65536);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Events are stamped with `clock->Now()` (virtual time when the clock
  /// is a Simulator); TimePoint::Zero() until a clock is registered.
  void SetClock(const Clock* clock) { clock_ = clock; }
  bool has_clock() const { return clock_ != nullptr; }

  /// Mirrors `dropped()` into a registry counter
  /// (`trace_events_dropped_total`), incremented as overwrites happen.
  void SetDropCounter(Counter* counter) { drop_counter_ = counter; }

  void Emit(EventType type, std::string instance = "", std::string task = "",
            std::string node = "",
            std::vector<std::pair<std::string, std::string>> attrs = {});

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events emitted since construction (including overwritten ones).
  uint64_t total_emitted() const { return next_seq_; }
  /// Events lost to ring overwrites.
  uint64_t dropped() const;

  /// Visits buffered events oldest-first.
  void ForEach(const std::function<void(const TraceRecord&)>& fn) const;
  /// The most recent `n` events (oldest of those first), optionally
  /// filtered by instance id ("" matches all).
  std::vector<TraceRecord> Tail(size_t n,
                                const std::string& instance = "") const;

  /// One JSON object per line, oldest event first. When the ring has
  /// wrapped, the first line is a truncation marker recording how many
  /// events were overwritten — a wrapped ring never exports silently as
  /// if it were complete.
  std::string ExportJsonl() const;

  void Clear();

 private:
  const Clock* clock_ = nullptr;
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  uint64_t next_seq_ = 0;
  Counter* drop_counter_ = nullptr;
};

/// The observability context one experiment shares across its engine,
/// cluster model, store and monitors: a metric registry, a trace sink
/// and a span sink, all stamped from the same (virtual) clock.
struct Observability {
  Registry metrics;
  TraceSink trace;
  SpanSink spans;

  explicit Observability(size_t trace_capacity = 65536,
                         size_t span_capacity = 1 << 20)
      : trace(trace_capacity), spans(span_capacity) {
    trace.SetDropCounter(metrics.GetCounter("trace_events_dropped_total"));
  }

  void SetClock(const Clock* clock) {
    trace.SetClock(clock);
    spans.SetClock(clock);
  }
};

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_TRACE_H_
