#include "obs/quantile.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace biopera::obs {

StreamingQuantile::StreamingQuantile(double quantile)
    : q_(std::min(std::max(quantile, 0.0), 1.0)) {}

void StreamingQuantile::Observe(double value) {
  if (count_ < 5) {
    height_[count_++] = value;
    if (count_ == 5) {
      std::sort(height_, height_ + 5);
      desired_[0] = 1;
      desired_[1] = 1 + 2 * q_;
      desired_[2] = 1 + 4 * q_;
      desired_[3] = 3 + 2 * q_;
      desired_[4] = 5;
      rate_[0] = 0;
      rate_[1] = q_ / 2;
      rate_[2] = q_;
      rate_[3] = (1 + q_) / 2;
      rate_[4] = 1;
    }
    return;
  }
  ++count_;

  // Locate the marker cell the observation falls into, extending the
  // extreme markers when it lands outside them.
  int cell;
  if (value < height_[0]) {
    height_[0] = value;
    cell = 0;
  } else if (value >= height_[4]) {
    height_[4] = std::max(height_[4], value);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= height_[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) pos_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += rate_[i];

  // Nudge the middle markers toward their desired positions: parabolic
  // (P-square) prediction, clamped to stay monotone, else linear.
  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - pos_[i];
    if ((d >= 1 && pos_[i + 1] - pos_[i] > 1) ||
        (d <= -1 && pos_[i - 1] - pos_[i] < -1)) {
      double s = d >= 0 ? 1 : -1;
      double parabolic =
          height_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + s) * (height_[i + 1] - height_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - s) * (height_[i] - height_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (height_[i - 1] < parabolic && parabolic < height_[i + 1]) {
        height_[i] = parabolic;
      } else {
        int j = i + static_cast<int>(s);
        height_[i] += s * (height_[j] - height_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double StreamingQuantile::Estimate() const {
  if (count_ == 0) return 0;
  if (count_ <= 5) {
    double sorted[5];
    std::copy(height_, height_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    // Exact order statistic at the requested quantile (nearest-rank).
    double rank = std::ceil(q_ * static_cast<double>(count_));
    int index = static_cast<int>(std::max(rank, 1.0)) - 1;
    return sorted[std::min<int>(index, static_cast<int>(count_) - 1)];
  }
  return height_[2];
}

double StreamingQuantile::min() const {
  if (count_ == 0) return 0;
  if (count_ < 5) return *std::min_element(height_, height_ + count_);
  return height_[0];
}

double StreamingQuantile::max() const {
  if (count_ == 0) return 0;
  if (count_ < 5) return *std::max_element(height_, height_ + count_);
  return height_[4];
}

void QuantileSensor::Observe(double value) {
  p50.Observe(value);
  p90.Observe(value);
  p99.Observe(value);
  if (count == 0 || value < min) min = value;
  if (count == 0 || value > max) max = value;
  ++count;
  sum += value;
}

std::string QuantileSensor::ToRow(const std::string& label) const {
  return StrFormat(
      "%s  n=%llu  mean=%.3f  p50=%.3f  p90=%.3f  p99=%.3f  max=%.3f",
      label.c_str(), static_cast<unsigned long long>(count), mean(),
      p50.Estimate(), p90.Estimate(), p99.Estimate(), max);
}

}  // namespace biopera::obs
