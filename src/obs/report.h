#ifndef BIOPERA_OBS_REPORT_H_
#define BIOPERA_OBS_REPORT_H_

#include <cstdint>
#include <string>

#include "common/time.h"
#include "obs/trace.h"

namespace biopera::obs {

/// Engine-side facts the report needs but the observability layer cannot
/// derive on its own: instance lifecycle state and the planner's
/// remaining-work estimate (the ETA numerator).
struct ReportInput {
  std::string instance;
  std::string state;             // "running", "done", "failed", ...
  uint64_t activities_done = 0;  // completed leaf activities
  uint64_t activities_total = 0;
  /// Remaining reference-CPU seconds of work, from the planner's
  /// per-activity cost model (0 when done or unknown).
  double remaining_work_seconds = 0;
  TimePoint now;
};

/// The console's `REPORT` view: progress %, an ETA from the planner's
/// remaining-work estimate divided by the run's historical effective
/// compute rate, the critical-path breakdown with its `top_k` longest
/// segments, and a per-node utilization table in the spirit of the
/// paper's Table 1. Ends with a truncation warning when the trace ring
/// wrapped or the span sink dropped spans.
std::string BuildRunReport(const ReportInput& input, const Observability& obs,
                           size_t top_k = 5);

/// `REPORT <id> --json`: the same numbers as BuildRunReport as one JSON
/// object (single line), so CI can trend ETA / utilization /
/// critical-path figures across runs without scraping the text view.
std::string BuildRunReportJson(const ReportInput& input,
                               const Observability& obs, size_t top_k = 5);

}  // namespace biopera::obs

#endif  // BIOPERA_OBS_REPORT_H_
