#include "obs/critical_path.h"

#include <algorithm>

#include "common/strings.h"

namespace biopera::obs {

namespace {

constexpr const char* kCategories[] = {"compute", "queue", "recovery",
                                       "migration", "store_stall"};

/// An overlay window that reclassifies waiting time spent inside it.
struct Overlay {
  TimePoint start;
  TimePoint end;
  const char* category;
};

/// A task attempt flattened for the backward walk. `end` is the effective
/// end: open attempts extend to the analysis horizon.
struct AttemptView {
  TimePoint start;
  TimePoint end;
  uint64_t id = 0;
  TimePoint job_start;
  bool has_job = false;
  uint64_t job_id = 0;
  std::string task;
  std::string node;
  const char* wait_category = "queue";
};

class Classifier {
 public:
  Classifier(std::vector<Overlay> overlays) : overlays_(std::move(overlays)) {
    for (const Overlay& o : overlays_) {
      boundaries_.push_back(o.start);
      boundaries_.push_back(o.end);
    }
    std::sort(boundaries_.begin(), boundaries_.end());
    boundaries_.erase(std::unique(boundaries_.begin(), boundaries_.end()),
                      boundaries_.end());
  }

  /// Splits [from, to) at overlay boundaries and appends one segment per
  /// homogeneous piece; pieces outside every overlay keep `base`.
  void Append(TimePoint from, TimePoint to, const char* base,
              CriticalPathReport* report) const {
    TimePoint t = from;
    while (t < to) {
      auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), t);
      TimePoint piece_end = it == boundaries_.end() || *it > to ? to : *it;
      CriticalPathSegment seg;
      seg.start = t;
      seg.end = piece_end;
      seg.category = At(t, base);
      report->segments.push_back(std::move(seg));
      t = piece_end;
    }
  }

 private:
  /// Overlays are listed in priority order (recovery before store stall).
  const char* At(TimePoint t, const char* base) const {
    for (const Overlay& o : overlays_) {
      if (o.start <= t && t < o.end) return o.category;
    }
    return base;
  }

  std::vector<Overlay> overlays_;
  std::vector<TimePoint> boundaries_;
};

}  // namespace

Duration CriticalPathReport::attributed() const {
  Duration total = Duration::Zero();
  for (const CriticalPathSegment& seg : segments) total += seg.duration();
  return total;
}

std::string CriticalPathReport::ToText(size_t top_k) const {
  if (!found) return "(no instance span for " + instance + ")\n";
  Duration span = makespan();
  std::string out = StrFormat("critical path of %s: makespan %s\n",
                              instance.c_str(), span.ToString().c_str());
  for (const char* category : kCategories) {
    auto it = totals.find(category);
    Duration d = it == totals.end() ? Duration::Zero() : it->second;
    double pct = span.IsZero() ? 0.0 : 100.0 * (d / span);
    out += StrFormat("  %-12s %12s  %5.1f%%\n", category,
                     d.ToString().c_str(), pct);
  }
  std::vector<const CriticalPathSegment*> ranked;
  ranked.reserve(segments.size());
  for (const CriticalPathSegment& seg : segments) ranked.push_back(&seg);
  std::sort(ranked.begin(), ranked.end(),
            [](const CriticalPathSegment* a, const CriticalPathSegment* b) {
              if (a->duration() != b->duration()) {
                return a->duration() > b->duration();
              }
              return a->start < b->start;
            });
  if (ranked.size() > top_k) ranked.resize(top_k);
  if (!ranked.empty()) out += "top segments:\n";
  for (size_t i = 0; i < ranked.size(); ++i) {
    const CriticalPathSegment& seg = *ranked[i];
    std::string what = seg.task.empty() ? std::string("-") : seg.task;
    if (!seg.node.empty()) what += "@" + seg.node;
    out += StrFormat("  %2d. %12s  %-11s %s  [%s .. %s]\n",
                     static_cast<int>(i) + 1, seg.duration().ToString().c_str(),
                     seg.category.c_str(), what.c_str(),
                     seg.start.ToString().c_str(), seg.end.ToString().c_str());
  }
  return out;
}

CriticalPathReport AnalyzeCriticalPath(const SpanSink& spans,
                                       const std::string& instance) {
  CriticalPathReport report;
  report.instance = instance;

  // Latest instance span for this id; open spans (and their children)
  // extend to the horizon — the latest timestamp the sink has seen — so
  // a mid-run analysis still partitions [start, horizon] completely.
  const Span* inst = nullptr;
  TimePoint horizon = TimePoint::Zero();
  spans.ForEach([&](const Span& span) {
    horizon = std::max(horizon, span.open ? span.start : span.end);
    if (span.kind == SpanKind::kInstance &&
        (span.instance == instance || span.name == instance)) {
      inst = &span;
    }
  });
  if (inst == nullptr) return report;
  report.found = true;
  report.start = inst->start;
  report.end = inst->open ? std::max(horizon, inst->start) : inst->end;

  std::vector<AttemptView> attempts;
  std::vector<Overlay> recovery_windows;
  std::vector<Overlay> stall_windows;
  spans.ForEach([&](const Span& span) {
    TimePoint effective_end = span.open ? horizon : span.end;
    switch (span.kind) {
      case SpanKind::kAttempt: {
        if (span.parent != inst->id) break;
        AttemptView view;
        view.start = span.start;
        view.end = effective_end;
        view.id = span.id;
        view.task = span.task;
        const Span* prior = spans.Find(span.link);
        if (prior != nullptr && prior->outcome == "migrated") {
          view.wait_category = "migration";
        }
        attempts.push_back(std::move(view));
        break;
      }
      case SpanKind::kJob: {
        // Jobs arrive after their attempt (ids are ordered), so the
        // attempt is already in the list.
        for (size_t i = attempts.size(); i > 0; --i) {
          AttemptView& view = attempts[i - 1];
          if (view.id == span.parent) {
            view.has_job = true;
            view.job_start = span.start;
            view.job_id = span.id;
            view.node = span.node;
            break;
          }
        }
        break;
      }
      case SpanKind::kServerDown:
        recovery_windows.push_back({span.start, effective_end, "recovery"});
        break;
      case SpanKind::kStoreDegraded:
        stall_windows.push_back({span.start, effective_end, "store_stall"});
        break;
      default:
        break;
    }
  });

  // Priority: a server-down window explains waiting even if the store
  // was also degraded at the time.
  std::vector<Overlay> overlays = std::move(recovery_windows);
  overlays.insert(overlays.end(), stall_windows.begin(), stall_windows.end());
  Classifier classifier(std::move(overlays));

  // Backward walk: at every cursor the blocking attempt is the one with
  // the latest effective end not after the cursor. Sorting by end (then
  // start, then id) descending lets a single monotone pointer find it.
  std::sort(attempts.begin(), attempts.end(),
            [](const AttemptView& a, const AttemptView& b) {
              if (a.end != b.end) return a.end > b.end;
              if (a.start != b.start) return a.start > b.start;
              return a.id > b.id;
            });
  TimePoint cursor = report.end;
  size_t i = 0;
  while (cursor > report.start) {
    while (i < attempts.size() &&
           (attempts[i].end > cursor || attempts[i].start >= cursor ||
            attempts[i].end <= report.start)) {
      ++i;
    }
    if (i == attempts.size()) {
      classifier.Append(report.start, cursor, "queue", &report);
      break;
    }
    const AttemptView& blocking = attempts[i++];
    if (blocking.end < cursor) {
      classifier.Append(blocking.end, cursor, "queue", &report);
    }
    TimePoint hi = std::min(blocking.end, cursor);
    TimePoint lo = std::max(blocking.start, report.start);
    TimePoint job_start =
        blocking.has_job ? std::clamp(blocking.job_start, lo, hi) : hi;
    if (job_start < hi) {
      CriticalPathSegment seg;
      seg.start = job_start;
      seg.end = hi;
      seg.category = "compute";
      seg.span_id = blocking.job_id;
      seg.task = blocking.task;
      seg.node = blocking.node;
      report.segments.push_back(std::move(seg));
    }
    classifier.Append(lo, job_start, blocking.wait_category, &report);
    cursor = lo;
  }

  // The walk built segments back-to-front; restore timeline order and
  // total per category.
  std::sort(report.segments.begin(), report.segments.end(),
            [](const CriticalPathSegment& a, const CriticalPathSegment& b) {
              return a.start < b.start;
            });
  for (const CriticalPathSegment& seg : report.segments) {
    report.totals[seg.category] += seg.duration();
  }
  return report;
}

}  // namespace biopera::obs
