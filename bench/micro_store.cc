// Microbenchmarks of the persistent record store: WAL append/commit
// latency (every navigator transition pays one), checkpoint cost, and
// recovery time as a function of log length. These bound how much
// dependability overhead BioOpera adds per activity.
//
// BM_WalCommit models the engine's default commit pipeline: commits
// coalesce inside a commit group and hit the WAL at a flush barrier
// every kGroupSize commits (one simulator pump ~ one group).
// BM_DurableCommit is the ungrouped variant — one WAL append + flush per
// commit — i.e. the pre-group-commit behavior.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "common/strings.h"
#include "store/record_store.h"

namespace biopera {
namespace {

// Commits per flush barrier in BM_WalCommit; roughly what one dispatch
// pump of a busy engine coalesces.
constexpr int kGroupSize = 16;

// The commit benches overwrite a bounded working set of task records,
// which is what the engine actually does: a task's record is rewritten on
// every state transition (ready → running → done), it is not appended
// once. Keys are pre-built so the loop times the store, not StrFormat.
constexpr int kWorkingSet = 4096;

std::vector<std::string> MakeTaskKeys() {
  std::vector<std::string> keys;
  keys.reserve(kWorkingSet);
  for (int k = 0; k < kWorkingSet; ++k) {
    keys.push_back(StrFormat("inst-007/task/%04d/state", k));
  }
  return keys;
}

std::string FreshDir() {
  static int counter = 0;
  auto dir = std::filesystem::temp_directory_path() /
             StrFormat("biopera_microstore_%d_%d", ++counter, ::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// The commit benches measure WAL latency, not checkpoint cadence: disable
// the auto-checkpoint policy so the growing table never snapshots mid-run.
void DisableAutoCheckpoint(RecordStore* store) {
  RecordStore::CheckpointPolicy policy;
  policy.wal_bytes = 0;
  policy.every_commits = 0;
  store->SetCheckpointPolicy(policy);
}

void BM_WalCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  DisableAutoCheckpoint(store->get());
  const std::vector<std::string> keys = MakeTaskKeys();
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (const std::string& key : keys) (*store)->Put("instance", key, value);
  uint64_t i = 0;
  std::optional<RecordStore::CommitScope> group;
  int in_group = 0;
  for (auto _ : state) {
    if (!group.has_value()) {
      group.emplace(store->get());
      in_group = 0;
    }
    WriteBatch batch;
    batch.Put("instance", keys[i++ % kWorkingSet], value);
    benchmark::DoNotOptimize((*store)->Apply(batch));
    if (++in_group == kGroupSize) group.reset();  // flush barrier
  }
  group.reset();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["group"] = kGroupSize;
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalCommit)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DurableCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  DisableAutoCheckpoint(store->get());
  const std::vector<std::string> keys = MakeTaskKeys();
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (const std::string& key : keys) (*store)->Put("instance", key, value);
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    batch.Put("instance", keys[i++ % kWorkingSet], value);
    benchmark::DoNotOptimize((*store)->Apply(batch));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_DurableCommit)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BatchedCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  DisableAutoCheckpoint(store->get());
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int k = 0; k < state.range(0); ++k) {
      batch.Put("instance", StrFormat("rec/%llu", (unsigned long long)i++),
                "value");
    }
    benchmark::DoNotOptimize((*store)->Apply(batch));
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BatchedCommit)->Arg(1)->Arg(16)->Arg(256);

void BM_Checkpoint(benchmark::State& state) {
  // A large, quiescent instance table plus a small hot "meta" table: each
  // iteration dirties one record and checkpoints. Incremental checkpoints
  // serialize only the dirty table into a delta segment (with a periodic
  // full compaction folded into the mean).
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  DisableAutoCheckpoint(store->get());
  for (int k = 0; k < state.range(0); ++k) {
    (*store)->Put("instance", StrFormat("rec/%06d", k), "some value text");
  }
  uint64_t i = 0;
  for (auto _ : state) {
    (*store)->Put("meta", "cursor",
                  StrFormat("%llu", (unsigned long long)i++));
    benchmark::DoNotOptimize((*store)->Checkpoint());
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Arg(1000)->Arg(10000);

void BM_CheckpointFull(benchmark::State& state) {
  // The pre-incremental behavior (and the compaction cost): every
  // checkpoint rewrites all tables. Dirtying a record in the big table
  // forces the full serialization each iteration.
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  RecordStore::CheckpointPolicy policy;
  policy.wal_bytes = 0;
  policy.compact_after_segments = 1;  // always compact = always full
  (*store)->SetCheckpointPolicy(policy);
  for (int k = 0; k < state.range(0); ++k) {
    (*store)->Put("instance", StrFormat("rec/%06d", k), "some value text");
  }
  uint64_t i = 0;
  for (auto _ : state) {
    (*store)->Put("instance", "rec/000000",
                  StrFormat("%llu", (unsigned long long)i++));
    benchmark::DoNotOptimize((*store)->Checkpoint());
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointFull)->Arg(1000)->Arg(10000);

void BM_RecoveryReplay(benchmark::State& state) {
  // Opening a store whose state lives entirely in the WAL measures replay.
  std::string dir = FreshDir();
  {
    auto store = RecordStore::Open(dir);
    if (!store.ok()) state.SkipWithError("open failed");
    DisableAutoCheckpoint(store->get());
    for (int k = 0; k < state.range(0); ++k) {
      (*store)->Put("instance", StrFormat("rec/%06d", k),
                    "task state record with a plausible payload size......");
    }
  }
  for (auto _ : state) {
    auto reopened = RecordStore::Open(dir);
    benchmark::DoNotOptimize(reopened);
  }
  state.counters["wal_records"] = static_cast<double>(state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace biopera

int main(int argc, char** argv) {
  return biopera::bench::RunBenchmarkMain(argc, argv, "BENCH_store.json");
}
