// Microbenchmarks of the persistent record store: WAL append/commit
// latency (every navigator transition pays one), checkpoint cost, and
// recovery time as a function of log length. These bound how much
// dependability overhead BioOpera adds per activity.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "common/strings.h"
#include "store/record_store.h"

namespace biopera {
namespace {

std::string FreshDir() {
  static int counter = 0;
  auto dir = std::filesystem::temp_directory_path() /
             StrFormat("biopera_microstore_%d_%d", ++counter, ::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void BM_WalCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    batch.Put("instance", StrFormat("task/%llu", (unsigned long long)i++),
              value);
    benchmark::DoNotOptimize((*store)->Apply(batch));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalCommit)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BatchedCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  uint64_t i = 0;
  for (auto _ : state) {
    WriteBatch batch;
    for (int k = 0; k < state.range(0); ++k) {
      batch.Put("instance", StrFormat("rec/%llu", (unsigned long long)i++),
                "value");
    }
    benchmark::DoNotOptimize((*store)->Apply(batch));
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BatchedCommit)->Arg(1)->Arg(16)->Arg(256);

void BM_Checkpoint(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = RecordStore::Open(dir);
  if (!store.ok()) state.SkipWithError("open failed");
  for (int k = 0; k < state.range(0); ++k) {
    (*store)->Put("instance", StrFormat("rec/%06d", k), "some value text");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Checkpoint());
  }
  state.counters["records"] = static_cast<double>(state.range(0));
  store->reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Arg(1000)->Arg(10000);

void BM_RecoveryReplay(benchmark::State& state) {
  // Opening a store whose state lives entirely in the WAL measures replay.
  std::string dir = FreshDir();
  {
    auto store = RecordStore::Open(dir);
    if (!store.ok()) state.SkipWithError("open failed");
    for (int k = 0; k < state.range(0); ++k) {
      (*store)->Put("instance", StrFormat("rec/%06d", k),
                    "task state record with a plausible payload size......");
    }
  }
  for (auto _ : state) {
    auto reopened = RecordStore::Open(dir);
    benchmark::DoNotOptimize(reopened);
  }
  state.counters["wal_records"] = static_cast<double>(state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace biopera

BENCHMARK_MAIN();
