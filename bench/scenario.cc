#include "bench/scenario.h"

#include <cstdio>

#include "cluster/external_load.h"
#include "cluster/failure.h"
#include "common/strings.h"
#include "common/table.h"
#include "darwin/generator.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "workloads/allvsall.h"

namespace biopera::bench {

namespace {

/// Size of the synthetic Swiss-Prot release 38 stand-in. SP38 has ~80,000
/// entries; with the calibrated cost model this yields several hundred
/// reference-CPU-days of work, matching the month-scale runs of §5.4/5.5.
constexpr size_t kSp38Entries = 80000;
constexpr int kNumTeus = 250;  // §5.3: the granularity chosen for the run

std::shared_ptr<workloads::AllVsAllContext> MakeSp38Context(uint64_t seed) {
  Rng rng(seed);
  darwin::GeneratorOptions gen;
  gen.num_sequences = kSp38Entries;
  darwin::DatasetMeta meta = darwin::GenerateDatasetMeta(gen, &rng);
  return workloads::MakeSyntheticContext(std::move(meta.lengths),
                                         std::move(meta.family_of));
}

std::string StartAllVsAll(BenchWorld* world,
                          std::shared_ptr<workloads::AllVsAllContext> ctx) {
  if (!workloads::RegisterAllVsAllActivities(&world->registry, ctx).ok()) {
    std::abort();
  }
  if (!world->engine->Startup().ok()) std::abort();
  world->engine->RegisterTemplate(workloads::BuildAllVsAllProcess());
  world->engine->RegisterTemplate(workloads::BuildAlignPartitionProcess());
  ocr::Value::Map args;
  args["db_name"] = ocr::Value("SP38-synthetic");
  args["num_teus"] = ocr::Value(kNumTeus);
  auto id = world->engine->StartProcess("all_vs_all", args);
  if (!id.ok()) {
    std::fprintf(stderr, "start failed: %s\n", id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

/// Runs until the instance completes or `max_days` of virtual time pass.
void RunToCompletion(BenchWorld* world, const std::string& id,
                     double max_days) {
  while (world->sim.Now().SinceEpoch().ToDays() < max_days) {
    world->sim.RunFor(Duration::Hours(6));
    auto state = world->engine->GetInstanceState(id);
    if (state.ok() && *state == core::InstanceState::kDone) break;
  }
}

ScenarioResult Collect(BenchWorld* world, const std::string& id,
                       int manual_interventions) {
  ScenarioResult result;
  auto summary = world->engine->Summary(id);
  if (summary.ok()) {
    result.summary = *summary;
    result.completed = summary->state == core::InstanceState::kDone;
    result.wall_days = result.summary.stats.WallTime().ToDays();
  }
  result.availability = world->cluster->AvailabilitySeries();
  result.utilization = world->cluster->UtilizationSeries();
  result.events = world->cluster->Events();
  core::Engine::MonitoringStats mon = world->engine->GetMonitoringStats();
  result.monitor_samples = mon.samples_taken;
  result.monitor_reports = mon.reports_sent;
  result.max_cpus = static_cast<int>(result.availability.MaxOver(0, 1e9));
  result.manual_interventions = manual_interventions;
  result.metrics_text = world->obs.metrics.Snapshot().ToText();
  result.trace_jsonl = world->obs.trace.ExportJsonl();
  result.timeline_csv = obs::TimelineCsv(
      obs::BuildTimeline(world->obs.trace, ""), world->obs.trace.dropped());
  result.spans_jsonl = world->obs.spans.ExportJsonl();
  result.chrome_json = world->obs.spans.ExportChromeTrace();
  auto lineage = world->engine->ExportLineageJsonl(id);
  if (lineage.ok()) result.lineage_jsonl = *lineage;
  obs::ReportInput report_input;
  report_input.instance = id;
  if (summary.ok()) {
    report_input.state =
        std::string(core::InstanceStateName(summary->state));
    report_input.activities_done = summary->tasks_done;
    report_input.activities_total = summary->tasks_total;
  }
  auto remaining = world->engine->EstimateRemainingWork(id);
  if (remaining.ok()) {
    report_input.remaining_work_seconds = remaining->ToSeconds();
  }
  report_input.now = world->sim.Now();
  result.report_text = obs::BuildRunReport(report_input, world->obs);
  result.critical_path = obs::AnalyzeCriticalPath(world->obs.spans, id);
  return result;
}

}  // namespace

ScenarioResult RunSharedClusterScenario(uint64_t seed,
                                        Duration cluster_outage_shift) {
  core::EngineOptions options;
  options.dispatch_retry = Duration::Minutes(10);
  options.checkpoint_every_commits = 5000;
  // The lineage header names the run's seed; the least_loaded policy never
  // draws from the engine rng, so this changes no scheduling decision.
  options.seed = seed;
  BenchWorld world(options);
  AddLinneusCluster(world.cluster.get());
  AddIkSunCluster(world.cluster.get(), /*nodes=*/2);

  auto ctx = MakeSp38Context(seed);
  Rng env_rng(seed ^ 0xfeedULL);

  // Other users of the shared cluster: episodes that often fill entire
  // machines (BioOpera runs in nice mode and yields to them).
  cluster::ExternalLoadOptions load;
  load.mean_busy = Duration::Hours(14);
  load.mean_idle = Duration::Hours(9);
  load.fill_all_probability = 0.75;
  cluster::ExternalLoadGenerator external(world.cluster.get(), load,
                                          &env_rng);
  external.Start();

  std::string id = StartAllVsAll(&world, ctx);
  cluster::FailureInjector inject(world.cluster.get());
  core::Engine* engine = world.engine.get();
  cluster::ClusterSim* cluster = world.cluster.get();
  Simulator* sim = &world.sim;
  int manual = 0;

  // --- The ten events of Figure 5, scripted onto the timeline. ---
  // 1: another user requests exclusive access; the process is manually
  //    suspended (running jobs finish) and resumed 1.5 days later.
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(2.0),
                        "1: other user needs cluster (suspend)", [&, id] {
                          engine->Suspend(id);
                          ++manual;
                        });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(3.5), [&, id] {
    engine->Resume(id);
    ++manual;
  });
  // 2: heavy external load period.
  external.ScheduleHeavyPeriod(TimePoint::FromMicros(0) + Duration::Days(5),
                               Duration::Days(3),
                               "2: cluster busy with other jobs");
  // 3: massive hardware failure of the whole cluster, 12 hours.
  inject.ScheduleClusterOutage(TimePoint::FromMicros(0) + Duration::Days(10) +
                                   cluster_outage_shift,
                               Duration::Hours(12), "3: cluster failure");
  // 4: the BioOpera server crashes; it recovers automatically 4 h later.
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(13),
                        "4: BioOpera server crash", [&] { engine->Crash(); });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(13) +
                      Duration::Hours(4),
                  [&] { engine->Startup(); });
  // 5/6: the process runs out of disk space; nobody notices for 1.5 days,
  //    then an operator fixes the storage and restarts the process. The
  //    shortage is injected at the filesystem (ENOSPC on every write), so
  //    the engine rides it out in degraded mode and resumes on its own;
  //    the operator restart covers activities that failed under event 5.
  inject.ScheduleDiskFullWindow(TimePoint::FromMicros(0) + Duration::Days(16),
                                Duration::Days(1.5), world.fault_fs.get(),
                                "5: disk space shortage");
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(17.5),
                        "6: storage fixed, process restarted", [&, id] {
                          engine->Restart(id);
                          ++manual;
                        });
  // 7: hardware failure of half the cluster for 8 hours.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(21), [&] {
    cluster->Annotate("7: hardware failure (half the nodes)");
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < nodes.size() / 2; ++i) {
      cluster->CrashNode(nodes[i].name);
    }
  });
  sim->ScheduleAt(
      TimePoint::FromMicros(0) + Duration::Days(21) + Duration::Hours(8),
      [&] {
        for (const auto& node : cluster->Nodes()) {
          cluster->RepairNode(node.name);
        }
      });
  // 8: another period of heavy external utilization.
  external.ScheduleHeavyPeriod(TimePoint::FromMicros(0) + Duration::Days(23),
                               Duration::Days(3.5),
                               "8: cluster busy with other jobs");
  // 9: some nodes unavailable (maintenance) for two days.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(28), [&] {
    cluster->Annotate("9: some nodes unavailable");
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < 6 && i < nodes.size(); ++i) {
      cluster->CrashNode(nodes[i].name);
    }
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(30), [&] {
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < 6 && i < nodes.size(); ++i) {
      cluster->RepairNode(nodes[i].name);
    }
  });
  // 10: two nodes drop off the network and their TEUs never report; the
  //     operator restarts the process, which immediately re-schedules them.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(32), [&] {
    cluster->Annotate("10: TEUs fail to report (software problem)");
    cluster->SetConnected("ik-sun0", false);
    cluster->SetConnected("ik-sun1", false);
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(33), [&, id] {
    engine->Restart(id);
    ++manual;
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(34), [&] {
    cluster->SetConnected("ik-sun0", true);
    cluster->SetConnected("ik-sun1", true);
  });

  RunToCompletion(&world, id, /*max_days=*/90);
  return Collect(&world, id, manual);
}

ScenarioResult RunNonSharedClusterScenario(uint64_t seed) {
  core::EngineOptions options;
  options.dispatch_retry = Duration::Minutes(10);
  options.checkpoint_every_commits = 5000;
  options.seed = seed;
  BenchWorld world(options);
  AddIkLinuxCluster(world.cluster.get(), /*cpus=*/1);

  auto ctx = MakeSp38Context(seed);
  std::string id = StartAllVsAll(&world, ctx);
  cluster::FailureInjector inject(world.cluster.get());
  core::Engine* engine = world.engine.get();
  int manual = 0;

  // Two planned network outages, each preceded by a manual suspend
  // (§5.5: "planned network outages that required to suspend the
  // execution of the process").
  for (double day : {9.0, 18.0}) {
    world.sim.ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(day),
                         [&, id] {
                           world.cluster->Annotate("planned network outage");
                           engine->Suspend(id);
                           ++manual;
                           world.cluster->SetAllConnected(false);
                         });
    world.sim.ScheduleAt(
        TimePoint::FromMicros(0) + Duration::Days(day) + Duration::Hours(10),
        [&, id] {
          world.cluster->SetAllConnected(true);
          engine->Resume(id);
          ++manual;
        });
  }
  // The OS/hardware upgrade: a second processor per node from day 25,
  // picked up by BioOpera without intervention (Figure 6).
  inject.ScheduleCpuUpgrade(TimePoint::FromMicros(0) + Duration::Days(25), 2,
                            "OS config change: 2nd processor per node");

  RunToCompletion(&world, id, /*max_days=*/90);
  return Collect(&world, id, manual);
}

std::string RenderLifecycle(const ScenarioResult& result, int height) {
  const double t1 = result.wall_days > 0
                        ? result.wall_days
                        : (result.availability.points().empty()
                               ? 1.0
                               : result.availability.points().back().t);
  const size_t width = 78;
  std::vector<double> avail = result.availability.Resample(0, t1, width);
  std::vector<double> util = result.utilization.Resample(0, t1, width);
  double y_max = result.max_cpus > 0 ? result.max_cpus : 1;
  std::string out = AsciiAreaChart(avail, util, y_max, height);
  out += StrFormat("       x-axis: 0 .. %.0f days\n", t1);
  if (!result.events.empty()) {
    out += "\nevents:\n";
    for (const auto& event : result.events) {
      out += StrFormat("  day %5.1f  %s\n",
                       event.time.SinceEpoch().ToDays(),
                       event.label.c_str());
    }
  }
  return out;
}

}  // namespace biopera::bench
