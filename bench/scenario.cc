#include "bench/scenario.h"

#include <cstdio>

#include "cluster/external_load.h"
#include "cluster/failure.h"
#include "common/strings.h"
#include "common/table.h"
#include "darwin/generator.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "workloads/allvsall.h"

namespace biopera::bench {

namespace {

/// Size of the synthetic Swiss-Prot release 38 stand-in. SP38 has ~80,000
/// entries; with the calibrated cost model this yields several hundred
/// reference-CPU-days of work, matching the month-scale runs of §5.4/5.5.
constexpr size_t kSp38Entries = 80000;
constexpr int kNumTeus = 250;  // §5.3: the granularity chosen for the run

std::shared_ptr<workloads::AllVsAllContext> MakeSp38Context(uint64_t seed) {
  Rng rng(seed);
  darwin::GeneratorOptions gen;
  gen.num_sequences = kSp38Entries;
  darwin::DatasetMeta meta = darwin::GenerateDatasetMeta(gen, &rng);
  return workloads::MakeSyntheticContext(std::move(meta.lengths),
                                         std::move(meta.family_of));
}

std::string StartAllVsAll(BenchWorld* world,
                          std::shared_ptr<workloads::AllVsAllContext> ctx) {
  if (!workloads::RegisterAllVsAllActivities(&world->registry, ctx).ok()) {
    std::abort();
  }
  if (!world->engine->Startup().ok()) std::abort();
  world->engine->RegisterTemplate(workloads::BuildAllVsAllProcess());
  world->engine->RegisterTemplate(workloads::BuildAlignPartitionProcess());
  ocr::Value::Map args;
  args["db_name"] = ocr::Value("SP38-synthetic");
  args["num_teus"] = ocr::Value(kNumTeus);
  auto id = world->engine->StartProcess("all_vs_all", args);
  if (!id.ok()) {
    std::fprintf(stderr, "start failed: %s\n", id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

/// Runs until the instance completes or `max_days` of virtual time pass.
void RunToCompletion(BenchWorld* world, const std::string& id,
                     double max_days) {
  while (world->sim.Now().SinceEpoch().ToDays() < max_days) {
    world->sim.RunFor(Duration::Hours(6));
    auto state = world->engine->GetInstanceState(id);
    if (state.ok() && *state == core::InstanceState::kDone) break;
  }
}

/// Lease-mode engine settings for a partition-storm run: death and
/// rebirth are detected from heartbeats (month-scale cadence, so the
/// heartbeat traffic stays proportionate to the run), and the job
/// watchdog backstops completions whose report the storm swallowed.
void ApplyStormEngineOptions(core::EngineOptions* options) {
  options->heartbeat_interval = Duration::Minutes(5);
  options->lease_misses_to_suspect = 3;
  // TEUs are day-scale: ride out the typical short partition (suspect,
  // reconcile) and condemn only the long tail, so rescheduling does not
  // dominate the storm run.
  options->lease_condemn_grace = Duration::Minutes(45);
  options->job_timeout_factor = 3.0;
}

/// Arms the storm: a steady message-fault profile on every link plus
/// random asymmetric per-link partitions and short link flaps for the
/// whole run. Both rngs must outlive the run (the partition/flap daemons
/// keep drawing from them).
void ArmPartitionStorm(BenchWorld* world, cluster::FailureInjector* inject,
                       Rng* fault_rng, Rng* env_rng) {
  comms::FaultProfile profile;
  profile.drop = 0.02;
  profile.dup = 0.03;
  profile.delay = 0.02;
  profile.reorder = 0.03;
  profile.delay_min = Duration::Seconds(5);
  profile.delay_max = Duration::Minutes(2);
  world->channel->SetRandomFaults(profile, fault_rng);
  inject->StartRandomPartitions(world->channel.get(), Duration::Hours(8),
                                Duration::Minutes(20), env_rng);
  inject->StartRandomFlaps(world->channel.get(), Duration::Hours(12),
                           Duration::Minutes(1), env_rng);
}

/// Heals the storm and drains: faults off, all links reconnected, every
/// node repaired, then up to 70 more days for the backlog. The storm's
/// stale load views leave the small clusters heavily oversubscribed
/// (day-scale jobs time-sharing a CPU at a fraction of their speed), so
/// the drained tail is long; a failed instance is restarted — the storm
/// can exhaust retry budgets.
void QuiesceAfterStorm(BenchWorld* world, cluster::FailureInjector* inject,
                       const std::string& id) {
  world->channel->StopRandomFaults();
  inject->StopRandomPartitions();
  inject->StopRandomFlaps();
  for (const auto& node : world->cluster->Nodes()) {
    world->cluster->RepairNode(node.name);
    world->channel->SetConnected(node.name, true);
  }
  for (int i = 0; i < 280; ++i) {
    world->sim.RunFor(Duration::Hours(6));
    auto state = world->engine->GetInstanceState(id);
    if (!state.ok()) break;
    if (*state == core::InstanceState::kDone) break;
    if (*state == core::InstanceState::kFailed) {
      (void)world->engine->Restart(id);
    }
  }
}

ScenarioResult Collect(BenchWorld* world, const std::string& id,
                       int manual_interventions) {
  ScenarioResult result;
  auto summary = world->engine->Summary(id);
  if (summary.ok()) {
    result.summary = *summary;
    result.completed = summary->state == core::InstanceState::kDone;
    result.wall_days = result.summary.stats.WallTime().ToDays();
  }
  result.availability = world->cluster->AvailabilitySeries();
  result.utilization = world->cluster->UtilizationSeries();
  result.events = world->cluster->Events();
  core::Engine::MonitoringStats mon = world->engine->GetMonitoringStats();
  result.monitor_samples = mon.samples_taken;
  result.monitor_reports = mon.reports_sent;
  result.max_cpus = static_cast<int>(result.availability.MaxOver(0, 1e9));
  result.manual_interventions = manual_interventions;
  obs::MetricsSnapshot snapshot = world->obs.metrics.Snapshot();
  result.metrics_text = snapshot.ToText();
  if (world->channel != nullptr) {
    auto metric = [&snapshot](const char* key) {
      const auto* entry = snapshot.Find(key);
      return entry != nullptr ? entry->value : 0.0;
    };
    result.comms.enabled = true;
    result.comms.faults_injected = world->channel->faults_injected();
    result.comms.nodes_suspected =
        metric("engine_comms_nodes_suspected_total");
    result.comms.nodes_condemned =
        metric("engine_comms_nodes_condemned_total");
    result.comms.nodes_reconciled =
        metric("engine_comms_nodes_reconciled_total");
    result.comms.reports_fenced = metric("engine_comms_reports_fenced_total");
    result.comms.reports_duplicate =
        metric("engine_comms_reports_duplicate_total");
    result.comms.kill_retries = metric("engine_comms_kill_retries_total");
    result.comms.kills_abandoned =
        metric("engine_comms_kills_abandoned_total");
  }
  result.trace_jsonl = world->obs.trace.ExportJsonl();
  result.timeline_csv = obs::TimelineCsv(
      obs::BuildTimeline(world->obs.trace, ""), world->obs.trace.dropped());
  result.spans_jsonl = world->obs.spans.ExportJsonl();
  result.chrome_json = world->obs.spans.ExportChromeTrace();
  auto lineage = world->engine->ExportLineageJsonl(id);
  if (lineage.ok()) result.lineage_jsonl = *lineage;
  obs::ReportInput report_input;
  report_input.instance = id;
  if (summary.ok()) {
    report_input.state =
        std::string(core::InstanceStateName(summary->state));
    report_input.activities_done = summary->tasks_done;
    report_input.activities_total = summary->tasks_total;
  }
  auto remaining = world->engine->EstimateRemainingWork(id);
  if (remaining.ok()) {
    report_input.remaining_work_seconds = remaining->ToSeconds();
  }
  report_input.now = world->sim.Now();
  result.report_text = obs::BuildRunReport(report_input, world->obs);
  result.critical_path = obs::AnalyzeCriticalPath(world->obs.spans, id);
  return result;
}

}  // namespace

ScenarioResult RunSharedClusterScenario(uint64_t seed,
                                        Duration cluster_outage_shift,
                                        bool partition_storm) {
  core::EngineOptions options;
  options.dispatch_retry = Duration::Minutes(10);
  options.checkpoint_every_commits = 5000;
  // The lineage header names the run's seed; the least_loaded policy never
  // draws from the engine rng, so this changes no scheduling decision.
  options.seed = seed;
  if (partition_storm) ApplyStormEngineOptions(&options);
  BenchWorld world(options, /*with_fault_channel=*/partition_storm);
  AddLinneusCluster(world.cluster.get());
  AddIkSunCluster(world.cluster.get(), /*nodes=*/2);

  auto ctx = MakeSp38Context(seed);
  Rng env_rng(seed ^ 0xfeedULL);
  Rng storm_fault_rng(seed ^ 0xfa17ULL);
  Rng storm_env_rng(seed ^ 0x5707ULL);

  // Other users of the shared cluster: episodes that often fill entire
  // machines (BioOpera runs in nice mode and yields to them).
  cluster::ExternalLoadOptions load;
  load.mean_busy = Duration::Hours(14);
  load.mean_idle = Duration::Hours(9);
  load.fill_all_probability = 0.75;
  cluster::ExternalLoadGenerator external(world.cluster.get(), load,
                                          &env_rng);
  external.Start();

  std::string id = StartAllVsAll(&world, ctx);
  cluster::FailureInjector inject(world.cluster.get());
  if (partition_storm) {
    ArmPartitionStorm(&world, &inject, &storm_fault_rng, &storm_env_rng);
  }
  core::Engine* engine = world.engine.get();
  cluster::ClusterSim* cluster = world.cluster.get();
  Simulator* sim = &world.sim;
  int manual = 0;

  // --- The ten events of Figure 5, scripted onto the timeline. ---
  // 1: another user requests exclusive access; the process is manually
  //    suspended (running jobs finish) and resumed 1.5 days later.
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(2.0),
                        "1: other user needs cluster (suspend)", [&, id] {
                          engine->Suspend(id);
                          ++manual;
                        });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(3.5), [&, id] {
    engine->Resume(id);
    ++manual;
  });
  // 2: heavy external load period.
  external.ScheduleHeavyPeriod(TimePoint::FromMicros(0) + Duration::Days(5),
                               Duration::Days(3),
                               "2: cluster busy with other jobs");
  // 3: massive hardware failure of the whole cluster, 12 hours.
  inject.ScheduleClusterOutage(TimePoint::FromMicros(0) + Duration::Days(10) +
                                   cluster_outage_shift,
                               Duration::Hours(12), "3: cluster failure");
  // 4: the BioOpera server crashes; it recovers automatically 4 h later.
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(13),
                        "4: BioOpera server crash", [&] { engine->Crash(); });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(13) +
                      Duration::Hours(4),
                  [&] { engine->Startup(); });
  // 5/6: the process runs out of disk space; nobody notices for 1.5 days,
  //    then an operator fixes the storage and restarts the process. The
  //    shortage is injected at the filesystem (ENOSPC on every write), so
  //    the engine rides it out in degraded mode and resumes on its own;
  //    the operator restart covers activities that failed under event 5.
  inject.ScheduleDiskFullWindow(TimePoint::FromMicros(0) + Duration::Days(16),
                                Duration::Days(1.5), world.fault_fs.get(),
                                "5: disk space shortage");
  inject.ScheduleAction(TimePoint::FromMicros(0) + Duration::Days(17.5),
                        "6: storage fixed, process restarted", [&, id] {
                          engine->Restart(id);
                          ++manual;
                        });
  // 7: hardware failure of half the cluster for 8 hours.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(21), [&] {
    cluster->Annotate("7: hardware failure (half the nodes)");
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < nodes.size() / 2; ++i) {
      cluster->CrashNode(nodes[i].name);
    }
  });
  sim->ScheduleAt(
      TimePoint::FromMicros(0) + Duration::Days(21) + Duration::Hours(8),
      [&] {
        for (const auto& node : cluster->Nodes()) {
          cluster->RepairNode(node.name);
        }
      });
  // 8: another period of heavy external utilization.
  external.ScheduleHeavyPeriod(TimePoint::FromMicros(0) + Duration::Days(23),
                               Duration::Days(3.5),
                               "8: cluster busy with other jobs");
  // 9: some nodes unavailable (maintenance) for two days.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(28), [&] {
    cluster->Annotate("9: some nodes unavailable");
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < 6 && i < nodes.size(); ++i) {
      cluster->CrashNode(nodes[i].name);
    }
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(30), [&] {
    auto nodes = cluster->Nodes();
    for (size_t i = 0; i < 6 && i < nodes.size(); ++i) {
      cluster->RepairNode(nodes[i].name);
    }
  });
  // 10: two nodes drop off the network and their TEUs never report; the
  //     operator restarts the process, which immediately re-schedules them.
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(32), [&] {
    cluster->Annotate("10: TEUs fail to report (software problem)");
    cluster->SetConnected("ik-sun0", false);
    cluster->SetConnected("ik-sun1", false);
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(33), [&, id] {
    engine->Restart(id);
    ++manual;
  });
  sim->ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(34), [&] {
    cluster->SetConnected("ik-sun0", true);
    cluster->SetConnected("ik-sun1", true);
  });

  RunToCompletion(&world, id, /*max_days=*/partition_storm ? 120 : 90);
  if (partition_storm) QuiesceAfterStorm(&world, &inject, id);
  return Collect(&world, id, manual);
}

ScenarioResult RunNonSharedClusterScenario(uint64_t seed,
                                           bool partition_storm) {
  core::EngineOptions options;
  options.dispatch_retry = Duration::Minutes(10);
  options.checkpoint_every_commits = 5000;
  options.seed = seed;
  if (partition_storm) ApplyStormEngineOptions(&options);
  BenchWorld world(options, /*with_fault_channel=*/partition_storm);
  AddIkLinuxCluster(world.cluster.get(), /*cpus=*/1);

  auto ctx = MakeSp38Context(seed);
  Rng storm_fault_rng(seed ^ 0xfa17ULL);
  Rng storm_env_rng(seed ^ 0x5707ULL);
  std::string id = StartAllVsAll(&world, ctx);
  cluster::FailureInjector inject(world.cluster.get());
  if (partition_storm) {
    ArmPartitionStorm(&world, &inject, &storm_fault_rng, &storm_env_rng);
  }
  core::Engine* engine = world.engine.get();
  int manual = 0;

  // Two planned network outages, each preceded by a manual suspend
  // (§5.5: "planned network outages that required to suspend the
  // execution of the process").
  for (double day : {9.0, 18.0}) {
    world.sim.ScheduleAt(TimePoint::FromMicros(0) + Duration::Days(day),
                         [&, id] {
                           world.cluster->Annotate("planned network outage");
                           engine->Suspend(id);
                           ++manual;
                           world.cluster->SetAllConnected(false);
                         });
    world.sim.ScheduleAt(
        TimePoint::FromMicros(0) + Duration::Days(day) + Duration::Hours(10),
        [&, id] {
          world.cluster->SetAllConnected(true);
          engine->Resume(id);
          ++manual;
        });
  }
  // The OS/hardware upgrade: a second processor per node from day 25,
  // picked up by BioOpera without intervention (Figure 6).
  inject.ScheduleCpuUpgrade(TimePoint::FromMicros(0) + Duration::Days(25), 2,
                            "OS config change: 2nd processor per node");

  RunToCompletion(&world, id, /*max_days=*/partition_storm ? 120 : 90);
  if (partition_storm) QuiesceAfterStorm(&world, &inject, id);
  return Collect(&world, id, manual);
}

std::string RenderLifecycle(const ScenarioResult& result, int height) {
  const double t1 = result.wall_days > 0
                        ? result.wall_days
                        : (result.availability.points().empty()
                               ? 1.0
                               : result.availability.points().back().t);
  const size_t width = 78;
  std::vector<double> avail = result.availability.Resample(0, t1, width);
  std::vector<double> util = result.utilization.Resample(0, t1, width);
  double y_max = result.max_cpus > 0 ? result.max_cpus : 1;
  std::string out = AsciiAreaChart(avail, util, y_max, height);
  out += StrFormat("       x-axis: 0 .. %.0f days\n", t1);
  if (!result.events.empty()) {
    out += "\nevents:\n";
    for (const auto& event : result.events) {
      out += StrFormat("  day %5.1f  %s\n",
                       event.time.SinceEpoch().ToDays(),
                       event.label.c_str());
    }
  }
  return out;
}

std::string RenderCommsStats(const ScenarioResult& result) {
  if (!result.comms.enabled) return "";
  const CommsStats& c = result.comms;
  std::string out = "partition storm (lossy control plane):\n";
  out += StrFormat("  message faults injected: %llu "
                   "(drop/dup/delay/reorder)\n",
                   (unsigned long long)c.faults_injected);
  out += StrFormat("  lease detector: %.0f suspected, %.0f condemned, "
                   "%.0f reconciled\n",
                   c.nodes_suspected, c.nodes_condemned, c.nodes_reconciled);
  out += StrFormat("  exactly-once: %.0f stale reports fenced, %.0f "
                   "duplicates suppressed\n",
                   c.reports_fenced, c.reports_duplicate);
  out += StrFormat("  kill protocol: %.0f retries, %.0f abandoned to "
                   "condemnation\n",
                   c.kill_retries, c.kills_abandoned);
  return out;
}

bool WriteCommsJson(const ScenarioResult& result,
                    const std::string& bench_name, const std::string& path) {
  if (!result.comms.enabled) return false;
  const CommsStats& c = result.comms;
  BenchJson json(bench_name);
  json.Add("partition_storm",
           {{"completed", result.completed ? 1.0 : 0.0},
            {"wall_days", result.wall_days},
            {"faults_injected", static_cast<double>(c.faults_injected)},
            {"nodes_suspected", c.nodes_suspected},
            {"nodes_condemned", c.nodes_condemned},
            {"nodes_reconciled", c.nodes_reconciled},
            {"reports_fenced", c.reports_fenced},
            {"reports_duplicate", c.reports_duplicate},
            {"kill_retries", c.kill_retries},
            {"kills_abandoned", c.kills_abandoned},
            {"manual_interventions",
             static_cast<double>(result.manual_interventions)}});
  return json.Write(path);
}

}  // namespace biopera::bench
