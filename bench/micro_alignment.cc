// Microbenchmarks of the Darwin-substitute alignment kernels: they anchor
// the cost model (sw_cell_seconds on modern hardware vs the 1999 reference)
// and document the fixed-pass / refinement cost ratio the simulated
// experiments assume.
#include <benchmark/benchmark.h>

#include "bench/bench_main.h"
#include "common/rng.h"
#include "darwin/align.h"
#include "darwin/align_simd.h"
#include "darwin/banded.h"
#include "darwin/banded_simd.h"
#include "darwin/generator.h"
#include "darwin/pam.h"

namespace biopera::darwin {
namespace {

Sequence MakeRandom(size_t length, uint64_t seed) {
  Rng rng(seed);
  const auto& f = BackgroundFrequencies();
  std::vector<double> weights(f.begin(), f.end());
  std::vector<uint8_t> residues(length);
  for (auto& r : residues) r = static_cast<uint8_t>(rng.Discrete(weights));
  return Sequence("bench", std::move(residues));
}

void BM_SmithWatermanScore(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Sequence a = MakeRandom(len, 1);
  Sequence b = MakeRandom(len, 2);
  const ScoringMatrix& matrix = SharedPamFamily().Scoring(250);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmithWatermanScore(a, b, matrix));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(len) * len * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SmithWatermanScore)->Arg(100)->Arg(360)->Arg(1000);

// Striped-SIMD kernels (one query profile, a batch of targets) next to
// the scalar baseline above; arg is the kernel enum value. Unsupported
// kernels skip so the suite runs unchanged on non-AVX2 machines.
void BM_SimdScorePairs(benchmark::State& state) {
  const auto kernel = static_cast<SwKernel>(state.range(0));
  if (!SwKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this host");
    return;
  }
  const size_t len = 360;
  const size_t num_targets = 16;
  Sequence query = MakeRandom(len, 31);
  std::vector<Sequence> storage;
  std::vector<const Sequence*> targets;
  for (size_t t = 0; t < num_targets; ++t) {
    storage.push_back(MakeRandom(len, 32 + t));
  }
  for (const auto& s : storage) targets.push_back(&s);
  const PamFamily& family = SharedPamFamily();
  const ScoringMatrix& matrix = family.Scoring(250);
  const QuantizedMatrix& qmatrix = family.QuantizedScoring(250);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ScorePairs(query, targets, matrix, qmatrix, {}, kernel));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(len) * len * num_targets * state.iterations(),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(SwKernelName(kernel)));
}
BENCHMARK(BM_SimdScorePairs)
    ->Arg(static_cast<int>(SwKernel::kScalar))
    ->Arg(static_cast<int>(SwKernel::kSse2))
    ->Arg(static_cast<int>(SwKernel::kAvx2));

void BM_BandedSmithWaterman(benchmark::State& state) {
  const size_t len = 360;
  const size_t band = static_cast<size_t>(state.range(0));
  Sequence a = MakeRandom(len, 21);
  Sequence b = MakeRandom(len, 22);
  const ScoringMatrix& matrix = SharedPamFamily().Scoring(250);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BandedSmithWatermanScore(a, b, matrix, band));
  }
  // Cells actually computed per pass: len rows of (at most) 2*band+1.
  state.counters["band"] = static_cast<double>(band);
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(len) *
          static_cast<double>(std::min(2 * band + 1, len)) *
          state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedSmithWaterman)->Arg(16)->Arg(64)->Arg(512);

// Quantized banded kernel (scalar int16 and AVX2 row pass) next to the
// double banded baseline above; arg encodes band * 10 + kernel enum.
void BM_BandedSimd(benchmark::State& state) {
  const size_t band = static_cast<size_t>(state.range(0)) / 10;
  const auto kernel = static_cast<SwKernel>(state.range(0) % 10);
  if (!SwKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this host");
    return;
  }
  const size_t len = 360;
  Sequence a = MakeRandom(len, 21);
  Sequence b = MakeRandom(len, 22);
  const QuantizedMatrix& qmatrix = SharedPamFamily().QuantizedScoring(250);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BandedSimdScore(a, b, qmatrix, band, {}, kernel));
  }
  state.counters["band"] = static_cast<double>(band);
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(len) *
          static_cast<double>(std::min(2 * band + 1, len)) *
          state.iterations(),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(SwKernelName(kernel)));
}
BENCHMARK(BM_BandedSimd)
    ->Arg(16 * 10 + static_cast<int>(SwKernel::kScalar))
    ->Arg(16 * 10 + static_cast<int>(SwKernel::kAvx2))
    ->Arg(64 * 10 + static_cast<int>(SwKernel::kScalar))
    ->Arg(64 * 10 + static_cast<int>(SwKernel::kAvx2));

void BM_SmithWatermanTraceback(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Sequence a = MakeRandom(len, 3);
  Sequence b = MutateSequence(a, 120, SharedPamFamily(), &rng);
  const ScoringMatrix& matrix = SharedPamFamily().Scoring(120);
  for (auto _ : state) {
    auto result = SmithWatermanAlign(a, b, matrix);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SmithWatermanTraceback)->Arg(100)->Arg(360);

void BM_PamRefinement(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Sequence a = MakeRandom(len, 4);
  Sequence b = MutateSequence(a, 180, SharedPamFamily(), &rng);
  int evaluations = 0;
  for (auto _ : state) {
    RefinementResult r = RefinePamDistance(a, b, SharedPamFamily());
    evaluations = r.evaluations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["sw_evals"] = evaluations;
}
BENCHMARK(BM_PamRefinement)->Arg(100)->Arg(360);

void BM_PamMatrixPower(benchmark::State& state) {
  for (auto _ : state) {
    // A fresh family each iteration: measures the matrix-power pipeline.
    PamFamily family;
    benchmark::DoNotOptimize(family.Scoring(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PamMatrixPower)->Arg(250)->Arg(719);

void BM_DatasetGeneration(benchmark::State& state) {
  GeneratorOptions options;
  options.num_sequences = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(GenerateDataset(options, &rng));
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(100)->Arg(532);

}  // namespace
}  // namespace biopera::darwin

int main(int argc, char** argv) {
  return biopera::bench::RunBenchmarkMain(argc, argv,
                                          "BENCH_micro_alignment.json");
}
