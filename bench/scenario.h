#ifndef BIOPERA_BENCH_SCENARIO_H_
#define BIOPERA_BENCH_SCENARIO_H_

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "core/engine.h"
#include "obs/critical_path.h"

namespace biopera::bench {

/// Outcome of one full all-vs-all lifecycle run (used by the Table 1,
/// Figure 5 and Figure 6 benches).
struct ScenarioResult {
  core::InstanceSummary summary;
  /// CPUs available / effectively computing over time (x in days).
  StepSeries availability;
  StepSeries utilization;
  std::vector<cluster::TraceEvent> events;
  int max_cpus = 0;
  double wall_days = 0;
  bool completed = false;
  /// Adaptive-monitoring overhead during the run (samples vs reports).
  uint64_t monitor_samples = 0;
  uint64_t monitor_reports = 0;
  /// Manual operator interventions performed by the scenario script
  /// (suspend/resume/restart), mirroring §5.4's accounting of how much
  /// human attention the run needed.
  int manual_interventions = 0;
  /// End-of-run metrics-registry snapshot (text form).
  std::string metrics_text;
  /// Full trace export (JSONL) and the all-nodes timeline CSV. Both are
  /// byte-deterministic for a given seed, so they double as the A/B
  /// fixture proving scheduling order survives dispatcher refactors.
  std::string trace_jsonl;
  std::string timeline_csv;
  /// Span exports (same determinism guarantee): the raw span log, the
  /// Chrome-trace JSON (load in chrome://tracing or Perfetto), and the
  /// console-style run report with the critical-path breakdown.
  std::string spans_jsonl;
  std::string chrome_json;
  std::string report_text;
  /// Provenance export (JSONL header + one line per attempt): which
  /// inputs produced which match sets, through which attempts/retries.
  /// Byte-deterministic for a given seed; pairs with spans_jsonl as the
  /// input to run differencing (obs::ParseRunExports + obs::DiffRuns).
  std::string lineage_jsonl;
  /// Critical-path analysis of the scenario's instance: where the
  /// makespan went (compute / queue / recovery / migration / store_stall).
  obs::CriticalPathReport critical_path;
};

/// First run (§5.4): the full synthetic-SP38 all-vs-all on the *shared*
/// linneus + ik-sun clusters, BioOpera jobs at lowest priority, with the
/// ten numbered disturbance events of Figure 5 scripted onto the timeline.
/// `cluster_outage_shift` moves event 3 (the whole-cluster hardware
/// failure at day 10) — the run-differencing checks use it to produce an
/// outage-schedule-perturbed run that is otherwise identical.
ScenarioResult RunSharedClusterScenario(
    uint64_t seed, Duration cluster_outage_shift = Duration::Zero());

/// Second run (§5.5): same computation on the dedicated ik-linux cluster;
/// two planned network outages and the mid-run CPU doubling of Figure 6.
ScenarioResult RunNonSharedClusterScenario(uint64_t seed);

/// Renders a Figure 5/6-style lifecycle report (ASCII area chart plus the
/// event legend).
std::string RenderLifecycle(const ScenarioResult& result, int height);

}  // namespace biopera::bench

#endif  // BIOPERA_BENCH_SCENARIO_H_
