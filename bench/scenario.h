#ifndef BIOPERA_BENCH_SCENARIO_H_
#define BIOPERA_BENCH_SCENARIO_H_

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "core/engine.h"
#include "obs/critical_path.h"

namespace biopera::bench {

/// Control-plane accounting for a partition-storm run: what the lossy
/// channel injected and how the lease detector / exactly-once protocol
/// absorbed it. All zero (enabled=false) in the default fault-free mode.
struct CommsStats {
  bool enabled = false;
  uint64_t faults_injected = 0;   // drops/dups/delays/reorders armed+hit
  double nodes_suspected = 0;     // lease misses crossed the threshold
  double nodes_condemned = 0;     // grace expired; jobs rescheduled
  double nodes_reconciled = 0;    // suspected/condemned node rejoined
  double reports_fenced = 0;      // stale-epoch reports rejected
  double reports_duplicate = 0;   // redelivered reports deduplicated
  double kill_retries = 0;        // kill commands retried with backoff
  double kills_abandoned = 0;     // kill retries exhausted (node condemned)
};

/// Outcome of one full all-vs-all lifecycle run (used by the Table 1,
/// Figure 5 and Figure 6 benches).
struct ScenarioResult {
  core::InstanceSummary summary;
  /// CPUs available / effectively computing over time (x in days).
  StepSeries availability;
  StepSeries utilization;
  std::vector<cluster::TraceEvent> events;
  int max_cpus = 0;
  double wall_days = 0;
  bool completed = false;
  /// Adaptive-monitoring overhead during the run (samples vs reports).
  uint64_t monitor_samples = 0;
  uint64_t monitor_reports = 0;
  /// Manual operator interventions performed by the scenario script
  /// (suspend/resume/restart), mirroring §5.4's accounting of how much
  /// human attention the run needed.
  int manual_interventions = 0;
  /// End-of-run metrics-registry snapshot (text form).
  std::string metrics_text;
  /// Full trace export (JSONL) and the all-nodes timeline CSV. Both are
  /// byte-deterministic for a given seed, so they double as the A/B
  /// fixture proving scheduling order survives dispatcher refactors.
  std::string trace_jsonl;
  std::string timeline_csv;
  /// Span exports (same determinism guarantee): the raw span log, the
  /// Chrome-trace JSON (load in chrome://tracing or Perfetto), and the
  /// console-style run report with the critical-path breakdown.
  std::string spans_jsonl;
  std::string chrome_json;
  std::string report_text;
  /// Provenance export (JSONL header + one line per attempt): which
  /// inputs produced which match sets, through which attempts/retries.
  /// Byte-deterministic for a given seed; pairs with spans_jsonl as the
  /// input to run differencing (obs::ParseRunExports + obs::DiffRuns).
  std::string lineage_jsonl;
  /// Critical-path analysis of the scenario's instance: where the
  /// makespan went (compute / queue / recovery / migration / store_stall).
  obs::CriticalPathReport critical_path;
  /// Lossy-control-plane accounting (--partition-storm runs only).
  CommsStats comms;
};

/// First run (§5.4): the full synthetic-SP38 all-vs-all on the *shared*
/// linneus + ik-sun clusters, BioOpera jobs at lowest priority, with the
/// ten numbered disturbance events of Figure 5 scripted onto the timeline.
/// `cluster_outage_shift` moves event 3 (the whole-cluster hardware
/// failure at day 10) — the run-differencing checks use it to produce an
/// outage-schedule-perturbed run that is otherwise identical.
///
/// With `partition_storm` the engine additionally runs in lease mode over
/// a FaultChannel while a seeded adversary drops/duplicates/delays/
/// reorders control-plane messages and cuts random asymmetric per-link
/// partitions and link flaps for the whole run; the run must still
/// converge via the exactly-once protocol, and `result.comms` reports the
/// detector/protocol accounting.
ScenarioResult RunSharedClusterScenario(
    uint64_t seed, Duration cluster_outage_shift = Duration::Zero(),
    bool partition_storm = false);

/// Second run (§5.5): same computation on the dedicated ik-linux cluster;
/// two planned network outages and the mid-run CPU doubling of Figure 6.
/// `partition_storm` behaves as for RunSharedClusterScenario.
ScenarioResult RunNonSharedClusterScenario(uint64_t seed,
                                           bool partition_storm = false);

/// Renders a Figure 5/6-style lifecycle report (ASCII area chart plus the
/// event legend).
std::string RenderLifecycle(const ScenarioResult& result, int height);

/// Renders the partition-storm accounting block ("" when the run was not
/// a storm run).
std::string RenderCommsStats(const ScenarioResult& result);

/// Writes the storm accounting as a BENCH json file (one row named
/// "partition_storm" under `bench_name`); returns false on I/O error or
/// when the run was not a storm run.
bool WriteCommsJson(const ScenarioResult& result,
                    const std::string& bench_name, const std::string& path);

}  // namespace biopera::bench

#endif  // BIOPERA_BENCH_SCENARIO_H_
