// Reproduces Table 1: performance of the all-vs-all on (synthetic) SP38
// for the two experiments — shared cluster (first run, §5.4) and
// non-shared cluster (second run, §5.5).
//
// Expected shape: the shared run uses more CPUs at peak but wastes most of
// them to other users and failures; both runs take on the order of weeks
// (vs months for the earlier manual efforts); CPU(P) is an order of
// magnitude larger than WALL(P) x utilized CPUs would suggest on the
// non-shared cluster, and CPU(A) is in the hours range.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/scenario.h"
#include "common/strings.h"
#include "common/table.h"

namespace biopera::bench {
namespace {

int Main(int argc, char** argv) {
  std::string json_path = JsonPathFromArgs(argc, argv, "BENCH_table1.json");
  std::printf("== Table 1: all-vs-all on synthetic SP38 ==\n");
  std::printf("(running both lifecycle scenarios in simulated time...)\n\n");

  ScenarioResult shared = RunSharedClusterScenario(/*seed=*/38);
  ScenarioResult dedicated = RunNonSharedClusterScenario(/*seed=*/38);

  auto row = [](const ScenarioResult& r) {
    const auto& stats = r.summary.stats;
    return std::vector<std::string>{
        FormatDhm(stats.cpu_seconds),
        FormatDhm(stats.WallTime().ToSeconds()),
        FormatDhm(stats.CpuPerActivity().ToSeconds()),
    };
  };
  auto shared_cells = row(shared);
  auto dedicated_cells = row(dedicated);

  TextTable table({"", "Shared cluster", "Non-shared cluster"});
  table.AddRow({"Max # of CPUs", StrFormat("%d", shared.max_cpus),
                StrFormat("%d", dedicated.max_cpus)});
  table.AddRow({"CPU(P)", shared_cells[0], dedicated_cells[0]});
  table.AddRow({"WALL(P)", shared_cells[1], dedicated_cells[1]});
  table.AddRow({"CPU(A)", shared_cells[2], dedicated_cells[2]});
  std::printf("%s\n", table.ToString().c_str());

  for (const auto* r : {&shared, &dedicated}) {
    std::printf(
        "%s: %s, %llu activities completed, %llu failed executions, "
        "%d manual interventions\n",
        r == &shared ? "shared" : "non-shared",
        r->completed ? "completed" : "DID NOT COMPLETE",
        static_cast<unsigned long long>(r->summary.stats.activities_completed),
        static_cast<unsigned long long>(r->summary.stats.activities_failed),
        r->manual_interventions);
  }
  std::printf("\n== metrics snapshot (shared run) ==\n%s",
              shared.metrics_text.c_str());
  std::printf(
      "\nshape checks vs the paper:\n"
      "  WALL in weeks, not months (manual efforts took 3-4 months for "
      "far smaller updates): shared %.0f days, non-shared %.0f days\n"
      "  shared run peak CPUs > non-shared peak CPUs: %s\n"
      "  CPU(P) >> WALL(P) (months of CPU compressed into weeks): %s\n",
      shared.wall_days, dedicated.wall_days,
      shared.max_cpus > dedicated.max_cpus ? "yes" : "NO",
      shared.summary.stats.cpu_seconds >
              2 * shared.summary.stats.WallTime().ToSeconds()
          ? "yes"
          : "NO");
  if (!json_path.empty()) {
    BenchJson json("table1_all_vs_all");
    for (const auto* r : {&shared, &dedicated}) {
      json.Add(r == &shared ? "shared" : "non_shared",
               {{"max_cpus", static_cast<double>(r->max_cpus)},
                {"cpu_seconds", r->summary.stats.cpu_seconds},
                {"wall_seconds", r->summary.stats.WallTime().ToSeconds()},
                {"cpu_per_activity_seconds",
                 r->summary.stats.CpuPerActivity().ToSeconds()},
                {"activities_completed",
                 static_cast<double>(r->summary.stats.activities_completed)},
                {"activities_failed",
                 static_cast<double>(r->summary.stats.activities_failed)},
                {"completed", r->completed ? 1.0 : 0.0}});
    }
    if (!json.Write(json_path)) return 1;
  }
  return shared.completed && dedicated.completed ? 0 : 1;
}

}  // namespace
}  // namespace biopera::bench

int main(int argc, char** argv) { return biopera::bench::Main(argc, argv); }
